#include "src/obs/slo.h"

#include <algorithm>

#include "src/common/check.h"

namespace keystone {
namespace obs {

SloErrorBudget::SloErrorBudget(SloBudgetOptions options)
    : options_(options) {
  KS_CHECK_GT(options_.window_seconds, 0.0);
  KS_CHECK(options_.target_attainment > 0.0 &&
           options_.target_attainment < 1.0)
      << "target_attainment must be in (0, 1); got "
      << options_.target_attainment;
  KS_CHECK_GT(options_.fast_windows, 0u);
  KS_CHECK_GE(options_.slow_windows, options_.fast_windows);
}

void SloErrorBudget::AdvanceTo(double now_seconds) {
  // Close every window boundary `now_seconds` has crossed. The open
  // window `i` covers [i*W, (i+1)*W).
  while (now_seconds >=
         static_cast<double>(open_index_ + 1) * options_.window_seconds) {
    closed_.push_back(open_);
    open_ = WindowCounts();
    ++open_index_;
    // The open window occupies one slot of the slow lookback, so only
    // slow_windows - 1 closed windows ever matter.
    while (closed_.size() + 1 > options_.slow_windows) {
      closed_.pop_front();
    }
  }
}

void SloErrorBudget::Reset() {
  closed_.clear();
  open_ = WindowCounts();
  open_index_ = 0;
  total_requests_ = 0;
  total_violations_ = 0;
  total_shed_ = 0;
}

void SloErrorBudget::RecordOutcome(bool slo_met) {
  open_.requests += 1;
  total_requests_ += 1;
  if (!slo_met) {
    open_.violations += 1;
    total_violations_ += 1;
  }
}

void SloErrorBudget::RecordShed() { total_shed_ += 1; }

double SloErrorBudget::ErrorBudgetFraction() const {
  return 1.0 - options_.target_attainment;
}

double SloErrorBudget::BudgetRemainingFraction() const {
  if (total_requests_ == 0) return 1.0;
  const double allowed =
      ErrorBudgetFraction() * static_cast<double>(total_requests_);
  return 1.0 - static_cast<double>(total_violations_) / allowed;
}

double SloErrorBudget::BurnOver(size_t windows) const {
  KS_CHECK_GT(windows, 0u);
  uint64_t requests = open_.requests;
  uint64_t violations = open_.violations;
  const size_t closed_needed = windows - 1;  // open window fills one slot
  const size_t take = std::min(closed_needed, closed_.size());
  for (size_t i = 0; i < take; ++i) {
    const WindowCounts& w = closed_[closed_.size() - 1 - i];
    requests += w.requests;
    violations += w.violations;
  }
  if (requests == 0) return 0.0;
  const double violation_fraction =
      static_cast<double>(violations) / static_cast<double>(requests);
  return violation_fraction / ErrorBudgetFraction();
}

double SloErrorBudget::FastBurnRate() const {
  return BurnOver(options_.fast_windows);
}

double SloErrorBudget::SlowBurnRate() const {
  return BurnOver(options_.slow_windows);
}

bool SloErrorBudget::ShouldShed() const {
  if (total_requests_ < options_.min_requests) return false;
  return FastBurnRate() > options_.shed_burn_rate &&
         SlowBurnRate() > options_.shed_burn_rate;
}

}  // namespace obs
}  // namespace keystone
