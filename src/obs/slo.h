#ifndef KEYSTONE_OBS_SLO_H_
#define KEYSTONE_OBS_SLO_H_

#include <cstddef>
#include <cstdint>
#include <deque>

namespace keystone {
namespace obs {

/// Error-budget policy for one tenant's latency SLO (the SRE formulation:
/// a target attainment of 0.99 grants a 1% error budget; burn rate is the
/// observed violation fraction divided by that budget, so burn 1.0 spends
/// the budget exactly at the attainment boundary and burn 2.0 spends it
/// twice as fast).
struct SloBudgetOptions {
  /// Fraction of completed requests that must meet the latency SLO.
  double target_attainment = 0.99;
  /// Width of one burn-rate accounting window in virtual seconds.
  double window_seconds = 1.0;
  /// Short lookback (windows, including the open one) for the fast burn
  /// signal — catches sudden regressions.
  size_t fast_windows = 2;
  /// Long lookback for the slow burn signal — filters one-window blips.
  size_t slow_windows = 8;
  /// Shed load while both burn rates exceed this multiple of budget-
  /// neutral burn.
  double shed_burn_rate = 2.0;
  /// Minimum completed requests before shedding can engage (avoids
  /// tripping on the first unlucky request of a run).
  uint64_t min_requests = 8;
};

/// Per-tenant SLO error-budget and burn-rate tracker over virtual-time
/// windows. Driven by the serving event loop: AdvanceTo follows the
/// virtual clock, RecordOutcome follows request completions — both on the
/// serial loop, so (like BoundedRequestQueue) this is deliberately not
/// thread-safe and its outputs are deterministic across kernel-pool
/// sizes.
class SloErrorBudget {
 public:
  explicit SloErrorBudget(SloBudgetOptions options = SloBudgetOptions());

  /// Rotates accounting windows up to virtual time `now_seconds`
  /// (monotone within an epoch; stale times are ignored).
  void AdvanceTo(double now_seconds);

  /// Starts a new epoch (run): windows, totals, and the clock rewind.
  void Reset();

  /// Accounts one completed request against the open window.
  void RecordOutcome(bool slo_met);

  /// Accounts one request shed by admission control (tracked separately:
  /// shed requests consume no budget — that is the point of shedding).
  void RecordShed();

  /// The granted budget: 1 - target_attainment.
  double ErrorBudgetFraction() const;

  /// Fraction of the epoch's error budget still unspent: 1 means no
  /// violations, 0 exactly spent, negative overspent. 1 when nothing has
  /// completed yet.
  double BudgetRemainingFraction() const;

  /// Burn rates over the fast/slow lookbacks (1.0 = budget-neutral).
  double FastBurnRate() const;
  double SlowBurnRate() const;

  /// True while admission control should shed this tenant's arrivals:
  /// both burn signals exceed shed_burn_rate and enough requests have
  /// completed for the signal to mean anything. Requiring the slow signal
  /// too keeps one bad window from shedding; requiring the fast one lets
  /// the tenant back in as soon as recent windows recover.
  bool ShouldShed() const;

  uint64_t total_requests() const { return total_requests_; }
  uint64_t total_violations() const { return total_violations_; }
  uint64_t total_shed() const { return total_shed_; }
  size_t windows_closed() const { return closed_.size(); }
  const SloBudgetOptions& options() const { return options_; }

 private:
  struct WindowCounts {
    uint64_t requests = 0;
    uint64_t violations = 0;
  };

  /// Violation fraction over the trailing `windows` windows (open window
  /// included), divided by the error budget.
  double BurnOver(size_t windows) const;

  SloBudgetOptions options_;
  /// Closed windows, oldest first, capped at slow_windows - 1 (the open
  /// window supplies the last lookback slot).
  std::deque<WindowCounts> closed_;
  WindowCounts open_;
  uint64_t open_index_ = 0;
  uint64_t total_requests_ = 0;
  uint64_t total_violations_ = 0;
  uint64_t total_shed_ = 0;
};

}  // namespace obs
}  // namespace keystone

#endif  // KEYSTONE_OBS_SLO_H_
