#include "src/obs/trace.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/string_util.h"

namespace keystone {
namespace obs {

namespace {

// String escaping and number rendering come from the shared
// common/string_util JSON helpers (JsonEscape handles \r/\b/\f and negative
// chars correctly, which the local copy this replaced did not).

void AppendCostArgs(std::ostringstream* os, const char* prefix,
                    const CostProfile& cost) {
  *os << "\"" << prefix << "_flops\":" << JsonNumber(cost.flops) << ",\""
      << prefix << "_bytes\":" << JsonNumber(cost.bytes) << ",\"" << prefix
      << "_network\":" << JsonNumber(cost.network) << ",\"" << prefix
      << "_rounds\":" << JsonNumber(cost.rounds);
}

}  // namespace

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kProfileSmall:
      return "profile-small";
    case TracePhase::kProfileLarge:
      return "profile-large";
    case TracePhase::kTrain:
      return "train";
    case TracePhase::kEval:
      return "eval";
    case TracePhase::kServe:
      return "serve";
  }
  return "?";
}

void TraceRecorder::Record(TraceSpan span) {
  MutexLock lock(&mu_);
  if (max_spans_ != 0 && spans_.size() >= max_spans_) {
    ++dropped_spans_;
    // Counter increments are lock-free, and kLockRankMetricsShard sits
    // above kLockRankTrace anyway — but the cached pointer skips the
    // registry lookup entirely on this path.
    if (dropped_counter_ != nullptr) dropped_counter_->Increment();
    return;
  }
  double& cursor = phase_cursor_[span.phase];
  span_start_.push_back(cursor);
  cursor += span.virtual_seconds;
  spans_.push_back(std::move(span));
}

void TraceRecorder::set_max_spans(size_t limit) {
  MutexLock lock(&mu_);
  max_spans_ = limit;
}

size_t TraceRecorder::max_spans() const {
  MutexLock lock(&mu_);
  return max_spans_;
}

size_t TraceRecorder::dropped_spans() const {
  MutexLock lock(&mu_);
  return dropped_spans_;
}

void TraceRecorder::set_metrics(MetricsRegistry* metrics) {
  Counter* counter =
      metrics == nullptr ? nullptr : metrics->GetCounter("trace.dropped_spans");
  MutexLock lock(&mu_);
  dropped_counter_ = counter;
}

size_t TraceRecorder::NumSpans() const {
  MutexLock lock(&mu_);
  return spans_.size();
}

std::vector<TraceSpan> TraceRecorder::Spans() const {
  MutexLock lock(&mu_);
  return spans_;
}

void TraceRecorder::Clear() {
  MutexLock lock(&mu_);
  spans_.clear();
  span_start_.clear();
  phase_cursor_.clear();
  dropped_spans_ = 0;
}

std::string TraceRecorder::ChromeTraceJson() const {
  MutexLock lock(&mu_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Name the process and one "thread" per phase.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"virtual cluster\"}}";
  for (int t = 0; t < kNumTracePhases; ++t) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t
       << ",\"args\":{\"name\":\""
       << TracePhaseName(static_cast<TracePhase>(t)) << "\"}}";
  }
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    // Complete ("X") events on the virtual timeline, microsecond units.
    // Zero-duration spans get a 1us floor so they stay visible.
    const double ts_us = span_start_[i] * 1e6;
    const double dur_us = std::max(1.0, s.virtual_seconds * 1e6);
    os << ",{\"name\":\"" << JsonEscape(s.name) << "\",\"cat\":\""
       << TracePhaseName(s.phase) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << static_cast<int>(s.phase) << ",\"ts\":" << JsonNumber(ts_us)
       << ",\"dur\":" << JsonNumber(dur_us) << ",\"args\":{";
    os << "\"node_id\":" << s.node_id << ",\"kind\":\"" << JsonEscape(s.kind)
       << "\",\"physical\":\"" << JsonEscape(s.physical)
       << "\",\"partitions\":" << s.partitions
       << ",\"records_in\":" << s.records_in
       << ",\"wall_ms\":" << JsonNumber(s.wall_seconds * 1e3)
       << ",\"virtual_s\":" << JsonNumber(s.virtual_seconds) << ",";
    AppendCostArgs(&os, "predicted", s.predicted);
    if (s.observed.has_value()) {
      os << ",";
      AppendCostArgs(&os, "observed", *s.observed);
    }
    os << ",\"used_observed\":" << (s.used_observed ? "true" : "false")
       << ",\"cached\":" << (s.cached ? "true" : "false")
       << ",\"synthetic\":" << (s.synthetic ? "true" : "false")
       << ",\"output_bytes\":" << JsonNumber(s.output_bytes);
    if (s.fault_attempts > 0) {
      // Only faulted spans carry recovery args; fault-free traces stay
      // byte-identical to builds without the fault layer.
      os << ",\"fault_attempts\":" << s.fault_attempts
         << ",\"recovery_s\":" << JsonNumber(s.recovery_seconds)
         << ",\"cache_recovery\":" << (s.cache_recovery ? "true" : "false");
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

std::string TraceRecorder::PlanReport() const {
  const auto spans = Spans();
  std::ostringstream os;
  os << "ExecutionTrace{" << spans.size() << " spans}\n";
  for (const TraceSpan& s : spans) {
    os << "  [" << TracePhaseName(s.phase) << "] #" << s.node_id << " "
       << s.name;
    if (!s.physical.empty()) os << " -> " << s.physical;
    os << " (" << s.kind << ") in=" << s.records_in << " rec/"
       << s.partitions << " part, wall=" << HumanSeconds(s.wall_seconds)
       << ", virtual=" << HumanSeconds(s.virtual_seconds);
    if (s.cached) os << " [cached " << HumanBytes(s.output_bytes) << "]";
    if (s.synthetic) os << " [synthetic]";
    if (s.fault_attempts > 0) {
      os << " [" << s.fault_attempts << " attempts, recovery "
         << HumanSeconds(s.recovery_seconds)
         << (s.cache_recovery ? ", from cache" : "") << "]";
    }
    os << "\n    predicted=" << s.predicted.ToString();
    if (s.observed.has_value()) {
      os << "\n    observed =" << s.observed->ToString()
         << (s.used_observed ? " (charged)" : " (model charged)");
    }
    os << "\n";
  }
  return os.str();
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // NOLINT: leaked singleton
  return *recorder;
}

}  // namespace obs
}  // namespace keystone
