#ifndef KEYSTONE_OBS_TELEMETRY_H_
#define KEYSTONE_OBS_TELEMETRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/sim/virtual_time.h"

namespace keystone {
namespace obs {

/// Telemetry windowing knobs. Windows are aligned to virtual time: window
/// i covers [i*W, (i+1)*W) seconds since the epoch start, so the window a
/// sample lands in depends only on the virtual instant it was recorded at
/// — never on wall time or thread interleaving.
struct TelemetryOptions {
  /// Width of one aggregation window in virtual seconds.
  double window_seconds = 1.0;
  /// Closed windows retained per histogram series; sliding quantiles merge
  /// the bucket tallies of up to this many trailing windows.
  size_t ring_windows = 8;
};

/// Deterministic head-based trace sampler: whether a request's spans are
/// recorded is a pure function of (seed, tenant, request id), decided via
/// the same seeded FNV-1a + SplitMix64 draw discipline as the fault
/// injection layer (src/sim/faults). The sampled set is therefore
/// identical across kernel-pool sizes, batch formations, and replay runs
/// — sampling cannot perturb determinism checks.
class TraceSampler {
 public:
  TraceSampler() = default;
  TraceSampler(double rate, uint64_t seed) : rate_(rate), seed_(seed) {}

  /// True when the request's spans should be recorded. rate >= 1 always
  /// samples; rate <= 0 never does.
  bool Sample(const std::string& tenant, uint64_t request_id) const;

  double rate() const { return rate_; }
  uint64_t seed() const { return seed_; }

 private:
  double rate_ = 1.0;
  uint64_t seed_ = 0;
};

/// Kind tag for one telemetry series (see TelemetryHub).
enum class TelemetrySeriesKind { kCounter, kGauge, kHistogram };

/// Plain-data capture of one series inside a closing window. Histogram
/// tallies are held by shared_ptr: capturing a snapshot on the serving
/// path is reference-count bumps, never bucket merges or formatting —
/// those happen lazily (SnapshotJsonl) or on the writer thread.
struct TelemetrySeriesSnapshot {
  /// Interned in the hub's series registry, which outlives every snapshot
  /// (a plain pointer keeps capture free of refcount traffic).
  const std::string* name = nullptr;
  TelemetrySeriesKind kind = TelemetrySeriesKind::kCounter;
  // Counter state (delta for this window, epoch-cumulative total).
  double delta = 0.0;
  double total = 0.0;
  // Gauge state.
  double gauge_value = 0.0;
  // Histogram state: this window's tallies (null = empty window) plus the
  // trailing ring tallies the sliding quantiles merge over. Entries are
  // immutable once captured, so sharing them across snapshots is safe.
  std::shared_ptr<const HistogramBuckets> window_hist;
  std::vector<std::shared_ptr<const HistogramBuckets>> sliding_parts;
};

/// Plain-data capture of one closed window — everything needed to format
/// its JSONL snapshot line later, as a pure function of this struct.
struct TelemetryWindowSnapshot {
  size_t epoch = 0;
  uint64_t window = 0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  double window_seconds = 1.0;  // for the exported rate
  std::vector<TelemetrySeriesSnapshot> series;
};

/// Renders the canonical JSONL line (no trailing newline) for a captured
/// window. Deterministic: byte-identical output for equal snapshots.
std::string FormatWindowSnapshot(const TelemetryWindowSnapshot& snapshot);

/// Asynchronous JSONL appender: the recording path enqueues either a raw
/// pre-formatted block or an unformatted window snapshot and returns; a
/// dedicated writer thread formats, writes, and fflushes after each drain,
/// so exports keep up with window boundaries without the recording path
/// ever blocking on disk or paying formatting costs. Flush blocks until
/// everything enqueued so far is durable (the destructor flushes and
/// joins).
class TelemetryJsonlWriter {
 public:
  explicit TelemetryJsonlWriter(const std::string& path);
  ~TelemetryJsonlWriter();
  TelemetryJsonlWriter(const TelemetryJsonlWriter&) = delete;
  TelemetryJsonlWriter& operator=(const TelemetryJsonlWriter&) = delete;

  /// False when the file could not be opened (appends become no-ops).
  bool ok() const { return file_ != nullptr; }

  /// Enqueues already-formatted text (written verbatim + newline).
  void AppendRaw(std::string text) EXCLUDES(mu_);
  /// Enqueues a window snapshot; the writer thread formats it.
  void AppendSnapshot(std::shared_ptr<const TelemetryWindowSnapshot> snapshot)
      EXCLUDES(mu_);
  void Flush() EXCLUDES(mu_);

 private:
  struct Item {
    std::string raw;  // used when snapshot is null
    std::shared_ptr<const TelemetryWindowSnapshot> snapshot;
  };

  void Loop();

  std::FILE* file_ = nullptr;
  /// Above kLockRankTelemetry: the hub appends while holding its own lock.
  Mutex mu_{kLockRankTelemetryWriter};
  CondVar work_cv_;
  CondVar drained_cv_;
  std::deque<Item> queue_ GUARDED_BY(mu_);
  bool writing_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

/// Windowed time-series aggregator. Counters, gauges, and histograms are
/// recorded against the *open* virtual-time window; Tick(now) — driven by
/// a VirtualClock on the serving event loop or by the PlanRunner's ledger
/// total — closes every window boundary `now` has crossed, capturing one
/// snapshot per non-empty window. Because ticks and records both carry
/// virtual timestamps produced on the serial event loop, the emitted
/// stream is byte-identical across kernel-pool sizes.
///
/// Histogram series additionally keep a ring of per-window bucket tallies
/// (HistogramBuckets shares the PR 6 log-bucket geometry), so each
/// snapshot carries sliding p50/p99/p999 computed by *merging buckets*
/// over the trailing ring — exact, unlike averaging per-window quantiles.
///
/// The hot path stays cheap by deferring all serialization: closing a
/// window captures shared_ptr references into a TelemetryWindowSnapshot;
/// JSONL formatting happens lazily in SnapshotJsonl() or concurrently on
/// the writer thread.
///
/// Self-observability: the hub stopwatches its own record/tick/export
/// paths (record and tick via 1-in-16 sampled timers, scaled back up) and
/// publishes `obs.overhead.*` gauges into a MetricsRegistry on request.
/// Wall times never enter the JSONL stream (they would break
/// byte-identity); only virtual-time-derived values do.
///
/// Thread-safe (one internal mutex), though the intended driver is a
/// serial event loop.
class TelemetryHub : public TickListener {
 public:
  explicit TelemetryHub(TelemetryOptions options = TelemetryOptions());
  ~TelemetryHub() override;
  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  /// Stable id of a registered series: an index into an internal registry
  /// that survives epoch resets, so hot paths can skip the by-name map
  /// lookup. Register once at setup, record through the id forever.
  using SeriesId = size_t;

  /// Registers (or finds) a series and returns its stable id. Aborts if
  /// the name is already registered with a different kind.
  SeriesId RegisterSeries(const std::string& name, TelemetrySeriesKind kind)
      EXCLUDES(mu_);

  /// Adds `delta` to a per-window counter (exported as delta + rate +
  /// epoch-cumulative total).
  void Count(const std::string& name, double delta = 1.0) EXCLUDES(mu_);
  void CountId(SeriesId id, double delta = 1.0) EXCLUDES(mu_);

  /// Sets a last-write-wins gauge (exported with its latest value in every
  /// window from the first set onward).
  void SetGauge(const std::string& name, double value) EXCLUDES(mu_);
  void SetGaugeId(SeriesId id, double value) EXCLUDES(mu_);

  /// Records a sample into the open window's histogram series.
  void Observe(const std::string& name, double value) EXCLUDES(mu_);
  void ObserveId(SeriesId id, double value) EXCLUDES(mu_);

  /// Closes every window boundary crossed by advancing virtual time to
  /// `now_seconds` (monotone within an epoch; stale ticks are ignored).
  void Tick(double now_seconds) EXCLUDES(mu_);

  /// Ends the current epoch: the open window is captured if it has data,
  /// per-epoch state (totals, rings, window index) resets, and the epoch
  /// counter increments. The JSONL stream keeps accumulating.
  void CloseEpoch() EXCLUDES(mu_);

  /// TickListener (a VirtualClock drives the hub through these).
  void OnAdvance(double now_seconds) override { Tick(now_seconds); }
  void OnReset() override { CloseEpoch(); }

  /// Starts exporting snapshot lines to `path` via the async writer.
  /// Returns false (and exports nothing) when the file cannot be opened.
  bool AttachJsonlWriter(const std::string& path) EXCLUDES(mu_);

  /// Blocks until all emitted lines are written and flushed.
  void Flush() EXCLUDES(mu_);

  /// The full snapshot stream emitted so far (all epochs), one JSON object
  /// per line — the byte-identity artifact. Formats lazily (cached).
  std::string SnapshotJsonl() const EXCLUDES(mu_);

  size_t windows_emitted() const EXCLUDES(mu_);
  size_t epoch() const EXCLUDES(mu_);
  const TelemetryOptions& options() const { return options_; }

  /// Estimated wall seconds spent inside the hub on the recording path
  /// (record + tick + snapshot capture; see the sampling note above).
  /// Lazy formatting and writer-thread work are deliberately excluded —
  /// they never block the serving loop. The epoch-close wait for the async
  /// writer to drain is likewise excluded (tracked separately as
  /// `obs.overhead.drain_wait_seconds`): it is a shutdown barrier after
  /// serving finished, dominated by scheduler round-trip latency rather
  /// than work stolen from the request path.
  double OverheadWallSeconds() const EXCLUDES(mu_);

  /// Publishes `obs.overhead.*` gauges (record/tick/export/drain_wait/total
  /// seconds and, when `run_wall_seconds` > 0, the overhead fraction of
  /// it).
  void PublishOverhead(MetricsRegistry* metrics,
                       double run_wall_seconds) const EXCLUDES(mu_);

 private:
  /// 1-in-N stopwatch sampling for the record/tick paths (power of two).
  static constexpr uint64_t kOverheadSampleEvery = 16;

  /// Winsorization bound for one sampled interval. The record/tick paths do
  /// bounded work under the hub mutex (~1µs), so an interval far above that
  /// means the thread was descheduled mid-measure — and the ×16 sampling
  /// multiplier would bill 16× the preemption, not 16× the hub. Clamping at
  /// ~20–50× the typical op cost keeps genuine cost intact while bounding
  /// one preempted sample's damage to ~0.3ms of billed overhead.
  static constexpr double kOverheadSampleClampSeconds = 20e-6;

  struct Series {
    TelemetrySeriesKind kind = TelemetrySeriesKind::kCounter;
    /// Points at this series' key in index_ (map nodes are stable); the
    /// registry is never pruned, so snapshots may alias it freely.
    const std::string* name = nullptr;
    /// Series persist in the registry across epochs (ids stay valid) but
    /// only appear in snapshots of epochs that touched them; the first
    /// touch (after registration or after a CloseEpoch retired the series)
    /// revives it from zeroed state.
    bool live = false;
    // Counter state.
    double window_delta = 0.0;
    double total = 0.0;
    // Gauge state.
    double gauge_value = 0.0;
    // Histogram state: the open window's tallies (allocated lazily on the
    // first sample of each window so a close can move — not copy — them
    // into the snapshot and ring) plus the ring of closed windows (window
    // index, immutable tallies) the sliding quantiles merge over.
    std::shared_ptr<HistogramBuckets> window_hist;
    std::deque<std::pair<uint64_t, std::shared_ptr<const HistogramBuckets>>>
        ring;
  };

  Series& GetSeries(const std::string& name, TelemetrySeriesKind kind)
      REQUIRES(mu_);
  /// Fetches by id, reviving the series if a prior epoch retired it.
  Series& GetSeriesById(SeriesId id, TelemetrySeriesKind kind) REQUIRES(mu_);
  double WindowEnd(uint64_t index) const {
    return static_cast<double>(index + 1) * options_.window_seconds;
  }
  /// True when this call should be stopwatched (1 in kOverheadSampleEvery).
  bool SampleStopwatch(std::atomic<uint64_t>* ops) const {
    return (ops->fetch_add(1, std::memory_order_relaxed) &
            (kOverheadSampleEvery - 1)) == 0;
  }
  // Lock-held bodies of the public recording entry points, shared by the
  // by-name/by-id and stopwatched/unstopwatched call paths.
  void CountSeries(Series& series, double delta) REQUIRES(mu_) {
    series.window_delta += delta;
    series.total += delta;
    window_touched_ = true;
  }
  void SetGaugeSeries(Series& series, double value) REQUIRES(mu_) {
    series.gauge_value = value;
    window_touched_ = true;
  }
  void ObserveSeries(Series& series, double value) REQUIRES(mu_) {
    // Lazily (re)allocated per window: the close moves the tallies out
    // wholesale instead of copying 1KB+ of buckets per histogram series.
    if (series.window_hist == nullptr) {
      series.window_hist = std::make_shared<HistogramBuckets>();
    }
    series.window_hist->Record(value);
    window_touched_ = true;
  }
  void TickLocked(double now_seconds) REQUIRES(mu_);
  /// Captures the closing window's snapshot and rolls every series into
  /// its next-window state. Accumulates into export_overhead_.
  void CloseOpenWindow() REQUIRES(mu_);
  /// Formats captured-but-unformatted snapshots into stream_.
  void FormatPending() const REQUIRES(mu_);

  TelemetryOptions options_;
  mutable Mutex mu_{kLockRankTelemetry};
  /// Owns every series ever registered; ids index into this vector and
  /// stay valid across epochs. index_ orders snapshot output by name.
  std::vector<std::unique_ptr<Series>> registry_ GUARDED_BY(mu_);
  std::map<std::string, SeriesId> index_ GUARDED_BY(mu_);
  uint64_t open_index_ GUARDED_BY(mu_) = 0;
  bool window_touched_ GUARDED_BY(mu_) = false;
  double now_ GUARDED_BY(mu_) = 0.0;
  size_t epoch_ GUARDED_BY(mu_) = 0;
  size_t windows_emitted_ GUARDED_BY(mu_) = 0;
  /// Captured snapshots not yet folded into stream_ (lazy formatting).
  mutable std::deque<std::shared_ptr<const TelemetryWindowSnapshot>>
      pending_ GUARDED_BY(mu_);
  mutable std::string stream_ GUARDED_BY(mu_);
  std::unique_ptr<TelemetryJsonlWriter> writer_ GUARDED_BY(mu_);
  // Self-overhead stopwatch totals (wall seconds; record/tick estimated
  // via sampling, export/capture measured fully).
  double record_overhead_ GUARDED_BY(mu_) = 0.0;
  double tick_overhead_ GUARDED_BY(mu_) = 0.0;
  double export_overhead_ GUARDED_BY(mu_) = 0.0;
  /// Epoch-close wait for the async writer to drain (not in the gated
  /// total; see OverheadWallSeconds).
  double drain_wait_ GUARDED_BY(mu_) = 0.0;
  std::atomic<uint64_t> record_ops_{0};
  std::atomic<uint64_t> tick_ops_{0};
};

}  // namespace obs
}  // namespace keystone

#endif  // KEYSTONE_OBS_TELEMETRY_H_
