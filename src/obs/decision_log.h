#ifndef KEYSTONE_OBS_DECISION_LOG_H_
#define KEYSTONE_OBS_DECISION_LOG_H_

// Structured provenance for every decision the optimizer passes make while
// compiling a PhysicalPlan: which physical implementation won a node and by
// what margin, which nodes CSE merged, and the full iteration ledger of the
// greedy materialization algorithm (paper Algorithm 1). Nodes are referred
// to by plan node id and structural fingerprint only, so this layer stays
// independent of src/core (same rule as the tracer).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/sim/cost_profile.h"

namespace keystone {
namespace obs {

/// One scored physical alternative considered for an optimizable node.
struct OptionScore {
  int option_index = -1;
  std::string name;              // physical operator name
  CostProfile cost;              // estimated (or history-corrected) cost
  double estimated_seconds = 0;  // cost under the cluster descriptor
  double scratch_bytes = 0;      // per-node scratch demand
  bool feasible = true;          // scratch fits node memory
  bool from_history = false;     // cost rescaled from ProfileStore history
};

/// The outcome of physical selection for one node: every alternative with
/// its score, the winner, and the winner's margin over the runner-up
/// (relative: runner_up/winner - 1; 0 when there is no feasible runner-up).
struct SelectionDecision {
  int node_id = -1;
  std::string node_name;
  std::string fingerprint;
  int chosen_option = -1;
  double chosen_seconds = 0;
  double margin = 0;
  bool from_store = false;  // decision replayed from persisted profiles
  std::vector<OptionScore> options;
};

/// One CSE merge group: the surviving node and the duplicates folded into it.
struct CseMergeGroup {
  int survivor = -1;
  std::string fingerprint;
  std::vector<int> merged;  // logical ids eliminated in favor of `survivor`
};

/// One candidate considered during a greedy materialization iteration.
struct MaterializationCandidate {
  int node_id = -1;
  double output_bytes = 0;
  bool fits = false;               // output fits the remaining budget
  bool evaluated = false;          // runtime_if_cached/benefit are meaningful
  double runtime_if_cached = 0;    // estimated runtime with this node cached
  double benefit_seconds = 0;      // runtime_before - runtime_if_cached
};

/// One iteration of greedy materialization: the candidate set with scores,
/// the node chosen (or -1 when the loop terminates), and the budget state.
struct MaterializationStep {
  int iteration = 0;
  double budget_before = 0;
  double runtime_before = 0;
  int chosen = -1;
  double benefit_seconds = 0;
  double remaining_budget = 0;
  std::vector<MaterializationCandidate> candidates;
};

/// One fault-recovery decision the runner took under a FaultPlan: what kind
/// of fault hit the node, which attempt, and whether recovery re-read the
/// materialized inputs from cache or paid lineage recompute — the
/// interaction the materialization pass prices via expected_fault_rate.
struct RecoveryDecision {
  int node_id = -1;
  std::string node_name;
  std::string kind;  // task-failure / executor-loss / straggler
  int attempt = 0;
  bool cache_recovery = false;  // inputs re-read from cache (vs lineage)
  double wasted_seconds = 0;    // partial work lost with the attempt
  double backoff_seconds = 0;   // retry scheduling delay
  double recovery_seconds = 0;  // input re-acquisition / straggler time
};

/// One statically detected fusion candidate: a maximal chain of pure /
/// seeded-deterministic single-consumer row-wise operators with compatible
/// inferred shapes (src/analysis/dataflow.h). The FusionPass consumes these
/// and records a FusionDecision per candidate (or candidate segment).
struct FusionCandidate {
  std::vector<int> nodes;          // plan node ids, upstream first
  std::vector<std::string> ops;    // operator names, aligned with `nodes`
  std::string path;                // "train" or "runtime"
  std::string input_shape;         // lattice shape entering the chain
  std::string output_shape;        // lattice shape leaving the chain
};

/// The FusionPass's verdict on one candidate (or on one segment of a
/// candidate it had to split at a cached or non-chunkable member): either an
/// accepted fused region with its cost-model savings, or a rejection with
/// the legality/costing reason. `explain --strict` cross-checks that every
/// fused region traces back to a candidate and every rejection carries a
/// reason.
struct FusionDecision {
  int candidate_index = -1;        // index into FusionCandidates()
  std::vector<int> nodes;          // the segment judged, upstream first
  bool accepted = false;
  int region_id = -1;              // PhysicalPlan::fused_regions index
  std::string fingerprint;         // fused fingerprint (accepted only)
  double est_saved_seconds = 0;    // modeled avoided materialization time
  double est_saved_bytes = 0;      // modeled avoided intermediate bytes
  std::string reason;              // non-empty iff rejected
};

/// The ReusePass's verdict on one cross-run reuse candidate whose lineage
/// fingerprint matched an ArtifactCatalog entry: accepted (the node becomes
/// a catalog read and `pruned` lists the upstream nodes the rewrite made
/// undemanded) or rejected with the costing reason. Benefit is
/// `recompute_seconds` (the modeled cost of the node plus its prunable
/// chain) against `load_seconds` (reading the entry from its tier).
struct ReuseDecision {
  int node_id = -1;
  std::string node_name;
  std::string fingerprint;  // lineage fingerprint == catalog key
  bool accepted = false;
  std::string tier;         // "memory" or "disk" at decision time
  double entry_bytes = 0;
  size_t entry_records = 0;
  uint64_t entry_generation = 0;
  double load_seconds = 0;
  double recompute_seconds = 0;
  std::vector<int> pruned;  // upstream node ids pruned by acceptance
  std::string reason;       // non-empty iff rejected
};

/// End-of-pass materialization summary.
struct MaterializationSummary {
  bool recorded = false;
  std::string policy;
  double budget_bytes = 0;
  double initial_runtime = 0;
  double final_runtime = 0;
  int cached_nodes = 0;
};

/// Thread-safe append-only log. One instance lives on each PhysicalPlan
/// (created by lowering); the optimizer passes append, reporting tools read.
class OptimizerDecisionLog {
 public:
  void RecordSelection(SelectionDecision decision);
  void RecordCseGroup(CseMergeGroup group);
  void RecordMaterializationStep(MaterializationStep step);
  void RecordMaterializationSummary(MaterializationSummary summary);
  void RecordRecovery(RecoveryDecision decision);
  void RecordFusionCandidate(FusionCandidate candidate);
  void RecordFusionDecision(FusionDecision decision);
  void RecordReuseDecision(ReuseDecision decision);

  std::vector<SelectionDecision> Selections() const;
  std::vector<CseMergeGroup> CseGroups() const;
  std::vector<MaterializationStep> MaterializationLedger() const;
  MaterializationSummary Summary() const;
  std::vector<RecoveryDecision> Recoveries() const;
  std::vector<FusionCandidate> FusionCandidates() const;
  std::vector<FusionDecision> FusionDecisions() const;
  std::vector<ReuseDecision> ReuseDecisions() const;

  /// True when no pass recorded anything (the CI --strict failure mode).
  /// Fusion candidates/decisions follow from static analysis even on
  /// otherwise-unoptimized plans and do not count.
  bool Empty() const;

  void Clear();

  /// Human-readable report of every recorded decision.
  std::string ToString() const;

  /// The log as a JSON object (selections, cse_groups, materialization).
  std::string ToJson() const;

 private:
  mutable Mutex mu_{kLockRankDecisionLog};
  std::vector<SelectionDecision> selections_ GUARDED_BY(mu_);
  std::vector<CseMergeGroup> cse_groups_ GUARDED_BY(mu_);
  std::vector<MaterializationStep> ledger_ GUARDED_BY(mu_);
  MaterializationSummary summary_ GUARDED_BY(mu_);
  std::vector<RecoveryDecision> recoveries_ GUARDED_BY(mu_);
  std::vector<FusionCandidate> fusion_ GUARDED_BY(mu_);
  std::vector<FusionDecision> fusion_decisions_ GUARDED_BY(mu_);
  std::vector<ReuseDecision> reuse_decisions_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace keystone

#endif  // KEYSTONE_OBS_DECISION_LOG_H_
