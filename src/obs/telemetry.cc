#include "src/obs/telemetry.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/string_util.h"
#include "src/common/timer.h"

namespace keystone {
namespace obs {

namespace {

/// FNV-1a over a string — the same seeded-draw discipline as the fault
/// injection layer (src/sim/faults): hash the stable identity, mix with
/// SplitMix64, and derive a uniform draw. Keeping the recipe identical
/// means sampling decisions are reproducible across runs and machines.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// SplitMix64 finalizer.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool TraceSampler::Sample(const std::string& tenant,
                          uint64_t request_id) const {
  if (rate_ >= 1.0) return true;
  if (rate_ <= 0.0) return false;
  uint64_t key = Mix(seed_);
  key = Mix(key ^ Fnv1a(tenant));
  key = Mix(key ^ request_id);
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(key >> 11) * 0x1.0p-53;
  return u < rate_;
}

std::string FormatWindowSnapshot(const TelemetryWindowSnapshot& snapshot) {
  static const HistogramBuckets kEmptyHist;
  std::string line;
  line.reserve(256);
  line += "{\"epoch\":";
  line += std::to_string(snapshot.epoch);
  line += ",\"window\":";
  line += std::to_string(snapshot.window);
  line += ",\"start\":";
  line += JsonNumber(snapshot.start_seconds);
  line += ",\"end\":";
  line += JsonNumber(snapshot.end_seconds);
  line += ",\"series\":[";
  bool first = true;
  for (const TelemetrySeriesSnapshot& series : snapshot.series) {
    if (!first) line += ',';
    first = false;
    line += "{\"name\":\"";
    line += JsonEscape(*series.name);
    line += "\",";
    switch (series.kind) {
      case TelemetrySeriesKind::kCounter:
        line += "\"kind\":\"counter\",\"delta\":";
        line += JsonNumber(series.delta);
        line += ",\"rate\":";
        line += JsonNumber(series.delta / snapshot.window_seconds);
        line += ",\"total\":";
        line += JsonNumber(series.total);
        line += '}';
        break;
      case TelemetrySeriesKind::kGauge:
        line += "\"kind\":\"gauge\",\"value\":";
        line += JsonNumber(series.gauge_value);
        line += '}';
        break;
      case TelemetrySeriesKind::kHistogram: {
        // Sliding tallies: merge this window with every trailing ring
        // window the capture retained. Merging buckets (not quantiles)
        // keeps the sliding p50/p99/p999 exact with respect to the
        // bucketed data.
        const HistogramBuckets& w =
            series.window_hist != nullptr ? *series.window_hist : kEmptyHist;
        HistogramBuckets sliding = w;
        size_t merged = series.window_hist != nullptr ? 1 : 0;
        for (const auto& part : series.sliding_parts) {
          sliding.Merge(*part);
          ++merged;
        }
        line += "\"kind\":\"histogram\",\"count\":";
        line += std::to_string(w.count);
        line += ",\"sum\":";
        line += JsonNumber(w.sum);
        line += ",\"mean\":";
        line += JsonNumber(w.Mean());
        line += ",\"min\":";
        line += JsonNumber(w.Min());
        line += ",\"max\":";
        line += JsonNumber(w.Max());
        line += ",\"p50\":";
        line += JsonNumber(w.Quantile(0.50));
        line += ",\"p90\":";
        line += JsonNumber(w.Quantile(0.90));
        line += ",\"p99\":";
        line += JsonNumber(w.Quantile(0.99));
        line += ",\"p999\":";
        line += JsonNumber(w.Quantile(0.999));
        line += ",\"sliding_windows\":";
        line += std::to_string(merged);
        line += ",\"sliding_count\":";
        line += std::to_string(sliding.count);
        line += ",\"sliding_p50\":";
        line += JsonNumber(sliding.Quantile(0.50));
        line += ",\"sliding_p99\":";
        line += JsonNumber(sliding.Quantile(0.99));
        line += ",\"sliding_p999\":";
        line += JsonNumber(sliding.Quantile(0.999));
        line += '}';
        break;
      }
    }
  }
  line += "]}";
  return line;
}

TelemetryJsonlWriter::TelemetryJsonlWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) return;
  thread_ = std::thread([this] { Loop(); });
}

TelemetryJsonlWriter::~TelemetryJsonlWriter() {
  if (file_ == nullptr) return;
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  thread_.join();
  std::fclose(file_);
}

// Appends deliberately do NOT notify the writer thread: a futex wake per
// window would cost the recording path more than the enqueue itself. The
// writer polls on a short deadline instead (and Flush/shutdown notify).

void TelemetryJsonlWriter::AppendRaw(std::string text) {
  if (file_ == nullptr) return;
  MutexLock lock(&mu_);
  queue_.push_back(Item{std::move(text), nullptr});
}

void TelemetryJsonlWriter::AppendSnapshot(
    std::shared_ptr<const TelemetryWindowSnapshot> snapshot) {
  if (file_ == nullptr) return;
  MutexLock lock(&mu_);
  queue_.push_back(Item{std::string(), std::move(snapshot)});
}

void TelemetryJsonlWriter::Flush() {
  if (file_ == nullptr) return;
  MutexLock lock(&mu_);
  work_cv_.NotifyAll();
  // The writer thread fflushes after every drain, so an empty queue with
  // no write in flight means everything appended so far is durable.
  while (!queue_.empty() || writing_) {
    drained_cv_.Wait(&mu_);
  }
}

void TelemetryJsonlWriter::Loop() {
  // Poll deadline: the longest an enqueued snapshot waits before the
  // writer picks it up (wall time; invisible to the virtual-time stream).
  constexpr double kDrainSeconds = 0.005;
  for (;;) {
    std::deque<Item> batch;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !stop_) {
        work_cv_.WaitFor(&mu_, kDrainSeconds);
      }
      if (queue_.empty() && stop_) return;
      batch.swap(queue_);
      writing_ = true;
    }
    for (const Item& item : batch) {
      // Snapshot items are formatted here, on the writer thread, so the
      // recording path never pays serialization costs.
      const std::string text = item.snapshot != nullptr
                                   ? FormatWindowSnapshot(*item.snapshot)
                                   : item.raw;
      std::fwrite(text.data(), 1, text.size(), file_);
      std::fputc('\n', file_);
    }
    std::fflush(file_);
    {
      MutexLock lock(&mu_);
      writing_ = false;
      if (queue_.empty()) drained_cv_.NotifyAll();
    }
  }
}

TelemetryHub::TelemetryHub(TelemetryOptions options)
    : options_(options) {
  KS_CHECK_GT(options_.window_seconds, 0.0);
  KS_CHECK_GT(options_.ring_windows, 0u);
}

TelemetryHub::~TelemetryHub() = default;

TelemetryHub::Series& TelemetryHub::GetSeries(const std::string& name,
                                              TelemetrySeriesKind kind) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    auto series = std::make_unique<Series>();
    series->kind = kind;
    registry_.push_back(std::move(series));
    it = index_.emplace(name, registry_.size() - 1).first;
    registry_.back()->name = &it->first;
  }
  return GetSeriesById(it->second, kind);
}

TelemetryHub::Series& TelemetryHub::GetSeriesById(SeriesId id,
                                                  TelemetrySeriesKind kind) {
  KS_CHECK_LT(id, registry_.size());
  Series& series = *registry_[id];
  KS_CHECK(series.kind == kind)
      << "telemetry series '" << *series.name
      << "' already registered with a different kind";
  if (!series.live) {
    // Retired by a CloseEpoch: revive from zeroed per-epoch state.
    series.live = true;
    series.window_delta = 0.0;
    series.total = 0.0;
    series.gauge_value = 0.0;
    series.window_hist = nullptr;
    series.ring.clear();
  }
  return series;
}

TelemetryHub::SeriesId TelemetryHub::RegisterSeries(const std::string& name,
                                                    TelemetrySeriesKind kind) {
  MutexLock lock(&mu_);
  auto it = index_.find(name);
  if (it == index_.end()) {
    auto series = std::make_unique<Series>();
    series->kind = kind;
    registry_.push_back(std::move(series));
    it = index_.emplace(name, registry_.size() - 1).first;
    registry_.back()->name = &it->first;
  }
  // Registration alone does not revive the series: it stays invisible to
  // snapshots until the first record touches it.
  KS_CHECK(registry_[it->second]->kind == kind)
      << "telemetry series '" << name
      << "' already registered with a different kind";
  return it->second;
}

// The recording entry points share a 1-in-N sampled stopwatch: timing
// every op would itself be a measurable fraction of the op's cost, so one
// call in kOverheadSampleEvery is timed and scaled back up. Each sample
// pairs the op interval with a back-to-back null interval (two clock reads
// with nothing between them, taken at the same call site an instant
// earlier) and bills the difference: the null interval measures the
// in-situ cost of the stopwatch itself — including cold-cache clock reads
// the hot loop would never pay — so the act of measuring is subtracted
// out under the same cache conditions it was incurred in, rather than via
// a constant calibrated in a warm loop.

void TelemetryHub::Count(const std::string& name, double delta) {
  if (!SampleStopwatch(&record_ops_)) {
    MutexLock lock(&mu_);
    CountSeries(GetSeries(name, TelemetrySeriesKind::kCounter), delta);
    return;
  }
  Timer null_probe;
  Timer timer;
  const double null_cost = null_probe.ElapsedSeconds();
  MutexLock lock(&mu_);
  CountSeries(GetSeries(name, TelemetrySeriesKind::kCounter), delta);
  record_overhead_ +=
      static_cast<double>(kOverheadSampleEvery) *
      std::min(kOverheadSampleClampSeconds,
               std::max(0.0, timer.ElapsedSeconds() - null_cost));
}

void TelemetryHub::CountId(SeriesId id, double delta) {
  if (!SampleStopwatch(&record_ops_)) {
    MutexLock lock(&mu_);
    CountSeries(GetSeriesById(id, TelemetrySeriesKind::kCounter), delta);
    return;
  }
  Timer null_probe;
  Timer timer;
  const double null_cost = null_probe.ElapsedSeconds();
  MutexLock lock(&mu_);
  CountSeries(GetSeriesById(id, TelemetrySeriesKind::kCounter), delta);
  record_overhead_ +=
      static_cast<double>(kOverheadSampleEvery) *
      std::min(kOverheadSampleClampSeconds,
               std::max(0.0, timer.ElapsedSeconds() - null_cost));
}

void TelemetryHub::SetGauge(const std::string& name, double value) {
  if (!SampleStopwatch(&record_ops_)) {
    MutexLock lock(&mu_);
    SetGaugeSeries(GetSeries(name, TelemetrySeriesKind::kGauge), value);
    return;
  }
  Timer null_probe;
  Timer timer;
  const double null_cost = null_probe.ElapsedSeconds();
  MutexLock lock(&mu_);
  SetGaugeSeries(GetSeries(name, TelemetrySeriesKind::kGauge), value);
  record_overhead_ +=
      static_cast<double>(kOverheadSampleEvery) *
      std::min(kOverheadSampleClampSeconds,
               std::max(0.0, timer.ElapsedSeconds() - null_cost));
}

void TelemetryHub::SetGaugeId(SeriesId id, double value) {
  if (!SampleStopwatch(&record_ops_)) {
    MutexLock lock(&mu_);
    SetGaugeSeries(GetSeriesById(id, TelemetrySeriesKind::kGauge), value);
    return;
  }
  Timer null_probe;
  Timer timer;
  const double null_cost = null_probe.ElapsedSeconds();
  MutexLock lock(&mu_);
  SetGaugeSeries(GetSeriesById(id, TelemetrySeriesKind::kGauge), value);
  record_overhead_ +=
      static_cast<double>(kOverheadSampleEvery) *
      std::min(kOverheadSampleClampSeconds,
               std::max(0.0, timer.ElapsedSeconds() - null_cost));
}

void TelemetryHub::Observe(const std::string& name, double value) {
  if (!SampleStopwatch(&record_ops_)) {
    MutexLock lock(&mu_);
    ObserveSeries(GetSeries(name, TelemetrySeriesKind::kHistogram), value);
    return;
  }
  Timer null_probe;
  Timer timer;
  const double null_cost = null_probe.ElapsedSeconds();
  MutexLock lock(&mu_);
  ObserveSeries(GetSeries(name, TelemetrySeriesKind::kHistogram), value);
  record_overhead_ +=
      static_cast<double>(kOverheadSampleEvery) *
      std::min(kOverheadSampleClampSeconds,
               std::max(0.0, timer.ElapsedSeconds() - null_cost));
}

void TelemetryHub::ObserveId(SeriesId id, double value) {
  if (!SampleStopwatch(&record_ops_)) {
    MutexLock lock(&mu_);
    ObserveSeries(GetSeriesById(id, TelemetrySeriesKind::kHistogram), value);
    return;
  }
  Timer null_probe;
  Timer timer;
  const double null_cost = null_probe.ElapsedSeconds();
  MutexLock lock(&mu_);
  ObserveSeries(GetSeriesById(id, TelemetrySeriesKind::kHistogram), value);
  record_overhead_ +=
      static_cast<double>(kOverheadSampleEvery) *
      std::min(kOverheadSampleClampSeconds,
               std::max(0.0, timer.ElapsedSeconds() - null_cost));
}

void TelemetryHub::TickLocked(double now_seconds) {
  if (now_seconds <= now_) return;
  now_ = now_seconds;
  while (now_ >= WindowEnd(open_index_)) {
    if (!window_touched_) {
      // Nothing recorded since the last close: fast-forward straight to
      // the window containing `now_` instead of rolling one empty
      // window at a time (ledger-driven ticks can jump thousands of
      // windows at once).
      open_index_ = static_cast<uint64_t>(now_ / options_.window_seconds);
      break;
    }
    CloseOpenWindow();
  }
}

void TelemetryHub::Tick(double now_seconds) {
  if (!SampleStopwatch(&tick_ops_)) {
    MutexLock lock(&mu_);
    TickLocked(now_seconds);
    return;
  }
  Timer null_probe;
  Timer timer;
  const double null_cost = null_probe.ElapsedSeconds();
  MutexLock lock(&mu_);
  // Window closes time themselves fully into export_overhead_; subtract
  // that span so the scaled-up sample covers only the per-tick residual
  // (a sampled tick that happens to close windows must not count the
  // close 16x).
  const double export_before = export_overhead_;
  TickLocked(now_seconds);
  const double elapsed = timer.ElapsedSeconds() -
                         (export_overhead_ - export_before) - null_cost;
  if (elapsed > 0.0) {
    tick_overhead_ += static_cast<double>(kOverheadSampleEvery) *
                      std::min(kOverheadSampleClampSeconds, elapsed);
  }
}

void TelemetryHub::CloseOpenWindow() {
  Timer timer;
  // Capture a plain-data snapshot of the closing window and roll every
  // series into its next-window state in one pass. Histogram tallies are
  // moved (never copied) into immutable shared_ptrs, so the snapshot
  // costs reference bumps and pointer swaps — all formatting and
  // sliding-merge work is deferred to SnapshotJsonl()/the writer thread.
  auto snapshot = std::make_shared<TelemetryWindowSnapshot>();
  snapshot->epoch = epoch_;
  snapshot->window = open_index_;
  snapshot->start_seconds =
      static_cast<double>(open_index_) * options_.window_seconds;
  snapshot->end_seconds = WindowEnd(open_index_);
  snapshot->window_seconds = options_.window_seconds;
  snapshot->series.reserve(index_.size());
  for (const auto& [name, id] : index_) {
    (void)name;
    Series& series = *registry_[id];
    if (!series.live) continue;
    snapshot->series.emplace_back();
    TelemetrySeriesSnapshot& out = snapshot->series.back();
    out.name = series.name;
    out.kind = series.kind;
    switch (series.kind) {
      case TelemetrySeriesKind::kCounter:
        out.delta = series.window_delta;
        out.total = series.total;
        series.window_delta = 0.0;
        break;
      case TelemetrySeriesKind::kGauge:
        out.gauge_value = series.gauge_value;
        break;
      case TelemetrySeriesKind::kHistogram: {
        std::shared_ptr<const HistogramBuckets> closed;
        if (series.window_hist != nullptr && !series.window_hist->Empty()) {
          // Move — not copy — the window's tallies; ObserveSeries
          // reallocates lazily on the next sample.
          closed = std::move(series.window_hist);
        }
        out.window_hist = closed;
        // Sliding span: the trailing ring windows still inside
        // ring_windows of the closing index.
        out.sliding_parts.reserve(series.ring.size());
        for (const auto& [index, hist] : series.ring) {
          if (index + options_.ring_windows > open_index_) {
            out.sliding_parts.push_back(hist);
          }
        }
        if (closed != nullptr) series.ring.emplace_back(open_index_, closed);
        while (!series.ring.empty() &&
               series.ring.front().first + options_.ring_windows <=
                   open_index_ + 1) {
          series.ring.pop_front();
        }
        break;
      }
    }
  }
  if (writer_ != nullptr) writer_->AppendSnapshot(snapshot);
  pending_.push_back(std::move(snapshot));
  ++windows_emitted_;
  window_touched_ = false;
  ++open_index_;
  export_overhead_ += timer.ElapsedSeconds();
}

void TelemetryHub::CloseEpoch() {
  Timer timer;
  MutexLock lock(&mu_);
  const double export_before = export_overhead_;
  bool any_live = false;
  for (const auto& series : registry_) {
    if (series->live) {
      any_live = true;
      break;
    }
  }
  const bool pristine =
      !any_live && open_index_ == 0 && !window_touched_ && now_ == 0.0;
  double drain_seconds = 0.0;
  if (!pristine) {
    if (window_touched_) CloseOpenWindow();
    // Retire (not destroy) every series: ids stay valid, and the next
    // epoch's first touch revives a series from zeroed state.
    for (const auto& series : registry_) series->live = false;
    open_index_ = 0;
    window_touched_ = false;
    now_ = 0.0;
    ++epoch_;
    if (writer_ != nullptr) {
      // Waiting for the async formatter to drain is a shutdown barrier —
      // mostly scheduler round-trip latency while the serving loop is
      // already done — so it is tracked apart from the interference
      // overheads that the <2% gate measures.
      Timer drain;
      writer_->Flush();
      drain_seconds = drain.ElapsedSeconds();
      drain_wait_ += drain_seconds;
    }
  }
  // Epoch closes are rare (one per Run), so they are timed fully rather
  // than sampled.
  const double elapsed = timer.ElapsedSeconds() -
                         (export_overhead_ - export_before) - drain_seconds;
  if (elapsed > 0.0) tick_overhead_ += elapsed;
}

bool TelemetryHub::AttachJsonlWriter(const std::string& path) {
  auto writer = std::make_unique<TelemetryJsonlWriter>(path);
  if (!writer->ok()) return false;
  MutexLock lock(&mu_);
  writer_ = std::move(writer);
  // Replay what was already emitted so the file always holds the full
  // stream regardless of when the writer was attached.
  FormatPending();
  if (!stream_.empty()) {
    std::string replay = stream_;
    if (!replay.empty() && replay.back() == '\n') replay.pop_back();
    writer_->AppendRaw(std::move(replay));
  }
  return true;
}

void TelemetryHub::Flush() {
  MutexLock lock(&mu_);
  if (writer_ != nullptr) writer_->Flush();
}

void TelemetryHub::FormatPending() const {
  while (!pending_.empty()) {
    stream_ += FormatWindowSnapshot(*pending_.front());
    stream_ += '\n';
    pending_.pop_front();
  }
}

std::string TelemetryHub::SnapshotJsonl() const {
  MutexLock lock(&mu_);
  FormatPending();
  return stream_;
}

size_t TelemetryHub::windows_emitted() const {
  MutexLock lock(&mu_);
  return windows_emitted_;
}

size_t TelemetryHub::epoch() const {
  MutexLock lock(&mu_);
  return epoch_;
}

double TelemetryHub::OverheadWallSeconds() const {
  MutexLock lock(&mu_);
  return record_overhead_ + tick_overhead_ + export_overhead_;
}

void TelemetryHub::PublishOverhead(MetricsRegistry* metrics,
                                   double run_wall_seconds) const {
  if (metrics == nullptr) return;
  double record, tick, exported, drain;
  {
    MutexLock lock(&mu_);
    record = record_overhead_;
    tick = tick_overhead_;
    exported = export_overhead_;
    drain = drain_wait_;
  }
  const double total = record + tick + exported;
  metrics->Set("obs.overhead.record_seconds", record);
  metrics->Set("obs.overhead.tick_seconds", tick);
  metrics->Set("obs.overhead.export_seconds", exported);
  metrics->Set("obs.overhead.drain_wait_seconds", drain);
  metrics->Set("obs.overhead.total_seconds", total);
  metrics->Set("obs.overhead.record_ops",
               static_cast<double>(record_ops_.load(std::memory_order_relaxed)));
  metrics->Set("obs.overhead.tick_ops",
               static_cast<double>(tick_ops_.load(std::memory_order_relaxed)));
  if (run_wall_seconds > 0.0) {
    metrics->Set("obs.overhead.fraction", total / run_wall_seconds);
  }
}

}  // namespace obs
}  // namespace keystone
