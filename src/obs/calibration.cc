#include "src/obs/calibration.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "src/common/string_util.h"

namespace keystone {
namespace obs {

namespace {

constexpr double kEps = 1e-12;

/// Symmetric relative residual, bounded in [-1, 1] and finite for every
/// input pair (including predicted == observed == 0, which yields 0).
double RelResidual(double predicted, double observed) {
  const double denom =
      std::max({std::fabs(predicted), std::fabs(observed), kEps});
  return (observed - predicted) / denom;
}

enum Dim { kFlops = 0, kBytes, kNetwork, kRounds, kSeconds, kNumDims };

struct Accumulator {
  int node_id = -1;
  std::string op;
  double count = 0;
  double pred[kNumDims] = {};
  double obs[kNumDims] = {};
  double bias[kNumDims] = {};
  double abs_rel[kNumDims] = {};

  /// Adds `weight` samples whose per-sample mean costs are `p`/`o`.
  void Add(const CostProfile& p, const CostProfile& o, double pred_seconds,
           double obs_seconds, double weight) {
    count += weight;
    const double pv[kNumDims] = {p.flops, p.bytes, p.network, p.rounds,
                                 pred_seconds};
    const double ov[kNumDims] = {o.flops, o.bytes, o.network, o.rounds,
                                 obs_seconds};
    for (int d = 0; d < kNumDims; ++d) {
      pred[d] += pv[d] * weight;
      obs[d] += ov[d] * weight;
      const double r = RelResidual(pv[d], ov[d]);
      bias[d] += r * weight;
      abs_rel[d] += std::fabs(r) * weight;
    }
  }

  CalibrationEntry Finalize() const {
    CalibrationEntry e;
    e.node_id = node_id;
    e.op = op;
    e.count = count;
    ResourceResidual* dims[kNumDims] = {&e.flops, &e.bytes, &e.network,
                                        &e.rounds, &e.seconds};
    const double n = count > 0 ? count : 1;
    for (int d = 0; d < kNumDims; ++d) {
      dims[d]->predicted_mean = pred[d] / n;
      dims[d]->observed_mean = obs[d] / n;
      dims[d]->bias = bias[d] / n;
      dims[d]->mean_abs_rel = abs_rel[d] / n;
    }
    return e;
  }
};

bool ResidualFinite(const ResourceResidual& r) {
  return std::isfinite(r.predicted_mean) && std::isfinite(r.observed_mean) &&
         std::isfinite(r.bias) && std::isfinite(r.mean_abs_rel);
}

bool EntryFinite(const CalibrationEntry& e) {
  return ResidualFinite(e.flops) && ResidualFinite(e.bytes) &&
         ResidualFinite(e.network) && ResidualFinite(e.rounds) &&
         ResidualFinite(e.seconds);
}

void AppendResidualJson(std::ostringstream* out, const char* key,
                        const ResourceResidual& r) {
  *out << "\"" << key << "\":{\"predicted_mean\":" << JsonNumber(r.predicted_mean)
       << ",\"observed_mean\":" << JsonNumber(r.observed_mean)
       << ",\"bias\":" << JsonNumber(r.bias)
       << ",\"mean_abs_rel\":" << JsonNumber(r.mean_abs_rel) << "}";
}

void AppendEntryJson(std::ostringstream* out, const CalibrationEntry& e) {
  *out << "{\"node\":" << e.node_id << ",\"op\":\"" << JsonEscape(e.op)
       << "\",\"count\":" << JsonNumber(e.count) << ",";
  AppendResidualJson(out, "flops", e.flops);
  *out << ",";
  AppendResidualJson(out, "bytes", e.bytes);
  *out << ",";
  AppendResidualJson(out, "network", e.network);
  *out << ",";
  AppendResidualJson(out, "rounds", e.rounds);
  *out << ",";
  AppendResidualJson(out, "seconds", e.seconds);
  *out << "}";
}

CalibrationReport FinalizeReport(const std::map<int, Accumulator>& per_node,
                                 const std::map<std::string, Accumulator>&
                                     per_op,
                                 double samples, double bias_seconds_sum,
                                 double abs_seconds_sum) {
  CalibrationReport report;
  for (const auto& [id, acc] : per_node) report.per_node.push_back(acc.Finalize());
  for (const auto& [op, acc] : per_op) report.per_op.push_back(acc.Finalize());
  report.samples = samples;
  if (samples > 0) {
    report.overall_bias_seconds = bias_seconds_sum / samples;
    report.mean_abs_residual_seconds = abs_seconds_sum / samples;
  }
  return report;
}

}  // namespace

bool CalibrationReport::AllFinite() const {
  if (!std::isfinite(samples) || !std::isfinite(overall_bias_seconds) ||
      !std::isfinite(mean_abs_residual_seconds)) {
    return false;
  }
  for (const auto& e : per_node) {
    if (!EntryFinite(e)) return false;
  }
  for (const auto& e : per_op) {
    if (!EntryFinite(e)) return false;
  }
  return true;
}

std::string CalibrationReport::ToString() const {
  std::ostringstream out;
  out << "Cost-model calibration (" << JsonNumber(samples) << " samples)\n";
  out << "  overall seconds bias " << JsonNumber(overall_bias_seconds * 100.0)
      << "%, mean |residual| "
      << JsonNumber(mean_abs_residual_seconds * 100.0) << "%\n";
  out << "  per operator kind:\n";
  for (const auto& e : per_op) {
    out << "    " << e.op << " (n=" << JsonNumber(e.count) << "): seconds "
        << HumanSeconds(e.seconds.predicted_mean) << " pred vs "
        << HumanSeconds(e.seconds.observed_mean) << " obs, bias "
        << JsonNumber(e.seconds.bias * 100.0) << "% [flops "
        << JsonNumber(e.flops.bias * 100.0) << "%, bytes "
        << JsonNumber(e.bytes.bias * 100.0) << "%, net "
        << JsonNumber(e.network.bias * 100.0) << "%, rounds "
        << JsonNumber(e.rounds.bias * 100.0) << "%]\n";
  }
  return out.str();
}

std::string CalibrationReport::ToJson() const {
  std::ostringstream out;
  out << "{\"samples\":" << JsonNumber(samples)
      << ",\"overall_bias_seconds\":" << JsonNumber(overall_bias_seconds)
      << ",\"mean_abs_residual_seconds\":"
      << JsonNumber(mean_abs_residual_seconds) << ",\"per_op\":[";
  for (size_t i = 0; i < per_op.size(); ++i) {
    if (i) out << ",";
    AppendEntryJson(&out, per_op[i]);
  }
  out << "],\"per_node\":[";
  for (size_t i = 0; i < per_node.size(); ++i) {
    if (i) out << ",";
    AppendEntryJson(&out, per_node[i]);
  }
  out << "]}";
  return out.str();
}

CalibrationReport BuildCalibrationFromSpans(
    const std::vector<TraceSpan>& spans, const ClusterResourceDescriptor& r) {
  std::map<int, Accumulator> per_node;
  std::map<std::string, Accumulator> per_op;
  double samples = 0, bias_sum = 0, abs_sum = 0;
  for (const TraceSpan& s : spans) {
    if (!s.observed.has_value() || s.synthetic) continue;
    const std::string op = s.physical.empty() ? s.name : s.physical;
    const double pred_s = r.SecondsFor(s.predicted);
    const double obs_s = r.SecondsFor(*s.observed);

    Accumulator& node_acc = per_node[s.node_id];
    node_acc.node_id = s.node_id;
    if (node_acc.op.empty()) node_acc.op = op;
    node_acc.Add(s.predicted, *s.observed, pred_s, obs_s, 1.0);

    Accumulator& op_acc = per_op[op];
    op_acc.op = op;
    op_acc.Add(s.predicted, *s.observed, pred_s, obs_s, 1.0);

    samples += 1;
    const double res = RelResidual(pred_s, obs_s);
    bias_sum += res;
    abs_sum += std::fabs(res);
  }
  return FinalizeReport(per_node, per_op, samples, bias_sum, abs_sum);
}

CalibrationReport BuildCalibrationFromStore(
    const ProfileStore& store, const ClusterResourceDescriptor& r) {
  std::map<int, Accumulator> per_node;  // store history is per-operator only
  std::map<std::string, Accumulator> per_op;
  double samples = 0, bias_sum = 0, abs_sum = 0;
  for (const OperatorObservation& o : store.Observations()) {
    if (o.count <= 0) continue;
    CostProfile pred = o.predicted_sum;
    CostProfile obs = o.observed_sum;
    const double inv = 1.0 / o.count;
    pred.flops *= inv;
    pred.bytes *= inv;
    pred.network *= inv;
    pred.rounds *= inv;
    obs.flops *= inv;
    obs.bytes *= inv;
    obs.network *= inv;
    obs.rounds *= inv;
    const double pred_s = r.SecondsFor(pred);
    const double obs_s = r.SecondsFor(obs);

    Accumulator& op_acc = per_op[o.op];
    op_acc.op = o.op;
    op_acc.Add(pred, obs, pred_s, obs_s, o.count);

    samples += o.count;
    const double res = RelResidual(pred_s, obs_s);
    bias_sum += res * o.count;
    abs_sum += std::fabs(res) * o.count;
  }
  return FinalizeReport(per_node, per_op, samples, bias_sum, abs_sum);
}

void RecordCalibration(const CalibrationReport& report,
                       MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->Set("calibration.samples", report.samples);
  metrics->Set("calibration.bias_seconds", report.overall_bias_seconds);
  metrics->Set("calibration.mean_abs_residual_seconds",
               report.mean_abs_residual_seconds);
  for (const auto& e : report.per_op) {
    metrics->Set("calibration.bias." + e.op, e.seconds.bias);
    metrics->Set("calibration.abs_rel." + e.op, e.seconds.mean_abs_rel);
  }
}

}  // namespace obs
}  // namespace keystone
