#ifndef KEYSTONE_OBS_RESOURCE_TIMELINE_H_
#define KEYSTONE_OBS_RESOURCE_TIMELINE_H_

// Per-resource occupancy timeline derived from the cost profiles charged to
// the VirtualTimeLedger. Each node execution splits its CostProfile into the
// same per-resource terms ClusterResourceDescriptor::SecondsFor sums (CPU =
// flops, memory = bytes, network, coordination = rounds; disk is charged
// directly in seconds by source loads) and lays one interval per non-zero
// term end-to-end on that phase's cursor. PlanRunner buffers node effects
// and flushes them in node-id order, so the serial and branch-parallel
// schedules produce bit-identical timelines. The timeline also tracks the
// cache-memory high-water mark against the plan's budget and cache hit/miss
// counts observed while walking node dependencies.

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/sim/cost_profile.h"
#include "src/sim/resources.h"

namespace keystone {
namespace obs {

enum class ResourceKind {
  kCpu,
  kMemory,
  kDisk,
  kNetwork,
  kCoordination,
  /// Fault-recovery occupancy: retries, backoff, and lineage recompute
  /// charged by the fault-injection layer. Rendered only when non-zero so
  /// fault-free timelines stay byte-identical to pre-fault output.
  kRecovery,
};

const char* ResourceKindName(ResourceKind kind);

/// One occupancy interval of one resource by one node execution.
struct ResourceInterval {
  std::string phase;
  int node_id = -1;
  std::string name;
  ResourceKind resource = ResourceKind::kCpu;
  double start_seconds = 0;
  double seconds = 0;
};

struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

class ResourceTimeline {
 public:
  /// Splits `cost` into per-resource seconds under `r` and appends one
  /// interval per non-zero term, laid end-to-end on the phase cursor.
  void RecordNodeCost(const std::string& phase, int node_id,
                      const std::string& name, const CostProfile& cost,
                      const ClusterResourceDescriptor& r);

  /// Appends a disk-occupancy interval (source loads charge the ledger in
  /// seconds directly, without a CostProfile).
  void RecordDiskSeconds(const std::string& phase, int node_id,
                         const std::string& name, double seconds);

  /// Appends a fault-recovery interval (retry/backoff/recompute time the
  /// fault-injection layer charged for this node, in seconds directly).
  void RecordRecoverySeconds(const std::string& phase, int node_id,
                             const std::string& name, double seconds);

  void RecordCacheAccess(bool hit);

  /// Adjusts tracked resident cache bytes (positive on materialization) and
  /// updates the high-water mark.
  void RecordResidentBytes(double delta_bytes);

  /// Declares the cache budget the high-water mark is compared against.
  void NoteCacheBudget(double bytes);

  std::vector<ResourceInterval> Intervals() const;
  CacheCounters cache_counters() const;
  double high_water_bytes() const;
  double budget_bytes() const;

  /// Total busy seconds per resource kind, across all phases.
  double BusySeconds(ResourceKind kind) const;

  void Clear();
  std::string ToString() const;
  std::string ToJson() const;

  /// Default process-wide instance (same pattern as TraceRecorder).
  static ResourceTimeline& Global();

 private:
  struct CursorKey {
    std::string phase;
    int resource;
    bool operator<(const CursorKey& other) const {
      if (phase != other.phase) return phase < other.phase;
      return resource < other.resource;
    }
  };

  void Append(const std::string& phase, int node_id, const std::string& name,
              ResourceKind kind, double seconds) REQUIRES(mu_);

  mutable Mutex mu_{kLockRankTimeline};
  std::vector<ResourceInterval> intervals_ GUARDED_BY(mu_);
  std::vector<std::pair<CursorKey, double>> cursors_ GUARDED_BY(mu_);
  CacheCounters cache_ GUARDED_BY(mu_);
  double resident_bytes_ GUARDED_BY(mu_) = 0;
  double high_water_bytes_ GUARDED_BY(mu_) = 0;
  double budget_bytes_ GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace keystone

#endif  // KEYSTONE_OBS_RESOURCE_TIMELINE_H_
