#include "src/obs/decision_log.h"

#include <sstream>
#include <utility>

#include "src/common/string_util.h"

namespace keystone {
namespace obs {

namespace {

void AppendCostJson(std::ostringstream* out, const CostProfile& cost) {
  *out << "{\"flops\":" << JsonNumber(cost.flops)
       << ",\"bytes\":" << JsonNumber(cost.bytes)
       << ",\"network\":" << JsonNumber(cost.network)
       << ",\"rounds\":" << JsonNumber(cost.rounds) << "}";
}

}  // namespace

void OptimizerDecisionLog::RecordSelection(SelectionDecision decision) {
  MutexLock lock(&mu_);
  selections_.push_back(std::move(decision));
}

void OptimizerDecisionLog::RecordCseGroup(CseMergeGroup group) {
  MutexLock lock(&mu_);
  cse_groups_.push_back(std::move(group));
}

void OptimizerDecisionLog::RecordMaterializationStep(MaterializationStep step) {
  MutexLock lock(&mu_);
  ledger_.push_back(std::move(step));
}

void OptimizerDecisionLog::RecordMaterializationSummary(
    MaterializationSummary summary) {
  MutexLock lock(&mu_);
  summary_ = std::move(summary);
  summary_.recorded = true;
}

void OptimizerDecisionLog::RecordRecovery(RecoveryDecision decision) {
  MutexLock lock(&mu_);
  recoveries_.push_back(std::move(decision));
}

void OptimizerDecisionLog::RecordFusionCandidate(FusionCandidate candidate) {
  MutexLock lock(&mu_);
  fusion_.push_back(std::move(candidate));
}

void OptimizerDecisionLog::RecordFusionDecision(FusionDecision decision) {
  MutexLock lock(&mu_);
  fusion_decisions_.push_back(std::move(decision));
}

void OptimizerDecisionLog::RecordReuseDecision(ReuseDecision decision) {
  MutexLock lock(&mu_);
  reuse_decisions_.push_back(std::move(decision));
}

std::vector<SelectionDecision> OptimizerDecisionLog::Selections() const {
  MutexLock lock(&mu_);
  return selections_;
}

std::vector<CseMergeGroup> OptimizerDecisionLog::CseGroups() const {
  MutexLock lock(&mu_);
  return cse_groups_;
}

std::vector<MaterializationStep> OptimizerDecisionLog::MaterializationLedger()
    const {
  MutexLock lock(&mu_);
  return ledger_;
}

MaterializationSummary OptimizerDecisionLog::Summary() const {
  MutexLock lock(&mu_);
  return summary_;
}

std::vector<RecoveryDecision> OptimizerDecisionLog::Recoveries() const {
  MutexLock lock(&mu_);
  return recoveries_;
}

std::vector<FusionCandidate> OptimizerDecisionLog::FusionCandidates() const {
  MutexLock lock(&mu_);
  return fusion_;
}

std::vector<FusionDecision> OptimizerDecisionLog::FusionDecisions() const {
  MutexLock lock(&mu_);
  return fusion_decisions_;
}

std::vector<ReuseDecision> OptimizerDecisionLog::ReuseDecisions() const {
  MutexLock lock(&mu_);
  return reuse_decisions_;
}

bool OptimizerDecisionLog::Empty() const {
  MutexLock lock(&mu_);
  return selections_.empty() && cse_groups_.empty() && ledger_.empty() &&
         !summary_.recorded && recoveries_.empty();
}

void OptimizerDecisionLog::Clear() {
  MutexLock lock(&mu_);
  selections_.clear();
  cse_groups_.clear();
  ledger_.clear();
  summary_ = MaterializationSummary();
  recoveries_.clear();
  fusion_.clear();
  fusion_decisions_.clear();
  reuse_decisions_.clear();
}

std::string OptimizerDecisionLog::ToString() const {
  MutexLock lock(&mu_);
  std::ostringstream out;
  out << "Optimizer decision log\n";
  out << "  operator selection (" << selections_.size() << " decisions):\n";
  for (const auto& d : selections_) {
    out << "    node " << d.node_id << " [" << d.node_name << "] -> option "
        << d.chosen_option << " (" << HumanSeconds(d.chosen_seconds)
        << ", margin " << JsonNumber(d.margin * 100.0) << "%"
        << (d.from_store ? ", from store" : "") << ")\n";
    for (const auto& o : d.options) {
      out << "      option " << o.option_index << " [" << o.name << "] "
          << HumanSeconds(o.estimated_seconds) << " scratch "
          << HumanBytes(o.scratch_bytes)
          << (o.feasible ? "" : " INFEASIBLE")
          << (o.from_history ? " (history)" : "") << "\n";
    }
  }
  out << "  cse merge groups (" << cse_groups_.size() << "):\n";
  for (const auto& g : cse_groups_) {
    out << "    survivor " << g.survivor << " <-";
    for (int id : g.merged) out << " " << id;
    out << "  [" << g.fingerprint << "]\n";
  }
  out << "  materialization ledger (" << ledger_.size() << " iterations):\n";
  for (const auto& s : ledger_) {
    out << "    iter " << s.iteration << ": budget "
        << HumanBytes(s.budget_before) << ", runtime "
        << HumanSeconds(s.runtime_before) << ", chose "
        << (s.chosen >= 0 ? "node " + std::to_string(s.chosen) : "nothing");
    if (s.chosen >= 0) {
      out << " (benefit " << HumanSeconds(s.benefit_seconds) << ", "
          << HumanBytes(s.remaining_budget) << " left)";
    }
    out << "\n";
    for (const auto& c : s.candidates) {
      out << "      candidate " << c.node_id << ": size "
          << HumanBytes(c.output_bytes)
          << (c.fits ? "" : " OVER BUDGET");
      if (c.evaluated) {
        out << ", benefit " << HumanSeconds(c.benefit_seconds);
      }
      out << "\n";
    }
  }
  if (summary_.recorded) {
    out << "  materialization summary: policy " << summary_.policy
        << ", budget " << HumanBytes(summary_.budget_bytes) << ", runtime "
        << HumanSeconds(summary_.initial_runtime) << " -> "
        << HumanSeconds(summary_.final_runtime) << ", "
        << summary_.cached_nodes << " nodes cached\n";
  }
  // Rendered only on faulted runs so fault-free reports keep their exact
  // pre-fault shape.
  if (!recoveries_.empty()) {
    out << "  fault recoveries (" << recoveries_.size() << "):\n";
    for (const auto& r : recoveries_) {
      out << "    node " << r.node_id << " [" << r.node_name << "] "
          << r.kind << " attempt " << r.attempt << ": "
          << (r.kind == "straggler"
                  ? "slow task"
                  : (r.cache_recovery ? "cache read" : "lineage recompute"))
          << ", wasted " << HumanSeconds(r.wasted_seconds) << ", backoff "
          << HumanSeconds(r.backoff_seconds) << ", recovery "
          << HumanSeconds(r.recovery_seconds) << "\n";
    }
  }
  // Rendered only when the dataflow analysis found chains, so reports from
  // unanalyzed plans keep their exact prior shape.
  if (!fusion_.empty()) {
    out << "  fusibility report (" << fusion_.size() << " chains):\n";
    for (const auto& f : fusion_) {
      out << "    " << f.path << " chain";
      for (size_t i = 0; i < f.nodes.size(); ++i) {
        out << (i == 0 ? " " : " -> ") << f.nodes[i];
        if (i < f.ops.size()) out << " [" << f.ops[i] << "]";
      }
      out << ": " << f.input_shape << " -> " << f.output_shape << "\n";
    }
  }
  // Rendered only when the FusionPass judged candidates, so pre-fusion
  // reports keep their exact prior shape.
  if (!fusion_decisions_.empty()) {
    out << "  fusion decisions (" << fusion_decisions_.size() << "):\n";
    for (const auto& d : fusion_decisions_) {
      out << "    candidate " << d.candidate_index << " [";
      for (size_t i = 0; i < d.nodes.size(); ++i) {
        if (i > 0) out << " -> ";
        out << d.nodes[i];
      }
      out << "]: ";
      if (d.accepted) {
        out << "fused as r" << d.region_id << ", saves "
            << HumanSeconds(d.est_saved_seconds) << " / "
            << HumanBytes(d.est_saved_bytes) << "\n";
      } else {
        out << "rejected (" << d.reason << ")\n";
      }
    }
  }
  // Rendered only when the ReusePass judged catalog matches, so reports
  // from catalog-free compiles keep their exact prior shape.
  if (!reuse_decisions_.empty()) {
    out << "  reuse decisions (" << reuse_decisions_.size() << "):\n";
    for (const auto& d : reuse_decisions_) {
      out << "    node " << d.node_id << " [" << d.node_name << "] ";
      if (d.accepted) {
        out << "reused from " << d.tier << " gen " << d.entry_generation
            << ": load " << HumanSeconds(d.load_seconds) << " vs recompute "
            << HumanSeconds(d.recompute_seconds);
        if (!d.pruned.empty()) {
          out << ", prunes";
          for (int id : d.pruned) out << " " << id;
        }
        out << "\n";
      } else {
        out << "rejected (" << d.reason << ")\n";
      }
    }
  }
  return out.str();
}

std::string OptimizerDecisionLog::ToJson() const {
  MutexLock lock(&mu_);
  std::ostringstream out;
  out << "{\"selections\":[";
  for (size_t i = 0; i < selections_.size(); ++i) {
    const auto& d = selections_[i];
    if (i) out << ",";
    out << "{\"node\":" << d.node_id << ",\"name\":\""
        << JsonEscape(d.node_name) << "\",\"fingerprint\":\""
        << JsonEscape(d.fingerprint) << "\",\"chosen\":" << d.chosen_option
        << ",\"seconds\":" << JsonNumber(d.chosen_seconds)
        << ",\"margin\":" << JsonNumber(d.margin)
        << ",\"from_store\":" << (d.from_store ? "true" : "false")
        << ",\"options\":[";
    for (size_t j = 0; j < d.options.size(); ++j) {
      const auto& o = d.options[j];
      if (j) out << ",";
      out << "{\"index\":" << o.option_index << ",\"name\":\""
          << JsonEscape(o.name) << "\",\"seconds\":"
          << JsonNumber(o.estimated_seconds)
          << ",\"scratch_bytes\":" << JsonNumber(o.scratch_bytes)
          << ",\"feasible\":" << (o.feasible ? "true" : "false")
          << ",\"from_history\":" << (o.from_history ? "true" : "false")
          << ",\"cost\":";
      AppendCostJson(&out, o.cost);
      out << "}";
    }
    out << "]}";
  }
  out << "],\"cse_groups\":[";
  for (size_t i = 0; i < cse_groups_.size(); ++i) {
    const auto& g = cse_groups_[i];
    if (i) out << ",";
    out << "{\"survivor\":" << g.survivor << ",\"fingerprint\":\""
        << JsonEscape(g.fingerprint) << "\",\"merged\":[";
    for (size_t j = 0; j < g.merged.size(); ++j) {
      if (j) out << ",";
      out << g.merged[j];
    }
    out << "]}";
  }
  out << "],\"materialization\":{\"steps\":[";
  for (size_t i = 0; i < ledger_.size(); ++i) {
    const auto& s = ledger_[i];
    if (i) out << ",";
    out << "{\"iteration\":" << s.iteration
        << ",\"budget_before\":" << JsonNumber(s.budget_before)
        << ",\"runtime_before\":" << JsonNumber(s.runtime_before)
        << ",\"chosen\":" << s.chosen
        << ",\"benefit_seconds\":" << JsonNumber(s.benefit_seconds)
        << ",\"remaining_budget\":" << JsonNumber(s.remaining_budget)
        << ",\"candidates\":[";
    for (size_t j = 0; j < s.candidates.size(); ++j) {
      const auto& c = s.candidates[j];
      if (j) out << ",";
      out << "{\"node\":" << c.node_id
          << ",\"output_bytes\":" << JsonNumber(c.output_bytes)
          << ",\"fits\":" << (c.fits ? "true" : "false")
          << ",\"evaluated\":" << (c.evaluated ? "true" : "false")
          << ",\"runtime_if_cached\":" << JsonNumber(c.runtime_if_cached)
          << ",\"benefit_seconds\":" << JsonNumber(c.benefit_seconds) << "}";
    }
    out << "]}";
  }
  out << "]";
  if (summary_.recorded) {
    out << ",\"summary\":{\"policy\":\"" << JsonEscape(summary_.policy)
        << "\",\"budget_bytes\":" << JsonNumber(summary_.budget_bytes)
        << ",\"initial_runtime\":" << JsonNumber(summary_.initial_runtime)
        << ",\"final_runtime\":" << JsonNumber(summary_.final_runtime)
        << ",\"cached_nodes\":" << summary_.cached_nodes << "}";
  }
  out << "}";
  // Faulted runs only: fault-free JSON keeps the pre-fault schema.
  if (!recoveries_.empty()) {
    out << ",\"recoveries\":[";
    for (size_t i = 0; i < recoveries_.size(); ++i) {
      const auto& r = recoveries_[i];
      if (i) out << ",";
      out << "{\"node\":" << r.node_id << ",\"name\":\""
          << JsonEscape(r.node_name) << "\",\"kind\":\""
          << JsonEscape(r.kind) << "\",\"attempt\":" << r.attempt
          << ",\"cache_recovery\":" << (r.cache_recovery ? "true" : "false")
          << ",\"wasted_seconds\":" << JsonNumber(r.wasted_seconds)
          << ",\"backoff_seconds\":" << JsonNumber(r.backoff_seconds)
          << ",\"recovery_seconds\":" << JsonNumber(r.recovery_seconds)
          << "}";
    }
    out << "]";
  }
  // Analyzed plans only: unanalyzed plans keep the pre-analysis schema.
  if (!fusion_.empty()) {
    out << ",\"fusion\":[";
    for (size_t i = 0; i < fusion_.size(); ++i) {
      const auto& f = fusion_[i];
      if (i) out << ",";
      out << "{\"path\":\"" << JsonEscape(f.path) << "\",\"nodes\":[";
      for (size_t j = 0; j < f.nodes.size(); ++j) {
        if (j) out << ",";
        out << f.nodes[j];
      }
      out << "],\"ops\":[";
      for (size_t j = 0; j < f.ops.size(); ++j) {
        if (j) out << ",";
        out << "\"" << JsonEscape(f.ops[j]) << "\"";
      }
      out << "],\"input_shape\":\"" << JsonEscape(f.input_shape)
          << "\",\"output_shape\":\"" << JsonEscape(f.output_shape) << "\"}";
    }
    out << "]";
  }
  // FusionPass runs only: pre-fusion JSON keeps the prior schema.
  if (!fusion_decisions_.empty()) {
    out << ",\"fusion_decisions\":[";
    for (size_t i = 0; i < fusion_decisions_.size(); ++i) {
      const auto& d = fusion_decisions_[i];
      if (i) out << ",";
      out << "{\"candidate\":" << d.candidate_index << ",\"nodes\":[";
      for (size_t j = 0; j < d.nodes.size(); ++j) {
        if (j) out << ",";
        out << d.nodes[j];
      }
      out << "],\"accepted\":" << (d.accepted ? "true" : "false")
          << ",\"region\":" << d.region_id << ",\"fingerprint\":\""
          << JsonEscape(d.fingerprint) << "\",\"est_saved_seconds\":"
          << JsonNumber(d.est_saved_seconds) << ",\"est_saved_bytes\":"
          << JsonNumber(d.est_saved_bytes) << ",\"reason\":\""
          << JsonEscape(d.reason) << "\"}";
    }
    out << "]";
  }
  // ReusePass runs only: catalog-free JSON keeps the prior schema.
  if (!reuse_decisions_.empty()) {
    out << ",\"reuse_decisions\":[";
    for (size_t i = 0; i < reuse_decisions_.size(); ++i) {
      const auto& d = reuse_decisions_[i];
      if (i) out << ",";
      out << "{\"node\":" << d.node_id << ",\"name\":\""
          << JsonEscape(d.node_name) << "\",\"fingerprint\":\""
          << JsonEscape(d.fingerprint) << "\",\"accepted\":"
          << (d.accepted ? "true" : "false") << ",\"tier\":\""
          << JsonEscape(d.tier) << "\",\"entry_bytes\":"
          << JsonNumber(d.entry_bytes) << ",\"entry_records\":"
          << d.entry_records << ",\"entry_generation\":" << d.entry_generation
          << ",\"load_seconds\":" << JsonNumber(d.load_seconds)
          << ",\"recompute_seconds\":" << JsonNumber(d.recompute_seconds)
          << ",\"pruned\":[";
      for (size_t j = 0; j < d.pruned.size(); ++j) {
        if (j) out << ",";
        out << d.pruned[j];
      }
      out << "],\"reason\":\"" << JsonEscape(d.reason) << "\"}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

}  // namespace obs
}  // namespace keystone
