#ifndef KEYSTONE_OBS_PROFILE_STORE_H_
#define KEYSTONE_OBS_PROFILE_STORE_H_

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/data/data_stats.h"
#include "src/sim/cost_profile.h"
#include "src/sim/resources.h"

namespace keystone {
namespace obs {

/// Aggregated observations of one physical operator at one scale bucket:
/// what the cost model predicted vs. what the kernel actually reported
/// (ExecContext::ReportActualCost), summed so averages can be formed.
struct OperatorObservation {
  std::string op;            // physical operator name
  int records_bucket = 0;    // floor(log2(records)); -1 when records == 0
  size_t dim = 0;            // feature dimension of the input
  double count = 0.0;        // number of observations aggregated
  double records_sum = 0.0;  // total records across observations
  CostProfile predicted_sum;
  CostProfile observed_sum;
  double wall_seconds_sum = 0.0;
};

/// One node's result from an execution-subsampling pass, keyed by
/// (node identity, sample size). Holds everything the materialization
/// planner's extrapolation needs, so a stored profile can stand in for
/// re-running the sampling pass on an identical workload.
struct NodeProfileRecord {
  double seconds = 0.0;          // modeled seconds at this sample size
  size_t records = 0;            // records that flowed during the pass
  double bytes_per_record = 0.0;
  size_t full_records = 0;       // full-scale records this node will see
  int chosen_option = -1;        // physical option picked (-1 = none)
};

/// Persistent store of observed per-(operator, scale) cost profiles and
/// per-node sampling profiles. The executor records into it during every
/// profiled run; on later runs the optimizer (a) corrects per-operator cost
/// estimates from observed history and (b) can skip the sampling passes
/// entirely when the store covers the pipeline
/// (OptimizationConfig::reuse_stored_profiles).
class ProfileStore {
 public:
  ProfileStore() = default;
  ProfileStore(const ProfileStore&) = delete;
  ProfileStore& operator=(const ProfileStore&) = delete;

  // --- Per-operator observed costs -------------------------------------

  /// Records one execution: predicted cost model output, kernel-observed
  /// cost, and real wall seconds, at the scale described by `in`.
  void RecordObservation(const std::string& op, const DataStats& in,
                         const CostProfile& predicted,
                         const CostProfile& observed, double wall_seconds);

  /// Average observed cost for `op`, rescaled to `in.num_records` via the
  /// stored per-record costs (coordination rounds are not scaled). Returns
  /// nullopt when the operator has no history.
  std::optional<CostProfile> ObservedFor(const std::string& op,
                                         const DataStats& in) const;

  size_t NumObservations() const;

  /// Every aggregated observation record, ordered by key (deterministic).
  /// This is the persisted predicted-vs-observed history the calibration
  /// report is built from on reuse_stored_profiles runs.
  std::vector<OperatorObservation> Observations() const;

  // --- Per-node sampling profiles --------------------------------------

  /// Stable key for one pipeline node at one sample size. `fingerprint` is
  /// the node's structural identity — operator kind, physical signature, and
  /// input cardinality (PhysicalPlan computes it) — so renaming a node
  /// neither misses nor mismatches stored profiles.
  static std::string NodeKey(const std::string& fingerprint,
                             size_t sample_size);

  void RecordNodeProfile(const std::string& key,
                         const NodeProfileRecord& record);
  std::optional<NodeProfileRecord> NodeProfileFor(const std::string& key)
      const;
  size_t NumNodeProfiles() const;

  // --- Persistence -------------------------------------------------------

  /// Plain-text format, one record per line; returns false on I/O failure.
  bool Save(const std::string& path) const;
  /// Replaces the store contents from `path`; false when unreadable/corrupt.
  bool Load(const std::string& path);

  /// Per-operator predicted-vs-observed error table (the
  /// bench_costmodel_accuracy view of the stored history): seconds under
  /// `r` for the average predicted and observed profile, and the relative
  /// error between them.
  std::string AccuracyReport(const ClusterResourceDescriptor& r) const;

  void Clear();

  /// Process-wide store; ExecContext records into this by default.
  static ProfileStore& Global();

 private:
  static int RecordsBucket(size_t records);

  mutable Mutex mu_{kLockRankProfileStore};
  // Keyed by "<op>|<bucket>|<dim>"; map keeps dumps deterministic.
  std::map<std::string, OperatorObservation> observations_ GUARDED_BY(mu_);
  std::map<std::string, NodeProfileRecord> node_profiles_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace keystone

#endif  // KEYSTONE_OBS_PROFILE_STORE_H_
