#ifndef KEYSTONE_OBS_TRACE_H_
#define KEYSTONE_OBS_TRACE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/sim/cost_profile.h"

namespace keystone {
namespace obs {

/// Execution phases a span can belong to; each phase becomes one timeline
/// row ("thread") in the exported Chrome trace.
enum class TracePhase {
  kProfileSmall,  // execution subsampling, small sample
  kProfileLarge,  // execution subsampling, large sample
  kTrain,         // full-scale training pass
  kEval,          // fitted-pipeline Apply
  kServe,         // PipelineServer request/batch executions
};

/// Number of TracePhase values (Chrome-trace exporters emit one timeline
/// row per phase).
inline constexpr int kNumTracePhases = 5;

const char* TracePhaseName(TracePhase phase);

/// One operator execution as seen by the executor: what ran, on how much
/// data, what the cost model predicted, and what the kernel actually
/// reported (via ExecContext::ReportActualCost).
struct TraceSpan {
  int node_id = -1;
  std::string name;            // logical operator / node name
  std::string physical;        // chosen physical impl ("" = the default)
  std::string kind;            // source / transformer / estimator / ...
  TracePhase phase = TracePhase::kTrain;

  size_t partitions = 0;       // dataset partitions processed
  size_t records_in = 0;       // records flowing into the operator
  double wall_seconds = 0.0;   // real kernel wall time (Timer)
  double virtual_seconds = 0.0;  // virtual cluster time charged

  CostProfile predicted;                 // a-priori cost model output
  std::optional<CostProfile> observed;   // kernel-reported actual cost
  bool used_observed = false;  // the ledger was charged from `observed`

  bool cached = false;          // output chosen for materialization
  double output_bytes = 0.0;    // bytes the output materializes to
  /// Fault-injection accounting (fit/eval under a FaultPlan). A node span
  /// carries the aggregate recovery time its execution paid; dedicated
  /// recovery spans (kind == "recovery") carry one fault event each.
  /// fault_attempts == 0 means no fault plan touched this span, so the
  /// exporters omit these fields entirely and fault-free traces stay
  /// byte-identical to pre-fault builds.
  double recovery_seconds = 0.0;
  int fault_attempts = 0;
  bool cache_recovery = false;  // a retry re-read inputs from cache
  /// True for spans reconstructed from stored profiles rather than a live
  /// execution (reuse_stored_profiles skips the sampling passes; the
  /// optimizer emits synthetic profile-phase spans so reports and metrics
  /// still cover every node).
  bool synthetic = false;
};

/// Thread-safe sink for execution spans plus the export logic: Chrome
/// `chrome://tracing` JSON and a human-readable plan report. The executor
/// and ExecContext feed a recorder; benches dump it via --trace-out.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Record(TraceSpan span);

  /// Caps the span buffer: once `limit` spans are held, further Record
  /// calls are counted in dropped_spans() (and the `trace.dropped_spans`
  /// counter when a registry is attached) instead of growing memory.
  /// 0 (the default) means unbounded. Clear() resets the drop count.
  void set_max_spans(size_t limit);
  size_t max_spans() const;
  size_t dropped_spans() const;

  /// Attaches a registry for the `trace.dropped_spans` counter. Borrowed;
  /// must outlive the recorder (or be detached with nullptr).
  void set_metrics(MetricsRegistry* metrics);

  size_t NumSpans() const;
  std::vector<TraceSpan> Spans() const;
  void Clear();

  /// Chrome trace-event JSON ({"traceEvents": [...]}): spans are laid out
  /// on the virtual-cluster timeline, one row per phase, with predicted and
  /// observed cost profiles attached as args. Load via chrome://tracing or
  /// https://ui.perfetto.dev.
  std::string ChromeTraceJson() const;
  bool WriteChromeTrace(const std::string& path) const;

  /// Human-readable per-span report: what ran, predicted vs observed cost,
  /// and the prediction error where both sides exist.
  std::string PlanReport() const;

  /// Process-wide recorder; ExecContext traces into this by default.
  static TraceRecorder& Global();

 private:
  mutable Mutex mu_{kLockRankTrace};
  std::vector<TraceSpan> spans_ GUARDED_BY(mu_);
  size_t max_spans_ GUARDED_BY(mu_) = 0;  // 0 = unbounded
  size_t dropped_spans_ GUARDED_BY(mu_) = 0;
  /// Cached `trace.dropped_spans` counter (lock-free increment; avoids a
  /// registry lookup on the drop path). Null when no registry is attached.
  Counter* dropped_counter_ GUARDED_BY(mu_) = nullptr;
  /// Per-phase virtual-time cursor: spans within a phase are laid end to
  /// end, which matches the simulator's sequential charging model.
  std::map<TracePhase, double> phase_cursor_ GUARDED_BY(mu_);
  /// Virtual start time of spans_[i].
  std::vector<double> span_start_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace keystone

#endif  // KEYSTONE_OBS_TRACE_H_
