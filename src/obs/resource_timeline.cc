#include "src/obs/resource_timeline.h"

#include <sstream>
#include <utility>

#include "src/common/string_util.h"

namespace keystone {
namespace obs {

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kMemory:
      return "memory";
    case ResourceKind::kDisk:
      return "disk";
    case ResourceKind::kNetwork:
      return "network";
    case ResourceKind::kCoordination:
      return "coordination";
    case ResourceKind::kRecovery:
      return "recovery";
  }
  return "unknown";
}

namespace {
/// Number of ResourceKind values, for busy-seconds accumulators.
constexpr int kNumResourceKinds =
    static_cast<int>(ResourceKind::kRecovery) + 1;
}  // namespace

void ResourceTimeline::Append(const std::string& phase, int node_id,
                              const std::string& name, ResourceKind kind,
                              double seconds) {
  if (seconds <= 0) return;
  const CursorKey key{phase, static_cast<int>(kind)};
  double* cursor = nullptr;
  for (auto& entry : cursors_) {
    if (!(entry.first < key) && !(key < entry.first)) {
      cursor = &entry.second;
      break;
    }
  }
  if (cursor == nullptr) {
    cursors_.emplace_back(key, 0.0);
    cursor = &cursors_.back().second;
  }
  ResourceInterval interval;
  interval.phase = phase;
  interval.node_id = node_id;
  interval.name = name;
  interval.resource = kind;
  interval.start_seconds = *cursor;
  interval.seconds = seconds;
  *cursor += seconds;
  intervals_.push_back(std::move(interval));
}

void ResourceTimeline::RecordNodeCost(const std::string& phase, int node_id,
                                      const std::string& name,
                                      const CostProfile& cost,
                                      const ClusterResourceDescriptor& r) {
  MutexLock lock(&mu_);
  Append(phase, node_id, name, ResourceKind::kCpu,
         cost.flops / (r.gflops_per_node * 1e9));
  Append(phase, node_id, name, ResourceKind::kMemory,
         cost.bytes / (r.mem_bandwidth_gb * 1e9));
  Append(phase, node_id, name, ResourceKind::kNetwork,
         cost.network / (r.network_gb * 1e9));
  Append(phase, node_id, name, ResourceKind::kCoordination,
         cost.rounds * r.round_latency_s);
}

void ResourceTimeline::RecordDiskSeconds(const std::string& phase, int node_id,
                                         const std::string& name,
                                         double seconds) {
  MutexLock lock(&mu_);
  Append(phase, node_id, name, ResourceKind::kDisk, seconds);
}

void ResourceTimeline::RecordRecoverySeconds(const std::string& phase,
                                             int node_id,
                                             const std::string& name,
                                             double seconds) {
  MutexLock lock(&mu_);
  Append(phase, node_id, name, ResourceKind::kRecovery, seconds);
}

void ResourceTimeline::RecordCacheAccess(bool hit) {
  MutexLock lock(&mu_);
  if (hit) {
    ++cache_.hits;
  } else {
    ++cache_.misses;
  }
}

void ResourceTimeline::RecordResidentBytes(double delta_bytes) {
  MutexLock lock(&mu_);
  resident_bytes_ += delta_bytes;
  if (resident_bytes_ > high_water_bytes_) {
    high_water_bytes_ = resident_bytes_;
  }
}

void ResourceTimeline::NoteCacheBudget(double bytes) {
  MutexLock lock(&mu_);
  budget_bytes_ = bytes;
}

std::vector<ResourceInterval> ResourceTimeline::Intervals() const {
  MutexLock lock(&mu_);
  return intervals_;
}

CacheCounters ResourceTimeline::cache_counters() const {
  MutexLock lock(&mu_);
  return cache_;
}

double ResourceTimeline::high_water_bytes() const {
  MutexLock lock(&mu_);
  return high_water_bytes_;
}

double ResourceTimeline::budget_bytes() const {
  MutexLock lock(&mu_);
  return budget_bytes_;
}

double ResourceTimeline::BusySeconds(ResourceKind kind) const {
  MutexLock lock(&mu_);
  double total = 0;
  for (const auto& interval : intervals_) {
    if (interval.resource == kind) total += interval.seconds;
  }
  return total;
}

void ResourceTimeline::Clear() {
  MutexLock lock(&mu_);
  intervals_.clear();
  cursors_.clear();
  cache_ = CacheCounters();
  resident_bytes_ = 0;
  high_water_bytes_ = 0;
  budget_bytes_ = 0;
}

std::string ResourceTimeline::ToString() const {
  MutexLock lock(&mu_);
  std::ostringstream out;
  out << "Resource timeline (" << intervals_.size() << " intervals)\n";
  double busy[kNumResourceKinds] = {};
  for (const auto& interval : intervals_) {
    busy[static_cast<int>(interval.resource)] += interval.seconds;
  }
  for (int k = 0; k < kNumResourceKinds; ++k) {
    if (busy[k] <= 0) continue;
    out << "  " << ResourceKindName(static_cast<ResourceKind>(k))
        << " busy: " << HumanSeconds(busy[k]) << "\n";
  }
  out << "  cache: " << cache_.hits << " hits / " << cache_.misses
      << " misses, high water " << HumanBytes(high_water_bytes_)
      << " of budget " << HumanBytes(budget_bytes_) << "\n";
  return out.str();
}

std::string ResourceTimeline::ToJson() const {
  MutexLock lock(&mu_);
  std::ostringstream out;
  double busy[kNumResourceKinds] = {};
  for (const auto& interval : intervals_) {
    busy[static_cast<int>(interval.resource)] += interval.seconds;
  }
  out << "{\"budget_bytes\":" << JsonNumber(budget_bytes_)
      << ",\"high_water_bytes\":" << JsonNumber(high_water_bytes_)
      << ",\"cache\":{\"hits\":" << cache_.hits
      << ",\"misses\":" << cache_.misses << "},\"busy_seconds\":{";
  for (int k = 0; k < kNumResourceKinds; ++k) {
    // The original five kinds are always present (stable schema); the
    // recovery key appears only on faulted runs so fault-free JSON stays
    // byte-identical to pre-fault output.
    if (static_cast<ResourceKind>(k) == ResourceKind::kRecovery &&
        busy[k] <= 0) {
      continue;
    }
    if (k) out << ",";
    out << "\"" << ResourceKindName(static_cast<ResourceKind>(k))
        << "\":" << JsonNumber(busy[k]);
  }
  out << "},\"intervals\":[";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    const auto& interval = intervals_[i];
    if (i) out << ",";
    out << "{\"phase\":\"" << JsonEscape(interval.phase)
        << "\",\"node\":" << interval.node_id << ",\"name\":\""
        << JsonEscape(interval.name) << "\",\"resource\":\""
        << ResourceKindName(interval.resource)
        << "\",\"start\":" << JsonNumber(interval.start_seconds)
        << ",\"seconds\":" << JsonNumber(interval.seconds) << "}";
  }
  out << "]}";
  return out.str();
}

ResourceTimeline& ResourceTimeline::Global() {
  static ResourceTimeline* instance = new ResourceTimeline();  // NOLINT
  return *instance;
}

}  // namespace obs
}  // namespace keystone
