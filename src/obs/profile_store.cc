#include "src/obs/profile_store.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

namespace keystone {
namespace obs {

// Keys and operator names are stored in a whitespace-separated text format,
// so spaces/percent signs inside names are %-escaped via the shared
// EscapeToken/UnescapeToken helpers (src/common/string_util), which the
// artifact-catalog manifest format also uses. UnescapeToken fails softly on
// malformed escapes, so a corrupt or truncated file makes Load return false
// instead of throwing out of std::stoi.

int ProfileStore::RecordsBucket(size_t records) {
  if (records == 0) return -1;
  return static_cast<int>(std::floor(std::log2(
      static_cast<double>(records))));
}

void ProfileStore::RecordObservation(const std::string& op,
                                     const DataStats& in,
                                     const CostProfile& predicted,
                                     const CostProfile& observed,
                                     double wall_seconds) {
  const int bucket = RecordsBucket(in.num_records);
  std::ostringstream key;
  key << EscapeToken(op) << "|" << bucket << "|" << in.dim;
  MutexLock lock(&mu_);
  OperatorObservation& obs = observations_[key.str()];
  if (obs.count == 0.0) {
    obs.op = op;
    obs.records_bucket = bucket;
    obs.dim = in.dim;
  }
  obs.count += 1.0;
  obs.records_sum += static_cast<double>(in.num_records);
  obs.predicted_sum += predicted;
  obs.observed_sum += observed;
  obs.wall_seconds_sum += wall_seconds;
}

std::optional<CostProfile> ProfileStore::ObservedFor(
    const std::string& op, const DataStats& in) const {
  MutexLock lock(&mu_);
  // Pool scale buckets recorded for this operator: the per-record costs are
  // what transfers across scales. Per-record cost depends strongly on the
  // feature dimension, though — observations are keyed by op|bucket|dim for
  // exactly that reason — so prefer cells whose dim matches the query and
  // fall back to pooling across all dims only when no matching-dim history
  // exists (e.g. the first run at a new feature width).
  double records = 0.0, count = 0.0;
  CostProfile observed;
  double pooled_records = 0.0, pooled_count = 0.0;
  CostProfile pooled_observed;
  for (const auto& [_, obs] : observations_) {
    if (obs.op != op) continue;
    pooled_records += obs.records_sum;
    pooled_count += obs.count;
    pooled_observed += obs.observed_sum;
    if (obs.dim != in.dim) continue;
    records += obs.records_sum;
    count += obs.count;
    observed += obs.observed_sum;
  }
  if (count == 0.0 || records <= 0.0) {
    records = pooled_records;
    count = pooled_count;
    observed = pooled_observed;
  }
  if (count == 0.0 || records <= 0.0) return std::nullopt;
  // Linear terms scale per record; coordination rounds reflect the
  // operator's iteration structure and are carried over as an average.
  CostProfile out = observed * (static_cast<double>(in.num_records) /
                                records);
  out.rounds = observed.rounds / count;
  return out;
}

size_t ProfileStore::NumObservations() const {
  MutexLock lock(&mu_);
  return observations_.size();
}

std::vector<OperatorObservation> ProfileStore::Observations() const {
  MutexLock lock(&mu_);
  std::vector<OperatorObservation> out;
  out.reserve(observations_.size());
  for (const auto& [key, observation] : observations_) {
    out.push_back(observation);
  }
  return out;
}

std::string ProfileStore::NodeKey(const std::string& fingerprint,
                                  size_t sample_size) {
  std::ostringstream os;
  os << EscapeToken(fingerprint) << "@" << sample_size;
  return os.str();
}

void ProfileStore::RecordNodeProfile(const std::string& key,
                                     const NodeProfileRecord& record) {
  MutexLock lock(&mu_);
  node_profiles_[key] = record;
}

std::optional<NodeProfileRecord> ProfileStore::NodeProfileFor(
    const std::string& key) const {
  MutexLock lock(&mu_);
  auto it = node_profiles_.find(key);
  if (it == node_profiles_.end()) return std::nullopt;
  return it->second;
}

size_t ProfileStore::NumNodeProfiles() const {
  MutexLock lock(&mu_);
  return node_profiles_.size();
}

bool ProfileStore::Save(const std::string& path) const {
  // Serialize to memory first, then land the bytes with an atomic
  // temp-file-plus-rename: a crash mid-save can no longer leave a truncated
  // file in place that poisons the next run's Load.
  std::ostringstream out;
  out << "# keystone profile store v1\n";
  MutexLock lock(&mu_);
  out.precision(17);
  for (const auto& [_, o] : observations_) {
    out << "obs " << EscapeToken(o.op) << " " << o.records_bucket << " "
        << o.dim << " " << o.count << " " << o.records_sum << " "
        << o.predicted_sum.flops << " " << o.predicted_sum.bytes << " "
        << o.predicted_sum.network << " " << o.predicted_sum.rounds << " "
        << o.observed_sum.flops << " " << o.observed_sum.bytes << " "
        << o.observed_sum.network << " " << o.observed_sum.rounds << " "
        << o.wall_seconds_sum << "\n";
  }
  for (const auto& [key, n] : node_profiles_) {
    out << "node " << key << " " << n.seconds << " " << n.records << " "
        << n.bytes_per_record << " " << n.full_records << " "
        << n.chosen_option << "\n";
  }
  return WriteFileAtomic(path, out.str());
}

bool ProfileStore::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::map<std::string, OperatorObservation> observations;
  std::map<std::string, NodeProfileRecord> node_profiles;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "obs") {
      OperatorObservation o;
      std::string op;
      is >> op >> o.records_bucket >> o.dim >> o.count >> o.records_sum >>
          o.predicted_sum.flops >> o.predicted_sum.bytes >>
          o.predicted_sum.network >> o.predicted_sum.rounds >>
          o.observed_sum.flops >> o.observed_sum.bytes >>
          o.observed_sum.network >> o.observed_sum.rounds >>
          o.wall_seconds_sum;
      if (!is) return false;
      auto unescaped = UnescapeToken(op);
      if (!unescaped) return false;  // malformed escape: corrupt file
      o.op = *unescaped;
      std::ostringstream key;
      key << op << "|" << o.records_bucket << "|" << o.dim;
      observations[key.str()] = o;
    } else if (tag == "node") {
      std::string key;
      NodeProfileRecord n;
      is >> key >> n.seconds >> n.records >> n.bytes_per_record >>
          n.full_records >> n.chosen_option;
      if (!is) return false;
      node_profiles[key] = n;
    } else {
      return false;  // unknown record type: treat as corrupt
    }
  }
  MutexLock lock(&mu_);
  observations_ = std::move(observations);
  node_profiles_ = std::move(node_profiles);
  return true;
}

std::string ProfileStore::AccuracyReport(
    const ClusterResourceDescriptor& r) const {
  MutexLock lock(&mu_);
  std::ostringstream os;
  os << "Cost-model accuracy from observed history ("
     << observations_.size() << " operator/scale cells)\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  %-28s %8s %10s %12s %12s %9s\n", "op",
                "obs", "records", "pred (s)", "obs (s)", "err");
  os << buf;
  for (const auto& [_, o] : observations_) {
    if (o.count <= 0.0) continue;
    const double pred_s = r.SecondsFor(o.predicted_sum * (1.0 / o.count));
    const double obs_s = r.SecondsFor(o.observed_sum * (1.0 / o.count));
    const double err =
        obs_s > 0.0 ? (pred_s - obs_s) / obs_s : (pred_s > 0.0 ? 1.0 : 0.0);
    std::snprintf(buf, sizeof(buf),
                  "  %-28s %8.0f %10.0f %12.4g %12.4g %+8.1f%%\n",
                  o.op.c_str(), o.count, o.records_sum / o.count, pred_s,
                  obs_s, 100.0 * err);
    os << buf;
  }
  return os.str();
}

void ProfileStore::Clear() {
  MutexLock lock(&mu_);
  observations_.clear();
  node_profiles_.clear();
}

ProfileStore& ProfileStore::Global() {
  static ProfileStore* store = new ProfileStore();  // NOLINT: leaked singleton
  return *store;
}

}  // namespace obs
}  // namespace keystone
