#ifndef KEYSTONE_OBS_CALIBRATION_H_
#define KEYSTONE_OBS_CALIBRATION_H_

// Cost-model calibration: estimated vs. observed cost, per node and per
// operator kind, per resource dimension. Residuals are symmetric relative
// errors, (observed - predicted) / max(|predicted|, |observed|, eps), so
// they are bounded in [-1, 1] and always finite — a residual of +0.5 means
// the kernel reported twice the predicted cost. Reports are built from live
// trace spans or from the ProfileStore's persisted observation history (the
// latter is what gives reuse_stored_profiles runs calibration coverage).

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/profile_store.h"
#include "src/obs/trace.h"
#include "src/sim/resources.h"

namespace keystone {
namespace obs {

/// Mean predicted/observed values and residuals of one resource dimension.
struct ResourceResidual {
  double predicted_mean = 0;
  double observed_mean = 0;
  double bias = 0;          // mean signed relative residual
  double mean_abs_rel = 0;  // mean |relative residual|
};

/// Calibration of one node (node_id >= 0) or one operator kind aggregated
/// across nodes (node_id == -1).
struct CalibrationEntry {
  int node_id = -1;
  std::string op;  // physical operator name (or node name for sources)
  double count = 0;
  ResourceResidual flops;
  ResourceResidual bytes;
  ResourceResidual network;
  ResourceResidual rounds;
  ResourceResidual seconds;  // under the cluster descriptor the report used
};

struct CalibrationReport {
  std::vector<CalibrationEntry> per_node;  // sorted by node id
  std::vector<CalibrationEntry> per_op;    // sorted by operator name
  double samples = 0;                      // spans/observations consumed
  double overall_bias_seconds = 0;
  double mean_abs_residual_seconds = 0;

  /// True when every residual in the report is finite (the CI --strict
  /// invariant; symmetric residuals make this hold by construction).
  bool AllFinite() const;

  std::string ToString() const;
  std::string ToJson() const;
};

/// Builds calibration from live trace spans: every non-synthetic span with
/// an observed cost contributes one sample. Seconds residuals use `r`.
CalibrationReport BuildCalibrationFromSpans(const std::vector<TraceSpan>& spans,
                                            const ClusterResourceDescriptor& r);

/// Builds calibration from the store's persisted per-operator observation
/// history (predicted/observed sums). Node-level entries are unavailable
/// here, so per_node stays empty.
CalibrationReport BuildCalibrationFromStore(const ProfileStore& store,
                                            const ClusterResourceDescriptor& r);

/// Publishes the report's aggregates into `metrics` as calibration.* gauges
/// (gauges, not counters: rebuilding a report must not double-count).
void RecordCalibration(const CalibrationReport& report,
                       MetricsRegistry* metrics);

}  // namespace obs
}  // namespace keystone

#endif  // KEYSTONE_OBS_CALIBRATION_H_
