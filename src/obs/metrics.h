#ifndef KEYSTONE_OBS_METRICS_H_
#define KEYSTONE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace keystone {
namespace obs {

/// Monotonically increasing counter. Updates are lock-free so operators
/// running on the thread pool can increment concurrently.
class Counter {
 public:
  void Increment(double delta = 1.0) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-written-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale histogram over positive values with lock-free recording:
/// fixed log buckets at kBucketsPerDecade resolution spanning 1e-9..1e+9
/// (plus open-ended underflow/overflow buckets), tracking count/sum/min/max
/// alongside the tallies. Fine enough that interpolated quantiles are
/// accurate to ~33% relative error worst case (one bucket width), which is
/// what tail-latency reporting (p99/p999) needs without storing samples.
class Histogram {
 public:
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kMinExp = -9;  // first inner bucket starts at 1e-9
  static constexpr int kMaxExp = 9;   // overflow bucket starts at 1e+9
  /// Underflow + (kMaxExp - kMinExp) decades + overflow.
  static constexpr int kNumBuckets =
      (kMaxExp - kMinExp) * kBucketsPerDecade + 2;

  void Record(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
  }
  double Min() const;
  double Max() const;

  /// Interpolated quantile (q in [0, 1]) from the bucket tallies:
  /// geometric interpolation inside the covering bucket, clamped to the
  /// observed [Min, Max]. Returns 0 for an empty histogram. Under
  /// concurrent recording the result is a consistent-enough snapshot (each
  /// bucket is read once); exact readers quiesce writers first.
  double Quantile(double q) const;

  /// Bucket tallies. Bucket 0 catches values < 1e-9 (including zero and
  /// negatives), the last bucket values >= 1e+9; inner bucket i covers
  /// [BucketLowerBound(i), BucketUpperBound(i)).
  std::array<uint64_t, kNumBuckets> Buckets() const;

  /// Value range of bucket i (0 and +inf for the open-ended ends).
  static double BucketLowerBound(int bucket);
  static double BucketUpperBound(int bucket);

  /// Index of the bucket covering `value` (shared with HistogramBuckets,
  /// which reuses this geometry for mergeable window tallies).
  static int BucketFor(double value);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Extrema start at the opposite infinity so the first Record() wins the
  // CAS race without any seeding step.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Plain (non-atomic) bucket tallies sharing Histogram's log-bucket
/// geometry. Unlike Histogram this is a value type built for *merging*:
/// the telemetry layer keeps one per time window and computes sliding
/// quantiles by summing the bucket arrays of adjacent windows, which is
/// exact (bucket tallies are additive) where merging interpolated
/// quantiles would not be. Not thread-safe; windowed recording happens on
/// the serial event loop.
struct HistogramBuckets {
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
  uint64_t count = 0;
  double sum = 0.0;

  void Record(double value);
  void Merge(const HistogramBuckets& other);
  void Reset();

  bool Empty() const { return count == 0; }
  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Observed extrema (0 when empty, matching Histogram's convention).
  double Min() const { return count == 0 ? 0.0 : min_; }
  double Max() const { return count == 0 ? 0.0 : max_; }

  /// Interpolated quantile over the tallies; same semantics as
  /// Histogram::Quantile. Returns 0 when empty.
  double Quantile(double q) const;

 private:
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

namespace internal {
/// Shared quantile walk used by Histogram and HistogramBuckets: geometric
/// interpolation inside the covering log bucket, with the interpolation
/// anchored at the observed extrema in the first/last occupied bucket.
/// Without the anchoring, a single sample in the last occupied bucket made
/// p999 extrapolate toward the bucket's upper bound — a value that was
/// never observed.
double QuantileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets>& buckets,
    double observed_min, double observed_max, double q);
}  // namespace internal

/// One metric's exported state.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;      // counter/gauge value; histogram sum
  uint64_t count = 0;      // histogram observation count
  double min = 0.0;
  double max = 0.0;
  // Interpolated quantiles (histograms only).
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Named registry of counters/gauges/histograms. Lookup is lock-striped so
/// thread-pool workers registering or fetching metrics by name contend on
/// independent shards; the returned pointers are stable for the registry's
/// lifetime, so hot paths should look up once and cache the pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Convenience shorthands for one-shot updates (name lookup each call).
  void Increment(const std::string& name, double delta = 1.0) {
    GetCounter(name)->Increment(delta);
  }
  void Set(const std::string& name, double value) { GetGauge(name)->Set(value); }
  void Observe(const std::string& name, double value) {
    GetHistogram(name)->Record(value);
  }

  /// All metrics, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Human-readable dump (one metric per line).
  std::string ToString() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

  /// Drops every registered metric (invalidates outstanding pointers).
  void Clear();

  /// Process-wide registry; ExecContext instruments into this by default.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard {
    /// Stripe locks are leaves in the lock order: any subsystem may update
    /// a metric while holding its own lock, so nothing may be acquired
    /// while a stripe is held (see LockRank).
    mutable Mutex mu{kLockRankMetricsShard};
    std::unordered_map<std::string, Entry> metrics GUARDED_BY(mu);
  };
  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(const std::string& name);
  Entry& GetEntry(const std::string& name, MetricSnapshot::Kind kind);

  std::array<Shard, kNumShards> shards_;
};

}  // namespace obs
}  // namespace keystone

#endif  // KEYSTONE_OBS_METRICS_H_
