#ifndef KEYSTONE_OBS_METRICS_H_
#define KEYSTONE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace keystone {
namespace obs {

/// Monotonically increasing counter. Updates are lock-free so operators
/// running on the thread pool can increment concurrently.
class Counter {
 public:
  void Increment(double delta = 1.0) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-written-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale histogram over positive values (decade buckets from 1e-9 to
/// 1e+9) with lock-free recording; tracks count/sum/min/max alongside the
/// bucket tallies.
class Histogram {
 public:
  static constexpr int kNumBuckets = 20;  // [<1e-9, 1e-9..1e-8, ..., >=1e9]

  void Record(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
  }
  double Min() const;
  double Max() const;

  /// Bucket tallies; bucket i covers [1e(i-10), 1e(i-9)) with the first and
  /// last buckets open-ended.
  std::array<uint64_t, kNumBuckets> Buckets() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Extrema start at the opposite infinity so the first Record() wins the
  // CAS race without any seeding step.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// One metric's exported state.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;      // counter/gauge value; histogram sum
  uint64_t count = 0;      // histogram observation count
  double min = 0.0;
  double max = 0.0;
};

/// Named registry of counters/gauges/histograms. Lookup is lock-striped so
/// thread-pool workers registering or fetching metrics by name contend on
/// independent shards; the returned pointers are stable for the registry's
/// lifetime, so hot paths should look up once and cache the pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Convenience shorthands for one-shot updates (name lookup each call).
  void Increment(const std::string& name, double delta = 1.0) {
    GetCounter(name)->Increment(delta);
  }
  void Set(const std::string& name, double value) { GetGauge(name)->Set(value); }
  void Observe(const std::string& name, double value) {
    GetHistogram(name)->Record(value);
  }

  /// All metrics, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Human-readable dump (one metric per line).
  std::string ToString() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

  /// Drops every registered metric (invalidates outstanding pointers).
  void Clear();

  /// Process-wide registry; ExecContext instruments into this by default.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard {
    /// Stripe locks are leaves in the lock order: any subsystem may update
    /// a metric while holding its own lock, so nothing may be acquired
    /// while a stripe is held (see LockRank).
    mutable Mutex mu{kLockRankMetricsShard};
    std::unordered_map<std::string, Entry> metrics GUARDED_BY(mu);
  };
  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(const std::string& name);
  Entry& GetEntry(const std::string& name, MetricSnapshot::Kind kind);

  std::array<Shard, kNumShards> shards_;
};

}  // namespace obs
}  // namespace keystone

#endif  // KEYSTONE_OBS_METRICS_H_
