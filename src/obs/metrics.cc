#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace keystone {
namespace obs {

namespace {

/// Atomic min/max update via CAS (std::atomic<double> has no fetch_min).
template <typename Cmp>
void AtomicExtreme(std::atomic<double>* slot, double value, Cmp better) {
  double cur = slot->load(std::memory_order_relaxed);
  while (better(value, cur) &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>* slot, double delta) {
  double cur = slot->load(std::memory_order_relaxed);
  while (!slot->compare_exchange_weak(cur, cur + delta,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicExtreme(&min_, value, std::less<double>());
  AtomicExtreme(&max_, value, std::greater<double>());

  int bucket = 0;
  if (value > 0.0) {
    // Decade buckets: bucket 1 starts at 1e-9, bucket kNumBuckets-1 catches
    // everything >= 1e9.
    bucket = static_cast<int>(std::floor(std::log10(value))) + 10;
    bucket = std::clamp(bucket, 0, kNumBuckets - 1);
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::Buckets() const {
  std::array<uint64_t, kNumBuckets> out;
  for (int i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kNumShards];
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  MetricSnapshot::Kind kind) {
  Shard& shard = ShardFor(name);
  MutexLock lock(&shard.mu);
  auto it = shard.metrics.find(name);
  if (it == shard.metrics.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case MetricSnapshot::Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricSnapshot::Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricSnapshot::Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = shard.metrics.emplace(name, std::move(entry)).first;
  }
  KS_CHECK(it->second.kind == kind)
      << "metric '" << name << "' already registered with a different type";
  return it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return GetEntry(name, MetricSnapshot::Kind::kCounter).counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return GetEntry(name, MetricSnapshot::Kind::kGauge).gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetEntry(name, MetricSnapshot::Kind::kHistogram).histogram.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (const auto& [name, entry] : shard.metrics) {
      MetricSnapshot snap;
      snap.name = name;
      snap.kind = entry.kind;
      switch (entry.kind) {
        case MetricSnapshot::Kind::kCounter:
          snap.value = entry.counter->Value();
          break;
        case MetricSnapshot::Kind::kGauge:
          snap.value = entry.gauge->Value();
          break;
        case MetricSnapshot::Kind::kHistogram:
          snap.value = entry.histogram->Sum();
          snap.count = entry.histogram->Count();
          snap.min = entry.histogram->Min();
          snap.max = entry.histogram->Max();
          break;
      }
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::ToString() const {
  std::ostringstream os;
  for (const MetricSnapshot& m : Snapshot()) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << m.name << " (counter) = " << m.value << "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        os << m.name << " (gauge) = " << m.value << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram:
        os << m.name << " (histogram) count=" << m.count << " sum=" << m.value
           << " min=" << m.min << " max=" << m.max << "\n";
        break;
    }
  }
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream counters, gauges, histograms;
  bool first_c = true, first_g = true, first_h = true;
  for (const MetricSnapshot& m : Snapshot()) {
    // Metric names flow in from operator names, so they must be escaped,
    // and values can be non-finite (JsonNumber degrades those to 0) — raw
    // streaming of either corrupts the document.
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        counters << (first_c ? "" : ",") << "\"" << JsonEscape(m.name)
                 << "\":" << JsonNumber(m.value);
        first_c = false;
        break;
      case MetricSnapshot::Kind::kGauge:
        gauges << (first_g ? "" : ",") << "\"" << JsonEscape(m.name)
               << "\":" << JsonNumber(m.value);
        first_g = false;
        break;
      case MetricSnapshot::Kind::kHistogram:
        histograms << (first_h ? "" : ",") << "\"" << JsonEscape(m.name)
                   << "\":{\"count\":" << m.count
                   << ",\"sum\":" << JsonNumber(m.value)
                   << ",\"min\":" << JsonNumber(m.min)
                   << ",\"max\":" << JsonNumber(m.max) << "}";
        first_h = false;
        break;
    }
  }
  std::ostringstream os;
  os << "{\"counters\":{" << counters.str() << "},\"gauges\":{"
     << gauges.str() << "},\"histograms\":{" << histograms.str() << "}}";
  return os.str();
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

void MetricsRegistry::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    shard.metrics.clear();
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // NOLINT: leaked singleton
  return *registry;
}

}  // namespace obs
}  // namespace keystone
