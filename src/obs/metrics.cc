#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace keystone {
namespace obs {

namespace {

/// Atomic min/max update via CAS (std::atomic<double> has no fetch_min).
template <typename Cmp>
void AtomicExtreme(std::atomic<double>* slot, double value, Cmp better) {
  double cur = slot->load(std::memory_order_relaxed);
  while (better(value, cur) &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>* slot, double delta) {
  double cur = slot->load(std::memory_order_relaxed);
  while (!slot->compare_exchange_weak(cur, cur + delta,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::BucketFor(double value) {
  // NaN and values below the first inner bucket (including zero and
  // negatives) land in the underflow bucket.
  if (!(value >= std::pow(10.0, kMinExp))) return 0;
  if (value >= std::pow(10.0, kMaxExp)) return kNumBuckets - 1;
  const int idx = 1 +
                  static_cast<int>(std::floor(
                      std::log10(value) * kBucketsPerDecade)) -
                  kMinExp * kBucketsPerDecade;
  // log10 rounding at bucket boundaries can land one off; clamp to the
  // inner range rather than spilling into the open-ended ends.
  return std::clamp(idx, 1, kNumBuckets - 2);
}

double Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0.0;
  return std::pow(10.0, kMinExp + static_cast<double>(bucket - 1) /
                            kBucketsPerDecade);
}

double Histogram::BucketUpperBound(int bucket) {
  if (bucket >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::pow(10.0,
                  kMinExp + static_cast<double>(bucket) / kBucketsPerDecade);
}

void Histogram::Record(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicExtreme(&min_, value, std::less<double>());
  AtomicExtreme(&max_, value, std::greater<double>());
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
}

namespace internal {

double QuantileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets>& buckets,
    double observed_min, double observed_max, double q) {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = 0;
  int first = -1, last = -1;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    total += buckets[i];
    if (first < 0) first = i;
    last = i;
  }
  if (total == 0) return 0.0;

  // The observation with (1-based) rank ceil(q * total), found by walking
  // the cumulative tallies; rank 0 degenerates to the minimum.
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (int i = first; i <= last; ++i) {
    if (buckets[i] == 0) continue;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    double value;
    if (i == 0) {
      value = observed_min;
    } else if (i == Histogram::kNumBuckets - 1) {
      value = observed_max;
    } else {
      // Geometric interpolation inside the covering log bucket. In the
      // first/last occupied bucket the bucket bounds overstate the actual
      // value range (the extrema sit somewhere inside the bucket), so the
      // interpolation anchors there — otherwise p999 with one sample in
      // the tail bucket extrapolates toward the bucket's upper bound, a
      // value never observed.
      double lo = Histogram::BucketLowerBound(i);
      double hi = Histogram::BucketUpperBound(i);
      if (i == first) lo = std::max(lo, observed_min);
      if (i == last) hi = std::min(hi, observed_max);
      if (hi < lo) hi = lo;
      const uint64_t before = cumulative - buckets[i];
      const double fraction =
          (target - static_cast<double>(before)) /
          static_cast<double>(buckets[i]);
      value = lo <= 0.0
                  ? lo
                  : lo * std::pow(hi / lo, std::clamp(fraction, 0.0, 1.0));
    }
    return std::clamp(value, observed_min, observed_max);
  }
  return observed_max;
}

}  // namespace internal

double Histogram::Quantile(double q) const {
  return internal::QuantileFromBuckets(Buckets(), Min(), Max(), q);
}

void HistogramBuckets::Record(double value) {
  buckets[Histogram::BucketFor(value)] += 1;
  count += 1;
  sum += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void HistogramBuckets::Merge(const HistogramBuckets& other) {
  if (other.count == 0) return;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void HistogramBuckets::Reset() { *this = HistogramBuckets(); }

double HistogramBuckets::Quantile(double q) const {
  return internal::QuantileFromBuckets(buckets, Min(), Max(), q);
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::Buckets() const {
  std::array<uint64_t, kNumBuckets> out;
  for (int i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kNumShards];
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  MetricSnapshot::Kind kind) {
  Shard& shard = ShardFor(name);
  MutexLock lock(&shard.mu);
  auto it = shard.metrics.find(name);
  if (it == shard.metrics.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case MetricSnapshot::Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricSnapshot::Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricSnapshot::Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = shard.metrics.emplace(name, std::move(entry)).first;
  }
  KS_CHECK(it->second.kind == kind)
      << "metric '" << name << "' already registered with a different type";
  return it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return GetEntry(name, MetricSnapshot::Kind::kCounter).counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return GetEntry(name, MetricSnapshot::Kind::kGauge).gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetEntry(name, MetricSnapshot::Kind::kHistogram).histogram.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (const auto& [name, entry] : shard.metrics) {
      MetricSnapshot snap;
      snap.name = name;
      snap.kind = entry.kind;
      switch (entry.kind) {
        case MetricSnapshot::Kind::kCounter:
          snap.value = entry.counter->Value();
          break;
        case MetricSnapshot::Kind::kGauge:
          snap.value = entry.gauge->Value();
          break;
        case MetricSnapshot::Kind::kHistogram:
          snap.value = entry.histogram->Sum();
          snap.count = entry.histogram->Count();
          snap.min = entry.histogram->Min();
          snap.max = entry.histogram->Max();
          snap.p50 = entry.histogram->Quantile(0.50);
          snap.p90 = entry.histogram->Quantile(0.90);
          snap.p99 = entry.histogram->Quantile(0.99);
          snap.p999 = entry.histogram->Quantile(0.999);
          break;
      }
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::ToString() const {
  std::ostringstream os;
  for (const MetricSnapshot& m : Snapshot()) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << m.name << " (counter) = " << m.value << "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        os << m.name << " (gauge) = " << m.value << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram:
        os << m.name << " (histogram) count=" << m.count << " sum=" << m.value
           << " min=" << m.min << " max=" << m.max << " p50=" << m.p50
           << " p99=" << m.p99 << " p999=" << m.p999 << "\n";
        break;
    }
  }
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream counters, gauges, histograms;
  bool first_c = true, first_g = true, first_h = true;
  for (const MetricSnapshot& m : Snapshot()) {
    // Metric names flow in from operator names, so they must be escaped,
    // and values can be non-finite (JsonNumber degrades those to 0) — raw
    // streaming of either corrupts the document.
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        counters << (first_c ? "" : ",") << "\"" << JsonEscape(m.name)
                 << "\":" << JsonNumber(m.value);
        first_c = false;
        break;
      case MetricSnapshot::Kind::kGauge:
        gauges << (first_g ? "" : ",") << "\"" << JsonEscape(m.name)
               << "\":" << JsonNumber(m.value);
        first_g = false;
        break;
      case MetricSnapshot::Kind::kHistogram:
        histograms << (first_h ? "" : ",") << "\"" << JsonEscape(m.name)
                   << "\":{\"count\":" << m.count
                   << ",\"sum\":" << JsonNumber(m.value)
                   << ",\"min\":" << JsonNumber(m.min)
                   << ",\"max\":" << JsonNumber(m.max)
                   << ",\"p50\":" << JsonNumber(m.p50)
                   << ",\"p90\":" << JsonNumber(m.p90)
                   << ",\"p99\":" << JsonNumber(m.p99)
                   << ",\"p999\":" << JsonNumber(m.p999) << "}";
        first_h = false;
        break;
    }
  }
  std::ostringstream os;
  os << "{\"counters\":{" << counters.str() << "},\"gauges\":{"
     << gauges.str() << "},\"histograms\":{" << histograms.str() << "}}";
  return os.str();
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

void MetricsRegistry::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    shard.metrics.clear();
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // NOLINT: leaked singleton
  return *registry;
}

}  // namespace obs
}  // namespace keystone
