#ifndef KEYSTONE_ANALYSIS_DIAGNOSTICS_H_
#define KEYSTONE_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

namespace keystone {
namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace analysis {

/// Severity policy of the static-analysis layer:
///   kError   — the plan violates a structural invariant and executing it
///              would crash or silently compute the wrong thing; validation
///              wired behind OptimizationConfig::validate_plans fails fast.
///   kWarning — the plan executes correctly but is suspicious or wasteful
///              (dead nodes, missed CSE); reported, never fatal.
///   kInfo    — neutral observations surfaced for report readers.
enum class Severity {
  kInfo,
  kWarning,
  kError,
};

const char* SeverityName(Severity severity);

/// One finding from a static-analysis pass over a pipeline plan.
struct Diagnostic {
  Severity severity = Severity::kError;
  /// Stable rule identifier, e.g. "arity.transformer" (see the catalogue
  /// in plan_validator.h). Tests and tooling match on this, not on text.
  std::string rule;
  /// Offending node id, or -1 for whole-plan findings.
  int node = -1;
  std::string message;

  std::string ToString() const;
};

/// The result of validating one plan: every diagnostic, in rule-evaluation
/// order, plus aggregate views.
class ValidationReport {
 public:
  void Add(Severity severity, std::string rule, int node,
           std::string message);
  void Merge(ValidationReport other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  int CountOf(Severity severity) const;
  int errors() const { return CountOf(Severity::kError); }
  int warnings() const { return CountOf(Severity::kWarning); }

  /// No errors (warnings and infos allowed).
  bool ok() const { return errors() == 0; }
  /// No diagnostics of any severity.
  bool clean() const { return diagnostics_.empty(); }

  bool HasRule(const std::string& rule) const;
  /// First diagnostic with `rule`, or nullptr.
  const Diagnostic* FindRule(const std::string& rule) const;

  /// One line per diagnostic plus a summary header.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Counts the report's diagnostics into `metrics` (no-op when null):
/// `analysis.validations` plus `analysis.diagnostics.{error,warning,info}`.
void RecordDiagnostics(const ValidationReport& report,
                       obs::MetricsRegistry* metrics);

}  // namespace analysis
}  // namespace keystone

#endif  // KEYSTONE_ANALYSIS_DIAGNOSTICS_H_
