#ifndef KEYSTONE_ANALYSIS_DIAGNOSTICS_H_
#define KEYSTONE_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace keystone {
namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace analysis {

/// Severity policy of the static-analysis layer:
///   kError   — the plan violates a structural invariant and executing it
///              would crash or silently compute the wrong thing; validation
///              wired behind OptimizationConfig::validate_plans fails fast.
///   kWarning — the plan executes correctly but is suspicious or wasteful
///              (dead nodes, missed CSE); reported, never fatal.
///   kInfo    — neutral observations surfaced for report readers.
enum class Severity {
  kInfo,
  kWarning,
  kError,
};

const char* SeverityName(Severity severity);

/// One finding from a static-analysis pass over a pipeline plan.
struct Diagnostic {
  Severity severity = Severity::kError;
  /// Stable rule identifier, e.g. "arity.transformer" (see the catalogue
  /// in plan_validator.h). Tests and tooling match on this, not on text.
  std::string rule;
  /// Offending node id, or -1 for whole-plan findings.
  int node = -1;
  std::string message;
  /// Machine-applicable repair hint ("insert Reshape(vector[8]->vector[4])
  /// before node 5"); empty when the engine has no suggestion.
  std::string fixit;

  std::string ToString() const;
};

/// True when `rule` is a well-formed stable rule id: two or more lowercase
/// dot-separated segments of [a-z0-9_-], e.g. "shape.dim_mismatch".
bool IsValidRuleId(const std::string& rule);

/// The result of validating one plan: every diagnostic, in rule-evaluation
/// order, plus aggregate views.
class ValidationReport {
 public:
  void Add(Severity severity, std::string rule, int node,
           std::string message);
  void Add(Severity severity, std::string rule, int node, std::string message,
           std::string fixit);
  void Merge(ValidationReport other);

  /// Stable sort: errors first, then warnings, then infos; rule-evaluation
  /// order preserved within a severity band.
  void SortBySeverity();

  /// Removes exact duplicates (severity, rule, node, message) keeping the
  /// first occurrence — the pre-opt and post-pass validator runs re-derive
  /// the same findings on an unchanged plan. Returns the number removed.
  int Deduplicate();

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  int CountOf(Severity severity) const;
  int errors() const { return CountOf(Severity::kError); }
  int warnings() const { return CountOf(Severity::kWarning); }

  /// No errors (warnings and infos allowed).
  bool ok() const { return errors() == 0; }
  /// No diagnostics of any severity.
  bool clean() const { return diagnostics_.empty(); }

  bool HasRule(const std::string& rule) const;
  /// First diagnostic with `rule`, or nullptr.
  const Diagnostic* FindRule(const std::string& rule) const;

  /// One line per diagnostic plus a summary header.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Counts the report's diagnostics into `metrics` (no-op when null):
/// `analysis.validations` plus `analysis.diagnostics.{error,warning,info}`.
void RecordDiagnostics(const ValidationReport& report,
                       obs::MetricsRegistry* metrics);

/// A checked-in grandfathering list for `pipeline_lint --strict`: each entry
/// suppresses one (scope, rule) pair, where scope is the workload name the
/// lint run uses. New violations fail CI; baselined ones don't. The text
/// format is line-oriented — `scope<space>rule`, '#' comments, blank lines
/// ignored — and Serialize/Parse round-trip exactly.
class SuppressionBaseline {
 public:
  static SuppressionBaseline Parse(const std::string& text);

  void Add(const std::string& scope, const std::string& rule);
  bool IsSuppressed(const std::string& scope, const std::string& rule) const;
  size_t size() const { return entries_.size(); }

  /// The report minus every diagnostic suppressed under `scope`.
  ValidationReport Filter(const std::string& scope,
                          const ValidationReport& report) const;

  /// Canonical text form: sorted, deduplicated, one entry per line.
  std::string Serialize() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;  // (scope, rule)
};

}  // namespace analysis
}  // namespace keystone

#endif  // KEYSTONE_ANALYSIS_DIAGNOSTICS_H_
