#ifndef KEYSTONE_ANALYSIS_DATAFLOW_H_
#define KEYSTONE_ANALYSIS_DATAFLOW_H_

// Plan-level consumers of the static dataflow pass (shape_inference.h):
// the shape.* / card.* / memory.* / effect.* rule checks, plan annotation
// (PlannedNode::inferred_* fields), the fusibility report fed to the
// optimizer decision log, and the statically seeded per-record serving cost
// the admission predictor uses as its prior.

#include <map>
#include <memory>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/analysis/shape_inference.h"
#include "src/core/physical_plan.h"

namespace keystone {
namespace analysis {

/// Rule catalogue of the dataflow checker (extends the PlanValidator
/// catalogue in plan_validator.h; same stability contract).
namespace rules {
// --- Shape/type lattice rules -------------------------------------------
inline constexpr char kShapeDimMismatch[] = "shape.dim_mismatch";
inline constexpr char kShapeModelInput[] = "shape.model_input";
inline constexpr char kShapeUnknown[] = "shape.unknown";
// --- Cardinality rules --------------------------------------------------
inline constexpr char kCardContradiction[] = "card.contradiction";
// --- Memory-footprint rules ---------------------------------------------
inline constexpr char kMemoryFootprint[] = "memory.footprint";
// --- Effect-placement rules ---------------------------------------------
inline constexpr char kEffectStatefulOnParallelPath[] =
    "effect.stateful_on_parallel_path";
inline constexpr char kEffectStatefulOnServingPath[] =
    "effect.stateful_on_serving_path";
inline constexpr char kEffectTrainOnlyOnServingPath[] =
    "effect.train_only_on_serving_path";
// --- Fused-region well-formedness rules ---------------------------------
inline constexpr char kFusionStructure[] = "fusion.structure";
inline constexpr char kFusionEffect[] = "fusion.effect";
inline constexpr char kFusionShape[] = "fusion.shape";
inline constexpr char kFusionMask[] = "fusion.mask";
inline constexpr char kFusionCachedInterior[] = "fusion.cached_interior";
}  // namespace rules

/// Runs the plan-level dataflow rules over an inference result and returns
/// them merged with the propagation diagnostics already in `flow.report`:
///  - shape.unknown (info): a live node no transfer function covers;
///  - memory.footprint (warning): a cached node whose statically inferred
///    footprint (bytes-per-record x full-scale records) exceeds the plan's
///    cache budget;
///  - effect.stateful_on_serving_path / effect.stateful_on_parallel_path /
///    effect.train_only_on_serving_path (errors): effect classes placed
///    where replay or concurrency would break them.
ValidationReport CheckDataflow(const PhysicalPlan& plan,
                               const DataflowResult& flow);

/// Copies the inference result onto the plan's nodes (the
/// PlannedNode::inferred_* fields, gated by dataflow_annotated), making the
/// facts visible to plan_dump/explain and the serving-cost prior.
void AnnotatePlan(PhysicalPlan* plan, const DataflowResult& flow);

/// A maximal chain of single-input pure / seeded-deterministic row-wise
/// operators with statically compatible shapes — the plan's loop-fusion
/// candidates. Chains never mix the train and runtime masks.
struct FusibleChain {
  std::vector<int> nodes;  // plan node ids, upstream first
  bool runtime = false;    // the chain lies on the serving path
};

std::vector<FusibleChain> FusibleChains(const PhysicalPlan& plan,
                                        const DataflowResult& flow);

/// Well-formedness check over the plan's fused regions (FusionPass output),
/// the fusion.* rules:
///  - fusion.structure (error): a region with fewer than two members, a
///    member that is not a live single-input transformer/apply-model node,
///    a non-head member that does not consume its predecessor, or an
///    interior member with a consumer outside the region;
///  - fusion.effect (error): a member that is neither pure nor
///    seeded-deterministic;
///  - fusion.shape (error): a member without a concrete inferred shape;
///  - fusion.mask (error): members straddling the train/runtime masks or
///    disagreeing with the region's recorded mask;
///  - fusion.cached_interior (error): an interior member in the cache set
///    (its output would never be materialized to reuse).
ValidationReport ValidateFusedRegions(const PhysicalPlan& plan,
                                      const DataflowResult& flow);

/// Records every fusible chain into the plan's optimizer decision log
/// (obs::FusionCandidate entries). No-op when the plan has no log.
void RecordFusibility(const PhysicalPlan& plan, const DataflowResult& flow);

/// Statically predicted virtual seconds per record for the plan's runtime
/// (serving) path: each runtime node's cost model evaluated at a one-record
/// input described by the plan's dataflow annotations, priced under the
/// plan's cluster descriptor — the same charging rule PlanRunner applies.
/// Requires an annotated plan (AnnotatePlan) and the fitted model map;
/// returns a negative value when the plan is unannotated or has no runtime
/// path, in which case the admission predictor falls back to its
/// observe-then-EWMA cold start.
double StaticServingSecondsPerRecord(
    const PhysicalPlan& plan,
    const std::map<int, std::shared_ptr<TransformerBase>>& models);

}  // namespace analysis
}  // namespace keystone

#endif  // KEYSTONE_ANALYSIS_DATAFLOW_H_
