#ifndef KEYSTONE_ANALYSIS_SHAPE_INFERENCE_H_
#define KEYSTONE_ANALYSIS_SHAPE_INFERENCE_H_

// Forward abstract interpretation over the PhysicalPlan IR. One pass in
// topological (node-id) order propagates, per node:
//   - a type/shape lattice value (ValueShape: scalar / vector[d] /
//     matrix[r x c] / tokens / labels[k] / ..., with Top = unknown and
//     Bottom = conflicting requirements),
//   - a record-count interval (CardinalityInterval), refined from the
//     lowering's static cardinality flow,
//   - an effect class (pure / seeded-deterministic / stateful / train-only),
//   - a statically derived per-record output size in bytes.
// Every physical operator contributes a transfer function
// (TransformerBase::TransferShape / EstimatorBase::ModelOutputShape and
// friends, src/core/operator.h); sources seed the pass from their bound
// dataset's element shape. The runtime placeholder — whose input is only
// bound at serving time — is mirrored from its training twins: runtime
// copies share operator instances with the train path
// (PipelineGraph::CopyWithSubstitution), so the shape flowing into a train
// twin is exactly the shape the placeholder must produce.
//
// Conflicts discovered during propagation (a Meet hitting Bottom, an empty
// cardinality intersection) are emitted as shape.* / card.* diagnostics
// with machine-applicable fix-it hints; plan-level rules (memory bounds,
// effect placement) live in src/analysis/dataflow.h.

#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/dataflow_lattice.h"
#include "src/core/physical_plan.h"

namespace keystone {
namespace analysis {

/// Everything the abstract interpreter derived for one plan node.
struct NodeFacts {
  /// Per-record output shape. For estimator nodes: the record shape the
  /// fitted model will produce (the shape flowing out of apply-model).
  ValueShape shape;
  /// Effective shape of the primary data input after meeting the operator's
  /// declared requirement (Top for sources/placeholders). Apply-model
  /// checks its stream against the estimator node's value of this.
  ValueShape input_shape;
  /// Record-count interval of the node's output ([0,0] for estimators,
  /// whose output is a model, not a dataset).
  CardinalityInterval cardinality;
  EffectClass effect = EffectClass::kPure;
  /// Statically derived output bytes per record; < 0 when the shape does
  /// not determine it and no input estimate was inheritable.
  double bytes_per_record = -1.0;
  /// The interpreter visited this node (it is on the train or runtime path,
  /// or is a dead residue whose inputs were available).
  bool visited = false;
};

/// The result of one interpretation pass: per-node facts (indexed by plan
/// node id) plus the diagnostics discovered *during* propagation
/// (shape.dim_mismatch, shape.model_input, card.contradiction). Plan-level
/// rules are layered on top by CheckDataflow (src/analysis/dataflow.h).
struct DataflowResult {
  std::vector<NodeFacts> facts;
  ValidationReport report;

  const NodeFacts& at(int id) const { return facts[static_cast<size_t>(id)]; }
};

/// Runs the forward pass over `plan`. Read-only; deterministic; safe on any
/// structurally valid plan (run the PlanValidator first — the interpreter
/// assumes in-range, forward-pointing edges). Diagnostics are only emitted
/// for nodes on the train or runtime path; dead CSE residue is interpreted
/// silently.
DataflowResult InferDataflow(const PhysicalPlan& plan);

}  // namespace analysis
}  // namespace keystone

#endif  // KEYSTONE_ANALYSIS_SHAPE_INFERENCE_H_
