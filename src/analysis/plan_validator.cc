#include "src/analysis/plan_validator.h"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/dataflow.h"

namespace keystone {
namespace analysis {

namespace {

std::string NodeLabel(const PipelineGraph& graph, int id) {
  std::ostringstream os;
  os << NodeKindName(graph.node(id).kind) << " '" << graph.node(id).name
     << "'";
  return os.str();
}

/// Per-node structural rules: arity by kind, payload presence, edge
/// direction, model_input discipline, estimator-output consumption.
/// Returns true when every edge (input + model_input) is in range and
/// backward, i.e. graph traversals are safe.
bool CheckStructure(const PipelineGraph& graph, ValidationReport* report) {
  bool edges_ok = true;
  for (int id = 0; id < graph.size(); ++id) {
    const GraphNode& node = graph.node(id);
    const int arity = static_cast<int>(node.inputs.size());

    for (int dep : node.inputs) {
      if (dep < 0 || dep >= graph.size()) {
        report->Add(Severity::kError, rules::kEdgeOutOfRange, id,
                    "input edge points at nonexistent node " +
                        std::to_string(dep));
        edges_ok = false;
      } else if (dep >= id) {
        report->Add(Severity::kError, rules::kEdgeForward, id,
                    "input edge from node " + std::to_string(dep) +
                        " breaks the append-only topological order");
        edges_ok = false;
      } else if (graph.node(dep).kind == NodeKind::kEstimator) {
        report->Add(Severity::kError, rules::kDatasetEstimatorOutput, id,
                    NodeLabel(graph, id) + " consumes the model output of " +
                        NodeLabel(graph, dep) +
                        " as a dataset (models flow through model_input)");
      }
    }

    if (node.model_input >= 0 && node.kind != NodeKind::kApplyModel) {
      report->Add(Severity::kError, rules::kModelOnNonApply, id,
                  NodeLabel(graph, id) + " has a model_input but only "
                  "ApplyModel nodes consume models");
    }

    switch (node.kind) {
      case NodeKind::kSource:
      case NodeKind::kPlaceholder:
        if (arity != 0) {
          report->Add(Severity::kError, rules::kAritySource, id,
                      NodeLabel(graph, id) + " must have 0 inputs, has " +
                          std::to_string(arity));
        }
        if (node.kind == NodeKind::kSource && node.bound_data == nullptr) {
          report->Add(Severity::kError, rules::kPayloadMissing, id,
                      NodeLabel(graph, id) + " has no bound dataset");
        }
        break;
      case NodeKind::kTransformer:
        if (arity != 1) {
          report->Add(Severity::kError, rules::kArityTransformer, id,
                      NodeLabel(graph, id) + " must have exactly 1 input, "
                      "has " + std::to_string(arity));
        }
        if (node.transformer == nullptr) {
          report->Add(Severity::kError, rules::kPayloadMissing, id,
                      NodeLabel(graph, id) + " has no transformer payload");
        }
        break;
      case NodeKind::kEstimator:
        if (arity < 1 || arity > 2) {
          report->Add(Severity::kError, rules::kArityEstimator, id,
                      NodeLabel(graph, id) + " must have 1 (data) or 2 "
                      "(data, labels) inputs, has " + std::to_string(arity));
        }
        if (node.estimator == nullptr) {
          report->Add(Severity::kError, rules::kPayloadMissing, id,
                      NodeLabel(graph, id) + " has no estimator payload");
        }
        break;
      case NodeKind::kApplyModel: {
        if (arity != 1) {
          report->Add(Severity::kError, rules::kArityApplyModel, id,
                      NodeLabel(graph, id) + " must have exactly 1 data "
                      "input, has " + std::to_string(arity));
        }
        const int model = node.model_input;
        if (model < 0) {
          report->Add(Severity::kError, rules::kModelMissing, id,
                      NodeLabel(graph, id) +
                          " has no model_input; ApplyModel needs the "
                          "estimator node that supplies its model");
        } else if (model >= graph.size()) {
          report->Add(Severity::kError, rules::kEdgeOutOfRange, id,
                      "model_input points at nonexistent node " +
                          std::to_string(model));
          edges_ok = false;
        } else if (model >= id) {
          report->Add(Severity::kError, rules::kEdgeForward, id,
                      "model_input from node " + std::to_string(model) +
                          " breaks the append-only topological order");
          edges_ok = false;
        } else if (graph.node(model).kind != NodeKind::kEstimator) {
          report->Add(Severity::kError, rules::kModelNotEstimator, id,
                      NodeLabel(graph, id) + " model_input points at " +
                          NodeLabel(graph, model) +
                          ", which is not an estimator");
        }
        break;
      }
      case NodeKind::kGather:
        if (arity < 1) {
          report->Add(Severity::kError, rules::kArityGather, id,
                      NodeLabel(graph, id) + " must gather at least 1 "
                      "input");
        }
        if (node.transformer == nullptr) {
          report->Add(Severity::kError, rules::kPayloadMissing, id,
                      NodeLabel(graph, id) + " has no gather payload");
        }
        break;
    }
  }
  return edges_ok;
}

/// Whole-graph rules that need safe traversal: placeholder discipline,
/// reachability from the sink, missed CSE.
void CheckGraphRules(const PipelineGraph& graph,
                     const PlanValidationOptions& options,
                     ValidationReport* report) {
  // Estimators are fit at training time on bound data; a training path
  // that reaches back to a runtime placeholder can never execute
  // (the executor would abort mid-fit).
  for (int p = 0; p < graph.size(); ++p) {
    if (graph.node(p).kind != NodeKind::kPlaceholder) continue;
    const std::vector<bool> downstream = graph.ReachableFrom(p);
    for (int id = 0; id < graph.size(); ++id) {
      if (downstream[id] && graph.node(id).kind == NodeKind::kEstimator) {
        report->Add(Severity::kError, rules::kPlaceholderTrainPath, id,
                    NodeLabel(graph, id) + " transitively consumes "
                    "placeholder '" + graph.node(p).name +
                        "'; estimators must be fit on bound training data");
      }
    }
  }

  if (options.placeholder >= 0) {
    if (options.placeholder >= graph.size() ||
        graph.node(options.placeholder).kind != NodeKind::kPlaceholder) {
      report->Add(Severity::kError, rules::kPlaceholderInvalid,
                  options.placeholder,
                  "declared runtime input is not a Placeholder node");
    }
  }

  if (options.sink >= 0) {
    if (options.sink >= graph.size()) {
      report->Add(Severity::kError, rules::kEdgeOutOfRange, options.sink,
                  "sink points at a nonexistent node");
    } else {
      const std::vector<bool> needed = graph.AncestorsOf(options.sink);
      for (int id = 0; id < graph.size(); ++id) {
        if (!needed[id] && options.warn_unreachable) {
          report->Add(Severity::kWarning, rules::kUnreachable, id,
                      NodeLabel(graph, id) +
                          " does not feed the sink and will never execute");
        }
        // A second placeholder feeding the sink would stay unbound when
        // the fitted pipeline is applied.
        if (needed[id] && options.placeholder >= 0 &&
            id != options.placeholder &&
            graph.node(id).kind == NodeKind::kPlaceholder) {
          report->Add(Severity::kError, rules::kPlaceholderUnbound, id,
                      "placeholder '" + graph.node(id).name +
                          "' feeds the sink but is not the declared "
                          "runtime input; it can never be bound");
        }
      }
    }
  }

  if (options.expect_cse) {
    // Re-run CSE on a scratch copy; anything it would still merge among
    // the nodes that actually feed the sink is a structurally identical
    // subgraph that survived optimization. (CSE leaves merged duplicates
    // behind as dead nodes; those re-merge trivially and do not count.)
    PipelineGraph scratch = graph;
    std::vector<int> canon;
    scratch.EliminateCommonSubexpressions(&canon);
    std::vector<bool> needed(graph.size(), true);
    if (options.sink >= 0 && options.sink < graph.size()) {
      needed = graph.AncestorsOf(options.sink);
    }
    int missed = 0;
    for (int id = 0; id < graph.size(); ++id) {
      if (needed[id] && canon[id] != id) ++missed;
    }
    if (missed > 0) {
      report->Add(Severity::kWarning, rules::kMissedCse, -1,
                  std::to_string(missed) +
                      " structurally identical node(s) survived common "
                      "sub-expression elimination");
    }
  }
}

bool Invalid(double v) { return !std::isfinite(v) || v < 0.0; }

}  // namespace

ValidationReport PlanValidator::Validate(const PipelineGraph& graph) const {
  ValidationReport report;
  if (CheckStructure(graph, &report)) {
    CheckGraphRules(graph, options_, &report);
  }
  return report;
}

ValidationReport PlanValidator::ValidatePlan(
    const MaterializationProblem& problem,
    const std::vector<bool>& cache_set) const {
  ValidationReport report;
  const PipelineGraph& graph = *problem.graph;
  if (static_cast<int>(cache_set.size()) != graph.size() ||
      static_cast<int>(problem.info.size()) != graph.size()) {
    report.Add(Severity::kError, rules::kCacheSetSize, -1,
               "cache set covers " + std::to_string(cache_set.size()) +
                   " nodes and runtime info " +
                   std::to_string(problem.info.size()) + ", but the graph "
                   "has " + std::to_string(graph.size()));
    return report;
  }

  for (int id = 0; id < graph.size(); ++id) {
    const NodeRuntimeInfo& info = problem.info[id];
    if (cache_set[id] && !info.live) {
      report.Add(Severity::kWarning, rules::kCacheDeadNode, id,
                 "cache set materializes a node that never executes");
    }
    if (cache_set[id] && info.live && !info.cacheable) {
      report.Add(Severity::kError, rules::kCacheNotCacheable, id,
                 "cache set materializes a node marked non-cacheable");
    }
    if (!info.live) continue;
    if (Invalid(info.compute_seconds)) {
      report.Add(Severity::kError, rules::kCostInvalid, id,
                 "compute_seconds is negative or non-finite (" +
                     std::to_string(info.compute_seconds) + ")");
    }
    if (Invalid(info.output_bytes)) {
      report.Add(Severity::kError, rules::kCostInvalid, id,
                 "output_bytes is negative or non-finite (" +
                     std::to_string(info.output_bytes) + ")");
    }
    if (info.weight < 1) {
      report.Add(Severity::kError, rules::kCostInvalid, id,
                 "iterative weight must be >= 1, is " +
                     std::to_string(info.weight));
    }
  }

  if (Invalid(problem.memory_budget_bytes)) {
    report.Add(Severity::kError, rules::kCostInvalid, -1,
               "memory budget is negative or non-finite");
  } else {
    const double used = CacheSetBytes(problem, cache_set);
    // Tolerate rounding at the boundary: the planner itself admits nodes
    // by `used + bytes <= budget`.
    if (used > problem.memory_budget_bytes * (1.0 + 1e-9) + 1.0) {
      std::ostringstream os;
      os << "cache set needs " << used << " bytes but the cluster budget "
         << "is " << problem.memory_budget_bytes;
      report.Add(Severity::kError, rules::kCacheOverBudget, -1, os.str());
    }
  }
  return report;
}

void CheckCostProfile(const CostProfile& cost, int node,
                      const std::string& what, ValidationReport* report) {
  const struct {
    const char* name;
    double value;
  } fields[] = {{"flops", cost.flops},
                {"bytes", cost.bytes},
                {"network", cost.network},
                {"rounds", cost.rounds}};
  for (const auto& field : fields) {
    if (Invalid(field.value)) {
      std::ostringstream os;
      os << what << " cost profile has negative or non-finite "
         << field.name << " (" << field.value << ")";
      report->Add(Severity::kError, rules::kCostProfile, node, os.str());
    }
  }
}

ValidationReport ValidateFaultConfig(
    const faults::FaultInjectionConfig& config) {
  ValidationReport report;
  auto check_rate = [&](const char* name, double rate) {
    if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
      std::ostringstream os;
      os << name << " must be a probability in [0, 1], got " << rate;
      report.Add(Severity::kError, rules::kFaultRate, -1, os.str());
    }
  };
  check_rate("task_failure_rate", config.task_failure_rate);
  check_rate("executor_loss_rate", config.executor_loss_rate);
  check_rate("straggler_rate", config.straggler_rate);
  // The two failure kinds partition a single uniform draw, so their sum is
  // itself a probability.
  if (std::isfinite(config.task_failure_rate) &&
      std::isfinite(config.executor_loss_rate) &&
      config.task_failure_rate + config.executor_loss_rate > 1.0) {
    std::ostringstream os;
    os << "task_failure_rate + executor_loss_rate must not exceed 1, got "
       << config.task_failure_rate + config.executor_loss_rate;
    report.Add(Severity::kError, rules::kFaultRate, -1, os.str());
  }

  if (config.retry.max_retries < 0) {
    std::ostringstream os;
    os << "max_retries must be non-negative, got "
       << config.retry.max_retries;
    report.Add(Severity::kError, rules::kFaultRetry, -1, os.str());
  }
  if (!std::isfinite(config.retry.backoff_base_seconds) ||
      config.retry.backoff_base_seconds < 0.0) {
    std::ostringstream os;
    os << "backoff_base_seconds must be finite and non-negative, got "
       << config.retry.backoff_base_seconds;
    report.Add(Severity::kError, rules::kFaultRetry, -1, os.str());
  }
  if (!std::isfinite(config.retry.backoff_multiplier) ||
      config.retry.backoff_multiplier < 1.0) {
    std::ostringstream os;
    os << "backoff_multiplier must be >= 1 (exponential backoff), got "
       << config.retry.backoff_multiplier;
    report.Add(Severity::kError, rules::kFaultRetry, -1, os.str());
  }

  if (!std::isfinite(config.straggler_multiplier) ||
      config.straggler_multiplier < 1.0) {
    std::ostringstream os;
    os << "straggler_multiplier must be >= 1 (a slowdown), got "
       << config.straggler_multiplier;
    report.Add(Severity::kError, rules::kFaultStraggler, -1, os.str());
  }
  if (!std::isfinite(config.speculation_cap) ||
      config.speculation_cap < 1.0) {
    std::ostringstream os;
    os << "speculation_cap must be >= 1, got " << config.speculation_cap;
    report.Add(Severity::kError, rules::kFaultStraggler, -1, os.str());
  }
  return report;
}

ValidationReport ValidateServablePlan(
    const PhysicalPlan& plan,
    const std::map<int, std::shared_ptr<TransformerBase>>* models) {
  ValidationReport report;
  const int n = static_cast<int>(plan.nodes.size());
  if (plan.placeholder < 0 || plan.placeholder >= n) {
    report.Add(Severity::kError, rules::kServePlaceholderMissing,
               plan.placeholder,
               "plan has no runtime placeholder: nothing binds the request "
               "input at serve time");
    return report;  // The runtime mask is meaningless without one.
  }

  if (plan.NumRuntimeNodes() == 0) {
    report.Add(Severity::kError, rules::kServeEmptyRuntimePath,
               plan.placeholder,
               "runtime mask is empty: no node consumes the placeholder on "
               "a path to the sink");
  }
  if (plan.sink >= 0 && plan.sink < n && !plan.nodes[plan.sink].runtime) {
    report.Add(Severity::kError, rules::kServeTrainOnlyTerminal, plan.sink,
               "sink '" + plan.nodes[plan.sink].name +
                   "' is not on the runtime path: the response terminal is "
                   "train-only and will be stripped");
  }

  for (const PlannedNode& pn : plan.nodes) {
    if (!pn.runtime) continue;
    const GraphNode& node = plan.graph->node(pn.id);
    switch (pn.kind) {
      case NodeKind::kEstimator:
        report.Add(Severity::kError, rules::kServeEstimatorOnRuntimePath,
                   pn.id,
                   "estimator '" + pn.name +
                       "' sits on the runtime path; fitting cannot run per "
                       "request (models must be fitted ahead of serving)");
        break;
      case NodeKind::kSource:
        if (node.bound_data == nullptr) {
          report.Add(Severity::kError, rules::kServeUnboundSource, pn.id,
                     "source '" + pn.name +
                         "' on the runtime path has no bound dataset");
        }
        break;
      case NodeKind::kPlaceholder:
        // The plan's own placeholder is excluded from the runtime mask by
        // construction, so any placeholder seen here is a second, unbound
        // request input nothing will feed.
        report.Add(Severity::kError, rules::kServeUnboundSource, pn.id,
                   "placeholder '" + pn.name +
                       "' on the runtime path is not the plan's runtime "
                       "input and nothing binds it at serve time");
        break;
      default:
        break;
    }

    for (int dep : pn.inputs) {
      if (dep < 0 || dep >= n) continue;  // structural rules cover this
      if (dep == plan.placeholder || plan.nodes[dep].runtime) continue;
      report.Add(Severity::kError, rules::kServeTrainDependency, pn.id,
                 "runtime node '" + pn.name + "' reads dataset output of '" +
                     plan.nodes[dep].name +
                     "' which is train-only and unavailable at serve time");
    }

    if (pn.kind == NodeKind::kApplyModel && models != nullptr) {
      const auto it = models->find(pn.model_input);
      if (it == models->end()) {
        report.Add(Severity::kError, rules::kServeModelMissing, pn.id,
                   "apply-model node '" + pn.name +
                       "' has no fitted model for estimator node " +
                       std::to_string(pn.model_input));
      } else if (it->second != nullptr && pn.dataflow_annotated &&
                 !pn.inputs.empty()) {
        // With the plan annotated by the dataflow pass, check the request
        // stream's inferred shape against what the *fitted* model demands
        // (fitted models know their exact input width — e.g. a linear map
        // knows its weight matrix — which the estimator's static declaration
        // may not).
        const PlannedNode& in_node = plan.nodes[pn.inputs[0]];
        if (in_node.dataflow_annotated) {
          const ValueShape required = it->second->InputShapeRequirement();
          const ValueShape incoming = in_node.inferred_shape;
          if (incoming.Meet(required).IsBottom() && !incoming.IsBottom() &&
              !required.IsBottom()) {
            report.Add(Severity::kError, rules::kShapeModelInput,
                       pn.id,
                       "request stream shape " + incoming.ToString() +
                           " disagrees with the fitted model's required " +
                           required.ToString() + " at '" + pn.name + "'",
                       "insert Reshape(" + incoming.ToString() + "->" +
                           required.ToString() + ") before node " +
                           std::to_string(pn.id));
          }
        }
      }
    }

    // Effect placement on the serving path, from the plan's dataflow
    // annotations: stateful or train-only nodes would replay differently
    // (or not at all) per request.
    if (pn.dataflow_annotated && pn.kind != NodeKind::kEstimator) {
      if (pn.effect == EffectClass::kStateful) {
        report.Add(Severity::kError,
                   rules::kEffectStatefulOnServingPath, pn.id,
                   "stateful node '" + pn.name + "' on the serving path",
                   "mark node '" + pn.name +
                       "' train-only or replace it with a pure equivalent");
      } else if (pn.effect == EffectClass::kTrainOnly) {
        report.Add(Severity::kError,
                   rules::kEffectTrainOnlyOnServingPath, pn.id,
                   "train-only node '" + pn.name + "' on the serving path",
                   "move '" + pn.name +
                       "' off the runtime path (fit it as an estimator "
                       "whose model serves instead)");
      }
    }
  }
  return report;
}

ValidationReport ValidateReuseMarkers(const PhysicalPlan& plan) {
  ValidationReport report;
  for (const PlannedNode& pn : plan.nodes) {
    if (!pn.reused && !pn.reuse_pruned) continue;
    // Only train transformer/gather outputs can come from the catalog;
    // pruned nodes can be of any kind (a reused node's source chain is
    // pruned along with its transformers) but must still be on the train
    // path — pruning a runtime-only node would be meaningless.
    const bool data_node =
        pn.kind == NodeKind::kTransformer || pn.kind == NodeKind::kGather;
    if (!pn.train || (pn.reused && !data_node)) {
      report.Add(Severity::kError, rules::kReusePrunedDemand, pn.id,
                 std::string(pn.reused ? "reused" : "reuse-pruned") +
                     " marker on '" + pn.name + "' (" +
                     NodeKindName(pn.kind) +
                     "): only train transformer/gather outputs can come "
                     "from the artifact catalog");
    }
    if (pn.reused && pn.reuse_fingerprint != pn.lineage_fingerprint) {
      report.Add(Severity::kError, rules::kReuseFingerprintMismatch, pn.id,
                 "reused node '" + pn.name + "' reads catalog entry \"" +
                     pn.reuse_fingerprint +
                     "\" but its lineage fingerprint is \"" +
                     pn.lineage_fingerprint + "\"");
    }
    if (pn.reused && pn.reuse_pruned) {
      report.Add(Severity::kError, rules::kReusePrunedDemand, pn.id,
                 "node '" + pn.name +
                     "' is both reused and reuse-pruned: a pruned node "
                     "must not execute, a reused one must");
    }
  }
  // Pruning is only sound below a reused node: every executing train node
  // must still have all of its train inputs available.
  const int n = static_cast<int>(plan.nodes.size());
  for (const PlannedNode& pn : plan.nodes) {
    if (!pn.train || pn.reuse_pruned || pn.reused) continue;
    auto check_dep = [&](int dep) {
      if (dep < 0 || dep >= n) return;
      const PlannedNode& in_node = plan.nodes[dep];
      if (in_node.train && in_node.reuse_pruned) {
        report.Add(Severity::kError, rules::kReusePrunedDemand, pn.id,
                   "executing train node '" + pn.name +
                       "' consumes reuse-pruned input '" + in_node.name +
                       "' which the fit pass will never produce");
      }
    };
    for (int dep : pn.inputs) check_dep(dep);
    check_dep(pn.model_input);
  }
  return report;
}

}  // namespace analysis
}  // namespace keystone
