#include "src/analysis/shape_inference.h"

#include <cstddef>
#include <string>

#include "src/analysis/dataflow.h"
#include "src/core/pipeline_graph.h"

namespace keystone {
namespace analysis {

namespace {

/// The interpreter over one plan: shared state for the two passes plus the
/// placeholder mirror step.
class Interpreter {
 public:
  Interpreter(const PhysicalPlan& plan, DataflowResult* result)
      : plan_(plan), graph_(*plan.graph), result_(*result) {}

  void Run() {
    const int n = graph_.size();
    result_.facts.assign(static_cast<size_t>(n), NodeFacts{});
    // Pass 1: everything not downstream of the runtime placeholder — the
    // train path plus dead CSE residue. Node ids are topological, so every
    // input fact is ready when a node is visited.
    for (int id = 0; id < n; ++id) {
      if (graph_.node(id).kind == NodeKind::kPlaceholder) continue;
      if (plan_.nodes[static_cast<size_t>(id)].runtime) continue;
      Interpret(id);
    }
    // Mirror every placeholder from its runtime consumers' training twins.
    for (int id = 0; id < n; ++id) {
      if (graph_.node(id).kind != NodeKind::kPlaceholder) continue;
      MirrorPlaceholder(id);
    }
    // Pass 2: the runtime (serving) path, now that the placeholder's shape
    // is known.
    for (int id = 0; id < n; ++id) {
      if (graph_.node(id).kind == NodeKind::kPlaceholder) continue;
      if (!plan_.nodes[static_cast<size_t>(id)].runtime) continue;
      Interpret(id);
    }
  }

 private:
  NodeFacts& facts(int id) { return result_.facts[static_cast<size_t>(id)]; }

  const TransformerBase* TransformerOf(int id) const {
    const PlannedNode& pn = plan_.nodes[static_cast<size_t>(id)];
    if (pn.physical_transformer != nullptr) {
      return pn.physical_transformer.get();
    }
    return graph_.node(id).transformer.get();
  }

  const EstimatorBase* EstimatorOf(int id) const {
    const PlannedNode& pn = plan_.nodes[static_cast<size_t>(id)];
    if (pn.physical_estimator != nullptr) return pn.physical_estimator.get();
    return graph_.node(id).estimator.get();
  }

  void Interpret(int id) {
    const GraphNode& gn = graph_.node(id);
    const PlannedNode& pn = plan_.nodes[static_cast<size_t>(id)];
    NodeFacts& f = facts(id);
    f.visited = true;
    // Dead CSE residue is interpreted (its facts may seed a survivor's
    // twin lookup) but never diagnosed — it does not execute.
    const bool emit = pn.train || pn.runtime;
    switch (gn.kind) {
      case NodeKind::kSource:
        InterpretSource(id, gn, pn, &f);
        break;
      case NodeKind::kPlaceholder:
        break;  // mirrored separately
      case NodeKind::kTransformer:
      case NodeKind::kGather:
        InterpretTransformer(id, gn, pn, emit, &f);
        break;
      case NodeKind::kEstimator:
        InterpretEstimator(id, gn, pn, emit, &f);
        break;
      case NodeKind::kApplyModel:
        InterpretApplyModel(id, gn, pn, emit, &f);
        break;
    }
  }

  void InterpretSource(int id, const GraphNode& gn, const PlannedNode& pn,
                       NodeFacts* f) {
    (void)id;
    f->shape = gn.bound_data != nullptr ? gn.bound_data->ElementShape()
                                        : ValueShape::Top();
    f->input_shape = ValueShape::Top();
    f->cardinality =
        CardinalityInterval::Exact(static_cast<int64_t>(pn.full_records));
    f->effect = EffectClass::kPure;
    f->bytes_per_record = f->shape.BytesPerRecord();
    if (f->bytes_per_record < 0 && gn.bound_data != nullptr &&
        gn.bound_data->NumRecords() > 0) {
      // The shape does not pin the record width (text, tokens, sparse):
      // fall back to the dataset's measured average.
      f->bytes_per_record = gn.bound_data->ComputeStats().bytes_per_record;
    }
  }

  void InterpretTransformer(int id, const GraphNode& gn,
                            const PlannedNode& pn, bool emit, NodeFacts* f) {
    const TransformerBase* op = TransformerOf(id);
    if (op == nullptr) return;
    if (gn.kind == NodeKind::kTransformer && gn.inputs.size() == 1) {
      const ValueShape in = facts(gn.inputs[0]).shape;
      const ValueShape req = op->InputShapeRequirement();
      ValueShape eff = in.Meet(req);
      if (eff.IsBottom() && !in.IsBottom()) {
        if (emit) {
          result_.report.Add(
              Severity::kError, rules::kShapeDimMismatch, id,
              "input shape " + in.ToString() + " conflicts with the " +
                  req.ToString() + " required by '" + pn.name + "'",
              "insert Reshape(" + in.ToString() + "->" + req.ToString() +
                  ") before node " + std::to_string(id));
        }
        eff = req;  // contain the conflict so downstream keeps checking
      }
      f->input_shape = eff;
      f->shape = op->TransferShape(eff);
      f->cardinality = facts(gn.inputs[0]).cardinality;
    } else {
      // Gather (or any multi-input transformer): the transfer function sees
      // every branch shape; a Bottom result witnesses branch disagreement.
      std::vector<ValueShape> ins;
      ins.reserve(gn.inputs.size());
      bool poisoned = false;
      for (int in : gn.inputs) {
        ins.push_back(facts(in).shape);
        poisoned = poisoned || ins.back().IsBottom();
      }
      f->input_shape = ins.empty() ? ValueShape::Top() : ins[0];
      f->shape = op->TransferShapeMulti(ins);
      if (f->shape.IsBottom() && !poisoned && emit) {
        std::string shapes;
        for (const ValueShape& s : ins) {
          if (!shapes.empty()) shapes += ", ";
          shapes += s.ToString();
        }
        result_.report.Add(Severity::kError, rules::kShapeDimMismatch, id,
                           "gathered branch shapes conflict at '" + pn.name +
                               "': " + shapes,
                           "align branch output shapes feeding node " +
                               std::to_string(id));
      }
      // Branches zip record-by-record: the output count is every branch's
      // count at once.
      if (!gn.inputs.empty()) {
        CardinalityInterval card = facts(gn.inputs[0]).cardinality;
        bool input_empty = card.IsEmpty();
        for (size_t i = 1; i < gn.inputs.size(); ++i) {
          const CardinalityInterval& other = facts(gn.inputs[i]).cardinality;
          input_empty = input_empty || other.IsEmpty();
          card = card.Intersect(other);
        }
        if (card.IsEmpty() && !input_empty && emit) {
          result_.report.Add(
              Severity::kError, rules::kCardContradiction, id,
              "gathered branches carry contradictory record counts at '" +
                  pn.name + "'",
              "equalize the record counts of the branches feeding node " +
                  std::to_string(id));
        }
        f->cardinality = card;
      }
    }
    f->effect = op->Effect();
    f->bytes_per_record = f->shape.BytesPerRecord();
    if (f->bytes_per_record < 0) f->bytes_per_record = InheritedBytes(gn);
  }

  void InterpretEstimator(int id, const GraphNode& gn, const PlannedNode& pn,
                          bool emit, NodeFacts* f) {
    const EstimatorBase* op = EstimatorOf(id);
    if (op == nullptr) return;
    const int data = gn.inputs[0];
    const ValueShape in = facts(data).shape;
    const ValueShape req = op->InputShapeRequirement();
    ValueShape eff = in.Meet(req);
    if (eff.IsBottom() && !in.IsBottom()) {
      if (emit) {
        result_.report.Add(
            Severity::kError, rules::kShapeDimMismatch, id,
            "training input shape " + in.ToString() +
                " conflicts with the " + req.ToString() + " required by '" +
                pn.name + "'",
            "insert Reshape(" + in.ToString() + "->" + req.ToString() +
                ") before node " + std::to_string(id));
      }
      eff = req;
    }
    f->input_shape = eff;
    CardinalityInterval card = facts(data).cardinality;
    if (gn.inputs.size() > 1) {
      const int labels = gn.inputs[1];
      const ValueShape lin = facts(labels).shape;
      const ValueShape lreq = op->LabelShapeRequirement();
      if (lin.Meet(lreq).IsBottom() && !lin.IsBottom() && emit) {
        result_.report.Add(
            Severity::kError, rules::kShapeDimMismatch, id,
            "label shape " + lin.ToString() + " conflicts with the " +
                lreq.ToString() + " required by '" + pn.name + "'",
            "re-encode the labels as " + lreq.ToString() +
                " (e.g. adjust the one-hot width to the solver's "
                "num_classes)");
      }
      const CardinalityInterval lcard = facts(labels).cardinality;
      const CardinalityInterval met = card.Intersect(lcard);
      if (met.IsEmpty() && !card.IsEmpty() && !lcard.IsEmpty() && emit) {
        result_.report.Add(
            Severity::kError, rules::kCardContradiction, id,
            "feature input carries " + card.ToString() +
                " records but label input carries " + lcard.ToString() +
                " at '" + pn.name + "'",
            "rebind the label source so feature and label record counts "
            "agree");
      }
    }
    // The node's output is a model, not a dataset; `shape` records what the
    // fitted model will emit per record (consumed by apply-model nodes).
    f->shape = op->ModelOutputShape(eff);
    f->cardinality = CardinalityInterval::Exact(0);
    f->effect = EffectClass::kTrainOnly;
    f->bytes_per_record = 0.0;
  }

  void InterpretApplyModel(int id, const GraphNode& gn, const PlannedNode& pn,
                           bool emit, NodeFacts* f) {
    const int est = gn.model_input;
    const int data = gn.inputs[0];
    const NodeFacts& ef = facts(est);
    const ValueShape in = facts(data).shape;
    const ValueShape expected = ef.input_shape;
    ValueShape eff = in.Meet(expected);
    if (eff.IsBottom() && !in.IsBottom() && !expected.IsBottom()) {
      if (emit) {
        result_.report.Add(
            Severity::kError, rules::kShapeModelInput, id,
            "stream shape " + in.ToString() +
                " disagrees with the model's training input shape " +
                expected.ToString() + " ('" + pn.name + "')",
            "insert Reshape(" + in.ToString() + "->" + expected.ToString() +
                ") before node " + std::to_string(id));
      }
      eff = expected;
    }
    f->input_shape = eff;
    f->shape = ef.shape;  // the fitted model's per-record output shape
    f->cardinality = facts(data).cardinality;
    f->effect = EffectClass::kPure;
    f->bytes_per_record = f->shape.BytesPerRecord();
    if (f->bytes_per_record < 0) f->bytes_per_record = InheritedBytes(gn);
  }

  /// Fallback per-record size when the output shape does not determine one:
  /// inherit the (sum of the) input estimates — right for normalizers and
  /// near enough for the rest of the size-preserving family.
  double InheritedBytes(const GraphNode& gn) {
    double total = 0.0;
    for (int in : gn.inputs) {
      const double b = facts(in).bytes_per_record;
      if (b < 0) return -1.0;
      total += b;
    }
    return gn.inputs.empty() ? -1.0 : total;
  }

  /// Runtime copies share operator instances with their training twins
  /// (CopyWithSubstitution), so the shape flowing into a twin at the
  /// placeholder's argument position is exactly the shape the placeholder
  /// must produce. Meet over all runtime consumers; a conflict means the
  /// serving input cannot satisfy every consumer at once.
  void MirrorPlaceholder(int ph) {
    NodeFacts& f = facts(ph);
    f.visited = true;
    f.cardinality = CardinalityInterval::Any();
    f.effect = EffectClass::kPure;
    ValueShape mirrored = ValueShape::Top();
    double bytes = -1.0;
    const int n = graph_.size();
    for (int c = 0; c < n; ++c) {
      if (!plan_.nodes[static_cast<size_t>(c)].runtime) continue;
      const GraphNode& gc = graph_.node(c);
      for (size_t p = 0; p < gc.inputs.size(); ++p) {
        if (gc.inputs[p] != ph) continue;
        ValueShape cand = ValueShape::Top();
        double bcand = -1.0;
        if (gc.kind == NodeKind::kApplyModel && gc.model_input >= 0) {
          cand = facts(gc.model_input).input_shape;
          const GraphNode& ge = graph_.node(gc.model_input);
          if (!ge.inputs.empty()) {
            bcand = facts(ge.inputs[0]).bytes_per_record;
          }
        } else if (gc.transformer != nullptr) {
          const int twin = FindTrainTwin(c, p);
          if (twin >= 0) {
            const int tin = graph_.node(twin).inputs[p];
            cand = facts(tin).shape;
            bcand = facts(tin).bytes_per_record;
          }
          if (cand.IsTop()) {
            const TransformerBase* op = TransformerOf(c);
            if (op != nullptr) cand = op->InputShapeRequirement();
          }
        }
        const ValueShape met = mirrored.Meet(cand);
        if (met.IsBottom() && !mirrored.IsBottom() && !cand.IsBottom()) {
          result_.report.Add(
              Severity::kError, rules::kShapeDimMismatch, ph,
              "runtime consumers demand conflicting input shapes: " +
                  mirrored.ToString() + " vs " + cand.ToString() +
                  " (node " + std::to_string(c) + ")",
              "split the pipeline so each serving input feeds consumers of "
              "one shape");
        } else {
          mirrored = met;
        }
        if (bytes < 0) bytes = bcand;
      }
    }
    f.shape = mirrored;
    f.input_shape = mirrored;
    f.bytes_per_record = mirrored.BytesPerRecord();
    if (f.bytes_per_record < 0) f.bytes_per_record = bytes;
  }

  /// First train node sharing `runtime_node`'s logical operator instance
  /// with matching arity — its twin from CopyWithSubstitution.
  int FindTrainTwin(int runtime_node, size_t arg_pos) const {
    const GraphNode& gc = graph_.node(runtime_node);
    const TransformerBase* key = gc.transformer.get();
    if (key == nullptr) return -1;
    const int n = graph_.size();
    for (int t = 0; t < n; ++t) {
      if (t == runtime_node) continue;
      if (!plan_.nodes[static_cast<size_t>(t)].train) continue;
      const GraphNode& gt = graph_.node(t);
      if (gt.transformer.get() != key) continue;
      if (gt.inputs.size() != gc.inputs.size()) continue;
      if (arg_pos >= gt.inputs.size()) continue;
      return t;
    }
    return -1;
  }

  const PhysicalPlan& plan_;
  const PipelineGraph& graph_;
  DataflowResult& result_;
};

}  // namespace

DataflowResult InferDataflow(const PhysicalPlan& plan) {
  DataflowResult result;
  if (plan.graph == nullptr) return result;
  Interpreter(plan, &result).Run();
  return result;
}

}  // namespace analysis
}  // namespace keystone
