#include "src/analysis/dataflow.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/core/pipeline_graph.h"
#include "src/data/data_stats.h"
#include "src/obs/decision_log.h"
#include "src/sim/cost_profile.h"

namespace keystone {
namespace analysis {

namespace {

bool IsLive(const PlannedNode& pn) { return pn.train || pn.runtime; }

/// Nodes whose output (transitively) flows into a Gather along live data
/// edges — the branch-parallel region PlanRunner dispatches concurrently.
std::vector<bool> FeedsGather(const PhysicalPlan& plan) {
  const int n = static_cast<int>(plan.nodes.size());
  std::vector<bool> feeds(static_cast<size_t>(n), false);
  for (int id = n - 1; id >= 0; --id) {
    const PlannedNode& pn = plan.nodes[static_cast<size_t>(id)];
    if (!IsLive(pn)) continue;
    const bool downstream =
        pn.kind == NodeKind::kGather || feeds[static_cast<size_t>(id)];
    if (!downstream) continue;
    for (int in : pn.inputs) feeds[static_cast<size_t>(in)] = true;
  }
  return feeds;
}

/// A one-record DataStats synthesized from a node's dataflow annotations —
/// what the serving path's cost models see per record at admission time.
DataStats OneRecordStats(const PlannedNode& pn) {
  DataStats stats;
  stats.num_records = 1;
  const ValueShape& shape = pn.inferred_shape;
  int64_t dim = 0;
  switch (shape.kind) {
    case ShapeKind::kScalar:
    case ShapeKind::kLabels:
      dim = 1;
      break;
    case ShapeKind::kVector:
    case ShapeKind::kSparseVector:
      dim = shape.d0 >= 0 ? shape.d0 : 0;
      break;
    case ShapeKind::kMatrix:
    case ShapeKind::kVectorSeq:
      dim = shape.d1 >= 0 ? shape.d1 : 0;
      break;
    case ShapeKind::kImage:
      if (shape.d0 >= 0 && shape.d1 >= 0 && shape.d2 >= 0) {
        dim = shape.d0 * shape.d1 * shape.d2;
      }
      break;
    default:
      break;
  }
  stats.dim = static_cast<size_t>(dim);
  double bytes = pn.inferred_bytes_per_record;
  if (bytes < 0) bytes = dim > 0 ? 8.0 * static_cast<double>(dim) : 64.0;
  stats.bytes_per_record = bytes;
  if (shape.kind == ShapeKind::kSparseVector) {
    // ~12 serialized bytes per stored (index, value) pair.
    stats.avg_nnz = bytes / 12.0;
    stats.sparsity =
        dim > 0 ? std::min(1.0, stats.avg_nnz / static_cast<double>(dim))
                : 1.0;
  } else {
    stats.avg_nnz = static_cast<double>(dim);
    stats.sparsity = 1.0;
  }
  return stats;
}

}  // namespace

ValidationReport CheckDataflow(const PhysicalPlan& plan,
                               const DataflowResult& flow) {
  ValidationReport report = flow.report;
  const int n = static_cast<int>(plan.nodes.size());
  if (static_cast<int>(flow.facts.size()) != n) return report;
  const std::vector<bool> feeds_gather = FeedsGather(plan);
  for (int id = 0; id < n; ++id) {
    const PlannedNode& pn = plan.nodes[static_cast<size_t>(id)];
    if (!IsLive(pn)) continue;
    const NodeFacts& f = flow.at(id);
    if (f.visited && f.shape.IsTop()) {
      report.Add(Severity::kInfo, rules::kShapeUnknown, id,
                 "no static shape inferred for '" + pn.name + "'",
                 "declare a TransferShape/ModelOutputShape (or a "
                 "StaticShapeOf specialization) for the operator");
    }
    if (f.effect == EffectClass::kStateful) {
      if (pn.runtime) {
        report.Add(Severity::kError, rules::kEffectStatefulOnServingPath, id,
                   "stateful node '" + pn.name + "' on the serving path",
                   "mark node '" + pn.name +
                       "' train-only or replace it with a pure equivalent");
      }
      if (plan.config.parallel_branches &&
          feeds_gather[static_cast<size_t>(id)]) {
        report.Add(
            Severity::kError, rules::kEffectStatefulOnParallelPath, id,
            "stateful node '" + pn.name +
                "' on a branch-parallel region (branches dispatch "
                "concurrently)",
            "set OptimizationConfig::parallel_branches=false or make '" +
                pn.name + "' pure/seeded-deterministic");
      }
    }
    if (f.effect == EffectClass::kTrainOnly && pn.runtime) {
      report.Add(Severity::kError, rules::kEffectTrainOnlyOnServingPath, id,
                 "train-only node '" + pn.name + "' on the serving path",
                 "move '" + pn.name +
                     "' off the runtime path (fit it as an estimator whose "
                     "model serves instead)");
    }
    if (pn.cached && f.bytes_per_record >= 0 && pn.full_records > 0 &&
        plan.cache_budget_bytes > 0) {
      const double footprint =
          f.bytes_per_record * static_cast<double>(pn.full_records);
      if (footprint > plan.cache_budget_bytes) {
        report.Add(
            Severity::kWarning, rules::kMemoryFootprint, id,
            "statically inferred footprint of cached node '" + pn.name +
                "' (" + std::to_string(footprint) +
                " bytes) exceeds the cache budget (" +
                std::to_string(plan.cache_budget_bytes) + " bytes)",
            "drop '" + pn.name +
                "' from the cache set or raise cache_fraction");
      }
    }
  }
  return report;
}

void AnnotatePlan(PhysicalPlan* plan, const DataflowResult& flow) {
  if (plan == nullptr) return;
  if (flow.facts.size() != plan->nodes.size()) return;
  for (size_t id = 0; id < plan->nodes.size(); ++id) {
    PlannedNode& pn = plan->nodes[id];
    const NodeFacts& f = flow.facts[id];
    pn.dataflow_annotated = f.visited;
    pn.inferred_shape = f.shape;
    pn.cardinality = f.cardinality;
    pn.effect = f.effect;
    pn.inferred_bytes_per_record = f.bytes_per_record;
  }
}

std::vector<FusibleChain> FusibleChains(const PhysicalPlan& plan,
                                        const DataflowResult& flow) {
  std::vector<FusibleChain> out;
  const int n = static_cast<int>(plan.nodes.size());
  if (static_cast<int>(flow.facts.size()) != n) return out;
  // Live-consumer counts; sole_succ is meaningful only when the count is 1.
  std::vector<int> succ_count(static_cast<size_t>(n), 0);
  std::vector<int> sole_succ(static_cast<size_t>(n), -1);
  for (int id = 0; id < n; ++id) {
    const PlannedNode& pn = plan.nodes[static_cast<size_t>(id)];
    if (!IsLive(pn)) continue;
    for (int in : pn.inputs) {
      ++succ_count[static_cast<size_t>(in)];
      sole_succ[static_cast<size_t>(in)] = id;
    }
  }
  auto eligible = [&](int id) {
    const PlannedNode& pn = plan.nodes[static_cast<size_t>(id)];
    if (!IsLive(pn)) return false;
    if (pn.kind != NodeKind::kTransformer &&
        pn.kind != NodeKind::kApplyModel) {
      return false;
    }
    if (pn.inputs.size() != 1) return false;
    const NodeFacts& f = flow.at(id);
    if (f.effect != EffectClass::kPure &&
        f.effect != EffectClass::kSeededDeterministic) {
      return false;
    }
    return !f.shape.IsTop() && !f.shape.IsBottom();
  };
  // a -> b is a fusible link: b is a's only live consumer, same mask.
  auto links = [&](int a, int b) {
    return eligible(b) && succ_count[static_cast<size_t>(a)] == 1 &&
           plan.nodes[static_cast<size_t>(a)].runtime ==
               plan.nodes[static_cast<size_t>(b)].runtime;
  };
  for (int id = 0; id < n; ++id) {
    if (!eligible(id)) continue;
    const int prev = plan.nodes[static_cast<size_t>(id)].inputs[0];
    if (eligible(prev) && links(prev, id)) continue;  // interior, not a head
    FusibleChain chain;
    chain.runtime = plan.nodes[static_cast<size_t>(id)].runtime;
    chain.nodes.push_back(id);
    int cur = id;
    while (succ_count[static_cast<size_t>(cur)] == 1) {
      const int nxt = sole_succ[static_cast<size_t>(cur)];
      if (!links(cur, nxt)) break;
      chain.nodes.push_back(nxt);
      cur = nxt;
    }
    if (chain.nodes.size() >= 2) out.push_back(std::move(chain));
  }
  return out;
}

ValidationReport ValidateFusedRegions(const PhysicalPlan& plan,
                                      const DataflowResult& flow) {
  ValidationReport report;
  const int n = static_cast<int>(plan.nodes.size());
  const bool have_facts = static_cast<int>(flow.facts.size()) == n;
  // Live-consumer lists, to prove interior outputs never escape the region.
  std::vector<std::vector<int>> succ(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    const PlannedNode& pn = plan.nodes[static_cast<size_t>(id)];
    if (!IsLive(pn)) continue;
    for (int in : pn.inputs) succ[static_cast<size_t>(in)].push_back(id);
  }
  for (const FusedRegion& region : plan.fused_regions) {
    if (region.nodes.size() < 2) {
      report.Add(Severity::kError, rules::kFusionStructure,
                 region.nodes.empty() ? -1 : region.nodes.front(),
                 "fused region r" + std::to_string(region.id) +
                     " has fewer than two members",
                 "drop the region (single nodes need no fusion)");
      continue;
    }
    for (size_t i = 0; i < region.nodes.size(); ++i) {
      const int id = region.nodes[i];
      if (id < 0 || id >= n) {
        report.Add(Severity::kError, rules::kFusionStructure, id,
                   "fused region r" + std::to_string(region.id) +
                       " references a node outside the plan",
                   "rebuild the region from live plan nodes");
        continue;
      }
      const PlannedNode& pn = plan.nodes[static_cast<size_t>(id)];
      if (!IsLive(pn) ||
          (pn.kind != NodeKind::kTransformer &&
           pn.kind != NodeKind::kApplyModel) ||
          pn.inputs.size() != 1) {
        report.Add(Severity::kError, rules::kFusionStructure, id,
                   "fused member '" + pn.name +
                       "' is not a live single-input row-wise node",
                   "remove '" + pn.name + "' from region r" +
                       std::to_string(region.id));
        continue;
      }
      if (i > 0 && pn.inputs[0] != region.nodes[i - 1]) {
        report.Add(Severity::kError, rules::kFusionStructure, id,
                   "fused member '" + pn.name +
                       "' does not consume its region predecessor",
                   "split region r" + std::to_string(region.id) +
                       " at the broken edge");
      }
      if (pn.runtime != region.runtime || (i > 0 && pn.runtime !=
          plan.nodes[static_cast<size_t>(region.nodes[0])].runtime)) {
        report.Add(Severity::kError, rules::kFusionMask, id,
                   "fused member '" + pn.name +
                       "' straddles the train/runtime masks of region r" +
                       std::to_string(region.id),
                   "fuse train and runtime copies separately");
      }
      if (have_facts) {
        const NodeFacts& f = flow.at(id);
        if (f.effect != EffectClass::kPure &&
            f.effect != EffectClass::kSeededDeterministic) {
          report.Add(Severity::kError, rules::kFusionEffect, id,
                     "fused member '" + pn.name + "' has effect class " +
                         EffectClassName(f.effect),
                     "only pure or seeded-deterministic operators may fuse");
        }
        if (f.shape.IsTop() || f.shape.IsBottom()) {
          report.Add(Severity::kError, rules::kFusionShape, id,
                     "fused member '" + pn.name +
                         "' has no concrete inferred shape",
                     "declare a transfer function so fusion can prove "
                     "shape agreement");
        }
      }
      const bool interior = i + 1 < region.nodes.size();
      if (interior) {
        for (int s : succ[static_cast<size_t>(id)]) {
          if (s != region.nodes[i + 1]) {
            report.Add(Severity::kError, rules::kFusionStructure, id,
                       "interior fused member '" + pn.name +
                           "' has a consumer outside region r" +
                           std::to_string(region.id),
                       "end the region at '" + pn.name +
                           "' so its output materializes");
            break;
          }
        }
        if (id < static_cast<int>(plan.cache_set.size()) &&
            plan.cache_set[static_cast<size_t>(id)]) {
          report.Add(Severity::kError, rules::kFusionCachedInterior, id,
                     "interior fused member '" + pn.name +
                         "' is in the cache set but its output is never "
                         "materialized",
                     "split region r" + std::to_string(region.id) +
                         " after '" + pn.name + "' or drop it from the "
                         "cache set");
        }
      }
    }
  }
  return report;
}

void RecordFusibility(const PhysicalPlan& plan, const DataflowResult& flow) {
  if (plan.decision_log == nullptr) return;
  for (const FusibleChain& chain : FusibleChains(plan, flow)) {
    obs::FusionCandidate cand;
    cand.nodes = chain.nodes;
    cand.path = chain.runtime ? "runtime" : "train";
    for (int id : chain.nodes) {
      cand.ops.push_back(plan.nodes[static_cast<size_t>(id)].name);
    }
    cand.input_shape = flow.at(chain.nodes.front()).input_shape.ToString();
    cand.output_shape = flow.at(chain.nodes.back()).shape.ToString();
    plan.decision_log->RecordFusionCandidate(std::move(cand));
  }
}

namespace {

/// Marginal per-record seconds from a node's sampling profile: the slope
/// between the two sample points (which cancels any fixed per-run setup),
/// falling back to the large-sample average rate. Negative when the node
/// was never profiled.
double ProfiledSecondsPerRecord(const ProfileEntry& profile) {
  if (profile.records_large == 0) return -1.0;
  if (profile.records_small > 0 &&
      profile.records_large > profile.records_small) {
    const double slope =
        (profile.seconds_large - profile.seconds_small) /
        static_cast<double>(profile.records_large - profile.records_small);
    if (slope >= 0.0) return slope;
  }
  return profile.seconds_large / static_cast<double>(profile.records_large);
}

/// The fit-time profile that prices runtime node `id` per record. Runtime
/// copies are never profiled themselves (sampling runs the train path), but
/// they share their logical operator with a train twin that was: for
/// transformers, the train node holding the same operator instance; for
/// apply-model nodes, the train-side apply of the same estimator. Negative
/// when no profiled twin exists.
double TwinProfiledRate(const PhysicalPlan& plan, int id) {
  const PlannedNode& pn = plan.nodes[static_cast<size_t>(id)];
  const double own = ProfiledSecondsPerRecord(pn.profile);
  if (own >= 0.0) return own;
  for (const PlannedNode& twin : plan.nodes) {
    if (!twin.train || twin.id == id || twin.kind != pn.kind) continue;
    if (pn.kind == NodeKind::kApplyModel) {
      if (twin.model_input != pn.model_input) continue;
    } else {
      const auto op = [&](const PlannedNode& node) {
        return node.physical_transformer != nullptr
                   ? node.physical_transformer.get()
                   : plan.graph->node(node.id).transformer.get();
      };
      if (op(twin) == nullptr || op(twin) != op(pn)) continue;
    }
    const double rate = ProfiledSecondsPerRecord(twin.profile);
    if (rate >= 0.0) return rate;
  }
  return -1.0;
}

}  // namespace

double StaticServingSecondsPerRecord(
    const PhysicalPlan& plan,
    const std::map<int, std::shared_ptr<TransformerBase>>& models) {
  if (plan.graph == nullptr) return -1.0;
  double total = 0.0;
  bool any = false;
  const int n = static_cast<int>(plan.nodes.size());
  for (int id = 0; id < n; ++id) {
    const PlannedNode& pn = plan.nodes[static_cast<size_t>(id)];
    if (!pn.runtime) continue;
    if (pn.kind != NodeKind::kTransformer && pn.kind != NodeKind::kGather &&
        pn.kind != NodeKind::kApplyModel) {
      continue;
    }
    if (!pn.dataflow_annotated || pn.inputs.empty()) return -1.0;
    const PlannedNode& in_node =
        plan.nodes[static_cast<size_t>(pn.inputs[0])];
    if (!in_node.dataflow_annotated) return -1.0;
    // Prefer the fit-time sampling profile (observed kernel costs on this
    // very operator), which is what the serving ledger will charge; price
    // with the cost model at the statically inferred one-record input only
    // when the optimizer never profiled the node or a twin.
    const double profiled = TwinProfiledRate(plan, id);
    if (profiled >= 0.0) {
      total += profiled;
      any = true;
      continue;
    }
    const DataStats in_stats = OneRecordStats(in_node);
    CostProfile cost;
    if (pn.kind == NodeKind::kApplyModel) {
      const auto it = models.find(pn.model_input);
      if (it == models.end() || it->second == nullptr) return -1.0;
      cost = it->second->EstimateCost(in_stats, plan.resources.num_nodes);
    } else {
      const TransformerBase* op =
          pn.physical_transformer != nullptr
              ? pn.physical_transformer.get()
              : plan.graph->node(id).transformer.get();
      if (op == nullptr) return -1.0;
      cost = op->EstimateCost(in_stats, plan.resources.num_nodes);
    }
    total += plan.resources.SecondsFor(cost);
    any = true;
  }
  if (!any) return -1.0;
  // The apply entry point also charges loading the request batch from disk
  // (FittedPipelineUntyped::Apply's "LoadTest" stage) — for small feature
  // vectors this is the dominant per-record serving cost. Price it from the
  // placeholder's statically inferred record size.
  if (plan.placeholder >= 0 &&
      plan.placeholder < static_cast<int>(plan.nodes.size())) {
    const PlannedNode& ph =
        plan.nodes[static_cast<size_t>(plan.placeholder)];
    if (!ph.dataflow_annotated) return -1.0;
    const DataStats ph_stats = OneRecordStats(ph);
    total += plan.resources.DiskReadSeconds(
        ph_stats.bytes_per_record /
        std::max(1, plan.resources.num_nodes));
  }
  return total;
}

}  // namespace analysis
}  // namespace keystone
