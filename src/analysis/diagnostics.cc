#include "src/analysis/diagnostics.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "src/obs/metrics.h"

namespace keystone {
namespace analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityName(severity) << " [" << rule << "]";
  if (node >= 0) os << " node " << node;
  os << ": " << message;
  if (!fixit.empty()) os << "; fixit: " << fixit;
  return os.str();
}

bool IsValidRuleId(const std::string& rule) {
  int segments = 1;
  bool segment_empty = true;
  for (char c : rule) {
    if (c == '.') {
      if (segment_empty) return false;
      ++segments;
      segment_empty = true;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
    segment_empty = false;
  }
  return segments >= 2 && !segment_empty;
}

void ValidationReport::Add(Severity severity, std::string rule, int node,
                           std::string message) {
  Add(severity, std::move(rule), node, std::move(message), std::string());
}

void ValidationReport::Add(Severity severity, std::string rule, int node,
                           std::string message, std::string fixit) {
  Diagnostic diag;
  diag.severity = severity;
  diag.rule = std::move(rule);
  diag.node = node;
  diag.message = std::move(message);
  diag.fixit = std::move(fixit);
  diagnostics_.push_back(std::move(diag));
}

void ValidationReport::Merge(ValidationReport other) {
  for (auto& diag : other.diagnostics_) {
    diagnostics_.push_back(std::move(diag));
  }
}

void ValidationReport::SortBySeverity() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
}

int ValidationReport::Deduplicate() {
  std::set<std::tuple<int, std::string, int, std::string>> seen;
  std::vector<Diagnostic> kept;
  kept.reserve(diagnostics_.size());
  for (Diagnostic& diag : diagnostics_) {
    auto key = std::make_tuple(static_cast<int>(diag.severity), diag.rule,
                               diag.node, diag.message);
    if (seen.insert(std::move(key)).second) kept.push_back(std::move(diag));
  }
  const int removed =
      static_cast<int>(diagnostics_.size()) - static_cast<int>(kept.size());
  diagnostics_ = std::move(kept);
  return removed;
}

int ValidationReport::CountOf(Severity severity) const {
  int count = 0;
  for (const Diagnostic& diag : diagnostics_) {
    if (diag.severity == severity) ++count;
  }
  return count;
}

bool ValidationReport::HasRule(const std::string& rule) const {
  return FindRule(rule) != nullptr;
}

const Diagnostic* ValidationReport::FindRule(const std::string& rule) const {
  for (const Diagnostic& diag : diagnostics_) {
    if (diag.rule == rule) return &diag;
  }
  return nullptr;
}

std::string ValidationReport::ToString() const {
  std::ostringstream os;
  os << "ValidationReport{" << errors() << " errors, " << warnings()
     << " warnings, " << CountOf(Severity::kInfo) << " infos}";
  for (const Diagnostic& diag : diagnostics_) {
    os << "\n  " << diag.ToString();
  }
  return os.str();
}

SuppressionBaseline SuppressionBaseline::Parse(const std::string& text) {
  SuppressionBaseline baseline;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string scope;
    std::string rule;
    if (fields >> scope >> rule) baseline.Add(scope, rule);
  }
  return baseline;
}

void SuppressionBaseline::Add(const std::string& scope,
                              const std::string& rule) {
  entries_.emplace_back(scope, rule);
}

bool SuppressionBaseline::IsSuppressed(const std::string& scope,
                                       const std::string& rule) const {
  for (const auto& entry : entries_) {
    if (entry.first == scope && entry.second == rule) return true;
  }
  return false;
}

ValidationReport SuppressionBaseline::Filter(
    const std::string& scope, const ValidationReport& report) const {
  ValidationReport out;
  for (const Diagnostic& diag : report.diagnostics()) {
    if (!IsSuppressed(scope, diag.rule)) {
      out.Add(diag.severity, diag.rule, diag.node, diag.message, diag.fixit);
    }
  }
  return out;
}

std::string SuppressionBaseline::Serialize() const {
  std::set<std::string> lines;
  for (const auto& entry : entries_) {
    lines.insert(entry.first + " " + entry.second);
  }
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

void RecordDiagnostics(const ValidationReport& report,
                       obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->Increment("analysis.validations");
  metrics->Increment("analysis.diagnostics.error", report.errors());
  metrics->Increment("analysis.diagnostics.warning", report.warnings());
  metrics->Increment("analysis.diagnostics.info",
                     report.CountOf(Severity::kInfo));
}

}  // namespace analysis
}  // namespace keystone
