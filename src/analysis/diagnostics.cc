#include "src/analysis/diagnostics.h"

#include <sstream>
#include <utility>

#include "src/obs/metrics.h"

namespace keystone {
namespace analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityName(severity) << " [" << rule << "]";
  if (node >= 0) os << " node " << node;
  os << ": " << message;
  return os.str();
}

void ValidationReport::Add(Severity severity, std::string rule, int node,
                           std::string message) {
  Diagnostic diag;
  diag.severity = severity;
  diag.rule = std::move(rule);
  diag.node = node;
  diag.message = std::move(message);
  diagnostics_.push_back(std::move(diag));
}

void ValidationReport::Merge(ValidationReport other) {
  for (auto& diag : other.diagnostics_) {
    diagnostics_.push_back(std::move(diag));
  }
}

int ValidationReport::CountOf(Severity severity) const {
  int count = 0;
  for (const Diagnostic& diag : diagnostics_) {
    if (diag.severity == severity) ++count;
  }
  return count;
}

bool ValidationReport::HasRule(const std::string& rule) const {
  return FindRule(rule) != nullptr;
}

const Diagnostic* ValidationReport::FindRule(const std::string& rule) const {
  for (const Diagnostic& diag : diagnostics_) {
    if (diag.rule == rule) return &diag;
  }
  return nullptr;
}

std::string ValidationReport::ToString() const {
  std::ostringstream os;
  os << "ValidationReport{" << errors() << " errors, " << warnings()
     << " warnings, " << CountOf(Severity::kInfo) << " infos}";
  for (const Diagnostic& diag : diagnostics_) {
    os << "\n  " << diag.ToString();
  }
  return os.str();
}

void RecordDiagnostics(const ValidationReport& report,
                       obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->Increment("analysis.validations");
  metrics->Increment("analysis.diagnostics.error", report.errors());
  metrics->Increment("analysis.diagnostics.warning", report.warnings());
  metrics->Increment("analysis.diagnostics.info",
                     report.CountOf(Severity::kInfo));
}

}  // namespace analysis
}  // namespace keystone
