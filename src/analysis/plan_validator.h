#ifndef KEYSTONE_ANALYSIS_PLAN_VALIDATOR_H_
#define KEYSTONE_ANALYSIS_PLAN_VALIDATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/physical_plan.h"
#include "src/core/pipeline_graph.h"
#include "src/optimizer/materialization.h"
#include "src/sim/cost_profile.h"
#include "src/sim/faults/fault_plan.h"

namespace keystone {
namespace analysis {

/// Rule catalogue of the plan validator. Every diagnostic carries one of
/// these stable identifiers; tests and tooling match on them.
namespace rules {
// --- Structural invariants of the operator DAG (Figure 5 node kinds) ----
inline constexpr char kAritySource[] = "arity.source";
inline constexpr char kArityTransformer[] = "arity.transformer";
inline constexpr char kArityEstimator[] = "arity.estimator";
inline constexpr char kArityApplyModel[] = "arity.apply-model";
inline constexpr char kArityGather[] = "arity.gather";
inline constexpr char kEdgeOutOfRange[] = "edge.out-of-range";
inline constexpr char kEdgeForward[] = "edge.forward";
inline constexpr char kModelMissing[] = "model.missing";
inline constexpr char kModelNotEstimator[] = "model.not-estimator";
inline constexpr char kModelOnNonApply[] = "model.on-non-apply";
inline constexpr char kPayloadMissing[] = "payload.missing";
inline constexpr char kDatasetEstimatorOutput[] = "dataset.estimator-output";
// --- Whole-graph rules --------------------------------------------------
inline constexpr char kUnreachable[] = "graph.unreachable";
inline constexpr char kPlaceholderInvalid[] = "placeholder.invalid";
inline constexpr char kPlaceholderUnbound[] = "placeholder.unbound";
inline constexpr char kPlaceholderTrainPath[] = "placeholder.train-path";
inline constexpr char kMissedCse[] = "optimizer.missed-cse";
// --- Materialization-plan rules -----------------------------------------
inline constexpr char kCacheSetSize[] = "cache.set-size";
inline constexpr char kCacheOverBudget[] = "cache.over-budget";
inline constexpr char kCacheDeadNode[] = "cache.dead-node";
inline constexpr char kCacheNotCacheable[] = "cache.not-cacheable";
// --- Cost sanity --------------------------------------------------------
inline constexpr char kCostInvalid[] = "cost.invalid";
inline constexpr char kCostProfile[] = "cost.profile";
// --- Fault-injection config sanity --------------------------------------
inline constexpr char kFaultRate[] = "fault.rate";
inline constexpr char kFaultRetry[] = "fault.retry";
inline constexpr char kFaultStraggler[] = "fault.straggler";
// --- Servable-plan rules (the apply-masked runtime path) ----------------
inline constexpr char kServePlaceholderMissing[] = "serve.placeholder-missing";
inline constexpr char kServeEmptyRuntimePath[] = "serve.empty-runtime-path";
inline constexpr char kServeTrainOnlyTerminal[] = "serve.train-only-terminal";
inline constexpr char kServeTrainDependency[] = "serve.train-dependency";
inline constexpr char kServeUnboundSource[] = "serve.unbound-source";
inline constexpr char kServeEstimatorOnRuntimePath[] =
    "serve.estimator-on-runtime-path";
inline constexpr char kServeModelMissing[] = "serve.model-missing";
// --- Cross-run reuse rules (ReusePass markers / ArtifactCatalog) --------
inline constexpr char kReuseMissingEntry[] = "reuse.missing-entry";
inline constexpr char kReuseFingerprintMismatch[] =
    "reuse.fingerprint-mismatch";
inline constexpr char kReuseStaleGeneration[] = "reuse.stale-generation";
inline constexpr char kReuseBudgetOverflow[] = "reuse.budget-overflow";
inline constexpr char kReusePrunedDemand[] = "reuse.pruned-demand";
}  // namespace rules

/// What the validator knows about the plan beyond the bare graph.
struct PlanValidationOptions {
  /// Sink node the pipeline is demanded at; enables reachability rules
  /// (graph.unreachable) when >= 0.
  int sink = -1;

  /// The pipeline's runtime-input placeholder; enables the fitted-pipeline
  /// placeholder rules (placeholder.invalid / placeholder.unbound) when
  /// >= 0. placeholder.train-path is checked for every placeholder in the
  /// graph regardless.
  int placeholder = -1;

  /// The plan claims to be post-CSE: structurally identical subgraphs that
  /// survived optimization are reported as optimizer.missed-cse warnings.
  /// Only nodes feeding the sink count (CSE leaves merged-away duplicates
  /// in place as dead nodes; those are not "missed").
  bool expect_cse = false;

  /// Emit graph.unreachable warnings for nodes that do not feed the sink.
  /// The executor disables this for post-rewrite plans, where dead
  /// duplicates are the expected residue of CSE.
  bool warn_unreachable = true;
};

/// Static analyzer for pipeline plans: walks a PipelineGraph (pre- or
/// post-rewrite) and emits structured diagnostics for broken invariants.
/// Purely read-only; fail-fast policy is the caller's decision (the
/// executor aborts on kError when OptimizationConfig::validate_plans is
/// set — see PipelineExecutor::FitGraph).
class PlanValidator {
 public:
  PlanValidator() = default;
  explicit PlanValidator(PlanValidationOptions options)
      : options_(options) {}

  /// Structural + whole-graph rules over the operator DAG. Reachability-
  /// based rules are skipped when edge errors were found (traversal over a
  /// graph with dangling edges is undefined).
  ValidationReport Validate(const PipelineGraph& graph) const;

  /// Materialization-plan rules: cache-set shape, memory budget, per-node
  /// runtime-info sanity. Complements Validate (which covers the graph
  /// itself); the two reports are typically merged by the caller.
  ValidationReport ValidatePlan(const MaterializationProblem& problem,
                                const std::vector<bool>& cache_set) const;

  const PlanValidationOptions& options() const { return options_; }

 private:
  PlanValidationOptions options_;
};

/// Appends a cost.profile error to `report` when `cost` contains negative
/// or non-finite FLOPs/bytes/network/rounds. `what` names the profile's
/// origin in the message (e.g. the operator name).
void CheckCostProfile(const CostProfile& cost, int node,
                      const std::string& what, ValidationReport* report);

/// Validates a fault-injection configuration before PlanRunner replays a
/// pass under it: every rate must be a finite probability in [0, 1] (with
/// the two failure kinds summing to at most 1 — they partition one uniform
/// draw), the retry policy must be sane (non-negative retry bound, finite
/// non-negative base backoff, multiplier >= 1), and the straggler model
/// must slow tasks down (multiplier and speculation cap >= 1). Errors use
/// the fault.* rules; wired behind OptimizationConfig::validate_plans.
ValidationReport ValidateFaultConfig(
    const faults::FaultInjectionConfig& config);

/// Validates the servable (apply-masked) view of a compiled plan — the
/// exact node set PlanRunner::RunApply executes per request. Every
/// condition reported here as a serve.* error would otherwise abort inside
/// the runner mid-request:
///  - the plan must carry a runtime placeholder and a non-empty runtime
///    path ending at the sink (no train-only terminals);
///  - every dataset edge consumed on the runtime path must come from the
///    placeholder or another runtime node (train-only intermediates are
///    stripped and unavailable at serve time);
///  - no estimator may sit on the runtime path, and any source or
///    placeholder inside the runtime mask must be the bound runtime input
///    itself, not an unbound stand-in;
///  - with `models` supplied (ServablePipeline validation), every
///    apply-model node must have a fitted model for its estimator.
ValidationReport ValidateServablePlan(
    const PhysicalPlan& plan,
    const std::map<int, std::shared_ptr<TransformerBase>>* models = nullptr);

/// Validates the cross-run reuse markers the ReusePass left on a plan —
/// the plan-only half of the reuse.* rules (the catalog cross-check lives
/// in cache::ValidateReuse, next to the catalog):
///  - only train transformer/gather nodes may carry reused/reuse_pruned
///    (estimators, sources, and placeholders never come from the catalog);
///  - a reused node's recorded catalog key must equal its lineage
///    fingerprint (reuse.fingerprint-mismatch);
///  - no executing train node may consume a reuse-pruned input — pruning
///    is only sound below a reused node (reuse.pruned-demand).
/// Trivially clean for plans compiled without a catalog.
ValidationReport ValidateReuseMarkers(const PhysicalPlan& plan);

}  // namespace analysis
}  // namespace keystone

#endif  // KEYSTONE_ANALYSIS_PLAN_VALIDATOR_H_
