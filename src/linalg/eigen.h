#ifndef KEYSTONE_LINALG_EIGEN_H_
#define KEYSTONE_LINALG_EIGEN_H_

#include <vector>

#include "src/linalg/matrix.h"

namespace keystone {

/// Eigendecomposition of a symmetric matrix: A = V diag(values) V^T.
/// `values` are sorted in descending order and `vectors` columns correspond.
struct SymmetricEigenResult {
  std::vector<double> values;
  Matrix vectors;  // n x n; column j is the eigenvector for values[j].
};

/// Cyclic Jacobi eigensolver for symmetric matrices. Robust and accurate;
/// O(n^3) per sweep with a handful of sweeps to convergence. Suitable for the
/// covariance matrices PCA and GMM operate on (d up to a few thousand).
SymmetricEigenResult SymmetricEigen(const Matrix& a, double tol = 1e-12,
                                    int max_sweeps = 64);

}  // namespace keystone

#endif  // KEYSTONE_LINALG_EIGEN_H_
