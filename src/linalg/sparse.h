#ifndef KEYSTONE_LINALG_SPARSE_H_
#define KEYSTONE_LINALG_SPARSE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/linalg/matrix.h"

namespace keystone {

/// A single sparse vector as (index, value) pairs sorted by index. Text
/// featurizers emit these; SparseMatrix::FromRows assembles them.
struct SparseVector {
  std::vector<uint32_t> indices;
  std::vector<double> values;
  size_t dim = 0;

  size_t nnz() const { return indices.size(); }

  /// Adds `value` at `index` (caller keeps indices sorted or calls Sort()).
  void Push(uint32_t index, double value) {
    indices.push_back(index);
    values.push_back(value);
  }

  /// Sorts entries by index and merges duplicates (summing values).
  void SortAndMerge();

  /// Dot product with a dense vector of length >= dim.
  double Dot(const std::vector<double>& dense) const;

  /// L2 norm.
  double Norm() const;
};

/// Compressed sparse row matrix. Rows are examples, columns features. Used
/// by the sparse solvers (L-BFGS on text features) and text featurization.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from per-row sparse vectors; `cols` fixes the feature dimension.
  static SparseMatrix FromRows(const std::vector<SparseVector>& rows,
                               size_t cols);

  /// Converts a dense matrix, keeping entries with |v| > tol.
  static SparseMatrix FromDense(const Matrix& dense, double tol = 0.0);

  size_t rows() const { return row_offsets_.empty() ? 0 : row_offsets_.size() - 1; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// Fraction of entries that are non-zero.
  double Density() const;

  /// Row i as (begin, end) half-open range into indices()/values().
  std::pair<size_t, size_t> RowRange(size_t i) const {
    return {row_offsets_[i], row_offsets_[i + 1]};
  }

  const std::vector<uint32_t>& indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

  /// y = A * x. x has length cols().
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// y = A^T * x. x has length rows().
  std::vector<double> MatTVec(const std::vector<double>& x) const;

  /// Dense product A * B where B is cols() x k dense. Returns rows() x k.
  Matrix MatMul(const Matrix& b) const;

  /// Dense product A^T * B where B is rows() x k dense. Returns cols() x k.
  Matrix TransMatMul(const Matrix& b) const;

  /// Row i dot a dense vector.
  double RowDot(size_t i, const std::vector<double>& x) const;

  /// Returns a dense copy (small matrices / tests only).
  Matrix ToDense() const;

  /// Returns the submatrix with rows [begin, end).
  SparseMatrix RowSlice(size_t begin, size_t end) const;

  /// Approximate bytes of storage (for cost models and cache accounting).
  size_t MemoryBytes() const;

 private:
  size_t cols_ = 0;
  std::vector<size_t> row_offsets_{0};
  std::vector<uint32_t> col_indices_;
  std::vector<double> values_;
};

}  // namespace keystone

#endif  // KEYSTONE_LINALG_SPARSE_H_
