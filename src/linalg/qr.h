#ifndef KEYSTONE_LINALG_QR_H_
#define KEYSTONE_LINALG_QR_H_

#include "src/linalg/matrix.h"

namespace keystone {

/// Result of a reduced QR factorization A = Q * R with A (n x d, n >= d),
/// Q (n x d) orthonormal columns and R (d x d) upper triangular.
struct QrResult {
  Matrix q;
  Matrix r;
};

/// Householder QR factorization (reduced form). Requires rows >= cols.
/// Cost: O(n d^2) flops.
QrResult HouseholderQr(const Matrix& a);

/// Solves R x = b for upper-triangular R via back substitution. b may have
/// multiple columns.
Matrix BackSubstitute(const Matrix& r, const Matrix& b);

/// Solves L x = b for lower-triangular L via forward substitution.
Matrix ForwardSubstitute(const Matrix& l, const Matrix& b);

/// Least-squares solve min_X ||A X - B||_F via Householder QR.
/// A is n x d (n >= d), B is n x k; returns the d x k solution.
Matrix LeastSquaresQr(const Matrix& a, const Matrix& b);

/// Cholesky factorization of a symmetric positive-definite matrix: returns
/// lower-triangular L with A = L L^T. Adds `jitter` * I if needed for
/// numerical stability (returns false only if factorization fails outright).
bool Cholesky(const Matrix& a, Matrix* l, double jitter = 0.0);

/// Solves the SPD system A x = b via Cholesky. B may have multiple columns.
Matrix SolveSpd(const Matrix& a, const Matrix& b, double ridge = 0.0);

}  // namespace keystone

#endif  // KEYSTONE_LINALG_QR_H_
