#ifndef KEYSTONE_LINALG_SVD_H_
#define KEYSTONE_LINALG_SVD_H_

#include <vector>

#include "src/linalg/matrix.h"

namespace keystone {

class Rng;

/// Thin singular value decomposition A = U diag(s) V^T with A (n x d),
/// U (n x r), V (d x r), r = min(n, d) for the exact form or k for the
/// truncated form. Singular values are sorted descending.
struct SvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;  // d x r; columns are right singular vectors.
};

/// Exact thin SVD computed from the eigendecomposition of the Gram matrix
/// (A^T A when d <= n, A A^T otherwise). Accurate for the well-conditioned
/// covariance-style inputs PCA sees. Cost: O(n d^2 + d^3) for n >= d.
SvdResult ExactSvd(const Matrix& a);

/// Randomized truncated SVD (Halko, Martinsson, Tropp 2011): finds the top-k
/// singular triplets using a Gaussian range finder with `power_iters` power
/// iterations and `oversample` extra probe directions.
/// Cost: O(n d (k + oversample)) — linear in d instead of quadratic.
SvdResult TruncatedSvd(const Matrix& a, size_t k, Rng* rng,
                       int power_iters = 2, size_t oversample = 8);

/// Reconstructs U diag(s) V^T (tests and error measurement).
Matrix SvdReconstruct(const SvdResult& svd);

}  // namespace keystone

#endif  // KEYSTONE_LINALG_SVD_H_
