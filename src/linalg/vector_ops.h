#ifndef KEYSTONE_LINALG_VECTOR_OPS_H_
#define KEYSTONE_LINALG_VECTOR_OPS_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "src/common/check.h"

namespace keystone {

/// Dot product of equal-length vectors.
inline double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  KS_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

/// y += alpha * x.
inline void Axpy(double alpha, const std::vector<double>& x,
                 std::vector<double>* y) {
  KS_DCHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

/// x *= alpha.
inline void Scale(double alpha, std::vector<double>* x) {
  for (auto& v : *x) v *= alpha;
}

/// Euclidean norm.
inline double Norm2(const std::vector<double>& x) {
  return std::sqrt(Dot(x, x));
}

/// Squared Euclidean distance between equal-length vectors.
inline double SquaredDistance(const std::vector<double>& a,
                              const std::vector<double>& b) {
  KS_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

/// Elementwise a - b.
inline std::vector<double> Subtract(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  KS_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

/// Elementwise a + b.
inline std::vector<double> Add(const std::vector<double>& a,
                               const std::vector<double>& b) {
  KS_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

/// Index of the maximum element (first on ties). Requires non-empty input.
inline size_t ArgMax(const std::vector<double>& x) {
  KS_CHECK(!x.empty());
  size_t best = 0;
  for (size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

}  // namespace keystone

#endif  // KEYSTONE_LINALG_VECTOR_OPS_H_
