#include "src/linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"

namespace keystone {

SymmetricEigenResult SymmetricEigen(const Matrix& a, double tol,
                                    int max_sweeps) {
  const size_t n = a.rows();
  KS_CHECK_EQ(a.cols(), n);

  Matrix d = a;  // Becomes diagonal.
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Sum of squares of off-diagonal entries.
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    }
    const double scale = d.FrobeniusNorm();
    if (std::sqrt(off) <= tol * (scale > 0 ? scale : 1.0)) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Choose the smaller rotation.
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the Jacobi rotation J(p, q, theta) on both sides of D and
        // accumulate into V.
        for (size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&d](size_t x, size_t y) { return d(x, x) > d(y, y); });

  SymmetricEigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    result.values[j] = d(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) result.vectors(i, j) = v(i, order[j]);
  }
  return result;
}

}  // namespace keystone
