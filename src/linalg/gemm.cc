#include "src/linalg/gemm.h"

#include <algorithm>

#include "src/common/check.h"

namespace keystone {

namespace {
// Block sizes sized for a typical 32 KB L1 / 256 KB L2.
constexpr size_t kBlockI = 64;
constexpr size_t kBlockK = 64;
constexpr size_t kBlockJ = 256;
}  // namespace

void GemmAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  KS_CHECK_EQ(a.cols(), b.rows());
  KS_CHECK_EQ(c->rows(), a.rows());
  KS_CHECK_EQ(c->cols(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t ib = 0; ib < m; ib += kBlockI) {
    const size_t imax = std::min(ib + kBlockI, m);
    for (size_t kb = 0; kb < k; kb += kBlockK) {
      const size_t kmax = std::min(kb + kBlockK, k);
      for (size_t jb = 0; jb < n; jb += kBlockJ) {
        const size_t jmax = std::min(jb + kBlockJ, n);
        for (size_t i = ib; i < imax; ++i) {
          const double* arow = a.RowPtr(i);
          double* crow = c->RowPtr(i);
          for (size_t kk = kb; kk < kmax; ++kk) {
            const double aik = arow[kk];
            if (aik == 0.0) continue;
            const double* brow = b.RowPtr(kk);
            for (size_t j = jb; j < jmax; ++j) {
              crow[j] += aik * brow[j];
            }
          }
        }
      }
    }
  }
}

Matrix Gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  GemmAccumulate(a, b, &c);
  return c;
}

Matrix GemmTransA(const Matrix& a, const Matrix& b) {
  KS_CHECK_EQ(a.rows(), b.rows());
  const size_t m = a.cols();
  const size_t n = b.cols();
  const size_t k = a.rows();
  Matrix c(m, n);
  // (A^T B)_{ij} = sum_r A_{ri} B_{rj}: stream over rows of A and B.
  for (size_t r = 0; r < k; ++r) {
    const double* arow = a.RowPtr(r);
    const double* brow = b.RowPtr(r);
    for (size_t i = 0; i < m; ++i) {
      const double ari = arow[i];
      if (ari == 0.0) continue;
      double* crow = c.RowPtr(i);
      for (size_t j = 0; j < n; ++j) crow[j] += ari * brow[j];
    }
  }
  return c;
}

Matrix GemmTransB(const Matrix& a, const Matrix& b) {
  KS_CHECK_EQ(a.cols(), b.cols());
  const size_t m = a.rows();
  const size_t n = b.rows();
  const size_t k = a.cols();
  Matrix c(m, n);
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.RowPtr(i);
    double* crow = c.RowPtr(i);
    for (size_t j = 0; j < n; ++j) {
      const double* brow = b.RowPtr(j);
      double sum = 0.0;
      for (size_t kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      crow[j] = sum;
    }
  }
  return c;
}

Matrix Gram(const Matrix& a) {
  const size_t n = a.rows();
  const size_t d = a.cols();
  Matrix g(d, d);
  for (size_t r = 0; r < n; ++r) {
    const double* row = a.RowPtr(r);
    for (size_t i = 0; i < d; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      double* grow = g.RowPtr(i);
      // Upper triangle only.
      for (size_t j = i; j < d; ++j) grow[j] += ri * row[j];
    }
  }
  // Mirror to the lower triangle.
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

}  // namespace keystone
