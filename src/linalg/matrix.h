#ifndef KEYSTONE_LINALG_MATRIX_H_
#define KEYSTONE_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace keystone {

class Rng;

/// Dense row-major matrix of doubles. This is the workhorse numeric type for
/// the KeystoneML standard library: solvers, PCA, GMM, convolutions and
/// featurizers all operate on Matrix. The implementation favours clarity and
/// cache-friendly loops (blocked multiply lives in gemm.h) over platform
/// intrinsics.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols);

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(size_t rows, size_t cols, double fill);

  /// Constructs from nested initializer lists (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Matrix with i.i.d. standard normal entries.
  static Matrix GaussianRandom(size_t rows, size_t cols, Rng* rng);

  /// Matrix with i.i.d. Uniform[lo, hi) entries.
  static Matrix UniformRandom(size_t rows, size_t cols, double lo, double hi,
                              Rng* rng);

  /// Builds a matrix whose rows are the given vectors (all equal length).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Raw row pointer (row-major layout).
  double* RowPtr(size_t i) { return data_.data() + i * cols_; }
  const double* RowPtr(size_t i) const { return data_.data() + i * cols_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Returns row i as a vector copy.
  std::vector<double> Row(size_t i) const;

  /// Returns column j as a vector copy.
  std::vector<double> Col(size_t j) const;

  /// Overwrites row i.
  void SetRow(size_t i, const std::vector<double>& values);

  /// Overwrites column j.
  void SetCol(size_t j, const std::vector<double>& values);

  /// Returns rows [row_begin, row_end).
  Matrix RowSlice(size_t row_begin, size_t row_end) const;

  /// Returns columns [col_begin, col_end).
  Matrix ColSlice(size_t col_begin, size_t col_end) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Appends the rows of `other` (column counts must match).
  void AppendRows(const Matrix& other);

  /// Stacks matrices vertically.
  static Matrix VStack(const std::vector<Matrix>& parts);

  /// Concatenates matrices horizontally.
  static Matrix HStack(const std::vector<Matrix>& parts);

  // Element-wise arithmetic.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Largest absolute entry.
  double MaxAbs() const;

  /// Column means as a vector of length cols().
  std::vector<double> ColMeans() const;

  /// Subtracts `means` (length cols()) from every row.
  void SubtractRowVector(const std::vector<double>& means);

  /// True if same shape and max elementwise difference <= tol.
  bool ApproxEquals(const Matrix& other, double tol) const;

  /// Human-readable rendering (for diagnostics and small matrices only).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Matrix product A * B (delegates to the blocked kernel in gemm.h).
Matrix operator*(const Matrix& a, const Matrix& b);

/// y = A * x for a vector x of length A.cols().
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

/// y = A^T * x for a vector x of length A.rows().
std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x);

}  // namespace keystone

#endif  // KEYSTONE_LINALG_MATRIX_H_
