#ifndef KEYSTONE_LINALG_GEMM_H_
#define KEYSTONE_LINALG_GEMM_H_

#include "src/linalg/matrix.h"

namespace keystone {

/// Blocked dense matrix multiply: returns A * B.
/// Cost: O(A.rows * A.cols * B.cols) flops, organized i-k-j with register
/// blocking so the inner loop streams contiguous rows of B.
Matrix Gemm(const Matrix& a, const Matrix& b);

/// Returns A^T * B without materializing the transpose.
Matrix GemmTransA(const Matrix& a, const Matrix& b);

/// Returns A * B^T without materializing the transpose.
Matrix GemmTransB(const Matrix& a, const Matrix& b);

/// C += A * B (shapes must already agree).
void GemmAccumulate(const Matrix& a, const Matrix& b, Matrix* c);

/// Returns the Gram matrix A^T * A, exploiting symmetry.
Matrix Gram(const Matrix& a);

}  // namespace keystone

#endif  // KEYSTONE_LINALG_GEMM_H_
