#include "src/linalg/fft.h"

#include <cmath>

#include "src/common/check.h"

namespace keystone {

namespace {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Core iterative radix-2 Cooley-Tukey; sign = -1 forward, +1 inverse.
void FftRadix2(std::vector<Complex>* data, int sign) {
  const size_t n = data->size();
  KS_CHECK(IsPowerOfTwo(n));
  auto& a = *data;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<Complex>* data) { FftRadix2(data, -1); }

void InverseFft(std::vector<Complex>* data) {
  FftRadix2(data, +1);
  const double inv = 1.0 / static_cast<double>(data->size());
  for (auto& v : *data) v *= inv;
}

std::vector<Complex> FftArbitrary(const std::vector<Complex>& data) {
  const size_t n = data.size();
  if (IsPowerOfTwo(n)) {
    std::vector<Complex> out = data;
    Fft(&out);
    return out;
  }
  // Bluestein: x_k e^{-i pi k^2 / n} convolved with chirp.
  const size_t m = NextPowerOfTwo(2 * n + 1);
  std::vector<Complex> chirp(n);
  for (size_t k = 0; k < n; ++k) {
    const double angle =
        M_PI * static_cast<double>(k) * static_cast<double>(k) / n;
    chirp[k] = Complex(std::cos(angle), -std::sin(angle));
  }
  std::vector<Complex> a(m, Complex(0, 0));
  std::vector<Complex> b(m, Complex(0, 0));
  for (size_t k = 0; k < n; ++k) a[k] = data[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(chirp[k]);
  }
  Fft(&a);
  Fft(&b);
  for (size_t k = 0; k < m; ++k) a[k] *= b[k];
  InverseFft(&a);
  std::vector<Complex> out(n);
  for (size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  return out;
}

std::vector<Complex> InverseFftArbitrary(const std::vector<Complex>& data) {
  // IFFT(x) = conj(FFT(conj(x))) / n.
  const size_t n = data.size();
  std::vector<Complex> conj_in(n);
  for (size_t i = 0; i < n; ++i) conj_in[i] = std::conj(data[i]);
  std::vector<Complex> f = FftArbitrary(conj_in);
  for (auto& v : f) v = std::conj(v) / static_cast<double>(n);
  return f;
}

std::vector<double> FftConvolve(const std::vector<double>& a,
                                const std::vector<double>& b) {
  KS_CHECK(!a.empty());
  KS_CHECK(!b.empty());
  const size_t out_len = a.size() + b.size() - 1;
  const size_t m = NextPowerOfTwo(out_len);
  std::vector<Complex> fa(m, Complex(0, 0));
  std::vector<Complex> fb(m, Complex(0, 0));
  for (size_t i = 0; i < a.size(); ++i) fa[i] = Complex(a[i], 0);
  for (size_t i = 0; i < b.size(); ++i) fb[i] = Complex(b[i], 0);
  Fft(&fa);
  Fft(&fb);
  for (size_t i = 0; i < m; ++i) fa[i] *= fb[i];
  InverseFft(&fa);
  std::vector<double> out(out_len);
  for (size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

Matrix FftConvolve2dValid(const Matrix& image, const Matrix& filter) {
  const size_t n1 = image.rows();
  const size_t n2 = image.cols();
  const size_t k1 = filter.rows();
  const size_t k2 = filter.cols();
  KS_CHECK_GE(n1, k1);
  KS_CHECK_GE(n2, k2);

  const size_t p1 = NextPowerOfTwo(n1 + k1 - 1);
  const size_t p2 = NextPowerOfTwo(n2 + k2 - 1);

  // Pack image and flipped filter into padded complex grids.
  std::vector<std::vector<Complex>> gi(p1, std::vector<Complex>(p2));
  std::vector<std::vector<Complex>> gf(p1, std::vector<Complex>(p2));
  for (size_t i = 0; i < n1; ++i) {
    for (size_t j = 0; j < n2; ++j) gi[i][j] = Complex(image(i, j), 0);
  }
  for (size_t i = 0; i < k1; ++i) {
    for (size_t j = 0; j < k2; ++j) {
      gf[i][j] = Complex(filter(k1 - 1 - i, k2 - 1 - j), 0);
    }
  }

  auto Fft2d = [&](std::vector<std::vector<Complex>>& g, int sign) {
    // Rows.
    for (auto& row : g) FftRadix2(&row, sign);
    // Columns.
    std::vector<Complex> col(p1);
    for (size_t j = 0; j < p2; ++j) {
      for (size_t i = 0; i < p1; ++i) col[i] = g[i][j];
      FftRadix2(&col, sign);
      for (size_t i = 0; i < p1; ++i) g[i][j] = col[i];
    }
  };

  Fft2d(gi, -1);
  Fft2d(gf, -1);
  for (size_t i = 0; i < p1; ++i) {
    for (size_t j = 0; j < p2; ++j) gi[i][j] *= gf[i][j];
  }
  Fft2d(gi, +1);
  const double inv = 1.0 / (static_cast<double>(p1) * static_cast<double>(p2));

  // Extract the valid region: offsets (k1-1, k2-1), size (n-k+1).
  Matrix out(n1 - k1 + 1, n2 - k2 + 1);
  for (size_t i = 0; i < out.rows(); ++i) {
    for (size_t j = 0; j < out.cols(); ++j) {
      out(i, j) = gi[i + k1 - 1][j + k2 - 1].real() * inv;
    }
  }
  return out;
}

}  // namespace keystone
