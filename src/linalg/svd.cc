#include "src/linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/linalg/eigen.h"
#include "src/linalg/gemm.h"
#include "src/linalg/qr.h"

namespace keystone {

namespace {

// Builds the thin SVD from the eigendecomposition of A^T A (d <= n case).
SvdResult SvdFromGram(const Matrix& a) {
  const size_t d = a.cols();
  const Matrix gram = Gram(a);
  SymmetricEigenResult eig = SymmetricEigen(gram);

  SvdResult result;
  result.singular_values.resize(d);
  result.v = eig.vectors;  // d x d
  for (size_t j = 0; j < d; ++j) {
    result.singular_values[j] = std::sqrt(std::max(0.0, eig.values[j]));
  }
  // U = A V S^{-1}; columns with tiny sigma are left as zero.
  Matrix av = Gemm(a, result.v);  // n x d
  result.u = Matrix(a.rows(), d);
  for (size_t j = 0; j < d; ++j) {
    const double s = result.singular_values[j];
    if (s > 1e-12) {
      for (size_t i = 0; i < a.rows(); ++i) result.u(i, j) = av(i, j) / s;
    }
  }
  return result;
}

// Builds the thin SVD from the eigendecomposition of A A^T (n < d case).
SvdResult SvdFromOuter(const Matrix& a) {
  const size_t n = a.rows();
  const Matrix outer = GemmTransB(a, a);  // n x n = A A^T
  SymmetricEigenResult eig = SymmetricEigen(outer);

  SvdResult result;
  result.singular_values.resize(n);
  result.u = eig.vectors;  // n x n
  for (size_t j = 0; j < n; ++j) {
    result.singular_values[j] = std::sqrt(std::max(0.0, eig.values[j]));
  }
  // V = A^T U S^{-1}.
  Matrix atu = GemmTransA(a, result.u);  // d x n
  result.v = Matrix(a.cols(), n);
  for (size_t j = 0; j < n; ++j) {
    const double s = result.singular_values[j];
    if (s > 1e-12) {
      for (size_t i = 0; i < a.cols(); ++i) result.v(i, j) = atu(i, j) / s;
    }
  }
  return result;
}

}  // namespace

SvdResult ExactSvd(const Matrix& a) {
  KS_CHECK(!a.empty());
  return a.cols() <= a.rows() ? SvdFromGram(a) : SvdFromOuter(a);
}

SvdResult TruncatedSvd(const Matrix& a, size_t k, Rng* rng, int power_iters,
                       size_t oversample) {
  KS_CHECK(!a.empty());
  const size_t n = a.rows();
  const size_t d = a.cols();
  const size_t rank = std::min(n, d);
  k = std::min(k, rank);
  const size_t probes = std::min(rank, k + oversample);

  // Range finder: Y = A * Omega, Omega d x probes Gaussian.
  Matrix omega = Matrix::GaussianRandom(d, probes, rng);
  Matrix y = Gemm(a, omega);  // n x probes
  QrResult qr = HouseholderQr(y);
  Matrix q = std::move(qr.q);

  // Power iterations sharpen the spectrum: Q <- orth(A (A^T Q)).
  for (int it = 0; it < power_iters; ++it) {
    Matrix z = GemmTransA(a, q);  // d x probes
    QrResult qrz = HouseholderQr(z);
    Matrix w = Gemm(a, qrz.q);  // n x probes
    QrResult qrw = HouseholderQr(w);
    q = std::move(qrw.q);
  }

  // Project: B = Q^T A (probes x d), then exact SVD of the small B.
  Matrix b = GemmTransA(q, a);
  SvdResult small = ExactSvd(b);

  SvdResult result;
  result.u = Gemm(q, small.u.ColSlice(0, k));
  result.v = small.v.ColSlice(0, k);
  result.singular_values.assign(small.singular_values.begin(),
                                small.singular_values.begin() + k);
  return result;
}

Matrix SvdReconstruct(const SvdResult& svd) {
  Matrix us = svd.u;
  for (size_t j = 0; j < svd.singular_values.size(); ++j) {
    for (size_t i = 0; i < us.rows(); ++i) {
      us(i, j) *= svd.singular_values[j];
    }
  }
  return GemmTransB(us, svd.v);
}

}  // namespace keystone
