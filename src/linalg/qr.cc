#include "src/linalg/qr.h"

#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/linalg/gemm.h"

namespace keystone {

QrResult HouseholderQr(const Matrix& a) {
  const size_t n = a.rows();
  const size_t d = a.cols();
  KS_CHECK_GE(n, d);

  // Work on a copy; accumulate Householder vectors in-place below the
  // diagonal, R above it.
  Matrix work = a;
  std::vector<double> betas(d, 0.0);

  for (size_t k = 0; k < d; ++k) {
    // Compute the Householder reflector for column k, rows k..n-1.
    double norm_sq = 0.0;
    for (size_t i = k; i < n; ++i) norm_sq += work(i, k) * work(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) {
      betas[k] = 0.0;
      continue;
    }
    const double alpha = work(k, k) >= 0 ? -norm : norm;
    // v = x - alpha * e1; normalize so v[0] = 1.
    const double v0 = work(k, k) - alpha;
    if (v0 == 0.0) {
      betas[k] = 0.0;
      work(k, k) = alpha;
      continue;
    }
    for (size_t i = k + 1; i < n; ++i) work(i, k) /= v0;
    // beta = 2 / (v^T v) with v = (1, work(k+1..n-1, k)).
    double vtv = 1.0;
    for (size_t i = k + 1; i < n; ++i) vtv += work(i, k) * work(i, k);
    betas[k] = 2.0 / vtv;
    work(k, k) = alpha;

    // Apply the reflector to the trailing columns: A := (I - beta v v^T) A.
    for (size_t j = k + 1; j < d; ++j) {
      double dot = work(k, j);
      for (size_t i = k + 1; i < n; ++i) dot += work(i, k) * work(i, j);
      const double scale = betas[k] * dot;
      work(k, j) -= scale;
      for (size_t i = k + 1; i < n; ++i) work(i, j) -= scale * work(i, k);
    }
  }

  // Extract R.
  QrResult result;
  result.r = Matrix(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) result.r(i, j) = work(i, j);
  }

  // Form Q by applying reflectors to the identity (reduced: first d columns).
  result.q = Matrix(n, d);
  for (size_t j = 0; j < d; ++j) result.q(j, j) = 1.0;
  for (size_t k = d; k-- > 0;) {
    if (betas[k] == 0.0) continue;
    for (size_t j = 0; j < d; ++j) {
      double dot = result.q(k, j);
      for (size_t i = k + 1; i < n; ++i) dot += work(i, k) * result.q(i, j);
      const double scale = betas[k] * dot;
      result.q(k, j) -= scale;
      for (size_t i = k + 1; i < n; ++i) {
        result.q(i, j) -= scale * work(i, k);
      }
    }
  }
  return result;
}

Matrix BackSubstitute(const Matrix& r, const Matrix& b) {
  const size_t d = r.rows();
  KS_CHECK_EQ(r.cols(), d);
  KS_CHECK_EQ(b.rows(), d);
  Matrix x(d, b.cols());
  for (size_t col = 0; col < b.cols(); ++col) {
    for (size_t i = d; i-- > 0;) {
      double sum = b(i, col);
      for (size_t j = i + 1; j < d; ++j) sum -= r(i, j) * x(j, col);
      const double diag = r(i, i);
      x(i, col) = diag != 0.0 ? sum / diag : 0.0;
    }
  }
  return x;
}

Matrix ForwardSubstitute(const Matrix& l, const Matrix& b) {
  const size_t d = l.rows();
  KS_CHECK_EQ(l.cols(), d);
  KS_CHECK_EQ(b.rows(), d);
  Matrix x(d, b.cols());
  for (size_t col = 0; col < b.cols(); ++col) {
    for (size_t i = 0; i < d; ++i) {
      double sum = b(i, col);
      for (size_t j = 0; j < i; ++j) sum -= l(i, j) * x(j, col);
      const double diag = l(i, i);
      x(i, col) = diag != 0.0 ? sum / diag : 0.0;
    }
  }
  return x;
}

Matrix LeastSquaresQr(const Matrix& a, const Matrix& b) {
  KS_CHECK_EQ(a.rows(), b.rows());
  QrResult qr = HouseholderQr(a);
  const Matrix qtb = GemmTransA(qr.q, b);
  return BackSubstitute(qr.r, qtb);
}

bool Cholesky(const Matrix& a, Matrix* l, double jitter) {
  const size_t n = a.rows();
  KS_CHECK_EQ(a.cols(), n);
  *l = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (size_t k = 0; k < j; ++k) diag -= (*l)(j, k) * (*l)(j, k);
    if (diag <= 0.0) return false;
    const double ljj = std::sqrt(diag);
    (*l)(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= (*l)(i, k) * (*l)(j, k);
      (*l)(i, j) = sum / ljj;
    }
  }
  return true;
}

Matrix SolveSpd(const Matrix& a, const Matrix& b, double ridge) {
  Matrix l;
  double jitter = ridge;
  for (int attempt = 0; attempt < 6; ++attempt) {
    if (Cholesky(a, &l, jitter)) {
      const Matrix y = ForwardSubstitute(l, b);
      return BackSubstitute(l.Transposed(), y);
    }
    jitter = jitter == 0.0 ? 1e-10 * (1.0 + a.MaxAbs()) : jitter * 100.0;
  }
  KS_CHECK(false) << "SolveSpd: matrix is not positive definite";
  return Matrix();
}

}  // namespace keystone
