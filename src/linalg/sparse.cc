#include "src/linalg/sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"

namespace keystone {

void SparseVector::SortAndMerge() {
  const size_t n = indices.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [this](size_t a, size_t b) { return indices[a] < indices[b]; });
  std::vector<uint32_t> new_indices;
  std::vector<double> new_values;
  new_indices.reserve(n);
  new_values.reserve(n);
  for (size_t pos : order) {
    if (!new_indices.empty() && new_indices.back() == indices[pos]) {
      new_values.back() += values[pos];
    } else {
      new_indices.push_back(indices[pos]);
      new_values.push_back(values[pos]);
    }
  }
  indices = std::move(new_indices);
  values = std::move(new_values);
}

double SparseVector::Dot(const std::vector<double>& dense) const {
  double sum = 0.0;
  for (size_t i = 0; i < indices.size(); ++i) {
    sum += values[i] * dense[indices[i]];
  }
  return sum;
}

double SparseVector::Norm() const {
  double sum = 0.0;
  for (double v : values) sum += v * v;
  return std::sqrt(sum);
}

SparseMatrix SparseMatrix::FromRows(const std::vector<SparseVector>& rows,
                                    size_t cols) {
  SparseMatrix m;
  m.cols_ = cols;
  size_t total = 0;
  for (const auto& r : rows) total += r.nnz();
  m.col_indices_.reserve(total);
  m.values_.reserve(total);
  m.row_offsets_.reserve(rows.size() + 1);
  for (const auto& r : rows) {
    for (size_t i = 0; i < r.nnz(); ++i) {
      KS_CHECK_LT(r.indices[i], cols);
      m.col_indices_.push_back(r.indices[i]);
      m.values_.push_back(r.values[i]);
    }
    m.row_offsets_.push_back(m.col_indices_.size());
  }
  return m;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense, double tol) {
  SparseMatrix m;
  m.cols_ = dense.cols();
  for (size_t i = 0; i < dense.rows(); ++i) {
    const double* row = dense.RowPtr(i);
    for (size_t j = 0; j < dense.cols(); ++j) {
      if (std::fabs(row[j]) > tol) {
        m.col_indices_.push_back(static_cast<uint32_t>(j));
        m.values_.push_back(row[j]);
      }
    }
    m.row_offsets_.push_back(m.col_indices_.size());
  }
  return m;
}

double SparseMatrix::Density() const {
  const size_t total = rows() * cols();
  return total == 0 ? 0.0 : static_cast<double>(nnz()) / total;
}

std::vector<double> SparseMatrix::MatVec(const std::vector<double>& x) const {
  KS_CHECK_EQ(x.size(), cols_);
  std::vector<double> y(rows(), 0.0);
  for (size_t i = 0; i < rows(); ++i) {
    double sum = 0.0;
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      sum += values_[p] * x[col_indices_[p]];
    }
    y[i] = sum;
  }
  return y;
}

std::vector<double> SparseMatrix::MatTVec(const std::vector<double>& x) const {
  KS_CHECK_EQ(x.size(), rows());
  std::vector<double> y(cols_, 0.0);
  for (size_t i = 0; i < rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      y[col_indices_[p]] += values_[p] * xi;
    }
  }
  return y;
}

Matrix SparseMatrix::MatMul(const Matrix& b) const {
  KS_CHECK_EQ(b.rows(), cols_);
  Matrix c(rows(), b.cols());
  for (size_t i = 0; i < rows(); ++i) {
    double* crow = c.RowPtr(i);
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      const double v = values_[p];
      const double* brow = b.RowPtr(col_indices_[p]);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

Matrix SparseMatrix::TransMatMul(const Matrix& b) const {
  KS_CHECK_EQ(b.rows(), rows());
  Matrix c(cols_, b.cols());
  for (size_t i = 0; i < rows(); ++i) {
    const double* brow = b.RowPtr(i);
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      const double v = values_[p];
      double* crow = c.RowPtr(col_indices_[p]);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

double SparseMatrix::RowDot(size_t i, const std::vector<double>& x) const {
  KS_CHECK_LT(i, rows());
  double sum = 0.0;
  for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
    sum += values_[p] * x[col_indices_[p]];
  }
  return sum;
}

Matrix SparseMatrix::ToDense() const {
  Matrix m(rows(), cols_);
  for (size_t i = 0; i < rows(); ++i) {
    double* row = m.RowPtr(i);
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      row[col_indices_[p]] = values_[p];
    }
  }
  return m;
}

SparseMatrix SparseMatrix::RowSlice(size_t begin, size_t end) const {
  KS_CHECK_LE(begin, end);
  KS_CHECK_LE(end, rows());
  SparseMatrix out;
  out.cols_ = cols_;
  const size_t p0 = row_offsets_[begin];
  const size_t p1 = row_offsets_[end];
  out.col_indices_.assign(col_indices_.begin() + p0, col_indices_.begin() + p1);
  out.values_.assign(values_.begin() + p0, values_.begin() + p1);
  out.row_offsets_.clear();
  for (size_t i = begin; i <= end; ++i) {
    out.row_offsets_.push_back(row_offsets_[i] - p0);
  }
  return out;
}

size_t SparseMatrix::MemoryBytes() const {
  return values_.size() * (sizeof(double) + sizeof(uint32_t)) +
         row_offsets_.size() * sizeof(size_t);
}

}  // namespace keystone
