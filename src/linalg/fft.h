#ifndef KEYSTONE_LINALG_FFT_H_
#define KEYSTONE_LINALG_FFT_H_

#include <complex>
#include <vector>

#include "src/linalg/matrix.h"

namespace keystone {

using Complex = std::complex<double>;

/// In-place forward FFT. Length must be a power of two (iterative radix-2).
void Fft(std::vector<Complex>* data);

/// In-place inverse FFT (includes the 1/n scaling).
void InverseFft(std::vector<Complex>* data);

/// Forward FFT of arbitrary length via Bluestein's chirp-z transform.
std::vector<Complex> FftArbitrary(const std::vector<Complex>& data);

/// Inverse FFT of arbitrary length (includes the 1/n scaling).
std::vector<Complex> InverseFftArbitrary(const std::vector<Complex>& data);

/// Smallest power of two >= n.
size_t NextPowerOfTwo(size_t n);

/// Linear (full) convolution of two real signals via FFT.
/// Output length is a.size() + b.size() - 1.
std::vector<double> FftConvolve(const std::vector<double>& a,
                                const std::vector<double>& b);

/// 2-D "valid" convolution of an image (n1 x n2) with a filter (k1 x k2)
/// computed with 2-D FFTs. Matches the direct valid convolution:
/// out(i,j) = sum_{p,q} image(i+p, j+q) * filter(p, q).
/// Cost: O(N^2 log N) with N the padded size — independent of k.
Matrix FftConvolve2dValid(const Matrix& image, const Matrix& filter);

}  // namespace keystone

#endif  // KEYSTONE_LINALG_FFT_H_
