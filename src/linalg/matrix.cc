#include "src/linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/linalg/gemm.h"

namespace keystone {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    KS_CHECK_EQ(row.size(), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::GaussianRandom(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->NextGaussian();
  return m;
}

Matrix Matrix::UniformRandom(size_t rows, size_t cols, double lo, double hi,
                             Rng* rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->Uniform(lo, hi);
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) m.SetRow(i, rows[i]);
  return m;
}

std::vector<double> Matrix::Row(size_t i) const {
  KS_CHECK_LT(i, rows_);
  return std::vector<double>(RowPtr(i), RowPtr(i) + cols_);
}

std::vector<double> Matrix::Col(size_t j) const {
  KS_CHECK_LT(j, cols_);
  std::vector<double> out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void Matrix::SetRow(size_t i, const std::vector<double>& values) {
  KS_CHECK_LT(i, rows_);
  KS_CHECK_EQ(values.size(), cols_);
  std::copy(values.begin(), values.end(), RowPtr(i));
}

void Matrix::SetCol(size_t j, const std::vector<double>& values) {
  KS_CHECK_LT(j, cols_);
  KS_CHECK_EQ(values.size(), rows_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
}

Matrix Matrix::RowSlice(size_t row_begin, size_t row_end) const {
  KS_CHECK_LE(row_begin, row_end);
  KS_CHECK_LE(row_end, rows_);
  Matrix out(row_end - row_begin, cols_);
  std::copy(RowPtr(row_begin), RowPtr(row_begin) + out.size(), out.data());
  return out;
}

Matrix Matrix::ColSlice(size_t col_begin, size_t col_end) const {
  KS_CHECK_LE(col_begin, col_end);
  KS_CHECK_LE(col_end, cols_);
  Matrix out(rows_, col_end - col_begin);
  for (size_t i = 0; i < rows_; ++i) {
    std::copy(RowPtr(i) + col_begin, RowPtr(i) + col_end, out.RowPtr(i));
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Blocked transpose for cache friendliness.
  constexpr size_t kBlock = 32;
  for (size_t ib = 0; ib < rows_; ib += kBlock) {
    const size_t imax = std::min(ib + kBlock, rows_);
    for (size_t jb = 0; jb < cols_; jb += kBlock) {
      const size_t jmax = std::min(jb + kBlock, cols_);
      for (size_t i = ib; i < imax; ++i) {
        for (size_t j = jb; j < jmax; ++j) {
          out(j, i) = (*this)(i, j);
        }
      }
    }
  }
  return out;
}

void Matrix::AppendRows(const Matrix& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  KS_CHECK_EQ(cols_, other.cols_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

Matrix Matrix::VStack(const std::vector<Matrix>& parts) {
  Matrix out;
  for (const auto& p : parts) out.AppendRows(p);
  return out;
}

Matrix Matrix::HStack(const std::vector<Matrix>& parts) {
  if (parts.empty()) return Matrix();
  size_t cols = 0;
  for (const auto& p : parts) {
    KS_CHECK_EQ(p.rows(), parts[0].rows());
    cols += p.cols();
  }
  Matrix out(parts[0].rows(), cols);
  for (size_t i = 0; i < out.rows(); ++i) {
    double* dst = out.RowPtr(i);
    for (const auto& p : parts) {
      std::copy(p.RowPtr(i), p.RowPtr(i) + p.cols(), dst);
      dst += p.cols();
    }
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  KS_CHECK_EQ(rows_, other.rows_);
  KS_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  KS_CHECK_EQ(rows_, other.rows_);
  KS_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

std::vector<double> Matrix::ColMeans() const {
  std::vector<double> means(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) means[j] += row[j];
  }
  if (rows_ > 0) {
    for (auto& m : means) m /= static_cast<double>(rows_);
  }
  return means;
}

void Matrix::SubtractRowVector(const std::vector<double>& means) {
  KS_CHECK_EQ(means.size(), cols_);
  for (size_t i = 0; i < rows_; ++i) {
    double* row = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) row[j] -= means[j];
  }
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [\n";
  const size_t show_rows = std::min<size_t>(rows_, max_rows);
  const size_t show_cols = std::min<size_t>(cols_, max_cols);
  for (size_t i = 0; i < show_rows; ++i) {
    os << "  ";
    for (size_t j = 0; j < show_cols; ++j) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%10.4f", (*this)(i, j));
      os << buf << " ";
    }
    if (show_cols < cols_) os << "...";
    os << "\n";
  }
  if (show_rows < rows_) os << "  ...\n";
  os << "]";
  return os.str();
}

Matrix operator*(const Matrix& a, const Matrix& b) { return Gemm(a, b); }

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  KS_CHECK_EQ(a.cols(), x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) sum += row[j] * x[j];
    y[i] = sum;
  }
  return y;
}

std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x) {
  KS_CHECK_EQ(a.rows(), x.size());
  std::vector<double> y(a.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    const double xi = x[i];
    for (size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

}  // namespace keystone
