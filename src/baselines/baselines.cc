#include "src/baselines/baselines.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/linalg/gemm.h"
#include "src/solvers/linear_model.h"

namespace keystone {
namespace baselines {

namespace {

// Shared SGD body over an abstract row accessor.
template <typename RowFn, typename NnzFn>
BaselineSolveResult SgdSolve(size_t n, size_t d, const Matrix& b, int passes,
                             double avg_nnz, const RowFn& row_dot,
                             const NnzFn& row_update,
                             const ClusterResourceDescriptor& resources) {
  const size_t k = b.cols();
  Matrix w(d, k);
  std::vector<double> adagrad(d, 1e-8);
  std::vector<double> scores(k);

  for (int pass = 0; pass < passes; ++pass) {
    for (size_t i = 0; i < n; ++i) {
      row_dot(i, w, &scores);
      for (size_t c = 0; c < k; ++c) scores[c] -= b(i, c);
      row_update(i, scores, &w, &adagrad);
    }
  }

  BaselineSolveResult result;
  result.weights = std::move(w);

  CostProfile cost;
  const double workers = std::max(1, resources.num_nodes);
  cost.flops = passes * 4.0 * n * avg_nnz * k / workers;
  cost.bytes = passes * 8.0 * n * avg_nnz / workers;
  // Model averaging after every pass.
  cost.network = passes * 8.0 * static_cast<double>(d) * k;
  cost.rounds = 2.0 * passes;
  result.virtual_seconds = resources.SecondsFor(cost);
  return result;
}

}  // namespace

BaselineSolveResult VwLikeSolve(const SparseMatrix& a, const Matrix& b,
                                int passes,
                                const ClusterResourceDescriptor& resources) {
  const size_t n = a.rows();
  const size_t d = a.cols();
  const double avg_nnz = n > 0 ? static_cast<double>(a.nnz()) / n : 0.0;
  const double eta = 0.5;

  auto row_dot = [&](size_t i, const Matrix& w, std::vector<double>* scores) {
    std::fill(scores->begin(), scores->end(), 0.0);
    const auto [begin, end] = a.RowRange(i);
    for (size_t p = begin; p < end; ++p) {
      const double v = a.values()[p];
      const double* wrow = w.RowPtr(a.indices()[p]);
      for (size_t c = 0; c < scores->size(); ++c) {
        (*scores)[c] += v * wrow[c];
      }
    }
  };
  auto row_update = [&](size_t i, const std::vector<double>& residual,
                        Matrix* w, std::vector<double>* adagrad) {
    (void)adagrad;
    const auto [begin, end] = a.RowRange(i);
    // Normalized LMS: scale the step by the example's squared norm so the
    // per-example correction never overshoots (VW's normalized updates).
    double norm_sq = 1e-8;
    for (size_t p = begin; p < end; ++p) {
      norm_sq += a.values()[p] * a.values()[p];
    }
    const double lr = eta / norm_sq;
    for (size_t p = begin; p < end; ++p) {
      const uint32_t j = a.indices()[p];
      const double v = a.values()[p];
      double* wrow = w->RowPtr(j);
      for (size_t c = 0; c < residual.size(); ++c) {
        wrow[c] -= lr * v * residual[c];
      }
    }
  };
  BaselineSolveResult result =
      SgdSolve(n, d, b, passes, avg_nnz, row_dot, row_update, resources);
  const Matrix pred = a.MatMul(result.weights);
  const double fro = (pred - b).FrobeniusNorm();
  result.train_loss = fro * fro / std::max<size_t>(1, n);
  return result;
}

BaselineSolveResult VwLikeSolveDense(
    const Matrix& a, const Matrix& b, int passes,
    const ClusterResourceDescriptor& resources) {
  const size_t n = a.rows();
  const size_t d = a.cols();
  const double eta = 0.5;

  auto row_dot = [&](size_t i, const Matrix& w, std::vector<double>* scores) {
    std::fill(scores->begin(), scores->end(), 0.0);
    const double* row = a.RowPtr(i);
    for (size_t j = 0; j < d; ++j) {
      const double v = row[j];
      if (v == 0.0) continue;
      const double* wrow = w.RowPtr(j);
      for (size_t c = 0; c < scores->size(); ++c) {
        (*scores)[c] += v * wrow[c];
      }
    }
  };
  auto row_update = [&](size_t i, const std::vector<double>& residual,
                        Matrix* w, std::vector<double>* adagrad) {
    (void)adagrad;
    const double* row = a.RowPtr(i);
    double norm_sq = 1e-8;
    for (size_t j = 0; j < d; ++j) norm_sq += row[j] * row[j];
    const double lr = eta / norm_sq;
    for (size_t j = 0; j < d; ++j) {
      const double v = row[j];
      if (v == 0.0) continue;
      double* wrow = w->RowPtr(j);
      for (size_t c = 0; c < residual.size(); ++c) {
        wrow[c] -= lr * v * residual[c];
      }
    }
  };
  BaselineSolveResult result = SgdSolve(n, d, b, passes,
                                        static_cast<double>(d), row_dot,
                                        row_update, resources);
  result.train_loss = LeastSquaresLoss(a, result.weights, b);
  return result;
}

namespace {

// Conjugate gradient on the normal equations (CGNR), matrix right-hand
// sides handled column-block-wise. `apply_gram` computes A^T (A x).
template <typename GramFn>
Matrix Cgnr(const GramFn& apply_gram, const Matrix& atb, int iterations,
            double ridge) {
  const size_t d = atb.rows();
  const size_t k = atb.cols();
  Matrix x(d, k);
  Matrix r = atb;  // Residual of the normal equations (x = 0).
  Matrix p = r;
  std::vector<double> rs_old(k);
  for (size_t c = 0; c < k; ++c) {
    double s = 0.0;
    for (size_t i = 0; i < d; ++i) s += r(i, c) * r(i, c);
    rs_old[c] = s;
  }
  for (int it = 0; it < iterations; ++it) {
    Matrix ap = apply_gram(p);
    for (size_t i = 0; i < d; ++i) {
      for (size_t c = 0; c < k; ++c) ap(i, c) += ridge * p(i, c);
    }
    for (size_t c = 0; c < k; ++c) {
      double pap = 0.0;
      for (size_t i = 0; i < d; ++i) pap += p(i, c) * ap(i, c);
      if (pap <= 1e-300) continue;
      const double alpha = rs_old[c] / pap;
      double rs_new = 0.0;
      for (size_t i = 0; i < d; ++i) {
        x(i, c) += alpha * p(i, c);
        r(i, c) -= alpha * ap(i, c);
        rs_new += r(i, c) * r(i, c);
      }
      const double beta = rs_new / std::max(rs_old[c], 1e-300);
      for (size_t i = 0; i < d; ++i) {
        p(i, c) = r(i, c) + beta * p(i, c);
      }
      rs_old[c] = rs_new;
    }
  }
  return x;
}

CostProfile SystemMlCost(double n, double d, double k, double s,
                         int iterations, int workers) {
  const double w = std::max(1, workers);
  CostProfile cost;
  // Conversion stage: two full scans plus a shuffle into the internal
  // block-matrix format.
  cost.bytes = 3.0 * 8.0 * n * s / w;
  cost.network = 8.0 * n * s / w;
  cost.rounds = 4.0;
  // CG iterations: two matrix products per iteration.
  cost.flops = iterations * 4.0 * n * s * k / w;
  cost.bytes += iterations * 8.0 * n * s / w;
  cost.network += iterations * 8.0 * d * k;
  cost.rounds += 2.0 * iterations;
  return cost;
}

}  // namespace

BaselineSolveResult SystemMlLikeSolve(
    const SparseMatrix& a, const Matrix& b, int iterations,
    const ClusterResourceDescriptor& resources) {
  const size_t n = a.rows();
  const double avg_nnz = n > 0 ? static_cast<double>(a.nnz()) / n : 0.0;
  const Matrix atb = a.TransMatMul(b);
  BaselineSolveResult result;
  result.weights = Cgnr(
      [&](const Matrix& p) { return a.TransMatMul(a.MatMul(p)); }, atb,
      iterations, 1e-8);
  const Matrix pred = a.MatMul(result.weights);
  const double fro = (pred - b).FrobeniusNorm();
  result.train_loss = fro * fro / std::max<size_t>(1, n);
  result.virtual_seconds = resources.SecondsFor(
      SystemMlCost(n, a.cols(), b.cols(), avg_nnz, iterations,
                   resources.num_nodes));
  return result;
}

BaselineSolveResult SystemMlLikeSolveDense(
    const Matrix& a, const Matrix& b, int iterations,
    const ClusterResourceDescriptor& resources) {
  const Matrix atb = GemmTransA(a, b);
  BaselineSolveResult result;
  result.weights = Cgnr(
      [&](const Matrix& p) { return GemmTransA(a, Gemm(a, p)); }, atb,
      iterations, 1e-8);
  result.train_loss = LeastSquaresLoss(a, result.weights, b);
  result.virtual_seconds = resources.SecondsFor(
      SystemMlCost(a.rows(), a.cols(), b.cols(), a.cols(), iterations,
                   resources.num_nodes));
  return result;
}

TfScalingResult SimulateTensorFlowCifar(int machines, bool weak_scaling) {
  KS_CHECK_GE(machines, 1);
  // Calibrated against the paper's published Table 6 row for TensorFlow
  // v0.8 on CPUs: single-machine time 184 minutes; synchronization cost
  // grows ~m^1.4 (gradient exchange + stragglers).
  constexpr double kSingleMachineMinutes = 184.0;
  constexpr double kSyncScale = 2.23;
  constexpr double kSyncExponent = 1.4;
  const double m = static_cast<double>(machines);
  TfScalingResult result;
  if (!weak_scaling) {
    // Strong scaling: global batch 128, compute shrinks with m, sync grows.
    result.minutes = kSingleMachineMinutes / m +
                     kSyncScale * std::pow(m, kSyncExponent);
    return result;
  }
  // Weak scaling: batch = 128 m. Statistical efficiency improves sublinearly
  // and collapses for very large batches (the paper's "xxx" entries).
  if (machines >= 16) {
    result.converged = false;
    result.minutes = 0.0;
    return result;
  }
  const double efficiency = std::max(0.6, 1.0 / std::sqrt(m));
  result.minutes = efficiency * (kSingleMachineMinutes +
                                 kSyncScale * std::pow(m, kSyncExponent));
  return result;
}

}  // namespace baselines
}  // namespace keystone
