#ifndef KEYSTONE_BASELINES_BASELINES_H_
#define KEYSTONE_BASELINES_BASELINES_H_

#include "src/linalg/matrix.h"
#include "src/linalg/sparse.h"
#include "src/sim/resources.h"

namespace keystone {
namespace baselines {

/// Comparator systems for §5.2 (Figure 8, Table 6), implemented as the
/// algorithms those systems run, with virtual-time accounting on the same
/// cluster model KeystoneML uses. See DESIGN.md for the substitution notes.

/// Result of one baseline solve.
struct BaselineSolveResult {
  Matrix weights;
  double virtual_seconds = 0.0;
  double train_loss = 0.0;  // mean squared loss
};

/// Vowpal-Wabbit-like: online SGD with per-feature adaptive (AdaGrad-style)
/// learning rates, `passes` passes over the data, allreduce-style model
/// averaging between passes. One-size-fits-all: never switches algorithms.
BaselineSolveResult VwLikeSolve(const SparseMatrix& a, const Matrix& b,
                                int passes,
                                const ClusterResourceDescriptor& resources);
BaselineSolveResult VwLikeSolveDense(
    const Matrix& a, const Matrix& b, int passes,
    const ClusterResourceDescriptor& resources);

/// SystemML-like: conjugate gradient on the normal equations (the linear
/// algebra plan SystemML compiles for least squares), preceded by a data
/// conversion stage (the paper notes SystemML must convert data into its
/// internal format before solving).
BaselineSolveResult SystemMlLikeSolve(
    const SparseMatrix& a, const Matrix& b, int iterations,
    const ClusterResourceDescriptor& resources);
BaselineSolveResult SystemMlLikeSolveDense(
    const Matrix& a, const Matrix& b, int iterations,
    const ClusterResourceDescriptor& resources);

/// TensorFlow-like distributed minibatch-SGD scaling model for the CIFAR
/// time-to-84%-accuracy comparison (Table 6). Calibrated to the published
/// single-machine time; strong scaling fixes the global batch at 128,
/// weak scaling uses 128 x machines (and, like the paper observed, fails
/// to converge for very large effective batches).
struct TfScalingResult {
  double minutes = 0.0;
  bool converged = true;
};

TfScalingResult SimulateTensorFlowCifar(int machines, bool weak_scaling);

}  // namespace baselines
}  // namespace keystone

#endif  // KEYSTONE_BASELINES_BASELINES_H_
