#ifndef KEYSTONE_OPTIMIZER_PASS_MANAGER_H_
#define KEYSTONE_OPTIMIZER_PASS_MANAGER_H_

#include <memory>
#include <vector>

#include "src/core/exec_context.h"
#include "src/core/physical_plan.h"

namespace keystone {

/// Ambient state passes run against: the execution context supplies the
/// cluster description, observability sinks, and — for the profiling pass —
/// the worker pool the sampling kernels run on.
struct PassContext {
  ExecContext* ctx = nullptr;
};

/// One rewrite over the PhysicalPlan IR. Passes mutate the plan in place;
/// the manager re-validates the plan after every pass (src/analysis), so a
/// pass that breaks an invariant is caught before the next one runs.
class PlanPass {
 public:
  virtual ~PlanPass() = default;
  virtual const char* name() const = 0;
  virtual void Run(PhysicalPlan* plan, PassContext* pctx) = 0;
};

/// Runs registered passes in order over a PhysicalPlan. After every pass
/// (not just at the end) the plan validator re-checks the rewritten graph —
/// and, once the materialization pass has built it, the cache plan — under
/// OptimizationConfig::validate_plans; diagnostics are counted into the
/// context's MetricsRegistry and any error aborts compilation. The caller
/// is expected to have validated the *submitted* graph before lowering
/// (PipelineExecutor::Compile does), since lowering itself assumes a
/// well-formed DAG.
class PassManager {
 public:
  void AddPass(std::unique_ptr<PlanPass> pass);
  void Run(PhysicalPlan* plan, PassContext* pctx);
  size_t NumPasses() const { return passes_.size(); }

 private:
  std::vector<std::unique_ptr<PlanPass>> passes_;
};

/// Common sub-expression elimination (§4.2): merges structurally identical
/// subgraphs in the underlying graph, remaps sink/placeholder, and
/// re-lowers the node table. No-op unless
/// OptimizationConfig::common_subexpression.
class CsePass : public PlanPass {
 public:
  const char* name() const override { return "cse"; }
  void Run(PhysicalPlan* plan, PassContext* pctx) override;
};

/// Execution subsampling + per-operator selection (§3, §4.1): runs the
/// large then small sampling passes through PlanRunner, choosing physical
/// implementations for Optimizable operators on the way — or, under
/// reuse_stored_profiles with full store coverage, reconstructs the
/// profiles and choices from the ProfileStore and emits synthetic
/// profile-phase spans instead of sampling. No-op unless operator selection
/// or cache planning needs a profile.
class ProfileAndSelectPass : public PlanPass {
 public:
  const char* name() const override { return "profile-select"; }
  void Run(PhysicalPlan* plan, PassContext* pctx) override;
};

/// Cross-run reuse (the Helix-style rewrite): when the context carries an
/// ArtifactCatalog and OptimizationConfig::cross_run_reuse is on, matches
/// train transformer/gather nodes whose lineage fingerprint has a catalog
/// entry, prices catalog load against recompute (the node plus every
/// upstream node the rewrite would leave undemanded), and rewrites winners
/// into catalog reads — marking the node `reused` and the undemanded chain
/// `reuse_pruned`. Every catalog match gets an accept/reject ReuseDecision
/// in the plan's decision log. Runs after profiling (so recompute costs are
/// profile-extrapolated when available) and before materialization (so the
/// cache planner prices reused nodes as loads and skips pruned ones).
class ReusePass : public PlanPass {
 public:
  const char* name() const override { return "reuse"; }
  void Run(PhysicalPlan* plan, PassContext* pctx) override;
};

/// Materialization planning (§4.3): extrapolates the profile to full scale,
/// builds the MaterializationProblem, and selects the cache set under the
/// configured policy and memory budget. Always computes the budget; the
/// cache set stays empty for policies without an up-front plan
/// (none/rule-based/LRU).
class MaterializationPass : public PlanPass {
 public:
  const char* name() const override { return "materialization"; }
  void Run(PhysicalPlan* plan, PassContext* pctx) override;
};

/// Operator fusion (the SystemML-style codegen pass, Boehm et al. 2018):
/// re-runs the dataflow inference, records the fusible chains as
/// FusionCandidates, then — under OptimizationConfig::operator_fusion —
/// turns each candidate into fused regions the runner streams chunk-wise,
/// splitting at cached interiors, non-chunkable operators, and train-path
/// apply-model members whose model is not yet fitted at the region head.
/// Every candidate (segment) gets a FusionDecision: an accepted region with
/// its cost-modeled savings (avoided intermediate materialization priced as
/// a memory write + read per interior edge) or a rejection with the reason.
/// Runs last; it never rewrites the graph, only annotates the plan.
class FusionPass : public PlanPass {
 public:
  const char* name() const override { return "fusion"; }
  void Run(PhysicalPlan* plan, PassContext* pctx) override;
};

/// Registers the standard compilation sequence: CSE, profile + operator
/// selection, cross-run reuse, materialization planning, operator fusion.
void RegisterStandardPasses(PassManager* manager);

/// Fills every train node's full-scale estimates (est_seconds,
/// est_output_bytes) by linearly extrapolating its two-point sampling
/// profile (§5.4). Idempotent; shared by ReusePass (which needs recompute
/// costs before materialization runs) and MaterializationPass.
void ExtrapolateNodeEstimates(PhysicalPlan* plan);

}  // namespace keystone

#endif  // KEYSTONE_OPTIMIZER_PASS_MANAGER_H_
