#include "src/optimizer/materialization.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <map>
#include <utility>

#include "src/common/check.h"

namespace keystone {

namespace {

// Seconds to read/write a materialized output from cluster memory (striped
// across nodes).
double MemTransferSeconds(const MaterializationProblem& p, double bytes) {
  const double per_node = bytes / std::max(1, p.resources.num_nodes);
  return p.resources.MemoryReadSeconds(per_node);
}

}  // namespace

double EstimateRuntimeDetailed(const MaterializationProblem& problem,
                               const std::vector<bool>& cached,
                               std::vector<double>* per_node_seconds) {
  const PipelineGraph& graph = *problem.graph;
  const int n = graph.size();
  KS_CHECK_EQ(problem.info.size(), static_cast<size_t>(n));
  KS_CHECK_EQ(cached.size(), static_cast<size_t>(n));
  if (per_node_seconds != nullptr) per_node_seconds->assign(n, 0.0);

  // demand(v): how many times v's output is requested. executions(v): how
  // many times v is actually computed. Node ids are topologically ordered
  // (edges low -> high), so a reverse sweep sees successors first.
  std::vector<double> demand(n, 0.0);
  std::vector<double> executions(n, 0.0);
  for (int t : problem.terminals) demand[t] += 1.0;

  double total = 0.0;
  for (int v = n - 1; v >= 0; --v) {
    const NodeRuntimeInfo& info = problem.info[v];
    if (!info.live || demand[v] <= 0.0) continue;
    const bool is_cached = cached[v] || info.always_cached;
    executions[v] = is_cached ? 1.0 : demand[v];

    // Local compute: executions * weight passes * per-pass time.
    double node_seconds = executions[v] * info.weight * info.compute_seconds;

    if (is_cached) {
      // One write plus demand-many reads of the materialized output.
      node_seconds +=
          (demand[v] + 1.0) * MemTransferSeconds(problem, info.output_bytes);
    }
    total += node_seconds;
    if (per_node_seconds != nullptr) (*per_node_seconds)[v] = node_seconds;

    // Each execution makes `weight` passes over every input.
    for (int dep : graph.Dependencies(v)) {
      demand[dep] += executions[v] * info.weight;
    }
  }

  // Expected fault-recovery surcharge. Every execution of v risks (at rate
  // `failure_rate`) losing half its own work and re-acquiring its inputs:
  // materialized inputs are a cache read, non-materialized ones pay their
  // full upstream recompute chain. chain[v] is that re-acquisition cost for
  // v's own output; ids are topological (edges low -> high) so a forward
  // sweep sees inputs first. Caching a node both caps its own executions
  // (above) and shrinks every consumer's recovery chain (here) — the
  // interaction the greedy selection is exposed to.
  if (problem.failure_rate > 0.0) {
    std::vector<double> chain(n, 0.0);
    for (int v = 0; v < n; ++v) {
      const NodeRuntimeInfo& info = problem.info[v];
      if (!info.live || demand[v] <= 0.0) continue;
      const bool is_cached = cached[v] || info.always_cached;
      double inputs_chain = 0.0;
      for (int dep : graph.Dependencies(v)) inputs_chain += chain[dep];
      const double own = info.weight * info.compute_seconds;
      chain[v] = is_cached ? MemTransferSeconds(problem, info.output_bytes)
                           : own + inputs_chain;
      const double extra = problem.failure_rate * executions[v] *
                           (0.5 * own + inputs_chain);
      total += extra;
      if (per_node_seconds != nullptr) (*per_node_seconds)[v] += extra;
    }
  }
  return total;
}

double EstimateRuntime(const MaterializationProblem& problem,
                       const std::vector<bool>& cached) {
  return EstimateRuntimeDetailed(problem, cached, nullptr);
}

double CacheSetBytes(const MaterializationProblem& problem,
                     const std::vector<bool>& cached) {
  double bytes = 0.0;
  for (int v = 0; v < problem.graph->size(); ++v) {
    if (cached[v] && problem.info[v].live && !problem.info[v].always_cached) {
      bytes += problem.info[v].output_bytes;
    }
  }
  return bytes;
}

std::vector<bool> RuleBasedCacheSelection(const MaterializationProblem& p) {
  // always_cached nodes are materialized unconditionally in EstimateRuntime,
  // so the rule-based set adds nothing.
  return std::vector<bool>(p.graph->size(), false);
}

std::vector<bool> GreedyCacheSelection(
    const MaterializationProblem& p,
    std::vector<obs::MaterializationStep>* ledger) {
  const int n = p.graph->size();
  std::vector<bool> cached(n, false);
  double mem_left = p.memory_budget_bytes;
  double best_runtime = EstimateRuntime(p, cached);

  // Require a minimally meaningful gain so near-zero-benefit nodes are not
  // materialized on floating-point noise.
  const double min_gain = 1e-3;
  int iteration = 0;
  while (true) {
    obs::MaterializationStep step;
    step.iteration = iteration++;
    step.budget_before = mem_left;
    step.runtime_before = best_runtime;

    int next = -1;
    // Strict `<` against the incumbent means equal-runtime candidates never
    // displace an earlier one: ties resolve to the lowest node id.
    double next_runtime = best_runtime * (1.0 - min_gain);
    for (int v = 0; v < n; ++v) {
      const NodeRuntimeInfo& info = p.info[v];
      if (cached[v] || !info.live || !info.cacheable || info.always_cached) {
        continue;
      }
      obs::MaterializationCandidate candidate;
      candidate.node_id = v;
      candidate.output_bytes = info.output_bytes;
      candidate.fits = info.output_bytes <= mem_left;
      if (candidate.fits) {
        cached[v] = true;
        const double runtime = EstimateRuntime(p, cached);
        cached[v] = false;
        candidate.evaluated = true;
        candidate.runtime_if_cached = runtime;
        candidate.benefit_seconds = best_runtime - runtime;
        if (runtime < next_runtime) {
          next_runtime = runtime;
          next = v;
        }
      }
      if (ledger != nullptr) step.candidates.push_back(candidate);
    }
    step.chosen = next;
    if (next >= 0) {
      cached[next] = true;
      mem_left -= p.info[next].output_bytes;
      step.benefit_seconds = best_runtime - next_runtime;
      best_runtime = next_runtime;
    }
    step.remaining_budget = mem_left;
    if (ledger != nullptr) ledger->push_back(std::move(step));
    if (next < 0) break;
  }
  return cached;
}

std::vector<bool> ExhaustiveCacheSelection(const MaterializationProblem& p,
                                           int max_candidates) {
  const int n = p.graph->size();
  std::vector<int> candidates;
  for (int v = 0; v < n; ++v) {
    const NodeRuntimeInfo& info = p.info[v];
    if (info.live && info.cacheable && !info.always_cached) {
      candidates.push_back(v);
    }
  }
  KS_CHECK_LE(static_cast<int>(candidates.size()), max_candidates)
      << "exhaustive cache search is exponential; problem too large";

  std::vector<bool> best(n, false);
  double best_runtime = EstimateRuntime(p, best);
  const uint64_t limit = 1ULL << candidates.size();
  std::vector<bool> trial(n, false);
  for (uint64_t mask = 1; mask < limit; ++mask) {
    std::fill(trial.begin(), trial.end(), false);
    double bytes = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (mask & (1ULL << i)) {
        trial[candidates[i]] = true;
        bytes += p.info[candidates[i]].output_bytes;
      }
    }
    if (bytes > p.memory_budget_bytes) continue;
    const double runtime = EstimateRuntime(p, trial);
    if (runtime < best_runtime) {
      best_runtime = runtime;
      best = trial;
    }
  }
  return best;
}

namespace {

/// Dynamic LRU cache over node outputs for the trace simulation.
class LruCache {
 public:
  LruCache(double capacity_bytes, double admit_fraction)
      : capacity_(capacity_bytes), admit_limit_(capacity_bytes *
                                                admit_fraction) {}

  bool Contains(int v) const { return position_.count(v) > 0; }

  void Touch(int v) {
    auto it = position_.find(v);
    KS_CHECK(it != position_.end());
    order_.splice(order_.begin(), order_, it->second);
  }

  // Admits v (evicting LRU entries as needed). Returns false if v is larger
  // than the admission limit and was rejected.
  bool Admit(int v, double bytes) {
    if (bytes > admit_limit_ || bytes > capacity_) return false;
    while (used_ + bytes > capacity_ && !order_.empty()) {
      const auto [victim, victim_bytes] = order_.back();
      order_.pop_back();
      position_.erase(victim);
      used_ -= victim_bytes;
    }
    order_.emplace_front(v, bytes);
    position_[v] = order_.begin();
    used_ += bytes;
    return true;
  }

 private:
  double capacity_;
  double admit_limit_;
  double used_ = 0.0;
  std::list<std::pair<int, double>> order_;
  std::map<int, std::list<std::pair<int, double>>::iterator> position_;
};

}  // namespace

double SimulateLruRuntime(const MaterializationProblem& problem,
                          double capacity_bytes, double admit_fraction,
                          std::vector<double>* per_node_seconds) {
  const PipelineGraph& graph = *problem.graph;
  LruCache cache(capacity_bytes, admit_fraction);
  if (per_node_seconds != nullptr) {
    per_node_seconds->assign(graph.size(), 0.0);
  }
  double total = 0.0;
  int64_t accesses = 0;
  constexpr int64_t kAccessLimit = 50'000'000;

  auto charge = [&](int v, double seconds) {
    total += seconds;
    if (per_node_seconds != nullptr) (*per_node_seconds)[v] += seconds;
  };

  // Depth-first accesses from each terminal; weights replay the iterative
  // passes an estimator makes over its inputs. Pinned (always_cached) nodes
  // become resident after their first computation.
  std::vector<bool> pinned_computed(graph.size(), false);
  std::function<void(int)> access = [&](int v) {
    KS_CHECK_LT(++accesses, kAccessLimit)
        << "LRU trace simulation exploded; check pipeline weights";
    const NodeRuntimeInfo& info = problem.info[v];
    if (!info.live) return;
    const bool resident = (info.always_cached && pinned_computed[v]) ||
                          cache.Contains(v);
    if (resident) {
      if (cache.Contains(v)) cache.Touch(v);
      const double per_node_bytes =
          info.output_bytes / std::max(1, problem.resources.num_nodes);
      charge(v, problem.resources.MemoryReadSeconds(per_node_bytes));
      return;
    }
    // Recompute: weight passes, each touching all inputs, plus local work.
    for (int pass = 0; pass < info.weight; ++pass) {
      for (int dep : graph.Dependencies(v)) access(dep);
      charge(v, info.compute_seconds);
    }
    if (info.always_cached) {
      pinned_computed[v] = true;
    } else if (info.cacheable) {
      if (cache.Admit(v, info.output_bytes)) {
        // Materialization write, mirroring the static replay's accounting.
        const double per_node_bytes =
            info.output_bytes / std::max(1, problem.resources.num_nodes);
        charge(v, problem.resources.MemoryReadSeconds(per_node_bytes));
      }
    }
  };

  for (int t : problem.terminals) access(t);
  return total;
}

}  // namespace keystone
