#ifndef KEYSTONE_OPTIMIZER_OPERATOR_OPTIMIZER_H_
#define KEYSTONE_OPTIMIZER_OPERATOR_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "src/core/operator.h"
#include "src/data/data_stats.h"
#include "src/obs/decision_log.h"
#include "src/obs/profile_store.h"
#include "src/sim/resources.h"

namespace keystone {

/// Result of scoring one physical option.
struct PhysicalChoice {
  int option_index = 0;
  double estimated_seconds = 0.0;
  bool feasible = true;
  /// How many options were scored from observed history (a ProfileStore)
  /// rather than the a-priori cost model.
  int history_corrected = 0;
  /// Winner's margin over the runner-up among feasible options
  /// (runner_up_seconds / winner_seconds - 1); 0 with a single candidate.
  double margin = 0.0;
  /// Every alternative with its score, in option order — the decision-log
  /// provenance for this choice.
  std::vector<obs::OptionScore> scored;
};

/// Picks the cheapest feasible physical implementation for an Optimizable
/// transformer given input statistics and cluster resources (paper §3).
/// Options whose scratch memory exceeds per-node memory are infeasible; if
/// every option is infeasible the one with the smallest footprint wins.
/// When `history` is non-null, options with recorded observed costs are
/// scored from that history (rescaled to `stats`) instead of their cost
/// model — the profile store correcting the estimate.
PhysicalChoice ChooseTransformerOption(const OptimizableTransformer& logical,
                                       const DataStats& stats,
                                       const ClusterResourceDescriptor& r,
                                       const obs::ProfileStore* history =
                                           nullptr);

/// Same selection for Optimizable estimators.
PhysicalChoice ChooseEstimatorOption(const OptimizableEstimator& logical,
                                     const DataStats& stats,
                                     const ClusterResourceDescriptor& r,
                                     const obs::ProfileStore* history =
                                         nullptr);

}  // namespace keystone

#endif  // KEYSTONE_OPTIMIZER_OPERATOR_OPTIMIZER_H_
