#ifndef KEYSTONE_OPTIMIZER_OPERATOR_OPTIMIZER_H_
#define KEYSTONE_OPTIMIZER_OPERATOR_OPTIMIZER_H_

#include <memory>

#include "src/core/operator.h"
#include "src/data/data_stats.h"
#include "src/sim/resources.h"

namespace keystone {

/// Result of scoring one physical option.
struct PhysicalChoice {
  int option_index = 0;
  double estimated_seconds = 0.0;
  bool feasible = true;
};

/// Picks the cheapest feasible physical implementation for an Optimizable
/// transformer given input statistics and cluster resources (paper §3).
/// Options whose scratch memory exceeds per-node memory are infeasible; if
/// every option is infeasible the one with the smallest footprint wins.
PhysicalChoice ChooseTransformerOption(const OptimizableTransformer& logical,
                                       const DataStats& stats,
                                       const ClusterResourceDescriptor& r);

/// Same selection for Optimizable estimators.
PhysicalChoice ChooseEstimatorOption(const OptimizableEstimator& logical,
                                     const DataStats& stats,
                                     const ClusterResourceDescriptor& r);

}  // namespace keystone

#endif  // KEYSTONE_OPTIMIZER_OPERATOR_OPTIMIZER_H_
