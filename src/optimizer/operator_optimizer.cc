#include "src/optimizer/operator_optimizer.h"

#include <limits>
#include <vector>

#include "src/common/check.h"

namespace keystone {

namespace {

/// Generic selection over (cost, scratch) pairs.
template <typename Op>
PhysicalChoice ChooseOption(const std::vector<std::shared_ptr<Op>>& options,
                            const DataStats& stats,
                            const ClusterResourceDescriptor& r) {
  KS_CHECK(!options.empty());
  const double node_memory = r.memory_per_node_gb * 1e9;

  PhysicalChoice best;
  double best_seconds = std::numeric_limits<double>::infinity();
  bool any_feasible = false;
  double min_scratch = std::numeric_limits<double>::infinity();
  int min_scratch_index = 0;

  for (size_t i = 0; i < options.size(); ++i) {
    const double scratch = options[i]->ScratchMemoryBytes(stats, r.num_nodes);
    const double seconds =
        r.SecondsFor(options[i]->EstimateCost(stats, r.num_nodes));
    const bool feasible = scratch <= node_memory;
    if (scratch < min_scratch) {
      min_scratch = scratch;
      min_scratch_index = static_cast<int>(i);
    }
    if (feasible && seconds < best_seconds) {
      best_seconds = seconds;
      best.option_index = static_cast<int>(i);
      best.estimated_seconds = seconds;
      any_feasible = true;
    }
  }
  if (!any_feasible) {
    best.option_index = min_scratch_index;
    best.estimated_seconds =
        r.SecondsFor(options[min_scratch_index]->EstimateCost(stats,
                                                              r.num_nodes));
    best.feasible = false;
  }
  return best;
}

}  // namespace

PhysicalChoice ChooseTransformerOption(const OptimizableTransformer& logical,
                                       const DataStats& stats,
                                       const ClusterResourceDescriptor& r) {
  return ChooseOption(logical.options(), stats, r);
}

PhysicalChoice ChooseEstimatorOption(const OptimizableEstimator& logical,
                                     const DataStats& stats,
                                     const ClusterResourceDescriptor& r) {
  return ChooseOption(logical.options(), stats, r);
}

}  // namespace keystone
