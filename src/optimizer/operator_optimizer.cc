#include "src/optimizer/operator_optimizer.h"

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/obs/metrics.h"

namespace keystone {

namespace {

/// Generic selection over (cost, scratch) pairs.
template <typename Op>
PhysicalChoice ChooseOption(const std::vector<std::shared_ptr<Op>>& options,
                            const DataStats& stats,
                            const ClusterResourceDescriptor& r,
                            const obs::ProfileStore* history) {
  KS_CHECK(!options.empty());
  const double node_memory = r.memory_per_node_gb * 1e9;

  PhysicalChoice best;
  double best_seconds = std::numeric_limits<double>::infinity();
  double runner_up_seconds = std::numeric_limits<double>::infinity();
  bool any_feasible = false;
  double min_scratch = std::numeric_limits<double>::infinity();
  int min_scratch_index = 0;

  best.scored.reserve(options.size());
  for (size_t i = 0; i < options.size(); ++i) {
    const double scratch = options[i]->ScratchMemoryBytes(stats, r.num_nodes);
    CostProfile cost = options[i]->EstimateCost(stats, r.num_nodes);
    bool from_history = false;
    if (history != nullptr) {
      const auto observed = history->ObservedFor(options[i]->Name(), stats);
      if (observed.has_value()) {
        cost = *observed;
        from_history = true;
        ++best.history_corrected;
      }
    }
    const double seconds = r.SecondsFor(cost);
    const bool feasible = scratch <= node_memory;

    obs::OptionScore score;
    score.option_index = static_cast<int>(i);
    score.name = options[i]->Name();
    score.cost = cost;
    score.estimated_seconds = seconds;
    score.scratch_bytes = scratch;
    score.feasible = feasible;
    score.from_history = from_history;
    best.scored.push_back(std::move(score));

    if (scratch < min_scratch) {
      min_scratch = scratch;
      min_scratch_index = static_cast<int>(i);
    }
    if (feasible && seconds < best_seconds) {
      runner_up_seconds = best_seconds;
      best_seconds = seconds;
      best.option_index = static_cast<int>(i);
      best.estimated_seconds = seconds;
      any_feasible = true;
    } else if (feasible && seconds < runner_up_seconds) {
      runner_up_seconds = seconds;
    }
  }
  if (!any_feasible) {
    best.option_index = min_scratch_index;
    best.estimated_seconds =
        r.SecondsFor(options[min_scratch_index]->EstimateCost(stats,
                                                              r.num_nodes));
    best.feasible = false;
  } else if (std::isfinite(runner_up_seconds) && best_seconds > 0) {
    best.margin = runner_up_seconds / best_seconds - 1.0;
  }
  if (best.history_corrected > 0) {
    obs::MetricsRegistry::Global().Increment("optimizer.history_corrected",
                                             best.history_corrected);
  }
  return best;
}

}  // namespace

PhysicalChoice ChooseTransformerOption(const OptimizableTransformer& logical,
                                       const DataStats& stats,
                                       const ClusterResourceDescriptor& r,
                                       const obs::ProfileStore* history) {
  return ChooseOption(logical.options(), stats, r, history);
}

PhysicalChoice ChooseEstimatorOption(const OptimizableEstimator& logical,
                                     const DataStats& stats,
                                     const ClusterResourceDescriptor& r,
                                     const obs::ProfileStore* history) {
  return ChooseOption(logical.options(), stats, r, history);
}

}  // namespace keystone
