#ifndef KEYSTONE_OPTIMIZER_MATERIALIZATION_H_
#define KEYSTONE_OPTIMIZER_MATERIALIZATION_H_

#include <vector>

#include "src/core/pipeline_graph.h"
#include "src/obs/decision_log.h"
#include "src/sim/resources.h"

namespace keystone {

/// Per-node quantities the materialization optimizer reasons about,
/// mirroring §4.3 of the paper: t(v) — local compute time per pass,
/// size(v) — output bytes, w_v — passes over inputs per execution.
/// These come from the pipeline profile (execution subsampling) or, for the
/// final accounting, from full-scale execution.
struct NodeRuntimeInfo {
  /// Virtual seconds of compute local to the node, per pass over inputs.
  double compute_seconds = 0.0;

  /// Bytes of the node's output (cluster-wide).
  double output_bytes = 0.0;

  /// Passes over inputs per execution (Iterative weight w_v).
  int weight = 1;

  /// Whether the cache may hold this node's output.
  bool cacheable = true;

  /// Always materialized regardless of policy (estimator models: tiny and
  /// definitionally reused). This is also exactly the rule-based baseline.
  bool always_cached = false;

  /// Participates in execution (post-CSE, reachable from a terminal).
  bool live = true;
};

/// A materialization problem: the DAG topology plus per-node runtime info,
/// the demanded terminal nodes, and the memory budget.
struct MaterializationProblem {
  const PipelineGraph* graph = nullptr;
  std::vector<NodeRuntimeInfo> info;
  std::vector<int> terminals;
  double memory_budget_bytes = 0.0;
  ClusterResourceDescriptor resources;

  /// Expected per-execution failure rate the runtime estimate prices in.
  /// Each execution of a node risks losing half its own work plus the cost
  /// of re-acquiring its inputs — a cache read for materialized inputs,
  /// the full upstream recompute chain otherwise. Zero (the default)
  /// reproduces the paper's failure-free objective exactly; a positive
  /// rate makes caching recompute-expensive subtrees worth more to the
  /// greedy selection (OptimizationConfig::expected_fault_rate).
  double failure_rate = 0.0;
};

/// Estimated total execution time (virtual seconds) of the pipeline when
/// the nodes in `cached` are materialized — the paper's T(sink(G))
/// objective, evaluated by propagating execution counts:
///   demand(v) = sum over successors p of w_p * executions(p)
///   executions(v) = 1 if cached else demand(v)
/// plus memory read/write charges for materialized outputs.
double EstimateRuntime(const MaterializationProblem& problem,
                       const std::vector<bool>& cached);

/// As above, also reporting the seconds attributable to each node (compute
/// plus materialization I/O), for per-stage breakdowns.
double EstimateRuntimeDetailed(const MaterializationProblem& problem,
                               const std::vector<bool>& cached,
                               std::vector<double>* per_node_seconds);

/// Bytes consumed by a cache set (live, cacheable nodes only).
double CacheSetBytes(const MaterializationProblem& problem,
                     const std::vector<bool>& cached);

/// Baseline cache set: only `always_cached` nodes (estimator results) —
/// the rule-based strategy of §5.4.
std::vector<bool> RuleBasedCacheSelection(const MaterializationProblem& p);

/// The paper's Algorithm 1: greedily add the node whose materialization
/// most reduces estimated runtime while fitting in the remaining budget.
/// Ties (equal runtimes) resolve to the lowest node id, so the result is
/// deterministic. When `ledger` is non-null, every iteration appends one
/// MaterializationStep recording the full candidate set — including
/// over-budget candidates that were rejected without evaluation — the
/// chosen node, and the remaining budget (the decision-log provenance).
std::vector<bool> GreedyCacheSelection(
    const MaterializationProblem& p,
    std::vector<obs::MaterializationStep>* ledger = nullptr);

/// Exhaustive search over all cache subsets (test oracle standing in for
/// the paper's ILP). Only valid for small problems; KS_CHECKs that at most
/// `max_candidates` candidate nodes exist.
std::vector<bool> ExhaustiveCacheSelection(const MaterializationProblem& p,
                                           int max_candidates = 20);

/// Simulates depth-first execution with a dynamic LRU cache of the given
/// capacity (the Spark default policy of §5.4). `admit_fraction` mimics
/// Spark's admission control: outputs larger than this fraction of capacity
/// are never admitted. Returns total virtual seconds.
double SimulateLruRuntime(const MaterializationProblem& problem,
                          double capacity_bytes, double admit_fraction = 1.0,
                          std::vector<double>* per_node_seconds = nullptr);

}  // namespace keystone

#endif  // KEYSTONE_OPTIMIZER_MATERIALIZATION_H_
