#include "src/optimizer/pass_manager.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/analysis/dataflow.h"
#include "src/analysis/diagnostics.h"
#include "src/analysis/plan_validator.h"
#include "src/cache/artifact_catalog.h"
#include "src/common/check.h"
#include "src/core/plan_runner.h"
#include "src/obs/profile_store.h"
#include "src/optimizer/operator_optimizer.h"

namespace keystone {

namespace {

/// Re-validates the plan after a pass: the (possibly rewritten) graph plus,
/// once built, the materialization plan. Dead duplicates are the expected
/// residue of CSE, so unreachable-node warnings are off here — the
/// submitted graph was already checked with them on before lowering.
void ValidateAfterPass(const PhysicalPlan& plan, const char* pass_name,
                       ExecContext* ctx) {
  if (!plan.config.validate_plans) return;
  analysis::PlanValidationOptions vopts;
  vopts.sink = plan.sink;
  vopts.placeholder = plan.placeholder;
  vopts.expect_cse = plan.cse_applied;
  vopts.warn_unreachable = false;
  const analysis::PlanValidator validator(vopts);
  analysis::ValidationReport vreport = validator.Validate(*plan.graph);
  if (plan.materialized) {
    vreport.Merge(
        validator.ValidatePlan(plan.planning_problem, plan.cache_set));
  }
  // Re-run the dataflow rules over the rewritten plan: a pass must not
  // introduce shape conflicts or misplace effects any more than it may
  // break the structural invariants above. Fused regions (empty until the
  // fusion pass runs) are held to the fusion.* well-formedness rules.
  const analysis::DataflowResult flow = analysis::InferDataflow(plan);
  vreport.Merge(analysis::CheckDataflow(plan, flow));
  vreport.Merge(analysis::ValidateFusedRegions(plan, flow));
  vreport.Merge(analysis::ValidateReuseMarkers(plan));
  analysis::RecordDiagnostics(vreport, ctx->metrics());
  KS_CHECK(vreport.ok()) << "plan failed validation after pass '" << pass_name
                         << "':\n"
                         << vreport.ToString();
}

bool PlansCache(const OptimizationConfig& config) {
  return config.cache_policy == CachePolicy::kGreedy ||
         config.cache_policy == CachePolicy::kExhaustive;
}

bool NeedsProfile(const OptimizationConfig& config) {
  return config.operator_selection || PlansCache(config);
}

/// Attempts to reconstruct every train node's profile and operator choice
/// from the ProfileStore instead of executing the sampling passes. Returns
/// false (leaving the plan untouched) unless the store covers every train
/// node at both sample sizes.
bool TryReuseStoredProfiles(PhysicalPlan* plan, ExecContext* ctx) {
  obs::ProfileStore* store = ctx->profile_store();
  if (store == nullptr) return false;
  struct Stored {
    int id;
    obs::NodeProfileRecord small;
    obs::NodeProfileRecord large;
  };
  std::vector<Stored> stored;
  for (const PlannedNode& pn : plan->nodes) {
    if (!pn.train) continue;
    const auto large = store->NodeProfileFor(obs::ProfileStore::NodeKey(
        pn.fingerprint, plan->config.profile_sample_large));
    const auto small = store->NodeProfileFor(obs::ProfileStore::NodeKey(
        pn.fingerprint, plan->config.profile_sample_small));
    if (!large.has_value() || !small.has_value()) return false;
    stored.push_back({pn.id, *small, *large});
  }
  // Full coverage: rebuild what the two sampling passes would have filled.
  for (const Stored& s : stored) {
    ProfileEntry& entry = plan->nodes[s.id].profile;
    entry.seconds_large = s.large.seconds;
    entry.records_large = s.large.records;
    entry.seconds_small = s.small.seconds;
    entry.records_small = s.small.records;
    // The small pass runs last live, so its stats are the ones that stick.
    entry.bytes_per_record = s.small.bytes_per_record;
    entry.full_records = s.large.full_records;
    if (s.large.chosen_option >= 0) {
      plan->SetChosenOption(s.id, s.large.chosen_option);
    }
  }
  return true;
}

}  // namespace

void PassManager::AddPass(std::unique_ptr<PlanPass> pass) {
  passes_.push_back(std::move(pass));
}

void PassManager::Run(PhysicalPlan* plan, PassContext* pctx) {
  KS_CHECK(pctx != nullptr && pctx->ctx != nullptr);
  for (const auto& pass : passes_) {
    pass->Run(plan, pctx);
    ValidateAfterPass(*plan, pass->name(), pctx->ctx);
  }
}

void CsePass::Run(PhysicalPlan* plan, PassContext* pctx) {
  (void)pctx;
  if (!plan->config.common_subexpression) return;
  std::vector<int> remap;
  plan->cse_eliminated = plan->graph->EliminateCommonSubexpressions(&remap);
  plan->sink = remap[plan->sink];
  plan->placeholder = remap[plan->placeholder];
  plan->cse_applied = true;
  RelowerPlan(plan);

  if (plan->decision_log != nullptr) {
    // Invert the remap into merge groups: every id folded into a survivor.
    std::map<int, std::vector<int>> groups;
    for (int id = 0; id < static_cast<int>(remap.size()); ++id) {
      if (remap[id] != id) groups[remap[id]].push_back(id);
    }
    for (const auto& [survivor, merged] : groups) {
      obs::CseMergeGroup group;
      group.survivor = survivor;
      group.merged = merged;
      if (survivor >= 0 && survivor < static_cast<int>(plan->nodes.size())) {
        group.fingerprint = plan->nodes[survivor].fingerprint;
      }
      plan->decision_log->RecordCseGroup(std::move(group));
    }
  }
}

void ProfileAndSelectPass::Run(PhysicalPlan* plan, PassContext* pctx) {
  if (!NeedsProfile(plan->config)) return;
  ExecContext* ctx = pctx->ctx;
  PlanRunner runner(plan, ctx);

  if (plan->config.reuse_stored_profiles &&
      TryReuseStoredProfiles(plan, ctx)) {
    plan->profiles_from_store = true;
    if (ctx->metrics() != nullptr) {
      ctx->metrics()->Increment("profile_store.reuses");
    }
    if (plan->decision_log != nullptr) {
      // Selections replayed from the store still leave provenance: the
      // chosen option per optimizable node, flagged as history-driven
      // (no live alternatives were scored this run).
      for (const PlannedNode& pn : plan->nodes) {
        if (!pn.train || !pn.optimizable || pn.chosen_option < 0) continue;
        obs::SelectionDecision decision;
        decision.node_id = pn.id;
        decision.node_name = pn.name;
        decision.fingerprint = pn.fingerprint;
        decision.chosen_option = pn.chosen_option;
        decision.from_store = true;
        plan->decision_log->RecordSelection(std::move(decision));
      }
    }
    // The skipped sampling passes still surface in reports and metrics:
    // one synthetic span per node per phase, reconstructed from the store.
    runner.EmitSyntheticProfileSpans(ExecMode::kProfileLarge);
    runner.EmitSyntheticProfileSpans(ExecMode::kProfileSmall);
    return;
  }

  // Observed history only corrects selection estimates when the user opted
  // into profile reuse; default behaviour stays purely model-driven.
  const obs::ProfileStore* history =
      plan->config.reuse_stored_profiles ? ctx->profile_store() : nullptr;
  SelectHook select;
  if (plan->config.operator_selection) {
    select = [plan, ctx, history](int id, const DataStats& in_stats) {
      const PlannedNode& pn = plan->nodes[id];
      const GraphNode& node = plan->graph->node(id);
      // Score options at the node's full-scale input cardinality, not the
      // sample the hook observed (§3: selection targets the real run).
      const DataStats full_stats = in_stats.ScaledTo(pn.input_records);
      PhysicalChoice choice;
      if (node.kind == NodeKind::kEstimator) {
        auto* optimizable =
            dynamic_cast<OptimizableEstimator*>(node.estimator.get());
        choice = ChooseEstimatorOption(*optimizable, full_stats,
                                       ctx->resources(), history);
      } else {
        auto* optimizable =
            dynamic_cast<OptimizableTransformer*>(node.transformer.get());
        choice = ChooseTransformerOption(*optimizable, full_stats,
                                         ctx->resources(), history);
      }
      plan->SetChosenOption(id, choice.option_index);
      if (plan->decision_log != nullptr) {
        obs::SelectionDecision decision;
        decision.node_id = id;
        decision.node_name = pn.name;
        decision.fingerprint = pn.fingerprint;
        decision.chosen_option = choice.option_index;
        decision.chosen_seconds = choice.estimated_seconds;
        decision.margin = choice.margin;
        decision.options = std::move(choice.scored);
        plan->decision_log->RecordSelection(std::move(decision));
      }
    };
  }
  // Large pass selects; the small pass reuses its choices. Both record
  // into the ProfileStore keyed by node fingerprint.
  runner.Run(ExecMode::kProfileLarge, select);
  runner.Run(ExecMode::kProfileSmall);
  for (const PlannedNode& pn : plan->nodes) {
    if (pn.train) {
      plan->optimize_seconds +=
          pn.profile.seconds_small + pn.profile.seconds_large;
    }
  }
}

void ExtrapolateNodeEstimates(PhysicalPlan* plan) {
  for (PlannedNode& pn : plan->nodes) {
    if (!pn.train) continue;
    const ProfileEntry& entry = pn.profile;
    const double n_full = static_cast<double>(entry.full_records);
    // Linear extrapolation through the two sampled points (§5.4); when
    // the dataset is smaller than both sample sizes the points coincide,
    // so fall back to proportional scaling.
    double total_seconds;
    if (entry.records_large > entry.records_small) {
      const double slope = (entry.seconds_large - entry.seconds_small) /
                           (entry.records_large - entry.records_small);
      total_seconds =
          std::max(0.0, entry.seconds_large +
                            slope * (n_full - entry.records_large));
    } else {
      total_seconds = entry.seconds_large * n_full /
                      std::max<size_t>(1, entry.records_large);
    }
    pn.est_seconds = total_seconds / std::max(1, pn.weight);
    pn.est_output_bytes = entry.bytes_per_record * n_full;
  }
}

namespace {

/// Which train nodes the fit still has to execute, given the current reuse
/// markers: walk dependencies down from the train terminals and estimator
/// nodes, stopping below nodes already rewritten into catalog reads.
std::vector<bool> ComputeDemanded(const PhysicalPlan& plan) {
  std::vector<bool> demanded(plan.nodes.size(), false);
  std::vector<int> stack;
  for (int t : plan.terminals) {
    if (plan.nodes[t].train) stack.push_back(t);
  }
  for (const PlannedNode& pn : plan.nodes) {
    if (pn.train && pn.kind == NodeKind::kEstimator) stack.push_back(pn.id);
  }
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (demanded[id]) continue;
    demanded[id] = true;
    const PlannedNode& pn = plan.nodes[id];
    if (pn.reused) continue;  // a catalog read demands nothing upstream
    for (int in : pn.inputs) {
      if (plan.nodes[in].train) stack.push_back(in);
    }
    if (pn.model_input >= 0 && plan.nodes[pn.model_input].train) {
      stack.push_back(pn.model_input);
    }
  }
  return demanded;
}

}  // namespace

void ReusePass::Run(PhysicalPlan* plan, PassContext* pctx) {
  if (!plan->config.cross_run_reuse) return;
  ExecContext* ctx = pctx->ctx;
  cache::ArtifactCatalog* catalog = ctx->artifact_catalog();
  if (catalog == nullptr) return;

  // Profile-extrapolated full-scale estimates price recompute; without a
  // profile the stored entry's own recompute figure is the fallback.
  if (NeedsProfile(plan->config)) ExtrapolateNodeEstimates(plan);

  const ClusterResourceDescriptor& resources = plan->resources;
  const std::vector<bool> pure = PureLineageMask(*plan);
  std::vector<bool> demanded = ComputeDemanded(*plan);
  // Modeled wall-clock of one node at full scale: est_seconds is stored
  // per execution, the node runs `weight` times per fit.
  const auto node_seconds = [plan](int id) {
    const PlannedNode& pn = plan->nodes[id];
    return pn.est_seconds * std::max(1, pn.weight);
  };

  int accepted = 0;
  int rejected = 0;
  // Descending id = downstream first: reusing the deepest matching node
  // prunes its whole chain, and its upstream matches then drop out of the
  // demanded set instead of producing redundant rewrites.
  for (int id = static_cast<int>(plan->nodes.size()) - 1; id >= 0; --id) {
    PlannedNode& pn = plan->nodes[id];
    if (!pn.train || !pure[id] || !demanded[id]) continue;
    if (pn.kind != NodeKind::kTransformer && pn.kind != NodeKind::kGather) {
      continue;
    }
    const auto entry = catalog->Lookup(pn.lineage_fingerprint);
    if (!entry.has_value()) continue;

    obs::ReuseDecision decision;
    decision.node_id = id;
    decision.node_name = pn.name;
    decision.fingerprint = pn.lineage_fingerprint;
    decision.tier = entry->in_memory ? "memory" : "disk";
    decision.entry_bytes = entry->bytes;
    decision.entry_records = entry->records;
    decision.entry_generation = entry->generation;

    if (entry->records != pn.full_records) {
      // Same lineage but a different cardinality means the catalog was
      // populated against different source data; never serve it.
      decision.reason = "cardinality mismatch";
      ++rejected;
      if (plan->decision_log != nullptr) {
        plan->decision_log->RecordReuseDecision(std::move(decision));
      }
      continue;
    }

    // Tentatively accept to see which upstream nodes fall out of demand.
    pn.reused = true;
    const std::vector<bool> demanded_after = ComputeDemanded(*plan);
    std::vector<int> prunable;
    for (size_t k = 0; k < plan->nodes.size(); ++k) {
      if (plan->nodes[k].train && demanded[k] && !demanded_after[k]) {
        prunable.push_back(static_cast<int>(k));
      }
    }
    double recompute = node_seconds(id);
    for (int k : prunable) recompute += node_seconds(k);
    if (recompute <= 0.0) recompute = entry->recompute_seconds;
    const double per_node_bytes =
        entry->bytes / std::max(1, resources.num_nodes);
    const double load = entry->in_memory
                            ? resources.MemoryReadSeconds(per_node_bytes)
                            : resources.DiskReadSeconds(per_node_bytes);
    decision.load_seconds = load;
    decision.recompute_seconds = recompute;

    if (load < recompute) {
      decision.accepted = true;
      decision.pruned = prunable;
      pn.reuse_fingerprint = pn.lineage_fingerprint;
      pn.reuse_generation = entry->generation;
      pn.reuse_load_seconds = load;
      pn.reuse_bytes = entry->bytes;
      pn.reuse_tier = decision.tier;
      for (int k : prunable) plan->nodes[k].reuse_pruned = true;
      demanded = std::move(demanded_after);
      ++accepted;
    } else {
      pn.reused = false;
      decision.reason = "catalog load costlier than recompute";
      ++rejected;
    }
    if (plan->decision_log != nullptr) {
      plan->decision_log->RecordReuseDecision(std::move(decision));
    }
  }
  if (ctx->metrics() != nullptr) {
    if (accepted > 0) {
      ctx->metrics()->Increment("catalog.reuse.accepted", accepted);
    }
    if (rejected > 0) {
      ctx->metrics()->Increment("catalog.reuse.rejected", rejected);
    }
  }
}

void MaterializationPass::Run(PhysicalPlan* plan, PassContext* pctx) {
  (void)pctx;
  const OptimizationConfig& config = plan->config;
  const ClusterResourceDescriptor& resources = plan->resources;
  plan->cache_budget_bytes =
      config.cache_budget_bytes >= 0.0
          ? config.cache_budget_bytes
          : config.cache_fraction * resources.ClusterMemoryBytes();

  if (NeedsProfile(config)) ExtrapolateNodeEstimates(plan);

  if (!PlansCache(config)) return;

  MaterializationProblem& problem = plan->planning_problem;
  problem.graph = plan->graph.get();
  problem.resources = resources;
  problem.memory_budget_bytes = plan->cache_budget_bytes;
  problem.terminals = plan->terminals;
  problem.failure_rate = config.expected_fault_rate;
  problem.info.assign(plan->nodes.size(), NodeRuntimeInfo());
  for (const PlannedNode& pn : plan->nodes) {
    NodeRuntimeInfo& info = problem.info[pn.id];
    // Nodes pruned by cross-run reuse never execute this fit, so they are
    // dead to the cache planner; a reused node's "compute" is the priced
    // catalog load, paid once regardless of the node's demand weight.
    info.live = pn.train && !pn.reuse_pruned;
    if (!info.live) continue;
    info.weight = pn.reused ? 1 : pn.weight;
    info.always_cached = pn.kind == NodeKind::kEstimator;
    info.compute_seconds = pn.reused ? pn.reuse_load_seconds : pn.est_seconds;
    info.output_bytes = pn.est_output_bytes;
  }
  std::vector<obs::MaterializationStep> ledger;
  auto* ledger_out = plan->decision_log != nullptr &&
                             config.cache_policy == CachePolicy::kGreedy
                         ? &ledger
                         : nullptr;
  plan->cache_set = config.cache_policy == CachePolicy::kGreedy
                        ? GreedyCacheSelection(problem, ledger_out)
                        : ExhaustiveCacheSelection(problem);
  plan->materialized = true;
  for (PlannedNode& pn : plan->nodes) pn.cached = plan->cache_set[pn.id];

  if (plan->decision_log != nullptr) {
    for (auto& step : ledger) {
      plan->decision_log->RecordMaterializationStep(std::move(step));
    }
    obs::MaterializationSummary summary;
    summary.policy = CachePolicyName(config.cache_policy);
    summary.budget_bytes = plan->cache_budget_bytes;
    summary.initial_runtime = EstimateRuntime(
        problem, std::vector<bool>(plan->nodes.size(), false));
    summary.final_runtime = EstimateRuntime(problem, plan->cache_set);
    for (bool cached : plan->cache_set) summary.cached_nodes += cached ? 1 : 0;
    plan->decision_log->RecordMaterializationSummary(std::move(summary));
  }
}

namespace {

/// Full-scale output bytes of a fused-chain member, the intermediate the
/// fusion avoids materializing. Train members use the profile-extrapolated
/// estimate, falling back to the statically inferred per-record size;
/// runtime members (full_records == 0 until a request arrives) are priced
/// per record. Negative when no model covers the node.
double IntermediateBytes(const PlannedNode& pn, bool runtime) {
  if (runtime) return pn.inferred_bytes_per_record;
  if (pn.est_output_bytes > 0.0) return pn.est_output_bytes;
  if (pn.inferred_bytes_per_record >= 0.0 && pn.full_records > 0) {
    return pn.inferred_bytes_per_record *
           static_cast<double>(pn.full_records);
  }
  return -1.0;
}

/// Judges one candidate segment: accepts it as a fused region when the cost
/// model credits it with avoided materialization time, records the
/// FusionDecision either way. `reason` carries the split cause for
/// segments too short to fuse.
void JudgeSegment(PhysicalPlan* plan, int candidate_index,
                  const std::vector<int>& segment, bool runtime,
                  const std::string& reason) {
  if (segment.empty()) return;
  obs::FusionDecision decision;
  decision.candidate_index = candidate_index;
  decision.nodes = segment;
  if (segment.size() < 2) {
    decision.reason = reason.empty()
                          ? "segment too short to fuse"
                          : reason + "; remaining segment too short";
    if (plan->decision_log != nullptr) {
      plan->decision_log->RecordFusionDecision(std::move(decision));
    }
    return;
  }
  // Avoided intermediate traffic: every interior edge skips one
  // materialization, modeled as a cluster-parallel memory write plus the
  // consumer's read back (the SystemML fusion credit). The cluster
  // descriptor has a single memory-bandwidth figure, so write and read
  // price identically.
  double saved_bytes = 0.0;
  double saved_seconds = 0.0;
  bool unknown = false;
  for (size_t i = 0; i + 1 < segment.size(); ++i) {
    const PlannedNode& pn =
        plan->nodes[static_cast<size_t>(segment[i])];
    const double bytes = IntermediateBytes(pn, runtime);
    if (bytes < 0.0) {
      unknown = true;
      break;
    }
    saved_bytes += bytes;
    saved_seconds +=
        2.0 * plan->resources.MemoryReadSeconds(
                  bytes / std::max(1, plan->resources.num_nodes));
  }
  if (unknown) {
    decision.reason = "no modeled intermediate size";
  } else if (saved_seconds <= 0.0) {
    decision.reason = "no modeled benefit";
  } else {
    FusedRegion region;
    region.id = static_cast<int>(plan->fused_regions.size());
    region.nodes = segment;
    region.runtime = runtime;
    for (size_t i = 0; i < segment.size(); ++i) {
      if (i > 0) region.fingerprint += "+";
      region.fingerprint +=
          plan->nodes[static_cast<size_t>(segment[i])].fingerprint;
      plan->nodes[static_cast<size_t>(segment[i])].fused_region = region.id;
    }
    region.est_saved_seconds = saved_seconds;
    region.est_saved_bytes = saved_bytes;
    decision.accepted = true;
    decision.region_id = region.id;
    decision.fingerprint = region.fingerprint;
    decision.est_saved_seconds = saved_seconds;
    decision.est_saved_bytes = saved_bytes;
    plan->fused_regions.push_back(std::move(region));
  }
  if (plan->decision_log != nullptr) {
    plan->decision_log->RecordFusionDecision(std::move(decision));
  }
}

}  // namespace

void FusionPass::Run(PhysicalPlan* plan, PassContext* pctx) {
  ExecContext* ctx = pctx->ctx;
  const analysis::DataflowResult flow = analysis::InferDataflow(*plan);
  // Provenance first: the fusibility report lands in the decision log even
  // when fusion itself is off, mirroring the pre-pass behaviour.
  analysis::RecordFusibility(*plan, flow);
  if (!plan->config.operator_fusion) return;

  // Costing reads the statically inferred per-record sizes off the nodes;
  // annotate now (the executor re-annotates after the passes, with the
  // same facts — the fusion pass never changes the dataflow).
  analysis::AnnotatePlan(plan, flow);
  const std::vector<analysis::FusibleChain> chains =
      analysis::FusibleChains(*plan, flow);
  int regions = 0;
  for (size_t c = 0; c < chains.size(); ++c) {
    const analysis::FusibleChain& chain = chains[c];
    const int candidate = static_cast<int>(c);
    std::vector<int> segment;
    std::string pending_reason;
    for (int id : chain.nodes) {
      const PlannedNode& pn = plan->nodes[static_cast<size_t>(id)];
      // A member rewritten by cross-run reuse never computes this fit: a
      // reused node is a catalog read, a pruned node does not run at all.
      // Neither can sit inside a streamed region.
      if (pn.reused || pn.reuse_pruned) {
        JudgeSegment(plan, candidate, segment, chain.runtime,
                     pending_reason);
        segment.clear();
        JudgeSegment(plan, candidate, {id}, chain.runtime,
                     pn.reused ? "reused from catalog"
                               : "pruned by cross-run reuse");
        pending_reason.clear();
        continue;
      }
      // A transformer that cannot apply chunk-at-a-time can never sit in a
      // streamed region. (Apply-model members are judged optimistically:
      // whether the *fitted* model supports chunks is only known at run
      // time, where the runner falls back to node-at-a-time execution.)
      if (pn.kind == NodeKind::kTransformer &&
          pn.physical_transformer != nullptr &&
          !pn.physical_transformer->SupportsChunkedApply()) {
        JudgeSegment(plan, candidate, segment, chain.runtime,
                     pending_reason);
        segment.clear();
        JudgeSegment(plan, candidate, {id}, chain.runtime,
                     "operator lacks chunked apply");
        pending_reason.clear();
        continue;
      }
      // A fused region executes entirely at its head's schedule position;
      // on the train path a member's model must already be fitted there.
      // (On the runtime path every model is resolved before apply starts.)
      if (!chain.runtime && pn.kind == NodeKind::kApplyModel &&
          !segment.empty() && pn.model_input >= segment.front()) {
        JudgeSegment(plan, candidate, segment, chain.runtime,
                     pending_reason);
        segment.clear();
        pending_reason = "model fitted after region head";
      }
      segment.push_back(id);
      // A cached member may end a region (its output materializes anyway)
      // but can never be an interior: the runner would have nothing to put
      // in the cache.
      if (id < static_cast<int>(plan->cache_set.size()) &&
          plan->cache_set[static_cast<size_t>(id)]) {
        JudgeSegment(plan, candidate, segment, chain.runtime,
                     pending_reason);
        segment.clear();
        pending_reason = "cached interior";
      }
    }
    JudgeSegment(plan, candidate, segment, chain.runtime, pending_reason);
  }
  regions = static_cast<int>(plan->fused_regions.size());
  if (ctx->metrics() != nullptr && regions > 0) {
    ctx->metrics()->Increment("fusion.regions", regions);
  }
}

void RegisterStandardPasses(PassManager* manager) {
  manager->AddPass(std::make_unique<CsePass>());
  manager->AddPass(std::make_unique<ProfileAndSelectPass>());
  manager->AddPass(std::make_unique<ReusePass>());
  manager->AddPass(std::make_unique<MaterializationPass>());
  manager->AddPass(std::make_unique<FusionPass>());
}

}  // namespace keystone
