#include "src/cache/artifact_catalog.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <typeindex>
#include <utility>

#include "src/analysis/plan_validator.h"
#include "src/common/check.h"
#include "src/common/string_util.h"
#include "src/core/physical_plan.h"
#include "src/linalg/sparse.h"

namespace keystone {
namespace cache {

namespace {

// ---------------------------------------------------------------------------
// Payload codec: a little-endian binary image of a DistDataset, preserving
// partition structure and virtual scale. Covered element types are the ones
// that actually flow between pipeline stages (see data/element_traits.h);
// datasets of any other type simply stay memory-only.
// ---------------------------------------------------------------------------

constexpr char kPayloadMagic[] = "KSARTv1\n";  // 8 bytes on disk
constexpr size_t kMagicLen = 8;

constexpr uint32_t kTagString = 1;
constexpr uint32_t kTagStringVec = 2;
constexpr uint32_t kTagDoubleVec = 3;
constexpr uint32_t kTagSparseVec = 4;

template <typename T>
void AppendPod(std::string* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(const std::string& in, size_t* pos, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void EncodeRecord(std::string* out, const std::string& r) {
  AppendPod<uint64_t>(out, r.size());
  out->append(r);
}

bool DecodeRecord(const std::string& in, size_t* pos, std::string* r) {
  uint64_t len = 0;
  if (!ReadPod(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  r->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

void EncodeRecord(std::string* out, const std::vector<double>& r) {
  AppendPod<uint64_t>(out, r.size());
  out->append(reinterpret_cast<const char*>(r.data()),
              r.size() * sizeof(double));
}

bool DecodeRecord(const std::string& in, size_t* pos,
                  std::vector<double>* r) {
  uint64_t n = 0;
  if (!ReadPod(in, pos, &n)) return false;
  if (*pos + n * sizeof(double) > in.size()) return false;
  r->resize(n);
  std::memcpy(r->data(), in.data() + *pos, n * sizeof(double));
  *pos += n * sizeof(double);
  return true;
}

void EncodeRecord(std::string* out, const std::vector<std::string>& r) {
  AppendPod<uint64_t>(out, r.size());
  for (const std::string& s : r) EncodeRecord(out, s);
}

bool DecodeRecord(const std::string& in, size_t* pos,
                  std::vector<std::string>* r) {
  uint64_t n = 0;
  if (!ReadPod(in, pos, &n)) return false;
  r->clear();
  for (uint64_t i = 0; i < n; ++i) {
    std::string s;
    if (!DecodeRecord(in, pos, &s)) return false;
    r->push_back(std::move(s));
  }
  return true;
}

void EncodeRecord(std::string* out, const SparseVector& r) {
  AppendPod<uint64_t>(out, r.dim);
  AppendPod<uint64_t>(out, r.indices.size());
  out->append(reinterpret_cast<const char*>(r.indices.data()),
              r.indices.size() * sizeof(uint32_t));
  out->append(reinterpret_cast<const char*>(r.values.data()),
              r.values.size() * sizeof(double));
}

bool DecodeRecord(const std::string& in, size_t* pos, SparseVector* r) {
  uint64_t dim = 0, nnz = 0;
  if (!ReadPod(in, pos, &dim) || !ReadPod(in, pos, &nnz)) return false;
  if (*pos + nnz * (sizeof(uint32_t) + sizeof(double)) > in.size()) {
    return false;
  }
  r->dim = dim;
  r->indices.resize(nnz);
  std::memcpy(r->indices.data(), in.data() + *pos, nnz * sizeof(uint32_t));
  *pos += nnz * sizeof(uint32_t);
  r->values.resize(nnz);
  std::memcpy(r->values.data(), in.data() + *pos, nnz * sizeof(double));
  *pos += nnz * sizeof(double);
  return true;
}

template <typename T>
std::string EncodeTyped(const AnyDataset& data, uint32_t tag) {
  const auto typed = DistDataset<T>::Cast(data);
  std::string out(kPayloadMagic, kMagicLen);
  AppendPod<uint32_t>(&out, tag);
  AppendPod<double>(&out, typed->virtual_scale());
  AppendPod<uint64_t>(&out, typed->NumPartitions());
  for (const auto& part : typed->partitions()) {
    AppendPod<uint64_t>(&out, part.size());
    for (const T& rec : part) EncodeRecord(&out, rec);
  }
  return out;
}

template <typename T>
AnyDataset DecodeTyped(const std::string& in, size_t pos, double scale,
                       uint64_t num_partitions) {
  std::vector<std::vector<T>> parts(num_partitions);
  for (uint64_t p = 0; p < num_partitions; ++p) {
    uint64_t count = 0;
    if (!ReadPod(in, &pos, &count)) return nullptr;
    for (uint64_t i = 0; i < count; ++i) {
      T rec;
      if (!DecodeRecord(in, &pos, &rec)) return nullptr;
      parts[p].push_back(std::move(rec));
    }
  }
  auto dataset = std::make_shared<DistDataset<T>>(std::move(parts));
  dataset->set_virtual_scale(scale);
  return dataset;
}

/// Encoded payload bytes for `data`, or nullopt when no codec covers its
/// element type.
std::optional<std::string> EncodePayload(const AnyDataset& data) {
  const std::type_index type = data->ElementType();
  if (type == std::type_index(typeid(std::string))) {
    return EncodeTyped<std::string>(data, kTagString);
  }
  if (type == std::type_index(typeid(std::vector<std::string>))) {
    return EncodeTyped<std::vector<std::string>>(data, kTagStringVec);
  }
  if (type == std::type_index(typeid(std::vector<double>))) {
    return EncodeTyped<std::vector<double>>(data, kTagDoubleVec);
  }
  if (type == std::type_index(typeid(SparseVector))) {
    return EncodeTyped<SparseVector>(data, kTagSparseVec);
  }
  return std::nullopt;
}

/// Decodes a payload image; null on any structural corruption.
AnyDataset DecodePayload(const std::string& in) {
  if (in.size() < kMagicLen ||
      std::memcmp(in.data(), kPayloadMagic, kMagicLen) != 0) {
    return nullptr;
  }
  size_t pos = kMagicLen;
  uint32_t tag = 0;
  double scale = 1.0;
  uint64_t num_partitions = 0;
  if (!ReadPod(in, &pos, &tag) || !ReadPod(in, &pos, &scale) ||
      !ReadPod(in, &pos, &num_partitions)) {
    return nullptr;
  }
  switch (tag) {
    case kTagString:
      return DecodeTyped<std::string>(in, pos, scale, num_partitions);
    case kTagStringVec:
      return DecodeTyped<std::vector<std::string>>(in, pos, scale,
                                                   num_partitions);
    case kTagDoubleVec:
      return DecodeTyped<std::vector<double>>(in, pos, scale,
                                              num_partitions);
    case kTagSparseVec:
      return DecodeTyped<SparseVector>(in, pos, scale, num_partitions);
    default:
      return nullptr;
  }
}

/// Stable object-file basename for a key: FNV-1a of the key, hex.
std::string ObjectName(const std::string& key) {
  uint64_t h = 14695981039346656037ULL;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx.art",
                static_cast<unsigned long long>(h));  // NOLINT
  return buf;
}

}  // namespace

ArtifactCatalog::ArtifactCatalog(const CatalogConfig& config)
    : config_(config) {
  if (!config_.root.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.root + "/objects", ec);
  }
}

uint64_t ArtifactCatalog::generation() const {
  MutexLock lock(&mu_);
  return generation_;
}

uint64_t ArtifactCatalog::BeginGeneration() {
  MutexLock lock(&mu_);
  return ++generation_;
}

std::string ArtifactCatalog::ObjectPath(
    const std::string& object_file) const {
  return config_.root + "/objects/" + object_file;
}

bool ArtifactCatalog::Put(const std::string& key, const AnyDataset& data,
                          double bytes, size_t records,
                          double recompute_seconds) {
  KS_CHECK(data != nullptr);
  // Encode and land the disk copy outside the lock (Put only runs from the
  // serial flush phase, so there is no racing writer for this key).
  bool ok = true;
  bool on_disk = false;
  std::string object_file;
  if (!config_.root.empty()) {
    const auto encoded = EncodePayload(data);
    if (encoded.has_value()) {
      object_file = ObjectName(key);
      if (WriteFileAtomic(ObjectPath(object_file), *encoded)) {
        on_disk = true;
      } else {
        object_file.clear();
        ok = false;
      }
    }
  }
  MutexLock lock(&mu_);
  Entry& entry = entries_[key];
  if (entry.meta.in_memory) memory_bytes_ -= entry.meta.bytes;
  entry.meta = ArtifactMetadata();
  entry.meta.key = key;
  entry.meta.bytes = bytes;
  entry.meta.records = records;
  entry.meta.recompute_seconds = recompute_seconds;
  entry.meta.generation = generation_;
  entry.meta.last_access = ++access_ordinal_;
  entry.meta.in_memory = true;
  entry.meta.on_disk = on_disk;
  entry.payload = data;
  entry.object_file = object_file;
  memory_bytes_ += bytes;
  ++stats_.puts;
  EnforceBudgetLocked();
  return ok;
}

void ArtifactCatalog::EnforceBudgetLocked() {
  while (memory_bytes_ > config_.memory_budget_bytes) {
    // Victim: the resident entry with the least recompute benefit per byte
    // held; ties broken by oldest logical access, then key order (the map
    // iterates keys ascending, so the scan itself is deterministic).
    auto victim = entries_.end();
    double victim_density = 0.0;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.meta.in_memory) continue;
      const double density = it->second.meta.recompute_seconds /
                             std::max(1.0, it->second.meta.bytes);
      if (victim == entries_.end() || density < victim_density ||
          (density == victim_density &&
           it->second.meta.last_access <
               victim->second.meta.last_access)) {
        victim = it;
        victim_density = density;
      }
    }
    if (victim == entries_.end()) break;
    memory_bytes_ -= victim->second.meta.bytes;
    victim->second.payload = nullptr;
    victim->second.meta.in_memory = false;
    if (victim->second.meta.on_disk) {
      ++stats_.evictions;  // demoted: the disk copy still serves Fetch
    } else {
      ++stats_.dropped;  // no codec or no root: the artifact is gone
      entries_.erase(victim);
    }
  }
}

std::optional<ArtifactMetadata> ArtifactCatalog::Lookup(
    const std::string& key) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.meta;
}

AnyDataset ArtifactCatalog::Fetch(const std::string& key) const {
  std::string path;
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    if (it->second.meta.in_memory) return it->second.payload;
    if (!it->second.meta.on_disk) return nullptr;
    path = ObjectPath(it->second.object_file);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::ostringstream buf;
  buf << in.rdbuf();
  return DecodePayload(buf.str());
}

void ArtifactCatalog::Touch(const std::string& key) {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  ++it->second.meta.access_count;
  it->second.meta.last_access = ++access_ordinal_;
}

size_t ArtifactCatalog::Compact() {
  MutexLock lock(&mu_);
  size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const ArtifactMetadata& meta = it->second.meta;
    if (generation_ >= meta.generation &&
        generation_ - meta.generation >= config_.keep_generations) {
      if (meta.in_memory) memory_bytes_ -= meta.bytes;
      if (meta.on_disk) {
        std::remove(ObjectPath(it->second.object_file).c_str());
      }
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

bool ArtifactCatalog::SaveManifest() const {
  if (config_.root.empty()) return false;
  std::ostringstream out;
  out.precision(17);
  out << "# keystone artifact catalog v1\n";
  MutexLock lock(&mu_);
  out << "gen " << generation_ << "\n";
  for (const auto& [key, entry] : entries_) {
    const ArtifactMetadata& m = entry.meta;
    out << "entry " << EscapeToken(key) << " " << m.generation << " "
        << m.bytes << " " << m.records << " " << m.recompute_seconds << " "
        << m.access_count << " " << m.last_access << " "
        << (entry.object_file.empty() ? "-" : entry.object_file) << "\n";
  }
  return WriteFileAtomic(config_.root + "/manifest", out.str());
}

bool ArtifactCatalog::LoadManifest() {
  if (config_.root.empty()) return false;
  std::ifstream in(config_.root + "/manifest");
  if (!in) return false;
  std::map<std::string, Entry> entries;
  uint64_t generation = 0;
  uint64_t max_access = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "gen") {
      is >> generation;
      if (!is) return false;
    } else if (tag == "entry") {
      std::string key, object_file;
      Entry entry;
      ArtifactMetadata& m = entry.meta;
      is >> key >> m.generation >> m.bytes >> m.records >>
          m.recompute_seconds >> m.access_count >> m.last_access >>
          object_file;
      if (!is) return false;
      const auto unescaped = UnescapeToken(key);
      if (!unescaped) return false;  // malformed escape: corrupt manifest
      m.key = *unescaped;
      max_access = std::max(max_access, m.last_access);
      // An entry is only usable when its spilled payload survived; a key
      // whose object file is missing (crash between payload write and
      // manifest save, or a compaction raced by a kill) is dropped rather
      // than poisoning later fetches.
      if (object_file == "-") continue;
      std::error_code ec;
      if (!std::filesystem::exists(ObjectPath(object_file), ec)) continue;
      m.on_disk = true;
      m.in_memory = false;
      entry.object_file = object_file;
      entries[m.key] = std::move(entry);
    } else {
      return false;  // unknown record type: treat as corrupt
    }
  }
  MutexLock lock(&mu_);
  entries_ = std::move(entries);
  generation_ = generation;
  access_ordinal_ = std::max(access_ordinal_, max_access);
  memory_bytes_ = 0.0;
  return true;
}

size_t ArtifactCatalog::NumEntries() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

double ArtifactCatalog::MemoryBytes() const {
  MutexLock lock(&mu_);
  return memory_bytes_;
}

CatalogStats ArtifactCatalog::Stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

std::vector<ArtifactMetadata> ArtifactCatalog::Entries() const {
  MutexLock lock(&mu_);
  std::vector<ArtifactMetadata> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry.meta);
  return out;
}

void ArtifactCatalog::Clear() {
  MutexLock lock(&mu_);
  entries_.clear();
  memory_bytes_ = 0.0;
}

analysis::ValidationReport ValidateReuse(const PhysicalPlan& plan,
                                         const ArtifactCatalog& catalog) {
  using analysis::Severity;
  namespace rules = analysis::rules;
  analysis::ValidationReport report;
  const uint64_t generation = catalog.generation();
  for (const PlannedNode& pn : plan.nodes) {
    if (!pn.reused) continue;
    const auto entry = catalog.Lookup(pn.reuse_fingerprint);
    if (!entry.has_value()) {
      report.Add(Severity::kError, rules::kReuseMissingEntry, pn.id,
                 "reused node '" + pn.name + "' reads catalog entry \"" +
                     pn.reuse_fingerprint + "\" which no longer exists");
      continue;
    }
    if (entry->records != pn.full_records) {
      report.Add(Severity::kError, rules::kReuseFingerprintMismatch, pn.id,
                 "catalog entry for '" + pn.name + "' holds " +
                     std::to_string(entry->records) +
                     " records but the plan expects " +
                     std::to_string(pn.full_records));
    }
    if (generation >= entry->generation &&
        generation - entry->generation >=
            catalog.config().keep_generations) {
      report.Add(Severity::kWarning, rules::kReuseStaleGeneration, pn.id,
                 "reused node '" + pn.name + "' reads generation " +
                     std::to_string(entry->generation) +
                     " which is past the keep window at generation " +
                     std::to_string(generation) +
                     " (a Compact() would remove it)");
    }
  }
  if (catalog.MemoryBytes() > catalog.config().memory_budget_bytes) {
    report.Add(Severity::kWarning, rules::kReuseBudgetOverflow, -1,
               "catalog memory tier holds " +
                   HumanBytes(catalog.MemoryBytes()) + " against a budget of " +
                   HumanBytes(catalog.config().memory_budget_bytes));
  }
  return report;
}

}  // namespace cache
}  // namespace keystone
