#ifndef KEYSTONE_CACHE_ARTIFACT_CATALOG_H_
#define KEYSTONE_CACHE_ARTIFACT_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/data/dist_dataset.h"

namespace keystone {

struct PhysicalPlan;

namespace cache {

/// Configuration of one ArtifactCatalog instance.
struct CatalogConfig {
  /// Directory holding the manifest and spilled payloads. Empty means
  /// memory-only: nothing touches disk and eviction discards outright.
  std::string root;
  /// Budget for decoded payloads held in the memory tier; exceeding it
  /// triggers LRU-by-benefit eviction (demote to disk, or drop).
  double memory_budget_bytes = 256.0 * 1024.0 * 1024.0;
  /// Compact() removes entries whose generation lags the current one by at
  /// least this many generations; ValidateReuse flags reads of such
  /// entries as reuse.stale-generation.
  uint64_t keep_generations = 4;
};

/// Metadata of one catalog entry, as persisted in the manifest. `bytes`
/// and `records` describe the stored dataset (virtual-scaled, matching
/// DataStats), `recompute_seconds` the modeled cost of re-deriving it from
/// sources — the benefit side of every reuse and eviction decision.
struct ArtifactMetadata {
  std::string key;  // producer's lineage fingerprint
  double bytes = 0.0;
  size_t records = 0;
  double recompute_seconds = 0.0;
  uint64_t generation = 0;
  uint64_t access_count = 0;
  /// Logical access ordinal (not wall time, so replays are deterministic
  /// and the ordering survives a save/load round trip).
  uint64_t last_access = 0;
  bool in_memory = false;
  bool on_disk = false;
};

/// Monotonic counters of catalog activity since construction. All
/// mutations happen in the runner's serial id-ordered flush, so these are
/// identical between serial and branch-parallel runs.
struct CatalogStats {
  uint64_t puts = 0;
  uint64_t evictions = 0;  // memory-tier demotions to disk
  uint64_t dropped = 0;    // evictions with no disk copy to fall back to
};

/// Persistent, fingerprint-keyed store of materialized pipeline
/// intermediates — the cross-run (Helix-style) counterpart to the per-run
/// materialization pass. Entries are keyed by the producing node's lineage
/// fingerprint and carry cost/size/generation metadata so the ReusePass
/// can price load-vs-recompute with the existing cost model.
///
/// Tiering: Put is write-through — when a codec exists for the dataset's
/// element type the payload is encoded to `<root>/objects/` immediately
/// (atomic temp+rename), and the decoded dataset additionally stays in the
/// memory tier under `memory_budget_bytes`. Evicting a memory-tier entry
/// demotes it to its disk copy; entries with no codec (or no root) are
/// dropped outright. The manifest is plain text with %-escaped keys
/// (shared EscapeToken helpers) and is written atomically, so a crash
/// mid-save leaves the previous complete manifest in place.
///
/// Thread safety: all methods lock `mu_` (rank kLockRankArtifactCatalog).
/// Fetch/Lookup never mutate, so concurrent branch-parallel readers see a
/// catalog frozen at run start; Put/Touch/eviction run only in the serial
/// flush phase.
class ArtifactCatalog {
 public:
  explicit ArtifactCatalog(const CatalogConfig& config);
  ArtifactCatalog(const ArtifactCatalog&) = delete;
  ArtifactCatalog& operator=(const ArtifactCatalog&) = delete;

  const CatalogConfig& config() const { return config_; }

  // --- Generations -------------------------------------------------------

  /// Current generation; entries Put now are stamped with it.
  uint64_t generation() const;
  /// Starts the next generation (one per optimizer compile that intends to
  /// publish) and returns it.
  uint64_t BeginGeneration();

  // --- Entries -----------------------------------------------------------

  /// Stores `data` under `key` with the given size/cost metadata,
  /// overwriting any previous entry. Encodes to disk when a codec covers
  /// the element type and a root is configured, then enforces the memory
  /// budget. Returns false only on a disk-write failure (the memory-tier
  /// entry is still installed).
  bool Put(const std::string& key, const AnyDataset& data, double bytes,
           size_t records, double recompute_seconds);

  /// Metadata for `key`, or nullopt. Never mutates access bookkeeping.
  std::optional<ArtifactMetadata> Lookup(const std::string& key) const;

  /// The stored dataset for `key`: the memory-tier pointer when resident,
  /// otherwise decoded from the disk tier (without promoting — promotion
  /// is a mutation and Fetch may run from parallel branches). Null when
  /// the key is unknown or the payload is unreadable.
  AnyDataset Fetch(const std::string& key) const;

  /// Records one logical access (for LRU-by-benefit eviction ordering).
  void Touch(const std::string& key);

  /// Removes entries whose generation lags generation() by at least
  /// `keep_generations`, deleting their spilled payloads. Returns the
  /// number of entries removed.
  size_t Compact();

  // --- Persistence -------------------------------------------------------

  /// Writes `<root>/manifest` atomically (temp file + rename). False when
  /// no root is configured or on I/O failure.
  bool SaveManifest() const;

  /// Replaces in-memory state from `<root>/manifest`. Entries whose
  /// spilled payload is missing (e.g. a crash between payload write and
  /// manifest save) are dropped; a stray `manifest.tmp` from a killed save
  /// is ignored. False when no root is configured, the manifest is
  /// missing, or any line is malformed.
  bool LoadManifest();

  // --- Introspection -----------------------------------------------------

  size_t NumEntries() const;
  double MemoryBytes() const;
  CatalogStats Stats() const;
  /// Every entry's metadata, ordered by key (deterministic).
  std::vector<ArtifactMetadata> Entries() const;
  void Clear();

 private:
  struct Entry {
    ArtifactMetadata meta;
    AnyDataset payload;       // set iff meta.in_memory
    std::string object_file;  // basename under <root>/objects, "" if none
  };

  std::string ObjectPath(const std::string& object_file) const;
  /// Evicts memory-tier entries (lowest recompute-per-byte benefit first,
  /// ties broken by oldest access then key) until the budget holds.
  void EnforceBudgetLocked() REQUIRES(mu_);

  const CatalogConfig config_;
  mutable Mutex mu_{kLockRankArtifactCatalog};
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  uint64_t access_ordinal_ GUARDED_BY(mu_) = 0;
  double memory_bytes_ GUARDED_BY(mu_) = 0.0;
  CatalogStats stats_ GUARDED_BY(mu_);
};

/// Cross-checks a reuse-rewritten plan against the catalog it was planned
/// with — the catalog-aware half of the reuse.* rules (the plan-only half
/// is analysis::ValidateReuseMarkers):
///  - every reused node's catalog entry must still exist
///    (reuse.missing-entry) and agree on cardinality
///    (reuse.fingerprint-mismatch);
///  - reads of entries older than the keep window are flagged
///    (reuse.stale-generation);
///  - a memory tier over its configured budget is flagged
///    (reuse.budget-overflow).
analysis::ValidationReport ValidateReuse(const PhysicalPlan& plan,
                                         const ArtifactCatalog& catalog);

}  // namespace cache
}  // namespace keystone

#endif  // KEYSTONE_CACHE_ARTIFACT_CATALOG_H_
