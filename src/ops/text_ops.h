#ifndef KEYSTONE_OPS_TEXT_OPS_H_
#define KEYSTONE_OPS_TEXT_OPS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/operator.h"
#include "src/linalg/sparse.h"

namespace keystone {

using TokenSeq = std::vector<std::string>;

/// Strips leading/trailing whitespace (paper Figure 2's `Trim`).
class Trim : public Transformer<std::string, std::string> {
 public:
  std::string Name() const override { return "Trim"; }
  std::string Apply(const std::string& doc) const override;
};

/// ASCII lowercasing.
class LowerCase : public Transformer<std::string, std::string> {
 public:
  std::string Name() const override { return "LowerCase"; }
  std::string Apply(const std::string& doc) const override;
};

/// Whitespace/punctuation tokenizer.
class Tokenizer : public Transformer<std::string, TokenSeq> {
 public:
  std::string Name() const override { return "Tokenizer"; }
  TokenSeq Apply(const std::string& doc) const override;
};

/// Emits all n-grams for n in [min_n, max_n], joined with '_'.
class NGramsFeaturizer : public Transformer<TokenSeq, TokenSeq> {
 public:
  NGramsFeaturizer(int min_n, int max_n) : min_n_(min_n), max_n_(max_n) {}
  std::string Name() const override { return "NGrams"; }
  std::string ParamSignature() const override {
    return std::to_string(min_n_) + "-" + std::to_string(max_n_);
  }
  TokenSeq Apply(const TokenSeq& tokens) const override;

 private:
  int min_n_;
  int max_n_;
};

/// Hashing term-frequency featurizer: token -> hash bucket in [0, dim). The
/// weighting matches the paper's TermFrequency(x => 1) (binary presence) or
/// raw counts.
class HashingTermFrequency : public Transformer<TokenSeq, SparseVector> {
 public:
  enum class Weighting { kBinary, kCount };

  explicit HashingTermFrequency(size_t dim,
                                Weighting weighting = Weighting::kBinary)
      : dim_(dim), weighting_(weighting) {}

  std::string Name() const override { return "HashingTF"; }
  std::string ParamSignature() const override {
    return std::to_string(dim_) +
           (weighting_ == Weighting::kBinary ? ",binary" : ",count");
  }
  SparseVector Apply(const TokenSeq& tokens) const override;

  ValueShape TransferShape(const ValueShape& in) const override {
    (void)in;
    return ValueShape::Sparse(static_cast<int64_t>(dim_));
  }

  CostProfile EstimateCost(const DataStats& in, int workers) const override;

 private:
  size_t dim_;
  Weighting weighting_;
};

/// Fitted vocabulary map: token -> feature index; unseen tokens dropped.
class VocabularyModel : public Transformer<TokenSeq, SparseVector> {
 public:
  VocabularyModel(std::vector<std::string> vocabulary, size_t dim,
                  bool binary);

  std::string Name() const override { return "CommonSparseFeatures.Model"; }
  SparseVector Apply(const TokenSeq& tokens) const override;

  ValueShape TransferShape(const ValueShape& in) const override {
    (void)in;
    return ValueShape::Sparse(static_cast<int64_t>(dim_));
  }

  size_t vocabulary_size() const { return index_.size(); }
  CostProfile EstimateCost(const DataStats& in, int workers) const override;

 private:
  std::unordered_map<std::string, uint32_t> index_;
  size_t dim_;
  bool binary_;
};

/// Keeps the `max_features` most frequent terms across the corpus (paper
/// Figure 2's CommonSparseFeatures(1e5)) and featurizes documents to sparse
/// term-frequency vectors over that vocabulary.
class CommonSparseFeatures : public Estimator<TokenSeq, SparseVector> {
 public:
  explicit CommonSparseFeatures(size_t max_features, bool binary = true)
      : max_features_(max_features), binary_(binary) {}

  std::string Name() const override { return "CommonSparseFeatures"; }
  std::string ParamSignature() const override {
    return std::to_string(max_features_) + (binary_ ? ",binary" : ",count");
  }

  std::shared_ptr<Transformer<TokenSeq, SparseVector>> Fit(
      const DistDataset<TokenSeq>& data, ExecContext* ctx) const override;

  /// The fitted VocabularyModel always emits vectors in a max_features-wide
  /// feature space (Fit passes max_features_ as the model dim).
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    (void)data_in;
    return ValueShape::Sparse(static_cast<int64_t>(max_features_));
  }

  CostProfile EstimateCost(const DataStats& in, int workers) const override;

 private:
  size_t max_features_;
  bool binary_;
};

}  // namespace keystone

#endif  // KEYSTONE_OPS_TEXT_OPS_H_
