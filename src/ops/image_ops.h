#ifndef KEYSTONE_OPS_IMAGE_OPS_H_
#define KEYSTONE_OPS_IMAGE_OPS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/string_util.h"
#include "src/core/operator.h"
#include "src/ops/image.h"

namespace keystone {

/// Luminance grayscale conversion (any #channels -> 1).
class GrayScaler : public Transformer<Image, Image> {
 public:
  std::string Name() const override { return "GrayScaler"; }
  Image Apply(const Image& img) const override;
  CostProfile EstimateCost(const DataStats& in, int workers) const override;
  ValueShape TransferShape(const ValueShape& in) const override {
    return ValueShape::ImageOf(in.d0, in.d1, 1);
  }
};

/// Extracts all (stride-spaced) patch_size x patch_size patches and flattens
/// each into a row of the output matrix (the CIFAR pipeline's Windower /
/// PatchExtractor).
class PatchExtractor : public Transformer<Image, Matrix> {
 public:
  PatchExtractor(size_t patch_size, size_t stride)
      : patch_size_(patch_size), stride_(stride) {}

  std::string Name() const override { return "PatchExtractor"; }
  std::string ParamSignature() const override {
    return std::to_string(patch_size_) + "," + std::to_string(stride_);
  }
  Matrix Apply(const Image& img) const override;
  CostProfile EstimateCost(const DataStats& in, int workers) const override;

  /// One row per patch; width = flattened patch (needs channel count).
  ValueShape TransferShape(const ValueShape& in) const override {
    const int64_t cols =
        in.d2 == ValueShape::kUnknownDim
            ? ValueShape::kUnknownDim
            : static_cast<int64_t>(patch_dim(static_cast<size_t>(in.d2)));
    return ValueShape::MatrixOf(ValueShape::kUnknownDim, cols);
  }

  size_t patch_dim(size_t channels) const {
    return patch_size_ * patch_size_ * channels;
  }

 private:
  size_t patch_size_;
  size_t stride_;
};

/// Dense SIFT-like descriptors: the image is divided into cells; each cell
/// yields a histogram of gradient orientations over `bins` bins, normalized.
/// A simplified stand-in for SIFT [Lowe 99] with the same output shape
/// (one descriptor row per cell, fixed dimension).
class DenseSift : public Transformer<Image, Matrix> {
 public:
  DenseSift(size_t cell_size, size_t bins)
      : cell_size_(cell_size), bins_(bins) {}

  std::string Name() const override { return "SIFT"; }
  std::string ParamSignature() const override {
    return std::to_string(cell_size_) + "," + std::to_string(bins_);
  }
  Matrix Apply(const Image& img) const override;
  CostProfile EstimateCost(const DataStats& in, int workers) const override;

  ValueShape TransferShape(const ValueShape& in) const override {
    (void)in;
    return ValueShape::MatrixOf(ValueShape::kUnknownDim,
                                static_cast<int64_t>(descriptor_dim()));
  }

  size_t descriptor_dim() const { return 4 * bins_; }

 private:
  size_t cell_size_;
  size_t bins_;
};

/// Local color statistics: per-cell mean and standard deviation of each
/// channel (the LCS featurizer of the ImageNet pipeline).
class LocalColorStats : public Transformer<Image, Matrix> {
 public:
  explicit LocalColorStats(size_t cell_size) : cell_size_(cell_size) {}

  std::string Name() const override { return "LCS"; }
  std::string ParamSignature() const override {
    return std::to_string(cell_size_);
  }
  Matrix Apply(const Image& img) const override;

  /// Per-cell mean and standard deviation of each channel.
  ValueShape TransferShape(const ValueShape& in) const override {
    const int64_t cols =
        in.d2 == ValueShape::kUnknownDim ? ValueShape::kUnknownDim : 2 * in.d2;
    return ValueShape::MatrixOf(ValueShape::kUnknownDim, cols);
  }

 private:
  size_t cell_size_;
};

/// Keeps every `stride`-th descriptor row — the DAG's "Column Sampler"
/// nodes, which thin descriptor sets before fitting PCA/GMM.
class DescriptorSampler : public Transformer<Matrix, Matrix> {
 public:
  explicit DescriptorSampler(size_t stride) : stride_(stride) {}
  std::string Name() const override { return "ColumnSampler"; }
  std::string ParamSignature() const override {
    return std::to_string(stride_);
  }
  Matrix Apply(const Matrix& descriptors) const override;
  ValueShape TransferShape(const ValueShape& in) const override {
    return ValueShape::MatrixOf(ValueShape::kUnknownDim, in.d1);
  }

 private:
  size_t stride_;
};

/// Symmetric rectification: each input column x becomes [max(x,0),
/// max(-x,0)] (doubling the dimension) — used by the CIFAR pipeline.
class SymmetricRectifier : public Transformer<std::vector<double>,
                                              std::vector<double>> {
 public:
  explicit SymmetricRectifier(double alpha = 0.0) : alpha_(alpha) {}
  std::string Name() const override { return "SymmetricRectifier"; }
  std::string ParamSignature() const override { return ParamNumber(alpha_); }
  std::vector<double> Apply(const std::vector<double>& x) const override;
  ValueShape TransferShape(const ValueShape& in) const override {
    return ValueShape::Vector(
        in.d0 == ValueShape::kUnknownDim ? ValueShape::kUnknownDim
                                         : 2 * in.d0);
  }

 private:
  double alpha_;
};

/// Sum-pools descriptor rows over a grid_ x grid_ spatial grid, assuming
/// rows are in row-major cell order, and concatenates pooled blocks.
class Pooler : public Transformer<Matrix, std::vector<double>> {
 public:
  explicit Pooler(size_t grid) : grid_(grid) {}
  std::string Name() const override { return "Pooler"; }
  std::string ParamSignature() const override { return std::to_string(grid_); }
  std::vector<double> Apply(const Matrix& features) const override;
  ValueShape TransferShape(const ValueShape& in) const override {
    return ValueShape::Vector(
        in.d1 == ValueShape::kUnknownDim
            ? ValueShape::kUnknownDim
            : static_cast<int64_t>(grid_ * grid_) * in.d1);
  }

 private:
  size_t grid_;
};

/// ZCA whitening estimator over patch matrices: fits mean and rotation
/// W = V (D + eps)^(-1/2) V^T on stacked patches; the model whitens each
/// descriptor row.
class ZcaWhitener : public Estimator<Matrix, Matrix> {
 public:
  explicit ZcaWhitener(double epsilon = 0.1) : epsilon_(epsilon) {}
  std::string Name() const override { return "ZCAWhitener"; }
  std::string ParamSignature() const override { return ParamNumber(epsilon_); }

  std::shared_ptr<Transformer<Matrix, Matrix>> Fit(
      const DistDataset<Matrix>& data, ExecContext* ctx) const override;

  /// Whitening rotates rows in place: the shape is preserved.
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    return data_in;
  }

  CostProfile EstimateCost(const DataStats& in, int workers) const override;

 private:
  double epsilon_;
};

/// The fitted whitening transform.
class ZcaModel : public Transformer<Matrix, Matrix> {
 public:
  ZcaModel(std::vector<double> mean, Matrix rotation)
      : mean_(std::move(mean)), rotation_(std::move(rotation)) {}
  std::string Name() const override { return "ZCA.Model"; }
  Matrix Apply(const Matrix& rows) const override;
  ValueShape InputShapeRequirement() const override {
    return ValueShape::MatrixOf(ValueShape::kUnknownDim,
                                static_cast<int64_t>(rotation_.cols()));
  }
  ValueShape TransferShape(const ValueShape& in) const override { return in; }
  const Matrix& rotation() const { return rotation_; }

 private:
  std::vector<double> mean_;
  Matrix rotation_;
};

}  // namespace keystone

#endif  // KEYSTONE_OPS_IMAGE_OPS_H_
