#include "src/ops/metrics.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace keystone {

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels) {
  KS_CHECK_EQ(predictions.size(), labels.size());
  KS_CHECK(!labels.empty());
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    correct += predictions[i] == labels[i];
  }
  return static_cast<double>(correct) / labels.size();
}

double TopKError(const std::vector<std::vector<double>>& scores,
                 const std::vector<int>& labels, int k) {
  KS_CHECK_EQ(scores.size(), labels.size());
  KS_CHECK(!labels.empty());
  size_t misses = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const auto& s = scores[i];
    const double truth_score = s[labels[i]];
    int better = 0;
    for (double v : s) better += v > truth_score;
    if (better >= k) ++misses;
  }
  return static_cast<double>(misses) / labels.size();
}

double MeanAveragePrecision(const std::vector<std::vector<double>>& scores,
                            const std::vector<int>& labels, int num_classes) {
  KS_CHECK_EQ(scores.size(), labels.size());
  KS_CHECK(!labels.empty());
  double map_sum = 0.0;
  int classes_with_positives = 0;
  for (int c = 0; c < num_classes; ++c) {
    std::vector<size_t> order(scores.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scores[a][c] > scores[b][c];
    });
    int positives_seen = 0;
    double precision_sum = 0.0;
    for (size_t rank = 0; rank < order.size(); ++rank) {
      if (labels[order[rank]] == c) {
        ++positives_seen;
        precision_sum += static_cast<double>(positives_seen) / (rank + 1);
      }
    }
    if (positives_seen > 0) {
      map_sum += precision_sum / positives_seen;
      ++classes_with_positives;
    }
  }
  return classes_with_positives > 0 ? map_sum / classes_with_positives : 0.0;
}

Matrix ConfusionMatrix(const std::vector<int>& predictions,
                       const std::vector<int>& labels, int num_classes) {
  KS_CHECK_EQ(predictions.size(), labels.size());
  Matrix confusion(num_classes, num_classes);
  for (size_t i = 0; i < labels.size(); ++i) {
    KS_CHECK_LT(labels[i], num_classes);
    KS_CHECK_LT(predictions[i], num_classes);
    confusion(labels[i], predictions[i]) += 1.0;
  }
  return confusion;
}

}  // namespace keystone
