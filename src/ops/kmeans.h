#ifndef KEYSTONE_OPS_KMEANS_H_
#define KEYSTONE_OPS_KMEANS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/operator.h"
#include "src/linalg/matrix.h"

namespace keystone {

/// K-means estimator over per-image patch matrices (the CIFAR pipeline's
/// feature dictionary, after Coates & Ng 2012). The fitted model maps each
/// patch row to K soft activations using the "triangle" encoding
/// max(0, mu - dist_k), one output row per patch.
class KMeansEstimator : public Estimator<Matrix, Matrix> {
 public:
  KMeansEstimator(size_t k, int iterations = 10, uint64_t seed = 31)
      : k_(k), iterations_(iterations), seed_(seed) {}

  std::string Name() const override { return "KMeans"; }
  std::string ParamSignature() const override {
    return "k=" + std::to_string(k_) +
           ",iters=" + std::to_string(iterations_) +
           ",seed=" + std::to_string(seed_);
  }

  std::shared_ptr<Transformer<Matrix, Matrix>> Fit(
      const DistDataset<Matrix>& data, ExecContext* ctx) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;
  int Weight() const override { return iterations_; }

  /// One activation row per patch row, K soft assignments wide.
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    return ValueShape::MatrixOf(data_in.d0, static_cast<int64_t>(k_));
  }
  EffectClass Effect() const override {
    return EffectClass::kSeededDeterministic;
  }

 private:
  size_t k_;
  int iterations_;
  uint64_t seed_;
};

/// The fitted soft-assignment encoder.
class KMeansModel : public Transformer<Matrix, Matrix> {
 public:
  explicit KMeansModel(Matrix centers) : centers_(std::move(centers)) {}

  std::string Name() const override { return "KMeans.Model"; }
  Matrix Apply(const Matrix& patches) const override;
  CostProfile EstimateCost(const DataStats& in, int workers) const override;

  ValueShape InputShapeRequirement() const override {
    return ValueShape::MatrixOf(ValueShape::kUnknownDim,
                                static_cast<int64_t>(centers_.cols()));
  }
  ValueShape TransferShape(const ValueShape& in) const override {
    return ValueShape::MatrixOf(in.d0, static_cast<int64_t>(centers_.rows()));
  }

  const Matrix& centers() const { return centers_; }

 private:
  Matrix centers_;  // K x d
};

/// Plain Lloyd's algorithm (k-means++ init). Exposed for tests.
Matrix FitKMeans(const Matrix& rows, size_t k, int iterations, uint64_t seed);

}  // namespace keystone

#endif  // KEYSTONE_OPS_KMEANS_H_
