#include "src/ops/text_ops.h"

#include <algorithm>
#include <cctype>

#include "src/common/string_util.h"

namespace keystone {

namespace {

/// FNV-1a hash for the hashing featurizer.
uint64_t HashToken(const std::string& token) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : token) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string Trim::Apply(const std::string& doc) const {
  return TrimWhitespace(doc);
}

std::string LowerCase::Apply(const std::string& doc) const {
  return ToLowerAscii(doc);
}

TokenSeq Tokenizer::Apply(const std::string& doc) const {
  return SplitString(doc, " \t\r\n.,;:!?()[]{}\"'");
}

TokenSeq NGramsFeaturizer::Apply(const TokenSeq& tokens) const {
  TokenSeq out;
  for (int n = min_n_; n <= max_n_; ++n) {
    if (n <= 0 || tokens.size() < static_cast<size_t>(n)) continue;
    for (size_t i = 0; i + n <= tokens.size(); ++i) {
      std::string gram = tokens[i];
      for (int j = 1; j < n; ++j) {
        gram += '_';
        gram += tokens[i + j];
      }
      out.push_back(std::move(gram));
    }
  }
  return out;
}

SparseVector HashingTermFrequency::Apply(const TokenSeq& tokens) const {
  SparseVector v;
  v.dim = dim_;
  for (const auto& token : tokens) {
    v.Push(static_cast<uint32_t>(HashToken(token) % dim_), 1.0);
  }
  v.SortAndMerge();
  if (weighting_ == Weighting::kBinary) {
    for (auto& value : v.values) value = 1.0;
  }
  return v;
}

CostProfile HashingTermFrequency::EstimateCost(const DataStats& in,
                                               int workers) const {
  CostProfile cost;
  cost.bytes = 2.0 * in.TotalBytes() / std::max(1, workers);
  cost.flops = 8.0 * in.TotalBytes() / std::max(1, workers);  // hash work
  return cost;
}

VocabularyModel::VocabularyModel(std::vector<std::string> vocabulary,
                                 size_t dim, bool binary)
    : dim_(dim), binary_(binary) {
  for (uint32_t i = 0; i < vocabulary.size(); ++i) {
    index_.emplace(std::move(vocabulary[i]), i);
  }
}

SparseVector VocabularyModel::Apply(const TokenSeq& tokens) const {
  SparseVector v;
  v.dim = dim_;
  for (const auto& token : tokens) {
    auto it = index_.find(token);
    if (it != index_.end()) v.Push(it->second, 1.0);
  }
  v.SortAndMerge();
  if (binary_) {
    for (auto& value : v.values) value = 1.0;
  }
  return v;
}

CostProfile VocabularyModel::EstimateCost(const DataStats& in,
                                          int workers) const {
  CostProfile cost;
  cost.bytes = 2.0 * in.TotalBytes() / std::max(1, workers);
  cost.flops = 8.0 * in.TotalBytes() / std::max(1, workers);
  return cost;
}

std::shared_ptr<Transformer<TokenSeq, SparseVector>> CommonSparseFeatures::Fit(
    const DistDataset<TokenSeq>& data, ExecContext* ctx) const {
  (void)ctx;
  std::unordered_map<std::string, uint64_t> counts;
  for (const auto& part : data.partitions()) {
    for (const auto& tokens : part) {
      for (const auto& token : tokens) ++counts[token];
    }
  }
  // Top max_features_ terms by frequency (ties broken lexicographically for
  // determinism).
  std::vector<std::pair<std::string, uint64_t>> terms(counts.begin(),
                                                      counts.end());
  const size_t keep = std::min(max_features_, terms.size());
  std::partial_sort(terms.begin(), terms.begin() + keep, terms.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  std::vector<std::string> vocabulary;
  vocabulary.reserve(keep);
  for (size_t i = 0; i < keep; ++i) vocabulary.push_back(terms[i].first);
  // The model's output dimension is the configured width so that sample
  // fits report the same feature dimensionality as full fits.
  return std::make_shared<VocabularyModel>(std::move(vocabulary),
                                           max_features_, binary_);
}

CostProfile CommonSparseFeatures::EstimateCost(const DataStats& in,
                                               int workers) const {
  CostProfile cost;
  cost.bytes = 2.0 * in.TotalBytes() / std::max(1, workers);
  cost.flops = 12.0 * in.TotalBytes() / std::max(1, workers);
  // Aggregation of per-node term counts.
  cost.network = 16.0 * static_cast<double>(max_features_);
  cost.rounds = 2.0;
  return cost;
}

}  // namespace keystone
