#ifndef KEYSTONE_OPS_IMAGE_H_
#define KEYSTONE_OPS_IMAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/core/dataflow_lattice.h"
#include "src/linalg/matrix.h"

namespace keystone {

/// Dense multi-channel image in planar layout: data[c][y][x] flattened as
/// c * (height * width) + y * width + x. Pixels are doubles in [0, 1].
struct Image {
  size_t width = 0;
  size_t height = 0;
  size_t channels = 0;
  std::vector<double> data;

  Image() = default;
  Image(size_t w, size_t h, size_t c)
      : width(w), height(h), channels(c), data(w * h * c, 0.0) {}

  double& at(size_t c, size_t y, size_t x) {
    return data[c * height * width + y * width + x];
  }
  double at(size_t c, size_t y, size_t x) const {
    return data[c * height * width + y * width + x];
  }

  size_t NumPixels() const { return width * height * channels; }

  /// Channel c as a matrix view copy (height x width).
  Matrix Channel(size_t c) const {
    KS_CHECK_LT(c, channels);
    Matrix m(height, width);
    std::copy(data.begin() + c * height * width,
              data.begin() + (c + 1) * height * width, m.data());
    return m;
  }

  void SetChannel(size_t c, const Matrix& m) {
    KS_CHECK_LT(c, channels);
    KS_CHECK_EQ(m.rows(), height);
    KS_CHECK_EQ(m.cols(), width);
    std::copy(m.data(), m.data() + height * width,
              data.begin() + c * height * width);
  }
};

// Dataset element traits for images (Matrix traits live in
// src/data/element_traits.h).
inline double ElementBytes(const Image& img) {
  return static_cast<double>(img.NumPixels() * sizeof(double));
}
inline size_t ElementDim(const Image& img) { return img.NumPixels(); }
inline double ElementNnz(const Image& img) {
  return static_cast<double>(img.NumPixels());
}
inline ValueShape ShapeOfElement(const Image& img) {
  return ValueShape::ImageOf(static_cast<int64_t>(img.width),
                             static_cast<int64_t>(img.height),
                             static_cast<int64_t>(img.channels));
}

template <>
struct StaticShapeOf<Image> {
  static ValueShape Get() { return ValueShape::ImageOf(); }
};

}  // namespace keystone

#endif  // KEYSTONE_OPS_IMAGE_H_
