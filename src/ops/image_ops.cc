#include "src/ops/image_ops.h"

#include <algorithm>
#include <cmath>

#include "src/linalg/eigen.h"
#include "src/linalg/gemm.h"

namespace keystone {

Image GrayScaler::Apply(const Image& img) const {
  Image out(img.width, img.height, 1);
  const double scale = 1.0 / static_cast<double>(img.channels);
  for (size_t y = 0; y < img.height; ++y) {
    for (size_t x = 0; x < img.width; ++x) {
      double sum = 0.0;
      for (size_t c = 0; c < img.channels; ++c) sum += img.at(c, y, x);
      out.at(0, y, x) = sum * scale;
    }
  }
  return out;
}

CostProfile GrayScaler::EstimateCost(const DataStats& in, int workers) const {
  CostProfile cost;
  cost.flops = 2.0 * static_cast<double>(in.dim) * in.num_records /
               std::max(1, workers);
  cost.bytes = in.TotalBytes() / std::max(1, workers);
  return cost;
}

Matrix PatchExtractor::Apply(const Image& img) const {
  KS_CHECK_GE(img.width, patch_size_);
  KS_CHECK_GE(img.height, patch_size_);
  const size_t ny = (img.height - patch_size_) / stride_ + 1;
  const size_t nx = (img.width - patch_size_) / stride_ + 1;
  Matrix out(ny * nx, patch_dim(img.channels));
  size_t row = 0;
  for (size_t y0 = 0; y0 + patch_size_ <= img.height; y0 += stride_) {
    for (size_t x0 = 0; x0 + patch_size_ <= img.width; x0 += stride_) {
      double* dst = out.RowPtr(row++);
      size_t idx = 0;
      for (size_t c = 0; c < img.channels; ++c) {
        for (size_t dy = 0; dy < patch_size_; ++dy) {
          for (size_t dx = 0; dx < patch_size_; ++dx) {
            dst[idx++] = img.at(c, y0 + dy, x0 + dx);
          }
        }
      }
    }
  }
  return out;
}

CostProfile PatchExtractor::EstimateCost(const DataStats& in,
                                         int workers) const {
  CostProfile cost;
  // Each pixel is copied roughly (patch/stride)^2 times.
  const double copies =
      static_cast<double>(patch_size_ * patch_size_) /
      std::max<size_t>(1, stride_ * stride_);
  cost.bytes = copies * in.TotalBytes() / std::max(1, workers);
  return cost;
}

Matrix DenseSift::Apply(const Image& img) const {
  // Grayscale gradient field.
  const Image gray = img.channels == 1 ? img : GrayScaler().Apply(img);
  const size_t h = gray.height;
  const size_t w = gray.width;
  const size_t cells_y = h / cell_size_;
  const size_t cells_x = w / cell_size_;
  KS_CHECK_GT(cells_y, 0u);
  KS_CHECK_GT(cells_x, 0u);

  // Each descriptor aggregates a 2x2 neighborhood of cells (hence 4 * bins
  // dimensions), mimicking SIFT's spatial binning at reduced scale.
  const size_t desc_y = cells_y > 1 ? cells_y - 1 : 1;
  const size_t desc_x = cells_x > 1 ? cells_x - 1 : 1;

  // Per-cell orientation histograms.
  Matrix cell_hist(cells_y * cells_x, bins_);
  for (size_t y = 1; y + 1 < h; ++y) {
    for (size_t x = 1; x + 1 < w; ++x) {
      const double gx = gray.at(0, y, x + 1) - gray.at(0, y, x - 1);
      const double gy = gray.at(0, y + 1, x) - gray.at(0, y - 1, x);
      const double mag = std::sqrt(gx * gx + gy * gy);
      double angle = std::atan2(gy, gx);  // [-pi, pi]
      const double unit = (angle + M_PI) / (2.0 * M_PI);  // [0, 1]
      size_t bin = std::min(bins_ - 1,
                            static_cast<size_t>(unit * bins_));
      const size_t cy = std::min(cells_y - 1, y / cell_size_);
      const size_t cx = std::min(cells_x - 1, x / cell_size_);
      cell_hist(cy * cells_x + cx, bin) += mag;
    }
  }

  Matrix out(desc_y * desc_x, descriptor_dim());
  for (size_t cy = 0; cy < desc_y; ++cy) {
    for (size_t cx = 0; cx < desc_x; ++cx) {
      double* dst = out.RowPtr(cy * desc_x + cx);
      size_t idx = 0;
      for (size_t dy = 0; dy < 2; ++dy) {
        for (size_t dx = 0; dx < 2; ++dx) {
          const size_t yy = std::min(cells_y - 1, cy + dy);
          const size_t xx = std::min(cells_x - 1, cx + dx);
          const double* hist = cell_hist.RowPtr(yy * cells_x + xx);
          for (size_t b = 0; b < bins_; ++b) dst[idx++] = hist[b];
        }
      }
      // L2 normalize the descriptor.
      double norm = 0.0;
      for (size_t i = 0; i < descriptor_dim(); ++i) norm += dst[i] * dst[i];
      norm = std::sqrt(norm);
      if (norm > 1e-12) {
        for (size_t i = 0; i < descriptor_dim(); ++i) dst[i] /= norm;
      }
    }
  }
  return out;
}

CostProfile DenseSift::EstimateCost(const DataStats& in, int workers) const {
  CostProfile cost;
  // ~20 flops per pixel for gradients + histogram updates.
  cost.flops = 20.0 * static_cast<double>(in.dim) * in.num_records /
               std::max(1, workers);
  cost.bytes = 3.0 * in.TotalBytes() / std::max(1, workers);
  return cost;
}

Matrix LocalColorStats::Apply(const Image& img) const {
  const size_t cells_y = std::max<size_t>(1, img.height / cell_size_);
  const size_t cells_x = std::max<size_t>(1, img.width / cell_size_);
  Matrix out(cells_y * cells_x, 2 * img.channels);
  for (size_t cy = 0; cy < cells_y; ++cy) {
    for (size_t cx = 0; cx < cells_x; ++cx) {
      double* dst = out.RowPtr(cy * cells_x + cx);
      for (size_t c = 0; c < img.channels; ++c) {
        double sum = 0.0;
        double sum_sq = 0.0;
        size_t count = 0;
        for (size_t y = cy * cell_size_;
             y < std::min(img.height, (cy + 1) * cell_size_); ++y) {
          for (size_t x = cx * cell_size_;
               x < std::min(img.width, (cx + 1) * cell_size_); ++x) {
            const double v = img.at(c, y, x);
            sum += v;
            sum_sq += v * v;
            ++count;
          }
        }
        const double mean = count > 0 ? sum / count : 0.0;
        const double var = count > 0 ? sum_sq / count - mean * mean : 0.0;
        dst[2 * c] = mean;
        dst[2 * c + 1] = std::sqrt(std::max(0.0, var));
      }
    }
  }
  return out;
}

Matrix DescriptorSampler::Apply(const Matrix& descriptors) const {
  const size_t kept = (descriptors.rows() + stride_ - 1) / stride_;
  Matrix out(kept, descriptors.cols());
  size_t row = 0;
  for (size_t i = 0; i < descriptors.rows(); i += stride_) {
    std::copy(descriptors.RowPtr(i), descriptors.RowPtr(i) + descriptors.cols(),
              out.RowPtr(row++));
  }
  return out;
}

std::vector<double> SymmetricRectifier::Apply(
    const std::vector<double>& x) const {
  std::vector<double> out(2 * x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = std::max(0.0, x[i] - alpha_);
    out[x.size() + i] = std::max(0.0, -x[i] - alpha_);
  }
  return out;
}

std::vector<double> Pooler::Apply(const Matrix& features) const {
  const size_t rows = features.rows();
  KS_CHECK_GT(rows, 0u);
  // Rows are spatial positions in row-major order of a roughly square grid.
  const size_t side = std::max<size_t>(
      1, static_cast<size_t>(std::round(std::sqrt(static_cast<double>(rows)))));
  const size_t grid = std::min(grid_, side);
  std::vector<double> out(grid * grid * features.cols(), 0.0);
  for (size_t r = 0; r < rows; ++r) {
    const size_t y = r / side;
    const size_t x = r % side;
    const size_t gy = std::min(grid - 1, y * grid / side);
    const size_t gx = std::min(grid - 1, x * grid / side);
    double* dst = out.data() + (gy * grid + gx) * features.cols();
    const double* src = features.RowPtr(r);
    for (size_t j = 0; j < features.cols(); ++j) dst[j] += src[j];
  }
  return out;
}

std::shared_ptr<Transformer<Matrix, Matrix>> ZcaWhitener::Fit(
    const DistDataset<Matrix>& data, ExecContext* ctx) const {
  (void)ctx;
  // Stack all descriptor rows; compute mean and covariance.
  size_t dim = 0;
  size_t total_rows = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& m : part) {
      dim = std::max(dim, m.cols());
      total_rows += m.rows();
    }
  }
  KS_CHECK_GT(dim, 0u);
  KS_CHECK_GT(total_rows, 0u);

  std::vector<double> mean(dim, 0.0);
  for (const auto& part : data.partitions()) {
    for (const auto& m : part) {
      KS_CHECK_EQ(m.cols(), dim) << "ragged descriptor matrices";
      for (size_t r = 0; r < m.rows(); ++r) {
        const double* row = m.RowPtr(r);
        for (size_t j = 0; j < dim; ++j) mean[j] += row[j];
      }
    }
  }
  for (auto& v : mean) v /= static_cast<double>(total_rows);

  Matrix cov(dim, dim);
  for (const auto& part : data.partitions()) {
    for (const auto& m : part) {
      for (size_t r = 0; r < m.rows(); ++r) {
        const double* row = m.RowPtr(r);
        for (size_t i = 0; i < dim; ++i) {
          const double vi = row[i] - mean[i];
          double* crow = cov.RowPtr(i);
          for (size_t j = i; j < dim; ++j) {
            crow[j] += vi * (row[j] - mean[j]);
          }
        }
      }
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < i; ++j) cov(i, j) = cov(j, i);
  }
  cov *= 1.0 / static_cast<double>(total_rows);

  const SymmetricEigenResult eig = SymmetricEigen(cov);
  // W = V (D + eps)^{-1/2} V^T.
  Matrix scaled = eig.vectors;
  for (size_t j = 0; j < dim; ++j) {
    const double s = 1.0 / std::sqrt(std::max(0.0, eig.values[j]) + epsilon_);
    for (size_t i = 0; i < dim; ++i) scaled(i, j) *= s;
  }
  Matrix rotation = GemmTransB(scaled, eig.vectors);
  return std::make_shared<ZcaModel>(std::move(mean), std::move(rotation));
}

CostProfile ZcaWhitener::EstimateCost(const DataStats& in, int workers) const {
  CostProfile cost;
  const double d = static_cast<double>(in.dim);
  const double n = static_cast<double>(in.num_records);
  cost.flops = (2.0 * n * d * d) / std::max(1, workers) + d * d * d;
  cost.bytes = in.TotalBytes() / std::max(1, workers) + 8.0 * d * d;
  cost.network = 8.0 * d * d;
  cost.rounds = 2.0;
  return cost;
}

Matrix ZcaModel::Apply(const Matrix& rows) const {
  Matrix centered = rows;
  centered.SubtractRowVector(mean_);
  return Gemm(centered, rotation_);
}

}  // namespace keystone
