#include "src/ops/gmm.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace keystone {

namespace {

constexpr double kVarianceFloor = 1e-6;

// k-means++ style seeding: first center uniform, rest proportional to
// squared distance from the nearest chosen center.
Matrix SeedCenters(const Matrix& rows, size_t k, Rng* rng) {
  const size_t n = rows.rows();
  const size_t d = rows.cols();
  Matrix centers(k, d);
  std::vector<double> dist_sq(n, 0.0);

  size_t first = rng->NextIndex(n);
  std::copy(rows.RowPtr(first), rows.RowPtr(first) + d, centers.RowPtr(0));
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double diff = rows(i, j) - centers(0, j);
      s += diff * diff;
    }
    dist_sq[i] = s;
  }
  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (double v : dist_sq) total += v;
    size_t chosen = 0;
    if (total > 0) {
      double target = rng->NextDouble() * total;
      for (size_t i = 0; i < n; ++i) {
        target -= dist_sq[i];
        if (target <= 0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng->NextIndex(n);
    }
    std::copy(rows.RowPtr(chosen), rows.RowPtr(chosen) + d,
              centers.RowPtr(c));
    for (size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double diff = rows(i, j) - centers(c, j);
        s += diff * diff;
      }
      dist_sq[i] = std::min(dist_sq[i], s);
    }
  }
  return centers;
}

// Stacks all descriptor matrices of a dataset into one matrix.
Matrix StackRows(const DistDataset<Matrix>& data) {
  size_t dim = 0;
  size_t total = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& m : part) {
      dim = std::max(dim, m.cols());
      total += m.rows();
    }
  }
  KS_CHECK_GT(dim, 0u);
  Matrix stacked(total, dim);
  size_t row = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& m : part) {
      KS_CHECK_EQ(m.cols(), dim);
      std::copy(m.data(), m.data() + m.size(), stacked.RowPtr(row));
      row += m.rows();
    }
  }
  return stacked;
}

}  // namespace

GmmParams FitGmm(const Matrix& rows, size_t components, int em_iterations,
                 uint64_t seed) {
  const size_t n = rows.rows();
  const size_t d = rows.cols();
  KS_CHECK_GT(n, 0u);
  const size_t k = std::min(components, n);
  Rng rng(seed);

  GmmParams params;
  params.means = SeedCenters(rows, k, &rng);
  params.variances = Matrix(k, d, 0.1);
  params.weights.assign(k, 1.0 / k);

  Matrix resp(n, k);
  for (int iter = 0; iter < em_iterations; ++iter) {
    // E step: responsibilities via log-space softmax over components.
    for (size_t i = 0; i < n; ++i) {
      double max_log = -1e300;
      for (size_t c = 0; c < k; ++c) {
        double log_p = std::log(std::max(params.weights[c], 1e-12));
        for (size_t j = 0; j < d; ++j) {
          const double var = params.variances(c, j);
          const double diff = rows(i, j) - params.means(c, j);
          log_p -= 0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
        }
        resp(i, c) = log_p;
        max_log = std::max(max_log, log_p);
      }
      double z = 0.0;
      for (size_t c = 0; c < k; ++c) {
        resp(i, c) = std::exp(resp(i, c) - max_log);
        z += resp(i, c);
      }
      for (size_t c = 0; c < k; ++c) resp(i, c) /= z;
    }
    // M step.
    for (size_t c = 0; c < k; ++c) {
      double nk = 0.0;
      for (size_t i = 0; i < n; ++i) nk += resp(i, c);
      nk = std::max(nk, 1e-10);
      for (size_t j = 0; j < d; ++j) {
        double mean = 0.0;
        for (size_t i = 0; i < n; ++i) mean += resp(i, c) * rows(i, j);
        mean /= nk;
        double var = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double diff = rows(i, j) - mean;
          var += resp(i, c) * diff * diff;
        }
        params.means(c, j) = mean;
        params.variances(c, j) = std::max(var / nk, kVarianceFloor);
      }
      params.weights[c] = nk / n;
    }
  }
  return params;
}

std::shared_ptr<Transformer<Matrix, std::vector<double>>>
GmmFisherEstimator::Fit(const DistDataset<Matrix>& data,
                        ExecContext* ctx) const {
  const Matrix rows = StackRows(data);
  GmmParams params = FitGmm(rows, components_, em_iterations_, seed_);

  CostProfile cost;
  const double n = static_cast<double>(rows.rows());
  const double d = static_cast<double>(rows.cols());
  const double k = static_cast<double>(params.num_components());
  const int w = ctx->resources().num_nodes;
  cost.flops = em_iterations_ * 8.0 * n * d * k / std::max(1, w);
  cost.bytes = em_iterations_ * 8.0 * n * d / std::max(1, w);
  cost.network = em_iterations_ * 8.0 * 2.0 * k * d;
  cost.rounds = 2.0 * em_iterations_;
  ctx->ReportActualCost(cost);
  return std::make_shared<FisherVectorModel>(std::move(params));
}

CostProfile GmmFisherEstimator::EstimateCost(const DataStats& in,
                                             int workers) const {
  CostProfile cost;
  const double total_rows =
      in.num_records * in.bytes_per_record /
      (8.0 * std::max<size_t>(1, in.dim));
  const double d = static_cast<double>(in.dim);
  const double k = static_cast<double>(components_);
  cost.flops = em_iterations_ * 8.0 * total_rows * d * k /
               std::max(1, workers);
  cost.bytes = em_iterations_ * 8.0 * total_rows * d / std::max(1, workers);
  cost.network = em_iterations_ * 8.0 * 2.0 * k * d;
  cost.rounds = 2.0 * em_iterations_;
  return cost;
}

std::vector<double> FisherVectorModel::Apply(const Matrix& descriptors) const {
  const size_t k = params_.num_components();
  const size_t d = params_.dim();
  KS_CHECK_EQ(descriptors.cols(), d);
  const size_t n = descriptors.rows();
  // Layout: [mean gradients (k*d) | variance gradients (k*d) |
  //          weight gradients (k)].
  std::vector<double> fv(2 * k * d + k, 0.0);
  if (n == 0) return fv;

  std::vector<double> log_p(k);
  std::vector<double> occupancy(k, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* x = descriptors.RowPtr(i);
    double max_log = -1e300;
    for (size_t c = 0; c < k; ++c) {
      double lp = std::log(std::max(params_.weights[c], 1e-12));
      for (size_t j = 0; j < d; ++j) {
        const double var = params_.variances(c, j);
        const double diff = x[j] - params_.means(c, j);
        lp -= 0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
      }
      log_p[c] = lp;
      max_log = std::max(max_log, lp);
    }
    double z = 0.0;
    for (size_t c = 0; c < k; ++c) z += std::exp(log_p[c] - max_log);
    for (size_t c = 0; c < k; ++c) {
      const double gamma = std::exp(log_p[c] - max_log) / z;
      occupancy[c] += gamma;
      if (gamma < 1e-8) continue;
      double* mean_grad = fv.data() + c * d;
      double* var_grad = fv.data() + (k + c) * d;
      for (size_t j = 0; j < d; ++j) {
        const double sigma = std::sqrt(params_.variances(c, j));
        const double u = (x[j] - params_.means(c, j)) / sigma;
        mean_grad[j] += gamma * u;
        var_grad[j] += gamma * (u * u - 1.0);
      }
    }
  }

  // Scale by 1/(n sqrt(w_c)) and apply power + L2 normalization. The weight
  // block is the occupancy gradient (gamma_c - w_c)/sqrt(w_c).
  for (size_t c = 0; c < k; ++c) {
    const double w_c = std::max(params_.weights[c], 1e-12);
    const double scale = 1.0 / (n * std::sqrt(w_c));
    for (size_t j = 0; j < d; ++j) {
      fv[c * d + j] *= scale;
      fv[(k + c) * d + j] *= scale / std::sqrt(2.0);
    }
    fv[2 * k * d + c] = (occupancy[c] / n - w_c) / std::sqrt(w_c);
  }
  double norm = 0.0;
  for (auto& v : fv) {
    v = (v >= 0 ? 1.0 : -1.0) * std::sqrt(std::fabs(v));
    norm += v * v;
  }
  norm = std::sqrt(norm);
  if (norm > 1e-12) {
    for (auto& v : fv) v /= norm;
  }
  return fv;
}

CostProfile FisherVectorModel::EstimateCost(const DataStats& in,
                                            int workers) const {
  CostProfile cost;
  const double total_rows =
      in.num_records * in.bytes_per_record /
      (8.0 * std::max<size_t>(1, in.dim));
  cost.flops = 10.0 * total_rows * params_.dim() * params_.num_components() /
               std::max(1, workers);
  cost.bytes = in.TotalBytes() / std::max(1, workers);
  return cost;
}

}  // namespace keystone
