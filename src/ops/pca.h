#ifndef KEYSTONE_OPS_PCA_H_
#define KEYSTONE_OPS_PCA_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/operator.h"
#include "src/linalg/matrix.h"

namespace keystone {

/// Fitted PCA projection: rows are centered then projected onto the top-k
/// principal directions. Works on per-image descriptor matrices (each row a
/// descriptor).
class PcaModel : public Transformer<Matrix, Matrix> {
 public:
  PcaModel(std::vector<double> mean, Matrix components)
      : mean_(std::move(mean)), components_(std::move(components)) {}

  std::string Name() const override { return "PCA.Model"; }
  Matrix Apply(const Matrix& rows) const override;
  CostProfile EstimateCost(const DataStats& in, int workers) const override;

  /// Input rows must match the fitted descriptor dimension d; the output
  /// keeps the row count and projects each row to k components.
  ValueShape InputShapeRequirement() const override {
    return ValueShape::MatrixOf(ValueShape::kUnknownDim,
                                static_cast<int64_t>(components_.rows()));
  }
  ValueShape TransferShape(const ValueShape& in) const override {
    return ValueShape::MatrixOf(in.d0,
                                static_cast<int64_t>(components_.cols()));
  }

  /// d x k projection matrix (the paper's P).
  const Matrix& components() const { return components_; }

 private:
  std::vector<double> mean_;
  Matrix components_;  // d x k
};

/// Physical PCA algorithm and placement (paper Table 2's four variants).
enum class PcaAlgorithm { kExactSvd, kTruncatedSvd };
enum class PcaPlacement { kLocal, kDistributed };

/// One physical PCA implementation. The estimator consumes a dataset of
/// descriptor matrices (rows stacked across records) and produces a
/// PcaModel projecting onto the top `k` principal components.
class PcaEstimator : public Estimator<Matrix, Matrix> {
 public:
  PcaEstimator(size_t k, PcaAlgorithm algorithm, PcaPlacement placement,
               uint64_t seed = 17);

  std::string Name() const override;
  /// Algorithm and placement already live in Name(); only k and the seed
  /// remain to distinguish two variants of one physical operator.
  std::string ParamSignature() const override {
    return "k=" + std::to_string(k_) + ",seed=" + std::to_string(seed_);
  }

  std::shared_ptr<Transformer<Matrix, Matrix>> Fit(
      const DistDataset<Matrix>& data, ExecContext* ctx) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;
  double ScratchMemoryBytes(const DataStats& in, int workers) const override;

  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    return ValueShape::MatrixOf(data_in.d0, static_cast<int64_t>(k_));
  }
  EffectClass Effect() const override {
    return EffectClass::kSeededDeterministic;
  }

  PcaAlgorithm algorithm() const { return algorithm_; }
  PcaPlacement placement() const { return placement_; }

 private:
  size_t k_;
  PcaAlgorithm algorithm_;
  PcaPlacement placement_;
  uint64_t seed_;
};

/// The logical PCA operator: Optimizable over the four physical variants.
std::shared_ptr<OptimizableEstimator> MakePcaEstimator(size_t k,
                                                       uint64_t seed = 17);

/// Cost formulas shared by the estimator and the Table 2 bench. `rows` is
/// the total number of descriptor rows n, `d` the descriptor dimension.
namespace pca_costs {
CostProfile Cost(PcaAlgorithm algorithm, PcaPlacement placement, double rows,
                 double d, double k, int workers);
double Scratch(PcaAlgorithm algorithm, PcaPlacement placement, double rows,
               double d, double k, int workers);
}  // namespace pca_costs

}  // namespace keystone

#endif  // KEYSTONE_OPS_PCA_H_
