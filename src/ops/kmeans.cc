#include "src/ops/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace keystone {

namespace {

size_t NearestCenter(const double* x, const Matrix& centers, size_t d,
                     double* dist_out) {
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centers.rows(); ++c) {
    const double* mu = centers.RowPtr(c);
    double dist = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double diff = x[j] - mu[j];
      dist += diff * diff;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  if (dist_out != nullptr) *dist_out = best_dist;
  return best;
}

}  // namespace

Matrix FitKMeans(const Matrix& rows, size_t k, int iterations,
                 uint64_t seed) {
  const size_t n = rows.rows();
  const size_t d = rows.cols();
  KS_CHECK_GT(n, 0u);
  k = std::min(k, n);
  Rng rng(seed);

  // Random distinct-ish initialization.
  Matrix centers(k, d);
  for (size_t c = 0; c < k; ++c) {
    const size_t pick = rng.NextIndex(n);
    std::copy(rows.RowPtr(pick), rows.RowPtr(pick) + d, centers.RowPtr(c));
  }

  std::vector<size_t> assignment(n, 0);
  for (int iter = 0; iter < iterations; ++iter) {
    for (size_t i = 0; i < n; ++i) {
      assignment[i] = NearestCenter(rows.RowPtr(i), centers, d, nullptr);
    }
    Matrix sums(k, d);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = assignment[i];
      ++counts[c];
      double* dst = sums.RowPtr(c);
      const double* src = rows.RowPtr(i);
      for (size_t j = 0; j < d; ++j) dst[j] += src[j];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty clusters.
        const size_t pick = rng.NextIndex(n);
        std::copy(rows.RowPtr(pick), rows.RowPtr(pick) + d,
                  centers.RowPtr(c));
        continue;
      }
      for (size_t j = 0; j < d; ++j) {
        centers(c, j) = sums(c, j) / counts[c];
      }
    }
  }
  return centers;
}

std::shared_ptr<Transformer<Matrix, Matrix>> KMeansEstimator::Fit(
    const DistDataset<Matrix>& data, ExecContext* ctx) const {
  size_t dim = 0;
  size_t total = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& m : part) {
      dim = std::max(dim, m.cols());
      total += m.rows();
    }
  }
  KS_CHECK_GT(dim, 0u);
  Matrix stacked(total, dim);
  size_t row = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& m : part) {
      std::copy(m.data(), m.data() + m.size(), stacked.RowPtr(row));
      row += m.rows();
    }
  }
  Matrix centers = FitKMeans(stacked, k_, iterations_, seed_);

  CostProfile cost;
  const int w = ctx->resources().num_nodes;
  cost.flops = iterations_ * 3.0 * total * dim * k_ / std::max(1, w);
  cost.bytes = iterations_ * 8.0 * total * dim / std::max(1, w);
  cost.network = iterations_ * 8.0 * k_ * dim;
  cost.rounds = 2.0 * iterations_;
  ctx->ReportActualCost(cost);
  return std::make_shared<KMeansModel>(std::move(centers));
}

CostProfile KMeansEstimator::EstimateCost(const DataStats& in,
                                          int workers) const {
  CostProfile cost;
  const double total_rows =
      in.num_records * in.bytes_per_record /
      (8.0 * std::max<size_t>(1, in.dim));
  cost.flops = iterations_ * 3.0 * total_rows * in.dim * k_ /
               std::max(1, workers);
  cost.bytes = iterations_ * 8.0 * total_rows * in.dim /
               std::max(1, workers);
  cost.network = iterations_ * 8.0 * k_ * in.dim;
  cost.rounds = 2.0 * iterations_;
  return cost;
}

Matrix KMeansModel::Apply(const Matrix& patches) const {
  const size_t n = patches.rows();
  const size_t k = centers_.rows();
  const size_t d = centers_.cols();
  KS_CHECK_EQ(patches.cols(), d);
  Matrix out(n, k);
  std::vector<double> dists(k);
  for (size_t i = 0; i < n; ++i) {
    const double* x = patches.RowPtr(i);
    double mean_dist = 0.0;
    for (size_t c = 0; c < k; ++c) {
      const double* mu = centers_.RowPtr(c);
      double dist = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double diff = x[j] - mu[j];
        dist += diff * diff;
      }
      dists[c] = std::sqrt(dist);
      mean_dist += dists[c];
    }
    mean_dist /= k;
    // Triangle activation (Coates & Ng).
    for (size_t c = 0; c < k; ++c) {
      out(i, c) = std::max(0.0, mean_dist - dists[c]);
    }
  }
  return out;
}

CostProfile KMeansModel::EstimateCost(const DataStats& in,
                                      int workers) const {
  CostProfile cost;
  const double total_rows =
      in.num_records * in.bytes_per_record /
      (8.0 * std::max<size_t>(1, in.dim));
  cost.flops = 3.0 * total_rows * centers_.cols() * centers_.rows() /
               std::max(1, workers);
  cost.bytes = in.TotalBytes() / std::max(1, workers);
  return cost;
}

}  // namespace keystone
