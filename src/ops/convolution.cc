#include "src/ops/convolution.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/rng.h"
#include "src/linalg/fft.h"
#include "src/linalg/gemm.h"
#include "src/linalg/svd.h"

namespace keystone {

bool FilterBank::IsSeparable(double tol) const {
  for (const auto& f : filters) {
    for (size_t c = 0; c < channels; ++c) {
      const Matrix slice = f.Channel(c);
      const SvdResult svd = ExactSvd(slice);
      // Rank one: all singular values beyond the first negligible.
      for (size_t i = 1; i < svd.singular_values.size(); ++i) {
        if (svd.singular_values[i] > tol * (svd.singular_values[0] + 1e-30)) {
          return false;
        }
      }
    }
  }
  return true;
}

FilterBank FilterBank::Random(size_t num_filters, size_t filter_size,
                              size_t channels, Rng* rng) {
  FilterBank bank;
  bank.filter_size = filter_size;
  bank.channels = channels;
  bank.filters.reserve(num_filters);
  for (size_t i = 0; i < num_filters; ++i) {
    Image f(filter_size, filter_size, channels);
    for (auto& v : f.data) v = rng->NextGaussian();
    bank.filters.push_back(std::move(f));
  }
  return bank;
}

FilterBank FilterBank::RandomSeparable(size_t num_filters, size_t filter_size,
                                       size_t channels, Rng* rng) {
  FilterBank bank;
  bank.filter_size = filter_size;
  bank.channels = channels;
  bank.filters.reserve(num_filters);
  for (size_t i = 0; i < num_filters; ++i) {
    Image f(filter_size, filter_size, channels);
    for (size_t c = 0; c < channels; ++c) {
      std::vector<double> u(filter_size);
      std::vector<double> v(filter_size);
      for (auto& x : u) x = rng->NextGaussian();
      for (auto& x : v) x = rng->NextGaussian();
      for (size_t y = 0; y < filter_size; ++y) {
        for (size_t x = 0; x < filter_size; ++x) {
          f.at(c, y, x) = u[y] * v[x];
        }
      }
    }
    bank.filters.push_back(std::move(f));
  }
  return bank;
}

const char* ConvolutionStrategyName(ConvolutionStrategy strategy) {
  switch (strategy) {
    case ConvolutionStrategy::kBlas:
      return "BLAS";
    case ConvolutionStrategy::kFft:
      return "FFT";
    case ConvolutionStrategy::kSeparable:
      return "Separable";
  }
  return "?";
}

Convolver::Convolver(FilterBank bank, ConvolutionStrategy strategy)
    : bank_(std::move(bank)), strategy_(strategy) {
  if (strategy_ == ConvolutionStrategy::kSeparable) {
    // Precompute rank-one factors per filter channel slice.
    separable_factors_.resize(bank_.num_filters());
    for (size_t f = 0; f < bank_.num_filters(); ++f) {
      separable_factors_[f].resize(bank_.channels);
      for (size_t c = 0; c < bank_.channels; ++c) {
        const Matrix slice = bank_.filters[f].Channel(c);
        const SvdResult svd = ExactSvd(slice);
        const double sigma = svd.singular_values.empty()
                                 ? 0.0
                                 : svd.singular_values[0];
        std::vector<double> col(bank_.filter_size);
        std::vector<double> row(bank_.filter_size);
        for (size_t i = 0; i < bank_.filter_size; ++i) {
          col[i] = svd.u(i, 0) * sigma;
          row[i] = svd.v(i, 0);
        }
        separable_factors_[f][c] = {std::move(col), std::move(row)};
      }
    }
  }
}

std::string Convolver::Name() const {
  return std::string("Convolver.") + ConvolutionStrategyName(strategy_);
}

std::string Convolver::ParamSignature() const {
  // FNV-1a over the filter weights' bit patterns: banks drawn from different
  // seeds get different signatures even at identical geometry.
  uint64_t hash = 1469598103934665603ull;
  for (const auto& filter : bank_.filters) {
    for (double v : filter.data) {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
      std::memcpy(&bits, &v, sizeof(bits));
      for (int shift = 0; shift < 64; shift += 8) {
        hash ^= (bits >> shift) & 0xffu;
        hash *= 1099511628211ull;
      }
    }
  }
  char digest[32];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::to_string(bank_.num_filters()) + "x" +
         std::to_string(bank_.filter_size) + "x" +
         std::to_string(bank_.channels) + "," + digest;
}

Image Convolver::Apply(const Image& img) const {
  KS_CHECK_EQ(img.channels, bank_.channels);
  KS_CHECK_GE(img.height, bank_.filter_size);
  KS_CHECK_GE(img.width, bank_.filter_size);
  switch (strategy_) {
    case ConvolutionStrategy::kBlas:
      return ApplyBlas(img);
    case ConvolutionStrategy::kFft:
      return ApplyFft(img);
    case ConvolutionStrategy::kSeparable:
      return ApplySeparable(img);
  }
  KS_CHECK(false);
  return Image();
}

Image Convolver::ApplyBlas(const Image& img) const {
  const size_t k = bank_.filter_size;
  const size_t my = img.height - k + 1;
  const size_t mx = img.width - k + 1;
  const size_t patch_dim = k * k * img.channels;

  // im2col: one row per output position.
  Matrix patches(my * mx, patch_dim);
  for (size_t y = 0; y < my; ++y) {
    for (size_t x = 0; x < mx; ++x) {
      double* dst = patches.RowPtr(y * mx + x);
      size_t idx = 0;
      for (size_t c = 0; c < img.channels; ++c) {
        for (size_t dy = 0; dy < k; ++dy) {
          for (size_t dx = 0; dx < k; ++dx) {
            dst[idx++] = img.at(c, y + dy, x + dx);
          }
        }
      }
    }
  }
  // Filter matrix: patch_dim x b.
  Matrix filters(patch_dim, bank_.num_filters());
  for (size_t f = 0; f < bank_.num_filters(); ++f) {
    size_t idx = 0;
    for (size_t c = 0; c < img.channels; ++c) {
      for (size_t dy = 0; dy < k; ++dy) {
        for (size_t dx = 0; dx < k; ++dx) {
          filters(idx++, f) = bank_.filters[f].at(c, dy, dx);
        }
      }
    }
  }
  const Matrix responses = Gemm(patches, filters);  // (my*mx) x b

  Image out(mx, my, bank_.num_filters());
  for (size_t f = 0; f < bank_.num_filters(); ++f) {
    for (size_t y = 0; y < my; ++y) {
      for (size_t x = 0; x < mx; ++x) {
        out.at(f, y, x) = responses(y * mx + x, f);
      }
    }
  }
  return out;
}

Image Convolver::ApplyFft(const Image& img) const {
  const size_t k = bank_.filter_size;
  const size_t my = img.height - k + 1;
  const size_t mx = img.width - k + 1;
  Image out(mx, my, bank_.num_filters());
  for (size_t f = 0; f < bank_.num_filters(); ++f) {
    Matrix acc(my, mx);
    for (size_t c = 0; c < img.channels; ++c) {
      acc += FftConvolve2dValid(img.Channel(c), bank_.filters[f].Channel(c));
    }
    out.SetChannel(f, acc);
  }
  return out;
}

Image Convolver::ApplySeparable(const Image& img) const {
  const size_t k = bank_.filter_size;
  const size_t my = img.height - k + 1;
  const size_t mx = img.width - k + 1;
  Image out(mx, my, bank_.num_filters());

  for (size_t f = 0; f < bank_.num_filters(); ++f) {
    Matrix acc(my, mx);
    for (size_t c = 0; c < img.channels; ++c) {
      const auto& [col_factor, row_factor] = separable_factors_[f][c];
      // Horizontal pass with the row factor: temp(y, x) for y in [0, h),
      // x in [0, mx).
      Matrix temp(img.height, mx);
      for (size_t y = 0; y < img.height; ++y) {
        for (size_t x = 0; x < mx; ++x) {
          double sum = 0.0;
          for (size_t dx = 0; dx < k; ++dx) {
            sum += img.at(c, y, x + dx) * row_factor[dx];
          }
          temp(y, x) = sum;
        }
      }
      // Vertical pass with the column factor.
      for (size_t y = 0; y < my; ++y) {
        for (size_t x = 0; x < mx; ++x) {
          double sum = 0.0;
          for (size_t dy = 0; dy < k; ++dy) {
            sum += temp(y + dy, x) * col_factor[dy];
          }
          acc(y, x) += sum;
        }
      }
    }
    out.SetChannel(f, acc);
  }
  return out;
}

namespace convolution_costs {

CostProfile Cost(ConvolutionStrategy strategy, double n, double d, double k,
                 double b, double records, int workers) {
  const double m = n - k + 1;
  const double w = std::max(1, workers);
  CostProfile cost;
  switch (strategy) {
    case ConvolutionStrategy::kSeparable:
      // Two 1-D passes per filter/channel plus the rank-one factorization.
      cost.flops = records * (2.0 * d * b * k * m * m + b * k * k * k) / w;
      break;
    case ConvolutionStrategy::kBlas:
      cost.flops = records * 2.0 * d * b * k * k * m * m / w;
      break;
    case ConvolutionStrategy::kFft:
      cost.flops =
          records * (6.0 * d * b * n * n * std::log2(std::max(2.0, n)) +
                     4.0 * d * b * n * n) / w;
      break;
  }
  cost.bytes = records * 8.0 * (d * n * n + b * m * m) / w;
  return cost;
}

}  // namespace convolution_costs

CostProfile Convolver::EstimateCost(const DataStats& in, int workers) const {
  // in.dim is pixels per image = n * n * d.
  const double d = static_cast<double>(bank_.channels);
  const double n = std::sqrt(static_cast<double>(in.dim) / std::max(1.0, d));
  return convolution_costs::Cost(strategy_, n, d,
                                 static_cast<double>(bank_.filter_size),
                                 static_cast<double>(bank_.num_filters()),
                                 static_cast<double>(in.num_records),
                                 workers);
}

std::shared_ptr<OptimizableTransformer> MakeConvolver(const FilterBank& bank) {
  std::vector<std::shared_ptr<TransformerBase>> options = {
      std::make_shared<Convolver>(bank, ConvolutionStrategy::kBlas),
      std::make_shared<Convolver>(bank, ConvolutionStrategy::kFft),
  };
  if (bank.IsSeparable()) {
    options.push_back(
        std::make_shared<Convolver>(bank, ConvolutionStrategy::kSeparable));
  }
  return std::make_shared<OptimizableTransformer>("Convolver",
                                                  std::move(options));
}

}  // namespace keystone
