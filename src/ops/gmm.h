#ifndef KEYSTONE_OPS_GMM_H_
#define KEYSTONE_OPS_GMM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/operator.h"
#include "src/linalg/matrix.h"

namespace keystone {

/// Diagonal-covariance Gaussian mixture parameters.
struct GmmParams {
  Matrix means;      // K x d
  Matrix variances;  // K x d
  std::vector<double> weights;

  size_t num_components() const { return means.rows(); }
  size_t dim() const { return means.cols(); }
};

/// Fits a diagonal GMM with EM (k-means++ initialization) and produces a
/// Fisher-vector encoder (paper Figure 5's GMM -> FisherVector step). The
/// encoder maps a descriptor matrix to a K*(2d+1) vector of weight, mean
/// and variance gradients with power + L2 normalization (the full improved
/// Fisher vector of [Sanchez et al. 13]).
class GmmFisherEstimator : public Estimator<Matrix, std::vector<double>> {
 public:
  GmmFisherEstimator(size_t components, int em_iterations = 10,
                     uint64_t seed = 23)
      : components_(components), em_iterations_(em_iterations), seed_(seed) {}

  std::string Name() const override { return "GMM"; }
  std::string ParamSignature() const override {
    return "k=" + std::to_string(components_) +
           ",em=" + std::to_string(em_iterations_) +
           ",seed=" + std::to_string(seed_);
  }

  std::shared_ptr<Transformer<Matrix, std::vector<double>>> Fit(
      const DistDataset<Matrix>& data, ExecContext* ctx) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;
  int Weight() const override { return em_iterations_; }

  /// Fisher encoding of K components over d-dim descriptors: K*(2d+1).
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    if (data_in.d1 == ValueShape::kUnknownDim) return ValueShape::Vector();
    return ValueShape::Vector(static_cast<int64_t>(components_) *
                              (2 * data_in.d1 + 1));
  }
  EffectClass Effect() const override {
    return EffectClass::kSeededDeterministic;
  }

 private:
  size_t components_;
  int em_iterations_;
  uint64_t seed_;
};

/// The fitted Fisher-vector encoder.
class FisherVectorModel : public Transformer<Matrix, std::vector<double>> {
 public:
  explicit FisherVectorModel(GmmParams params) : params_(std::move(params)) {}

  std::string Name() const override { return "FisherVector"; }
  std::vector<double> Apply(const Matrix& descriptors) const override;
  CostProfile EstimateCost(const DataStats& in, int workers) const override;

  ValueShape InputShapeRequirement() const override {
    return ValueShape::MatrixOf(ValueShape::kUnknownDim,
                                static_cast<int64_t>(params_.dim()));
  }
  ValueShape TransferShape(const ValueShape& in) const override {
    (void)in;
    return ValueShape::Vector(static_cast<int64_t>(output_dim()));
  }

  const GmmParams& params() const { return params_; }
  size_t output_dim() const {
    return params_.num_components() * (2 * params_.dim() + 1);
  }

 private:
  GmmParams params_;
};

/// Fits a diagonal GMM by EM. Exposed separately for tests and benches.
GmmParams FitGmm(const Matrix& rows, size_t components, int em_iterations,
                 uint64_t seed);

}  // namespace keystone

#endif  // KEYSTONE_OPS_GMM_H_
