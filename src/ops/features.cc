#include "src/ops/features.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/linalg/vector_ops.h"

namespace keystone {

CosineRandomFeatures::CosineRandomFeatures(size_t input_dim,
                                           size_t output_dim, double gamma,
                                           uint64_t seed)
    : gamma_(gamma), seed_(seed) {
  Rng rng(seed);
  w_ = Matrix(output_dim, input_dim);
  for (size_t i = 0; i < output_dim; ++i) {
    for (size_t j = 0; j < input_dim; ++j) {
      w_(i, j) = gamma * rng.NextGaussian();
    }
  }
  b_.resize(output_dim);
  for (auto& v : b_) v = rng.Uniform(0.0, 2.0 * M_PI);
}

std::vector<double> CosineRandomFeatures::Apply(
    const std::vector<double>& x) const {
  KS_CHECK_EQ(x.size(), w_.cols());
  std::vector<double> out(w_.rows());
  const double scale = std::sqrt(2.0 / static_cast<double>(w_.rows()));
  for (size_t i = 0; i < w_.rows(); ++i) {
    const double* row = w_.RowPtr(i);
    double z = b_[i];
    for (size_t j = 0; j < x.size(); ++j) z += row[j] * x[j];
    out[i] = scale * std::cos(z);
  }
  return out;
}

CostProfile CosineRandomFeatures::EstimateCost(const DataStats& in,
                                               int workers) const {
  CostProfile cost;
  cost.flops = 2.0 * in.num_records * w_.rows() * w_.cols() /
               std::max(1, workers);
  cost.bytes = (in.TotalBytes() + 8.0 * in.num_records * w_.rows()) /
               std::max(1, workers);
  return cost;
}

std::vector<double> L2Normalizer::Apply(const std::vector<double>& x) const {
  const double norm = Norm2(x);
  std::vector<double> out = x;
  if (norm > 1e-12) {
    for (auto& v : out) v /= norm;
  }
  return out;
}

std::vector<double> SignedPowerNormalizer::Apply(
    const std::vector<double>& x) const {
  std::vector<double> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = (x[i] >= 0 ? 1.0 : -1.0) * std::pow(std::fabs(x[i]), alpha_);
  }
  return out;
}

namespace {

/// The fitted standardization transform.
class StandardScalerModel : public Transformer<std::vector<double>,
                                               std::vector<double>> {
 public:
  StandardScalerModel(std::vector<double> mean, std::vector<double> inv_std)
      : mean_(std::move(mean)), inv_std_(std::move(inv_std)) {}

  std::string Name() const override { return "StandardScaler.Model"; }

  std::vector<double> Apply(const std::vector<double>& x) const override {
    KS_CHECK_EQ(x.size(), mean_.size());
    std::vector<double> out(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      out[i] = (x[i] - mean_[i]) * inv_std_[i];
    }
    return out;
  }

  ValueShape InputShapeRequirement() const override {
    return ValueShape::Vector(static_cast<int64_t>(mean_.size()));
  }
  ValueShape TransferShape(const ValueShape& in) const override { return in; }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace

std::shared_ptr<Transformer<std::vector<double>, std::vector<double>>>
StandardScaler::Fit(const DistDataset<std::vector<double>>& data,
                    ExecContext* ctx) const {
  (void)ctx;
  size_t dim = 0;
  size_t n = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& rec : part) {
      dim = std::max(dim, rec.size());
      ++n;
    }
  }
  KS_CHECK_GT(n, 0u);
  std::vector<double> mean(dim, 0.0);
  std::vector<double> sq(dim, 0.0);
  for (const auto& part : data.partitions()) {
    for (const auto& rec : part) {
      for (size_t j = 0; j < rec.size(); ++j) {
        mean[j] += rec[j];
        sq[j] += rec[j] * rec[j];
      }
    }
  }
  std::vector<double> inv_std(dim);
  for (size_t j = 0; j < dim; ++j) {
    mean[j] /= n;
    const double var = std::max(0.0, sq[j] / n - mean[j] * mean[j]);
    inv_std[j] = 1.0 / std::sqrt(var + 1e-8);
  }
  return std::make_shared<StandardScalerModel>(std::move(mean),
                                               std::move(inv_std));
}

std::vector<double> OneHotEncoder::Apply(const int& label) const {
  KS_CHECK_GE(label, 0);
  KS_CHECK_LT(label, num_classes_);
  std::vector<double> out(num_classes_, 0.0);
  out[label] = 1.0;
  return out;
}

int ArgMaxClassifier::Apply(const std::vector<double>& scores) const {
  return static_cast<int>(ArgMax(scores));
}

std::vector<int> TopKClassifier::Apply(
    const std::vector<double>& scores) const {
  const size_t k = std::min<size_t>(k_, scores.size());
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int a, int b) { return scores[a] > scores[b]; });
  order.resize(k);
  return order;
}

}  // namespace keystone
