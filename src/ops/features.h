#ifndef KEYSTONE_OPS_FEATURES_H_
#define KEYSTONE_OPS_FEATURES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/string_util.h"
#include "src/core/operator.h"
#include "src/linalg/matrix.h"

namespace keystone {

/// Random cosine features approximating an RBF kernel (Rahimi & Recht 2007):
/// z(x) = sqrt(2/D) cos(W x + b) with W ~ N(0, gamma^2), b ~ U[0, 2pi].
/// The TIMIT kernel-SVM pipeline gathers several of these blocks.
class CosineRandomFeatures : public Transformer<std::vector<double>,
                                                std::vector<double>> {
 public:
  CosineRandomFeatures(size_t input_dim, size_t output_dim, double gamma,
                       uint64_t seed);

  std::string Name() const override { return "RandomFeatures"; }
  std::string ParamSignature() const override {
    return std::to_string(input_dim()) + "x" + std::to_string(output_dim()) +
           ",g=" + ParamNumber(gamma_) + ",seed=" + std::to_string(seed_);
  }
  std::vector<double> Apply(const std::vector<double>& x) const override;
  CostProfile EstimateCost(const DataStats& in, int workers) const override;

  ValueShape InputShapeRequirement() const override {
    return ValueShape::Vector(static_cast<int64_t>(input_dim()));
  }
  ValueShape TransferShape(const ValueShape& in) const override {
    (void)in;
    return ValueShape::Vector(static_cast<int64_t>(output_dim()));
  }
  EffectClass Effect() const override {
    return EffectClass::kSeededDeterministic;
  }

  size_t input_dim() const { return w_.cols(); }
  size_t output_dim() const { return w_.rows(); }

 private:
  Matrix w_;  // D x d
  std::vector<double> b_;
  double gamma_;
  uint64_t seed_;
};

/// L2 normalization of feature vectors.
class L2Normalizer : public Transformer<std::vector<double>,
                                        std::vector<double>> {
 public:
  std::string Name() const override { return "Normalize"; }
  std::vector<double> Apply(const std::vector<double>& x) const override;
  ValueShape TransferShape(const ValueShape& in) const override { return in; }
};

/// Signed power ("root") normalization x -> sign(x) |x|^alpha, part of the
/// improved Fisher-vector recipe.
class SignedPowerNormalizer : public Transformer<std::vector<double>,
                                                 std::vector<double>> {
 public:
  explicit SignedPowerNormalizer(double alpha = 0.5) : alpha_(alpha) {}
  std::string Name() const override { return "PowerNorm"; }
  std::string ParamSignature() const override { return ParamNumber(alpha_); }
  std::vector<double> Apply(const std::vector<double>& x) const override;
  ValueShape TransferShape(const ValueShape& in) const override { return in; }

 private:
  double alpha_;
};

/// Standardization estimator: the model subtracts the feature means and
/// divides by standard deviations computed on the training data.
class StandardScaler : public Estimator<std::vector<double>,
                                        std::vector<double>> {
 public:
  std::string Name() const override { return "StandardScaler"; }

  std::shared_ptr<Transformer<std::vector<double>, std::vector<double>>> Fit(
      const DistDataset<std::vector<double>>& data,
      ExecContext* ctx) const override;

  /// Standardization preserves the feature dimension.
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    return data_in;
  }
};

/// One-hot label encoding: class id -> k-dimensional indicator.
class OneHotEncoder : public Transformer<int, std::vector<double>> {
 public:
  explicit OneHotEncoder(int num_classes) : num_classes_(num_classes) {}
  std::string Name() const override { return "OneHot"; }
  std::string ParamSignature() const override {
    return std::to_string(num_classes_);
  }
  std::vector<double> Apply(const int& label) const override;
  ValueShape TransferShape(const ValueShape& in) const override {
    (void)in;
    return ValueShape::Vector(num_classes_);
  }

 private:
  int num_classes_;
};

/// Picks the argmax class from a score vector.
class ArgMaxClassifier : public Transformer<std::vector<double>, int> {
 public:
  std::string Name() const override { return "MaxClassifier"; }
  int Apply(const std::vector<double>& scores) const override;
  /// Score dimension = number of classes the emitted id is drawn from.
  ValueShape TransferShape(const ValueShape& in) const override {
    return ValueShape::Labels(in.d0);
  }
};

/// Emits the k highest-scoring class ids, best first (the paper's "Top 5
/// Classifier" node in Figure 5).
class TopKClassifier : public Transformer<std::vector<double>,
                                          std::vector<int>> {
 public:
  explicit TopKClassifier(int k) : k_(k) {}
  std::string Name() const override { return "TopKClassifier"; }
  std::string ParamSignature() const override { return std::to_string(k_); }
  std::vector<int> Apply(const std::vector<double>& scores) const override;
  ValueShape TransferShape(const ValueShape& in) const override {
    return ValueShape::Labels(in.d0);
  }

 private:
  int k_;
};

}  // namespace keystone

#endif  // KEYSTONE_OPS_FEATURES_H_
