#ifndef KEYSTONE_OPS_CONVOLUTION_H_
#define KEYSTONE_OPS_CONVOLUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/operator.h"
#include "src/ops/image.h"

namespace keystone {

class Rng;

/// A bank of b filters, each k x k x channels. Convolving an n x n x d
/// image yields a (n-k+1) x (n-k+1) x b response image.
struct FilterBank {
  size_t filter_size = 0;  // k
  size_t channels = 0;     // d
  std::vector<Image> filters;

  size_t num_filters() const { return filters.size(); }

  /// True if every channel slice of every filter is (numerically) rank one,
  /// enabling the separable matrix-vector scheme.
  bool IsSeparable(double tol = 1e-6) const;

  /// Random dense Gaussian filters (not separable in general).
  static FilterBank Random(size_t num_filters, size_t filter_size,
                           size_t channels, Rng* rng);

  /// Random rank-one (outer product) filters — always separable.
  static FilterBank RandomSeparable(size_t num_filters, size_t filter_size,
                                    size_t channels, Rng* rng);
};

/// Physical convolution strategies (paper Figure 7).
enum class ConvolutionStrategy { kBlas, kFft, kSeparable };

const char* ConvolutionStrategyName(ConvolutionStrategy strategy);

/// One physical convolution operator. All three strategies compute the same
/// "valid" cross-correlation, summed over input channels per filter.
class Convolver : public Transformer<Image, Image> {
 public:
  Convolver(FilterBank bank, ConvolutionStrategy strategy);

  std::string Name() const override;
  /// Bank geometry plus a content digest of the filter weights: two banks
  /// with the same shape but different filters are different operators.
  std::string ParamSignature() const override;
  Image Apply(const Image& img) const override;
  CostProfile EstimateCost(const DataStats& in, int workers) const override;

  ConvolutionStrategy strategy() const { return strategy_; }
  const FilterBank& bank() const { return bank_; }

 private:
  Image ApplyBlas(const Image& img) const;
  Image ApplyFft(const Image& img) const;
  Image ApplySeparable(const Image& img) const;

  FilterBank bank_;
  ConvolutionStrategy strategy_;
  // Rank-one factors per (filter, channel) for the separable scheme:
  // slice = col_factor * row_factor^T.
  std::vector<std::vector<std::pair<std::vector<double>,
                                    std::vector<double>>>> separable_factors_;
};

/// The logical convolution operator: Optimizable over {BLAS, FFT} plus the
/// separable scheme when the bank admits it.
std::shared_ptr<OptimizableTransformer> MakeConvolver(const FilterBank& bank);

/// Cost formulas shared with the Figure 7 bench: image n x n x d, b filters
/// of size k.
namespace convolution_costs {
CostProfile Cost(ConvolutionStrategy strategy, double n, double d, double k,
                 double b, double records, int workers);
}  // namespace convolution_costs

}  // namespace keystone

#endif  // KEYSTONE_OPS_CONVOLUTION_H_
