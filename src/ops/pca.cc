#include "src/ops/pca.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/linalg/eigen.h"
#include "src/linalg/gemm.h"
#include "src/linalg/svd.h"

namespace keystone {

namespace pca_costs {

CostProfile Cost(PcaAlgorithm algorithm, PcaPlacement placement, double rows,
                 double d, double k, int workers) {
  const double w = placement == PcaPlacement::kDistributed
                       ? std::max(1, workers)
                       : 1.0;
  const double probes = std::min(d, k + 8.0);
  CostProfile cost;
  if (algorithm == PcaAlgorithm::kExactSvd) {
    // Covariance accumulation + dense eigensolve of the d x d system.
    cost.flops = 2.0 * rows * d * d / w + 11.0 * d * d * d;
    cost.bytes = 8.0 * (rows * d / w + d * d);
  } else {
    // Randomized range finder with q = 2 power iterations: 6 passes of
    // n x d by d x probes products, plus the small factorization.
    cost.flops = 6.0 * 2.0 * rows * d * probes / w +
                 11.0 * probes * probes * probes + 2.0 * d * probes * probes;
    cost.bytes = 8.0 * (6.0 * rows * d / w + d * probes);
  }
  if (placement == PcaPlacement::kDistributed) {
    if (algorithm == PcaAlgorithm::kExactSvd) {
      cost.network = 8.0 * d * d;  // Tree-aggregated covariance.
      cost.rounds = 2.0 + std::log2(std::max(2, workers));
    } else {
      cost.network = 6.0 * 8.0 * d * probes;  // Per-pass sketches.
      cost.rounds = 12.0;
    }
  } else {
    cost.network = 8.0 * rows * d;  // Gather the dataset to the driver.
    cost.rounds = 1.0;
  }
  return cost;
}

double Scratch(PcaAlgorithm algorithm, PcaPlacement placement, double rows,
               double d, double k, int workers) {
  const double w = placement == PcaPlacement::kDistributed
                       ? std::max(1, workers)
                       : 1.0;
  const double probes = std::min(d, k + 8.0);
  double scratch = 8.0 * rows * d / w;
  scratch += algorithm == PcaAlgorithm::kExactSvd ? 8.0 * d * d
                                                  : 8.0 * d * probes;
  if (placement == PcaPlacement::kLocal) {
    // Collecting to the driver pays serialization + managed-heap overhead
    // on top of the raw array (the reason local variants die at n = 1e6,
    // d = 4096 in Table 2 despite the raw data being only ~32 GB).
    scratch *= 4.0;
  }
  return scratch;
}

}  // namespace pca_costs

Matrix PcaModel::Apply(const Matrix& rows) const {
  Matrix centered = rows;
  centered.SubtractRowVector(mean_);
  return Gemm(centered, components_);
}

CostProfile PcaModel::EstimateCost(const DataStats& in, int workers) const {
  CostProfile cost;
  const double total_rows =
      in.num_records * in.bytes_per_record / (8.0 * std::max<size_t>(1,
                                                                     in.dim));
  cost.flops = 2.0 * total_rows * components_.rows() * components_.cols() /
               std::max(1, workers);
  cost.bytes = in.TotalBytes() / std::max(1, workers);
  return cost;
}

PcaEstimator::PcaEstimator(size_t k, PcaAlgorithm algorithm,
                           PcaPlacement placement, uint64_t seed)
    : k_(k), algorithm_(algorithm), placement_(placement), seed_(seed) {}

std::string PcaEstimator::Name() const {
  std::string name = placement_ == PcaPlacement::kDistributed ? "Dist" :
                                                                "Local";
  name += algorithm_ == PcaAlgorithm::kExactSvd ? "SVD" : "TSVD";
  return "PCA." + name;
}

std::shared_ptr<Transformer<Matrix, Matrix>> PcaEstimator::Fit(
    const DistDataset<Matrix>& data, ExecContext* ctx) const {
  // Stack all descriptor rows.
  size_t dim = 0;
  size_t total_rows = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& m : part) {
      dim = std::max(dim, m.cols());
      total_rows += m.rows();
    }
  }
  KS_CHECK_GT(dim, 0u);
  Matrix stacked(total_rows, dim);
  size_t row = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& m : part) {
      KS_CHECK_EQ(m.cols(), dim) << "ragged descriptors in PCA input";
      std::copy(m.data(), m.data() + m.size(), stacked.RowPtr(row));
      row += m.rows();
    }
  }

  std::vector<double> mean = stacked.ColMeans();
  stacked.SubtractRowVector(mean);
  const size_t k = std::min(k_, dim);

  Matrix components(dim, k);
  if (algorithm_ == PcaAlgorithm::kExactSvd) {
    Matrix cov = Gram(stacked);
    const SymmetricEigenResult eig = SymmetricEigen(cov);
    for (size_t j = 0; j < k; ++j) {
      for (size_t i = 0; i < dim; ++i) components(i, j) = eig.vectors(i, j);
    }
  } else {
    Rng rng(seed_);
    const SvdResult svd = TruncatedSvd(stacked, k, &rng);
    components = svd.v;
  }

  ctx->ReportActualCost(pca_costs::Cost(algorithm_, placement_,
                                        static_cast<double>(total_rows),
                                        static_cast<double>(dim),
                                        static_cast<double>(k),
                                        ctx->resources().num_nodes));
  return std::make_shared<PcaModel>(std::move(mean), std::move(components));
}

namespace {
double TotalRows(const DataStats& in) {
  return in.num_records * in.bytes_per_record /
         (8.0 * std::max<size_t>(1, in.dim));
}
}  // namespace

CostProfile PcaEstimator::EstimateCost(const DataStats& in,
                                       int workers) const {
  return pca_costs::Cost(algorithm_, placement_, TotalRows(in),
                         static_cast<double>(in.dim),
                         static_cast<double>(k_), workers);
}

double PcaEstimator::ScratchMemoryBytes(const DataStats& in,
                                        int workers) const {
  return pca_costs::Scratch(algorithm_, placement_, TotalRows(in),
                            static_cast<double>(in.dim),
                            static_cast<double>(k_), workers);
}

std::shared_ptr<OptimizableEstimator> MakePcaEstimator(size_t k,
                                                       uint64_t seed) {
  std::vector<std::shared_ptr<EstimatorBase>> options = {
      std::make_shared<PcaEstimator>(k, PcaAlgorithm::kExactSvd,
                                     PcaPlacement::kDistributed, seed),
      std::make_shared<PcaEstimator>(k, PcaAlgorithm::kTruncatedSvd,
                                     PcaPlacement::kDistributed, seed),
      std::make_shared<PcaEstimator>(k, PcaAlgorithm::kExactSvd,
                                     PcaPlacement::kLocal, seed),
      std::make_shared<PcaEstimator>(k, PcaAlgorithm::kTruncatedSvd,
                                     PcaPlacement::kLocal, seed),
  };
  return std::make_shared<OptimizableEstimator>("PCA", std::move(options));
}

}  // namespace keystone
