#ifndef KEYSTONE_OPS_METRICS_H_
#define KEYSTONE_OPS_METRICS_H_

#include <vector>

#include "src/linalg/matrix.h"

namespace keystone {

/// Fraction of predictions equal to the true label.
double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels);

/// Top-k error: fraction of examples whose true class is NOT among the k
/// highest-scoring classes (the ImageNet metric).
double TopKError(const std::vector<std::vector<double>>& scores,
                 const std::vector<int>& labels, int k);

/// Mean average precision over classes: for each class, ranks examples by
/// score and averages precision at each positive hit (the VOC metric).
double MeanAveragePrecision(const std::vector<std::vector<double>>& scores,
                            const std::vector<int>& labels, int num_classes);

/// num_classes x num_classes confusion matrix (rows: truth, cols: pred).
Matrix ConfusionMatrix(const std::vector<int>& predictions,
                       const std::vector<int>& labels, int num_classes);

}  // namespace keystone

#endif  // KEYSTONE_OPS_METRICS_H_
