#include "src/serve/load_generator.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/sim/arrivals.h"

namespace keystone {
namespace serve {

OpenLoopSource::OpenLoopSource(int tenant, double rate_per_second,
                               size_t num_requests, size_t num_payloads,
                               uint64_t seed, double start_seconds,
                               uint64_t first_id) {
  KS_CHECK_GT(num_payloads, 0u);
  KS_CHECK_GE(start_seconds, 0.0);
  PoissonArrivals arrivals(rate_per_second, seed);
  Rng payload_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  requests_.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    ServeRequest request;
    request.tenant = tenant;
    request.id = first_id + i;
    request.arrival_seconds = start_seconds + arrivals.Next();
    request.payload = payload_rng.NextIndex(num_payloads);
    requests_.push_back(request);
  }
}

bool OpenLoopSource::Peek(ServeRequest* out) const {
  if (next_ >= requests_.size()) return false;
  *out = requests_[next_];
  return true;
}

void OpenLoopSource::Pop() {
  KS_CHECK(next_ < requests_.size());
  ++next_;
}

bool OpenLoopSource::Exhausted() const { return next_ >= requests_.size(); }

ClosedLoopSource::ClosedLoopSource(int tenant, int users,
                                   size_t requests_per_user,
                                   double think_seconds, size_t num_payloads,
                                   uint64_t seed)
    : tenant_(tenant),
      think_seconds_(think_seconds),
      num_payloads_(num_payloads),
      rng_(seed),
      remaining_(static_cast<size_t>(users), requests_per_user) {
  KS_CHECK_GT(users, 0);
  KS_CHECK_GT(num_payloads, 0u);
  // Each user's first request arrives after an initial think period, so
  // the users start out of phase instead of in one synchronized burst.
  for (int user = 0; user < users; ++user) ScheduleUser(user, 0.0);
}

void ClosedLoopSource::ScheduleUser(int user, double not_before) {
  auto& budget = remaining_[static_cast<size_t>(user)];
  if (budget == 0) return;
  --budget;
  ServeRequest request;
  request.tenant = tenant_;
  request.id = next_id_++;
  request.user = user;
  request.arrival_seconds =
      not_before + ExponentialSample(&rng_, think_seconds_);
  request.payload = rng_.NextIndex(num_payloads_);
  pending_.push(request);
}

bool ClosedLoopSource::Peek(ServeRequest* out) const {
  if (pending_.empty()) return false;
  *out = pending_.top();
  return true;
}

void ClosedLoopSource::Pop() {
  KS_CHECK(!pending_.empty());
  pending_.pop();
  ++outstanding_;
}

bool ClosedLoopSource::Exhausted() const {
  // Every user keeps exactly one request pending or outstanding until its
  // budget drains, so no pending work and no in-flight responses means the
  // source is done for good.
  return pending_.empty() && outstanding_ == 0;
}

void ClosedLoopSource::OnResponse(const ServeResponse& response) {
  if (response.tenant != tenant_ || response.user < 0) return;
  KS_CHECK_GT(outstanding_, 0u);
  --outstanding_;
  // Rejected requests still consume the user's attention: the user thinks
  // again and retries-as-new-request, keeping the loop closed either way.
  ScheduleUser(response.user, response.completion_seconds);
}

MergedSource::MergedSource(std::vector<RequestSource*> sources)
    : sources_(std::move(sources)) {
  KS_CHECK(!sources_.empty());
  for (RequestSource* source : sources_) KS_CHECK(source != nullptr);
}

int MergedSource::NextSource() const {
  int best = -1;
  ServeRequest best_request;
  for (size_t i = 0; i < sources_.size(); ++i) {
    ServeRequest candidate;
    if (!sources_[i]->Peek(&candidate)) continue;
    const bool wins =
        best < 0 ||
        candidate.arrival_seconds < best_request.arrival_seconds ||
        (candidate.arrival_seconds == best_request.arrival_seconds &&
         candidate.tenant < best_request.tenant);
    if (wins) {
      best = static_cast<int>(i);
      best_request = candidate;
    }
  }
  return best;
}

bool MergedSource::Peek(ServeRequest* out) const {
  const int i = NextSource();
  if (i < 0) return false;
  return sources_[static_cast<size_t>(i)]->Peek(out);
}

void MergedSource::Pop() {
  const int i = NextSource();
  KS_CHECK(i >= 0) << "Pop on an empty merged source";
  sources_[static_cast<size_t>(i)]->Pop();
}

bool MergedSource::Exhausted() const {
  for (RequestSource* source : sources_) {
    if (!source->Exhausted()) return false;
  }
  return true;
}

void MergedSource::OnResponse(const ServeResponse& response) {
  for (RequestSource* source : sources_) source->OnResponse(response);
}

}  // namespace serve
}  // namespace keystone
