#ifndef KEYSTONE_SERVE_REQUEST_QUEUE_H_
#define KEYSTONE_SERVE_REQUEST_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/serve/request.h"

namespace keystone {
namespace serve {

/// Bounded FIFO of admitted-but-not-yet-dispatched requests for one tenant.
///
/// Deliberately not thread-safe: the PipelineServer's event loop is the
/// only code that ever touches a queue (arrivals, timer pops, and batch
/// formation are all serialized on the virtual-time axis), so locking here
/// would buy nothing and cost determinism review effort. Kernel execution
/// is what runs on the thread pool, never queue mutation.
class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(size_t depth) : depth_(depth) {
    KS_CHECK_GT(depth, 0u);
  }

  /// Admits the request unless the queue is at depth.
  bool TryPush(ServeRequest request) {
    if (queue_.size() >= depth_) return false;
    queue_.push_back(std::move(request));
    high_water_ = std::max(high_water_, queue_.size());
    return true;
  }

  /// Pops up to `max_n` requests in arrival order.
  std::vector<ServeRequest> PopBatch(size_t max_n) {
    const size_t n = std::min(max_n, queue_.size());
    std::vector<ServeRequest> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return batch;
  }

  /// Oldest queued request, or nullptr when empty. Batch-delay timers carry
  /// the front request's id so a stale timer (the request already left in
  /// an earlier size-triggered batch) can be recognized and dropped.
  const ServeRequest* Front() const {
    return queue_.empty() ? nullptr : &queue_.front();
  }

  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  size_t depth() const { return depth_; }
  size_t high_water() const { return high_water_; }

 private:
  size_t depth_;
  std::deque<ServeRequest> queue_;
  size_t high_water_ = 0;
};

}  // namespace serve
}  // namespace keystone

#endif  // KEYSTONE_SERVE_REQUEST_QUEUE_H_
