#ifndef KEYSTONE_SERVE_LOAD_GENERATOR_H_
#define KEYSTONE_SERVE_LOAD_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/common/rng.h"
#include "src/serve/request.h"

namespace keystone {
namespace serve {

/// A deterministic stream of timestamped requests, consumed by
/// PipelineServer::Run. Peek/Pop instead of a plain iterator because
/// closed-loop sources cannot know their next arrival until earlier
/// responses come back — OnResponse is the feedback edge.
class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// Copies the next request (smallest arrival time) into `*out` without
  /// consuming it. Returns false when no request is currently pending —
  /// which is not the same as Exhausted(): a closed-loop source may be
  /// waiting for a response before its next think time starts.
  virtual bool Peek(ServeRequest* out) const = 0;

  /// Consumes the request Peek exposed.
  virtual void Pop() = 0;

  /// True once the source will never produce another request.
  virtual bool Exhausted() const = 0;

  /// Response feedback (both accepts and rejects), delivered in completion
  /// order on the server's serial event loop.
  virtual void OnResponse(const ServeResponse& /*response*/) {}
};

/// Open-loop (partly-offered-load) traffic: a seeded Poisson process of
/// `num_requests` arrivals at `rate_per_second`, payloads drawn uniformly.
/// Arrivals ignore responses — exactly the regime where shedding matters.
/// `start_seconds` shifts the whole process right and `first_id` offsets
/// the request ids: overload legs use both to stage a late burst on top of
/// steady background traffic for the *same* tenant (two sources, disjoint
/// id ranges, merged by arrival time).
class OpenLoopSource : public RequestSource {
 public:
  OpenLoopSource(int tenant, double rate_per_second, size_t num_requests,
                 size_t num_payloads, uint64_t seed,
                 double start_seconds = 0.0, uint64_t first_id = 0);

  bool Peek(ServeRequest* out) const override;
  void Pop() override;
  bool Exhausted() const override;

 private:
  std::vector<ServeRequest> requests_;  // pregenerated, arrival order
  size_t next_ = 0;
};

/// Closed-loop traffic: `users` independent users, each issuing
/// `requests_per_user` requests with exponential think times between a
/// response (accept or reject) and the next request. Throughput
/// self-limits to the server's speed, so nothing is shed in steady state.
class ClosedLoopSource : public RequestSource {
 public:
  ClosedLoopSource(int tenant, int users, size_t requests_per_user,
                   double think_seconds, size_t num_payloads, uint64_t seed);

  bool Peek(ServeRequest* out) const override;
  void Pop() override;
  bool Exhausted() const override;
  void OnResponse(const ServeResponse& response) override;

 private:
  struct Later {
    bool operator()(const ServeRequest& a, const ServeRequest& b) const {
      if (a.arrival_seconds != b.arrival_seconds) {
        return a.arrival_seconds > b.arrival_seconds;
      }
      return a.id > b.id;  // ids are globally unique within the source
    }
  };

  void ScheduleUser(int user, double not_before);

  int tenant_;
  double think_seconds_;
  size_t num_payloads_;
  Rng rng_;
  std::priority_queue<ServeRequest, std::vector<ServeRequest>, Later> pending_;
  std::vector<size_t> remaining_;  // per user, counts down to 0
  uint64_t next_id_ = 0;
  size_t outstanding_ = 0;  // issued but no response yet
};

/// Interleaves several sources into one stream ordered by (arrival time,
/// tenant, registration index) — a deterministic total order even when two
/// tenants' arrivals coincide. Responses fan out to every child (each
/// child filters by tenant itself).
class MergedSource : public RequestSource {
 public:
  explicit MergedSource(std::vector<RequestSource*> sources);

  bool Peek(ServeRequest* out) const override;
  void Pop() override;
  bool Exhausted() const override;
  void OnResponse(const ServeResponse& response) override;

 private:
  /// Index of the child owning the globally-next request, or -1.
  int NextSource() const;

  std::vector<RequestSource*> sources_;
};

}  // namespace serve
}  // namespace keystone

#endif  // KEYSTONE_SERVE_LOAD_GENERATOR_H_
