#ifndef KEYSTONE_SERVE_PIPELINE_SERVER_H_
#define KEYSTONE_SERVE_PIPELINE_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "src/core/exec_context.h"
#include "src/obs/slo.h"
#include "src/obs/telemetry.h"
#include "src/serve/load_generator.h"
#include "src/serve/request.h"
#include "src/serve/request_queue.h"
#include "src/serve/servable_pipeline.h"
#include "src/serve/serve_options.h"
#include "src/sim/resources.h"
#include "src/sim/virtual_time.h"

namespace keystone {
namespace serve {

/// Server-wide knobs (tenant-specific knobs live in ServeOptions).
struct ServerConfig {
  /// Concurrent micro-batch executions on the virtual-time axis: the
  /// serving analogue of cluster job slots. Batches from any tenant
  /// compete for the same slots.
  int server_slots = 4;

  /// Size of the server-owned kernel thread pool; 0 = hardware
  /// concurrency. Affects wall time only — never virtual time, responses,
  /// or metrics (the determinism tests pin this at 1 vs 4 and demand
  /// byte-identical output).
  size_t num_threads = 0;
};

/// Per-tenant tallies and latency summary for one Run.
struct TenantReport {
  std::string name;
  ServeOptions options;

  size_t offered = 0;
  size_t accepted = 0;
  size_t rejected_queue_full = 0;
  size_t rejected_predicted_cost = 0;
  size_t rejected_error_budget = 0;
  size_t completed = 0;
  size_t slo_met = 0;

  // Trace head-sampling accounting (only requests whose tenant emits
  // request spans are counted; sampled + dropped == completed then).
  size_t trace_sampled = 0;
  size_t trace_dropped = 0;

  // SLO error-budget state at end of run (budget_shedding tenants only;
  // the defaults mean "budget untouched, never shed").
  double budget_remaining_fraction = 1.0;
  double final_fast_burn = 0.0;
  double final_slow_burn = 0.0;
  /// Budget remaining at the instant shedding first engaged; -1 when it
  /// never did. Positive proves shedding fired *before* exhaustion.
  double first_shed_budget_remaining = -1.0;

  size_t batches = 0;
  size_t batched_records = 0;
  size_t queue_high_water = 0;

  // Exact (sort-based) latency quantiles over completed requests, seconds.
  double p50_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  double p999_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;
  double mean_latency_seconds = 0.0;

  double MeanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_records) /
                              static_cast<double>(batches);
  }
  /// Completed requests per virtual second of the whole run.
  double ThroughputRps(double makespan_seconds) const {
    return makespan_seconds <= 0.0
               ? 0.0
               : static_cast<double>(completed) / makespan_seconds;
  }
  /// Fraction of completed requests that met the tenant SLO.
  double SloAttainment() const {
    return completed == 0
               ? 0.0
               : static_cast<double>(slo_met) / static_cast<double>(completed);
  }
};

/// Everything one PipelineServer::Run produced: the full response stream in
/// deterministic emission order plus per-tenant and server-level rollups.
struct ServeReport {
  std::vector<ServeResponse> responses;
  std::vector<TenantReport> tenants;

  double makespan_seconds = 0.0;   // virtual time of the last event
  double busy_seconds = 0.0;       // summed slot-busy virtual seconds
  int server_slots = 0;

  /// Mean fraction of server slots busy over the makespan.
  double Utilization() const {
    return (makespan_seconds <= 0.0 || server_slots <= 0)
               ? 0.0
               : busy_seconds / (makespan_seconds * server_slots);
  }

  /// Canonical encoding of the whole response stream, one line per
  /// response in emission order. Two runs are behaviorally identical iff
  /// these strings are byte-identical — the determinism tests compare this
  /// across server thread counts.
  std::string ResponseStream() const;

  std::string ToString() const;
  /// JSON object (no trailing newline) embedding per-tenant quantiles and
  /// server rollups; bench_serving splices these into BENCH_serving.json.
  std::string ToJson() const;
};

/// Hosts N fitted pipelines for concurrent single-row serving on one
/// shared kernel pool, with per-tenant micro-batching, bounded queues,
/// cost-guided admission control, and SLO accounting.
///
/// Execution model: Run() consumes a deterministic RequestSource and
/// advances a serial virtual-time event loop (arrivals, batch-delay
/// timers, batch completions). Every *decision* — admit/reject, batch
/// boundaries, slot assignment, response order, metric and trace emission
/// — happens on that serial loop; only the pipelines' real kernels run on
/// the thread pool, and their outputs are deterministic functions of the
/// batch content. Hence a fixed source yields a byte-identical
/// ResponseStream regardless of num_threads — the serving analogue of the
/// PlanRunner's buffered-flush determinism argument.
class PipelineServer {
 public:
  PipelineServer(const ClusterResourceDescriptor& resources,
                 ServerConfig config = ServerConfig());

  /// Registers a tenant; returns its id (the `tenant` field requests must
  /// carry). Validates servability via ServablePipeline unless the caller
  /// already did.
  int AddTenant(std::string name, ServablePipeline pipeline,
                std::shared_ptr<RequestCodec> codec,
                ServeOptions options = ServeOptions());

  /// Drains the source to exhaustion and returns the full report. May be
  /// called repeatedly; each run starts from an idle server but keeps the
  /// tenants' calibrated cost estimates (deliberately: a warmed server).
  ServeReport Run(RequestSource* source);

  /// The server's own context: its ledger accumulates the "Serve" stage
  /// charges, and its sinks receive the serving spans and metrics.
  ExecContext* context() { return &ctx_; }

  /// Attaches a windowed telemetry hub (borrowed; nullptr detaches). The
  /// hub becomes a listener of the event loop's virtual clock: every event
  /// the loop processes ticks it, so windows close at deterministic
  /// virtual instants and the snapshot stream is byte-identical across
  /// kernel-pool sizes. Each Run() is one telemetry epoch.
  void set_telemetry(obs::TelemetryHub* telemetry);
  obs::TelemetryHub* telemetry() const { return telemetry_; }

  size_t num_tenants() const { return tenants_.size(); }

 private:
  struct Tenant {
    Tenant(std::string name_in, ServablePipeline pipeline_in,
           std::shared_ptr<RequestCodec> codec_in, ServeOptions options_in)
        : name(std::move(name_in)),
          pipeline(std::move(pipeline_in)),
          codec(std::move(codec_in)),
          options(options_in),
          queue(options.queue_depth) {}

    std::string name;
    ServablePipeline pipeline;
    std::shared_ptr<RequestCodec> codec;
    ServeOptions options;
    BoundedRequestQueue queue;
    // Pre-resolved metric instruments (one registry lookup per tenant at
    // registration, zero per request). Null when the context's metrics
    // sink is disabled.
    obs::Counter* offered = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected_queue_full = nullptr;
    obs::Counter* rejected_predicted_cost = nullptr;
    obs::Counter* slo_met = nullptr;
    obs::Counter* slo_violated = nullptr;
    obs::Counter* rejected_error_budget = nullptr;
    obs::Counter* trace_sampled = nullptr;
    obs::Counter* trace_dropped = nullptr;
    obs::Histogram* latency = nullptr;
    /// Deterministic head sampler for this tenant's request spans.
    obs::TraceSampler sampler;
    /// Error-budget tracker; null unless options.budget_shedding.
    std::unique_ptr<obs::SloErrorBudget> budget;
    // Pre-built telemetry series names (one concatenation per tenant at
    // registration, zero per request).
    std::string tel_offered, tel_accepted, tel_rejected, tel_completed;
    std::string tel_latency, tel_violations;
    std::string tel_budget_remaining, tel_burn_fast, tel_burn_slow, tel_shed;
    // Pre-resolved hub series ids (registered once per Run; the hot path
    // records through ids, never by-name map lookups). Valid only while
    // tel_resolved matches the attached hub.
    obs::TelemetryHub::SeriesId id_offered = 0, id_accepted = 0,
                               id_rejected = 0, id_completed = 0;
    obs::TelemetryHub::SeriesId id_latency = 0, id_violations = 0;
    obs::TelemetryHub::SeriesId id_budget_remaining = 0, id_burn_fast = 0,
                               id_burn_slow = 0, id_shed = 0;
    // Last values published to the SLO gauges this epoch (NaN = none yet).
    // Identical re-sets are skipped: a gauge re-exports its latest value in
    // every window anyway, so the skip leaves the snapshot stream
    // byte-identical while healthy steady states publish ~nothing.
    double tel_budget_published = 0.0, tel_burn_fast_published = 0.0,
           tel_burn_slow_published = 0.0;
  };

  /// A dispatched micro-batch whose kernels already ran; rides the event
  /// heap until its virtual completion time.
  struct BatchResult {
    int tenant = -1;
    uint64_t batch_id = 0;
    double dispatch_seconds = 0.0;
    double completion_seconds = 0.0;
    double service_seconds = 0.0;
    double wall_seconds = 0.0;
    std::vector<ServeRequest> requests;
    std::vector<std::string> outputs;  // encoded, one per request
  };

  enum class EventKind { kCompletion = 0, kTimer = 1 };

  struct Event {
    double time = 0.0;
    EventKind kind = EventKind::kTimer;
    uint64_t seq = 0;  // tiebreaker: creation order
    // kTimer: wake the dispatcher when this tenant's queue front reaches
    // its batch-delay deadline (a no-op if the front already left).
    int tenant = -1;
    // kCompletion payload.
    BatchResult batch;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.kind != b.kind) return a.kind > b.kind;  // completions first
      return a.seq > b.seq;
    }
  };

  /// Moves virtual time forward: updates now_, ticks the clock (and the
  /// attached telemetry hub with it), and rotates every tenant's
  /// error-budget windows. All virtual-time motion funnels through here.
  void AdvanceClock(double time_seconds);
  /// Registers every tenant's telemetry series with the attached hub and
  /// caches the stable ids the hot paths record through.
  void ResolveTelemetrySeries();
  void HandleArrival(const ServeRequest& request, RequestSource* source,
                     ServeReport* report);
  void HandleCompletion(const Event& event, RequestSource* source,
                        ServeReport* report);
  /// Lowest-index slot free at now_, or -1 when all slots are busy.
  int FreeSlot() const;
  /// A queue is ripe when it can fill a batch or its front has waited out
  /// the tenant's batch delay.
  bool Ripe(const Tenant& tenant) const;
  /// Greedy dispatcher: while a slot is free and some tenant is ripe
  /// (lowest tenant id first), form and launch a batch. Called after every
  /// event that could free a slot or ripen a queue.
  void TryDispatch();
  /// Pops up to max_batch_size requests, runs the kernels immediately, and
  /// occupies `slot` until the batch's virtual completion.
  void FormBatch(int tenant_id, int slot);
  void ArmTimer(int tenant_id, double when);
  void Reject(const ServeRequest& request, RejectReason reason,
              RequestSource* source, ServeReport* report);
  void EmitResponse(ServeResponse response, RequestSource* source,
                    ServeReport* report);

  ServerConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  ExecContext ctx_;
  std::vector<Tenant> tenants_;
  /// The event loop's deterministic tick source (mirrors now_).
  VirtualClock clock_;
  obs::TelemetryHub* telemetry_ = nullptr;
  /// Hub the cached series ids were resolved against (ids are only
  /// meaningful for the hub that issued them).
  obs::TelemetryHub* telemetry_resolved_ = nullptr;
  /// Process-wide trace-sampling accounting series on the attached hub.
  obs::TelemetryHub::SeriesId id_trace_sampled_ = 0;
  obs::TelemetryHub::SeriesId id_trace_dropped_ = 0;

  // --- Per-run event-loop state (reset by Run) ---------------------------
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::vector<double> slot_free_;  // per slot, virtual time it frees up
  double now_ = 0.0;
  double busy_seconds_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_batch_id_ = 0;
  // Per-tenant per-run tallies mirrored into TenantReport at the end.
  std::vector<TenantReport> tallies_;
  std::vector<std::vector<double>> latencies_;  // per tenant, completed only
};

}  // namespace serve
}  // namespace keystone

#endif  // KEYSTONE_SERVE_PIPELINE_SERVER_H_
