#ifndef KEYSTONE_SERVE_SERVE_OPTIONS_H_
#define KEYSTONE_SERVE_SERVE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "src/obs/slo.h"

namespace keystone {
namespace serve {

/// Per-tenant serving knobs (the ExecOptions idiom: a plain struct of
/// documented defaults, passed by value at registration time). The knobs
/// trade latency against throughput: batching amortizes the per-job
/// scheduling rounds the cost model charges every micro-batch, while the
/// queue bound and the cost-based admission test shed load the tenant's
/// SLO could not absorb.
struct ServeOptions {
  /// Coalesce up to this many queued single-row requests into one
  /// micro-batch (1 = no batching; each request is its own plan run).
  size_t max_batch_size = 16;

  /// Longest a queued request may wait (virtual seconds) for co-riders
  /// before its batch is dispatched anyway.
  double max_batch_delay_seconds = 0.05;

  /// Bounded request queue depth; arrivals beyond it are shed with
  /// RejectReason::kQueueFull.
  size_t queue_depth = 64;

  /// Per-request latency objective (virtual seconds), measured from
  /// arrival to batch completion.
  double slo_seconds = 1.0;

  /// Also reject when the cost model predicts queueing + service latency
  /// above `admission_headroom * slo_seconds` (RejectReason::
  /// kPredictedCost). The prediction reuses the tenant pipeline's
  /// calibrated per-record cost — runtime-plan costing applied per
  /// request. Off = queue-depth admission only.
  bool cost_admission = true;

  /// Admission budget multiplier over the SLO (>1 admits optimistically,
  /// <1 sheds early).
  double admission_headroom = 1.0;

  /// Emit one trace span per request (TracePhase::kServe) in addition to
  /// the per-batch span. Spans are buffered per batch and flushed from the
  /// serial completion path, so the request path itself stays lock-free.
  bool emit_request_spans = true;

  /// Head-sampling rate for the per-request spans: each request's span is
  /// kept with this probability, decided by a deterministic seeded draw
  /// over (seed, tenant, request id) — see obs::TraceSampler. 1.0 keeps
  /// every span (the pre-sampling behavior), 0.0 none. Latency accounting
  /// is unaffected: tallies and quantiles always cover every request.
  double trace_sample_rate = 1.0;

  /// Seed for the sampling draw. Same seed => same sampled request set,
  /// regardless of batching, schedule, or kernel-pool size.
  uint64_t trace_sample_seed = 0;

  /// Shed arrivals (RejectReason::kErrorBudget) while the tenant's SLO
  /// error budget is burning faster than slo_budget.shed_burn_rate on
  /// both the fast and slow lookbacks — load-shedding *before* the budget
  /// exhausts rather than after the SLO is already breached.
  bool budget_shedding = false;

  /// Error-budget policy evaluated when budget_shedding is on (also
  /// published as slo.* telemetry series whenever a hub is attached).
  obs::SloBudgetOptions slo_budget;
};

}  // namespace serve
}  // namespace keystone

#endif  // KEYSTONE_SERVE_SERVE_OPTIONS_H_
