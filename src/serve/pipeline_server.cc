#include "src/serve/pipeline_server.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "src/common/check.h"
#include "src/common/timer.h"

namespace keystone {
namespace serve {
namespace {

size_t PoolThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

/// Exact nearest-rank quantile over a sorted sample (empty -> 0).
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void AppendF(std::string* out, const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  *out += buf;
}

}  // namespace

std::string ServeReport::ResponseStream() const {
  std::string out;
  for (const ServeResponse& r : responses) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "t%d r%llu %s arr=%.9f done=%.9f batch=%llu n=%zu slo=%d ",
                  r.tenant, static_cast<unsigned long long>(r.id),
                  r.accepted ? "ok" : RejectReasonName(r.reject),
                  r.arrival_seconds, r.completion_seconds,
                  static_cast<unsigned long long>(r.batch_id), r.batch_size,
                  r.slo_met ? 1 : 0);
    out += buf;
    out += r.output;
    out += '\n';
  }
  return out;
}

std::string ServeReport::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ServeReport{makespan=%.3fs, slots=%d, utilization=%.1f%%}\n",
                makespan_seconds, server_slots, 100.0 * Utilization());
  out += buf;
  for (const TenantReport& t : tenants) {
    std::snprintf(
        buf, sizeof(buf),
        "  %-10s offered=%zu accepted=%zu shed(queue=%zu cost=%zu "
        "budget=%zu) done=%zu slo=%.1f%% batch=%.2f tput=%.2f rps "
        "p50=%.4fs p99=%.4fs p999=%.4fs\n",
        t.name.c_str(), t.offered, t.accepted, t.rejected_queue_full,
        t.rejected_predicted_cost, t.rejected_error_budget, t.completed,
        100.0 * t.SloAttainment(), t.MeanBatchSize(),
        t.ThroughputRps(makespan_seconds), t.p50_latency_seconds,
        t.p99_latency_seconds, t.p999_latency_seconds);
    out += buf;
    if (t.options.budget_shedding) {
      std::snprintf(buf, sizeof(buf),
                    "             budget remaining=%.1f%% burn(fast=%.2f "
                    "slow=%.2f) first shed at %.1f%% remaining\n",
                    100.0 * t.budget_remaining_fraction, t.final_fast_burn,
                    t.final_slow_burn,
                    100.0 * t.first_shed_budget_remaining);
      out += buf;
    }
    if (t.trace_sampled + t.trace_dropped > 0) {
      std::snprintf(buf, sizeof(buf),
                    "             trace sampled=%zu dropped=%zu (rate=%.3g)\n",
                    t.trace_sampled, t.trace_dropped,
                    t.options.trace_sample_rate);
      out += buf;
    }
  }
  return out;
}

std::string ServeReport::ToJson() const {
  std::string out = "{\"makespan_seconds\":";
  AppendF(&out, "%.9g", makespan_seconds);
  out += ",\"busy_seconds\":";
  AppendF(&out, "%.9g", busy_seconds);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"server_slots\":%d", server_slots);
  out += buf;
  out += ",\"utilization\":";
  AppendF(&out, "%.6g", Utilization());
  out += ",\"tenants\":[";
  for (size_t i = 0; i < tenants.size(); ++i) {
    const TenantReport& t = tenants[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + t.name + "\"";
    char nbuf[512];
    std::snprintf(
        nbuf, sizeof(nbuf),
        ",\"offered\":%zu,\"accepted\":%zu,\"rejected_queue_full\":%zu,"
        "\"rejected_predicted_cost\":%zu,\"rejected_error_budget\":%zu,"
        "\"completed\":%zu,\"slo_met\":%zu,"
        "\"batches\":%zu,\"queue_high_water\":%zu,"
        "\"trace_sampled\":%zu,\"trace_dropped\":%zu",
        t.offered, t.accepted, t.rejected_queue_full,
        t.rejected_predicted_cost, t.rejected_error_budget, t.completed,
        t.slo_met, t.batches, t.queue_high_water, t.trace_sampled,
        t.trace_dropped);
    out += nbuf;
    out += ",\"budget_remaining_fraction\":";
    AppendF(&out, "%.9g", t.budget_remaining_fraction);
    out += ",\"first_shed_budget_remaining\":";
    AppendF(&out, "%.9g", t.first_shed_budget_remaining);
    out += ",\"final_fast_burn\":";
    AppendF(&out, "%.9g", t.final_fast_burn);
    out += ",\"final_slow_burn\":";
    AppendF(&out, "%.9g", t.final_slow_burn);
    out += ",\"mean_batch_size\":";
    AppendF(&out, "%.6g", t.MeanBatchSize());
    out += ",\"throughput_rps\":";
    AppendF(&out, "%.6g", t.ThroughputRps(makespan_seconds));
    out += ",\"slo_attainment\":";
    AppendF(&out, "%.6g", t.SloAttainment());
    out += ",\"slo_seconds\":";
    AppendF(&out, "%.6g", t.options.slo_seconds);
    out += ",\"p50_latency_seconds\":";
    AppendF(&out, "%.9g", t.p50_latency_seconds);
    out += ",\"p99_latency_seconds\":";
    AppendF(&out, "%.9g", t.p99_latency_seconds);
    out += ",\"p999_latency_seconds\":";
    AppendF(&out, "%.9g", t.p999_latency_seconds);
    out += ",\"max_latency_seconds\":";
    AppendF(&out, "%.9g", t.max_latency_seconds);
    out += ",\"mean_latency_seconds\":";
    AppendF(&out, "%.9g", t.mean_latency_seconds);
    out += "}";
  }
  out += "]}";
  return out;
}

PipelineServer::PipelineServer(const ClusterResourceDescriptor& resources,
                               ServerConfig config)
    : config_(config),
      pool_(std::make_unique<ThreadPool>(PoolThreads(config.num_threads))),
      ctx_(resources) {
  KS_CHECK_GT(config_.server_slots, 0);
  ctx_.set_pool(pool_.get());
}

int PipelineServer::AddTenant(std::string name, ServablePipeline pipeline,
                              std::shared_ptr<RequestCodec> codec,
                              ServeOptions options) {
  KS_CHECK(codec != nullptr);
  KS_CHECK_GT(options.max_batch_size, 0u);
  KS_CHECK_GT(options.queue_depth, 0u);
  KS_CHECK(options.max_batch_delay_seconds >= 0.0);
  KS_CHECK(options.slo_seconds > 0.0);
  Tenant tenant(std::move(name), std::move(pipeline), std::move(codec),
                options);
  if (ctx_.metrics() != nullptr) {
    obs::MetricsRegistry* m = ctx_.metrics();
    const std::string prefix = "serve." + tenant.name + ".";
    tenant.offered = m->GetCounter(prefix + "offered");
    tenant.accepted = m->GetCounter(prefix + "accepted");
    tenant.rejected_queue_full = m->GetCounter(prefix + "rejected.queue_full");
    tenant.rejected_predicted_cost =
        m->GetCounter(prefix + "rejected.predicted_cost");
    tenant.rejected_error_budget =
        m->GetCounter(prefix + "rejected.error_budget");
    tenant.slo_met = m->GetCounter(prefix + "slo.met");
    tenant.slo_violated = m->GetCounter(prefix + "slo.violated");
    tenant.trace_sampled = m->GetCounter("serve.trace.sampled");
    tenant.trace_dropped = m->GetCounter("serve.trace.dropped");
    tenant.latency = m->GetHistogram(prefix + "latency_seconds");
  }
  tenant.sampler =
      obs::TraceSampler(options.trace_sample_rate, options.trace_sample_seed);
  if (options.budget_shedding) {
    tenant.budget = std::make_unique<obs::SloErrorBudget>(options.slo_budget);
  }
  // Telemetry series names, built once so the per-request hot path does no
  // string concatenation.
  const std::string tel = "serve." + tenant.name + ".";
  tenant.tel_offered = tel + "offered";
  tenant.tel_accepted = tel + "accepted";
  tenant.tel_rejected = tel + "rejected";
  tenant.tel_completed = tel + "completed";
  tenant.tel_latency = tel + "latency_seconds";
  tenant.tel_violations = tel + "slo_violations";
  const std::string slo = "slo." + tenant.name + ".";
  tenant.tel_budget_remaining = slo + "budget_remaining";
  tenant.tel_burn_fast = slo + "burn_fast";
  tenant.tel_burn_slow = slo + "burn_slow";
  tenant.tel_shed = slo + "shed";
  tenants_.push_back(std::move(tenant));
  return static_cast<int>(tenants_.size()) - 1;
}

void PipelineServer::set_telemetry(obs::TelemetryHub* telemetry) {
  if (telemetry_ != nullptr) clock_.RemoveListener(telemetry_);
  telemetry_ = telemetry;
  if (telemetry_ != nullptr) clock_.AddListener(telemetry_);
}

void PipelineServer::ResolveTelemetrySeries() {
  if (telemetry_ == nullptr || telemetry_resolved_ == telemetry_) return;
  using Kind = obs::TelemetrySeriesKind;
  for (Tenant& t : tenants_) {
    t.id_offered = telemetry_->RegisterSeries(t.tel_offered, Kind::kCounter);
    t.id_accepted = telemetry_->RegisterSeries(t.tel_accepted, Kind::kCounter);
    t.id_rejected = telemetry_->RegisterSeries(t.tel_rejected, Kind::kCounter);
    t.id_completed =
        telemetry_->RegisterSeries(t.tel_completed, Kind::kCounter);
    t.id_latency = telemetry_->RegisterSeries(t.tel_latency, Kind::kHistogram);
    t.id_violations =
        telemetry_->RegisterSeries(t.tel_violations, Kind::kCounter);
    t.id_budget_remaining =
        telemetry_->RegisterSeries(t.tel_budget_remaining, Kind::kGauge);
    t.id_burn_fast = telemetry_->RegisterSeries(t.tel_burn_fast, Kind::kGauge);
    t.id_burn_slow = telemetry_->RegisterSeries(t.tel_burn_slow, Kind::kGauge);
    t.id_shed = telemetry_->RegisterSeries(t.tel_shed, Kind::kCounter);
  }
  id_trace_sampled_ =
      telemetry_->RegisterSeries("serve.trace.sampled", Kind::kCounter);
  id_trace_dropped_ =
      telemetry_->RegisterSeries("serve.trace.dropped", Kind::kCounter);
  telemetry_resolved_ = telemetry_;
}

ServeReport PipelineServer::Run(RequestSource* source) {
  KS_CHECK(source != nullptr);
  KS_CHECK(!tenants_.empty()) << "Run() before any AddTenant()";

  // Reset per-run state (tenant queues are empty between runs by the
  // loop's own drain invariant; calibration deliberately persists).
  events_ = {};
  slot_free_.assign(static_cast<size_t>(config_.server_slots), 0.0);
  now_ = 0.0;
  busy_seconds_ = 0.0;
  next_seq_ = 0;
  next_batch_id_ = 0;
  tallies_.assign(tenants_.size(), TenantReport());
  latencies_.assign(tenants_.size(), {});
  for (size_t i = 0; i < tenants_.size(); ++i) {
    tallies_[i].name = tenants_[i].name;
    tallies_[i].options = tenants_[i].options;
    if (tenants_[i].budget != nullptr) tenants_[i].budget->Reset();
    // New run = new telemetry epoch: the first completion must publish the
    // SLO gauges again regardless of their last-epoch values.
    tenants_[i].tel_budget_published =
        std::numeric_limits<double>::quiet_NaN();
    tenants_[i].tel_burn_fast_published =
        std::numeric_limits<double>::quiet_NaN();
    tenants_[i].tel_burn_slow_published =
        std::numeric_limits<double>::quiet_NaN();
  }
  // Rewind the virtual clock; an attached telemetry hub hears this as a
  // new epoch (a no-op on a freshly constructed server).
  clock_.Reset();
  ResolveTelemetrySeries();

  ServeReport report;
  report.server_slots = config_.server_slots;

  while (true) {
    ServeRequest arrival;
    const bool has_arrival = source->Peek(&arrival);
    if (events_.empty() && !has_arrival) {
      // A closed-loop source with in-flight responses would imply a
      // pending completion event; queued requests imply a pending timer.
      KS_CHECK(source->Exhausted()) << "serving event loop stalled";
      break;
    }
    const bool take_event =
        !events_.empty() &&
        (!has_arrival || events_.top().time <= arrival.arrival_seconds);
    if (take_event) {
      Event event = events_.top();
      events_.pop();
      AdvanceClock(event.time);
      if (event.kind == EventKind::kCompletion) {
        HandleCompletion(event, source, &report);
      }
      // Timer or completion, the response is the same: something may have
      // ripened or freed up, so give the dispatcher a chance.
      TryDispatch();
    } else {
      source->Pop();
      AdvanceClock(arrival.arrival_seconds);
      HandleArrival(arrival, source, &report);
    }
  }

  report.makespan_seconds = now_;
  report.busy_seconds = busy_seconds_;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    TenantReport& t = tallies_[i];
    t.queue_high_water = tenants_[i].queue.high_water();
    if (tenants_[i].budget != nullptr) {
      const obs::SloErrorBudget& budget = *tenants_[i].budget;
      t.budget_remaining_fraction = budget.BudgetRemainingFraction();
      t.final_fast_burn = budget.FastBurnRate();
      t.final_slow_burn = budget.SlowBurnRate();
    }
    std::vector<double>& lat = latencies_[i];
    std::sort(lat.begin(), lat.end());
    if (!lat.empty()) {
      t.p50_latency_seconds = SortedQuantile(lat, 0.50);
      t.p99_latency_seconds = SortedQuantile(lat, 0.99);
      t.p999_latency_seconds = SortedQuantile(lat, 0.999);
      t.max_latency_seconds = lat.back();
      double sum = 0.0;
      for (double v : lat) sum += v;
      t.mean_latency_seconds = sum / static_cast<double>(lat.size());
    }
    report.tenants.push_back(t);
  }
  // One Run == one telemetry epoch: rewinding the clock makes the hub
  // emit the final partial window and seal the epoch, so the stream for
  // this run is complete (and exported) before Run returns.
  clock_.Reset();
  return report;
}

void PipelineServer::AdvanceClock(double time_seconds) {
  if (time_seconds <= now_) return;
  now_ = time_seconds;
  clock_.AdvanceTo(now_);
  for (Tenant& tenant : tenants_) {
    if (tenant.budget != nullptr) tenant.budget->AdvanceTo(now_);
  }
}

void PipelineServer::HandleArrival(const ServeRequest& request,
                                   RequestSource* source,
                                   ServeReport* report) {
  KS_CHECK(request.tenant >= 0 &&
           request.tenant < static_cast<int>(tenants_.size()))
      << "request for unknown tenant " << request.tenant;
  Tenant& tenant = tenants_[static_cast<size_t>(request.tenant)];
  TenantReport& tally = tallies_[static_cast<size_t>(request.tenant)];
  ++tally.offered;
  if (tenant.offered != nullptr) tenant.offered->Increment();
  if (telemetry_ != nullptr) telemetry_->CountId(tenant.id_offered);

  if (tenant.queue.size() >= tenant.queue.depth()) {
    Reject(request, RejectReason::kQueueFull, source, report);
    return;
  }
  // Error-budget shedding: when the tenant is burning its SLO budget too
  // fast on both lookbacks, shed *now* — before the queue and cost checks
  // admit work that would land as further violations. Shedding while
  // budget remains is the point: the tenant recovers instead of breaching.
  if (tenant.budget != nullptr && tenant.budget->ShouldShed()) {
    tenant.budget->RecordShed();
    if (tally.first_shed_budget_remaining < 0.0) {
      tally.first_shed_budget_remaining =
          tenant.budget->BudgetRemainingFraction();
    }
    if (telemetry_ != nullptr) telemetry_->CountId(tenant.id_shed);
    Reject(request, RejectReason::kErrorBudget, source, report);
    return;
  }
  if (tenant.options.cost_admission) {
    // Predict this request's latency were it admitted: it waits out the
    // batch delay, then its batch waits for the cheapest slot, then pays
    // the batch's predicted service time (runtime-plan costing with the
    // tenant's calibrated per-record estimate). Shed if that already
    // exceeds the admission budget — the request would miss its SLO, so
    // rejecting now is cheaper than serving late.
    const size_t batch_records =
        std::min(tenant.queue.size() + 1, tenant.options.max_batch_size);
    double earliest_slot = slot_free_[0];
    for (double f : slot_free_) earliest_slot = std::min(earliest_slot, f);
    const double slot_wait = std::max(0.0, earliest_slot - now_);
    const double predicted =
        tenant.options.max_batch_delay_seconds + slot_wait +
        tenant.pipeline.PredictBatchSeconds(batch_records);
    if (predicted >
        tenant.options.admission_headroom * tenant.options.slo_seconds) {
      Reject(request, RejectReason::kPredictedCost, source, report);
      return;
    }
  }

  KS_CHECK(tenant.queue.TryPush(request));
  ++tally.accepted;
  if (tenant.accepted != nullptr) tenant.accepted->Increment();
  if (telemetry_ != nullptr) telemetry_->CountId(tenant.id_accepted);
  TryDispatch();
  // If the new request ended up at the head of a still-pending queue, wake
  // the dispatcher again at its batch-delay deadline. Older heads already
  // have a timer from their own push or from the batch that exposed them.
  const ServeRequest* front = tenant.queue.Front();
  if (front != nullptr && front->id == request.id) {
    ArmTimer(request.tenant, request.arrival_seconds +
                                 tenant.options.max_batch_delay_seconds);
  }
}

int PipelineServer::FreeSlot() const {
  for (size_t s = 0; s < slot_free_.size(); ++s) {
    if (slot_free_[s] <= now_) return static_cast<int>(s);
  }
  return -1;
}

bool PipelineServer::Ripe(const Tenant& tenant) const {
  const ServeRequest* front = tenant.queue.Front();
  if (front == nullptr) return false;
  return tenant.queue.size() >= tenant.options.max_batch_size ||
         now_ >= front->arrival_seconds +
                     tenant.options.max_batch_delay_seconds;
}

void PipelineServer::TryDispatch() {
  while (true) {
    const int slot = FreeSlot();
    if (slot < 0) return;
    int ripe_tenant = -1;
    for (size_t t = 0; t < tenants_.size(); ++t) {
      if (Ripe(tenants_[t])) {
        ripe_tenant = static_cast<int>(t);
        break;
      }
    }
    if (ripe_tenant < 0) return;
    FormBatch(ripe_tenant, slot);
  }
}

void PipelineServer::ArmTimer(int tenant_id, double when) {
  Event event;
  event.time = std::max(now_, when);
  event.kind = EventKind::kTimer;
  event.seq = next_seq_++;
  event.tenant = tenant_id;
  events_.push(std::move(event));
}

void PipelineServer::FormBatch(int tenant_id, int slot) {
  Tenant& tenant = tenants_[static_cast<size_t>(tenant_id)];
  BatchResult batch;
  batch.tenant = tenant_id;
  batch.batch_id = next_batch_id_++;
  batch.requests = tenant.queue.PopBatch(tenant.options.max_batch_size);
  KS_CHECK(!batch.requests.empty());
  batch.dispatch_seconds = now_;

  // Run the real kernels immediately (wall time), on a request context
  // with all observability sinks disabled: the request path itself emits
  // nothing, the server publishes spans and metrics from the serial
  // completion path. The batch's data-dependent virtual cost is read off
  // the request context's private ledger.
  std::vector<size_t> payloads;
  payloads.reserve(batch.requests.size());
  for (const ServeRequest& r : batch.requests) payloads.push_back(r.payload);
  auto request_ctx = ctx_.MakeRequestContext();
  request_ctx->set_tracer(nullptr);
  request_ctx->set_metrics(nullptr);
  request_ctx->set_profile_store(nullptr);
  request_ctx->set_timeline(nullptr);
  request_ctx->set_telemetry(nullptr);
  Timer timer;
  double variable_seconds = 0.0;
  const AnyDataset out = tenant.pipeline.Apply(
      tenant.codec->MakeBatch(payloads), request_ctx.get(), &variable_seconds);
  batch.wall_seconds = timer.ElapsedSeconds();
  batch.outputs = tenant.codec->EncodeBatch(out);
  KS_CHECK_EQ(batch.outputs.size(), batch.requests.size())
      << "codec must encode exactly one row per request";

  // Calibrate at dispatch, on the serial loop, so the admission estimate
  // evolves identically run-to-run.
  tenant.pipeline.ObserveBatch(batch.requests.size(), variable_seconds);

  batch.service_seconds =
      tenant.pipeline.FixedBatchOverheadSeconds() + variable_seconds;
  batch.completion_seconds = batch.dispatch_seconds + batch.service_seconds;
  slot_free_[static_cast<size_t>(slot)] = batch.completion_seconds;
  busy_seconds_ += batch.service_seconds;

  Event event;
  event.time = batch.completion_seconds;
  event.kind = EventKind::kCompletion;
  event.seq = next_seq_++;
  event.tenant = tenant_id;
  event.batch = std::move(batch);
  events_.push(std::move(event));

  // The pop exposed a new queue head (if any); make sure the dispatcher
  // wakes by its deadline, since its original push armed no timer.
  const ServeRequest* front = tenant.queue.Front();
  if (front != nullptr) {
    ArmTimer(tenant_id, front->arrival_seconds +
                            tenant.options.max_batch_delay_seconds);
  }
}

void PipelineServer::HandleCompletion(const Event& event,
                                      RequestSource* source,
                                      ServeReport* report) {
  Tenant& tenant = tenants_[static_cast<size_t>(event.tenant)];
  TenantReport& tally = tallies_[static_cast<size_t>(event.tenant)];
  const BatchResult& batch = event.batch;

  ctx_.ledger()->ChargeSeconds("Serve", batch.service_seconds);
  ++tally.batches;
  tally.batched_records += batch.requests.size();

  if (ctx_.tracer() != nullptr) {
    obs::TraceSpan span;
    span.name = "serve." + tenant.name;
    span.kind = "batch";
    span.phase = obs::TracePhase::kServe;
    span.partitions = 1;
    span.records_in = batch.requests.size();
    span.wall_seconds = batch.wall_seconds;
    span.virtual_seconds = batch.service_seconds;
    ctx_.tracer()->Record(std::move(span));
  }

  // Completion-side counters and budget gauges are batched: every request
  // in the batch completes at the same virtual instant, and no telemetry
  // window can close mid-batch (ticks fire between events on the serial
  // loop), so one per-batch delta lands in exactly the same window as N
  // per-request increments would — byte-identical stream, N-1 fewer hub
  // calls. Per-request latency samples still feed the histogram directly.
  size_t tel_violations = 0;
  size_t tel_sampled = 0;
  size_t tel_dropped = 0;
  for (size_t i = 0; i < batch.requests.size(); ++i) {
    const ServeRequest& request = batch.requests[i];
    ServeResponse response;
    response.tenant = request.tenant;
    response.id = request.id;
    response.user = request.user;
    response.accepted = true;
    response.arrival_seconds = request.arrival_seconds;
    response.dispatch_seconds = batch.dispatch_seconds;
    response.completion_seconds = batch.completion_seconds;
    response.latency_seconds =
        batch.completion_seconds - request.arrival_seconds;
    response.slo_met = response.latency_seconds <= tenant.options.slo_seconds;
    response.batch_id = batch.batch_id;
    response.batch_size = batch.requests.size();
    response.output = batch.outputs[i];

    ++tally.completed;
    latencies_[static_cast<size_t>(event.tenant)].push_back(
        response.latency_seconds);
    if (response.slo_met) {
      ++tally.slo_met;
      if (tenant.slo_met != nullptr) tenant.slo_met->Increment();
    } else if (tenant.slo_violated != nullptr) {
      tenant.slo_violated->Increment();
    }
    if (tenant.latency != nullptr) {
      tenant.latency->Record(response.latency_seconds);
    }
    // Every completion feeds the error budget and the windowed series —
    // sampling below only thins trace spans, never accounting, so p99 and
    // burn rates stay exact at any sampling rate.
    if (tenant.budget != nullptr) {
      tenant.budget->RecordOutcome(response.slo_met);
    }
    if (telemetry_ != nullptr) {
      telemetry_->ObserveId(tenant.id_latency, response.latency_seconds);
      if (!response.slo_met) ++tel_violations;
    }
    if (tenant.options.emit_request_spans && ctx_.tracer() != nullptr) {
      // Deterministic head sampling: keep or drop this request's span as
      // a pure function of (seed, tenant, id) — the same set regardless
      // of batching, schedule, or pool size.
      if (tenant.sampler.Sample(tenant.name, request.id)) {
        ++tally.trace_sampled;
        ++tel_sampled;
        if (tenant.trace_sampled != nullptr) tenant.trace_sampled->Increment();
        obs::TraceSpan span;
        span.name = "serve." + tenant.name;
        span.kind = "request";
        span.phase = obs::TracePhase::kServe;
        span.records_in = 1;
        span.virtual_seconds = response.latency_seconds;
        ctx_.tracer()->Record(std::move(span));
      } else {
        ++tally.trace_dropped;
        ++tel_dropped;
        if (tenant.trace_dropped != nullptr) tenant.trace_dropped->Increment();
      }
    }
    EmitResponse(std::move(response), source, report);
  }
  if (telemetry_ != nullptr && !batch.requests.empty()) {
    telemetry_->CountId(tenant.id_completed,
                      static_cast<double>(batch.requests.size()));
    if (tel_violations > 0) {
      telemetry_->CountId(tenant.id_violations,
                        static_cast<double>(tel_violations));
    }
    if (tel_sampled > 0) {
      telemetry_->CountId(id_trace_sampled_,
                        static_cast<double>(tel_sampled));
    }
    if (tel_dropped > 0) {
      telemetry_->CountId(id_trace_dropped_,
                        static_cast<double>(tel_dropped));
    }
    if (tenant.budget != nullptr) {
      // Skip sets whose value is unchanged since the last publish (NaN
      // compares unequal, so the first publish always goes through).
      const double remaining = tenant.budget->BudgetRemainingFraction();
      if (remaining != tenant.tel_budget_published) {
        telemetry_->SetGaugeId(tenant.id_budget_remaining, remaining);
        tenant.tel_budget_published = remaining;
      }
      const double fast = tenant.budget->FastBurnRate();
      if (fast != tenant.tel_burn_fast_published) {
        telemetry_->SetGaugeId(tenant.id_burn_fast, fast);
        tenant.tel_burn_fast_published = fast;
      }
      const double slow = tenant.budget->SlowBurnRate();
      if (slow != tenant.tel_burn_slow_published) {
        telemetry_->SetGaugeId(tenant.id_burn_slow, slow);
        tenant.tel_burn_slow_published = slow;
      }
    }
  }
}

void PipelineServer::Reject(const ServeRequest& request, RejectReason reason,
                            RequestSource* source, ServeReport* report) {
  Tenant& tenant = tenants_[static_cast<size_t>(request.tenant)];
  TenantReport& tally = tallies_[static_cast<size_t>(request.tenant)];
  switch (reason) {
    case RejectReason::kQueueFull:
      ++tally.rejected_queue_full;
      if (tenant.rejected_queue_full != nullptr) {
        tenant.rejected_queue_full->Increment();
      }
      break;
    case RejectReason::kErrorBudget:
      ++tally.rejected_error_budget;
      if (tenant.rejected_error_budget != nullptr) {
        tenant.rejected_error_budget->Increment();
      }
      break;
    case RejectReason::kNone:
    case RejectReason::kPredictedCost:
      ++tally.rejected_predicted_cost;
      if (tenant.rejected_predicted_cost != nullptr) {
        tenant.rejected_predicted_cost->Increment();
      }
      break;
  }
  if (telemetry_ != nullptr) telemetry_->CountId(tenant.id_rejected);
  ServeResponse response;
  response.tenant = request.tenant;
  response.id = request.id;
  response.user = request.user;
  response.accepted = false;
  response.reject = reason;
  response.arrival_seconds = request.arrival_seconds;
  response.completion_seconds = request.arrival_seconds;
  EmitResponse(std::move(response), source, report);
}

void PipelineServer::EmitResponse(ServeResponse response,
                                  RequestSource* source, ServeReport* report) {
  report->responses.push_back(response);
  source->OnResponse(response);
}

}  // namespace serve
}  // namespace keystone
