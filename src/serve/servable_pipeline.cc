#include "src/serve/servable_pipeline.h"

#include <utility>

#include "src/analysis/plan_validator.h"
#include "src/common/check.h"
#include "src/core/exec_context.h"
#include "src/sim/virtual_time.h"

namespace keystone {
namespace serve {

ServablePipeline::ServablePipeline(
    std::shared_ptr<FittedPipelineUntyped> fitted, bool validate)
    : fitted_(std::move(fitted)) {
  KS_CHECK(fitted_ != nullptr);
  const PhysicalPlan& plan = fitted_->plan();
  if (validate) {
    const analysis::ValidationReport report =
        analysis::ValidateServablePlan(plan, &fitted_->models());
    KS_CHECK(report.ok()) << "pipeline is not servable:\n" << report.ToString();
  }
  // Every runtime node is one job submission: a scheduling round at the
  // cluster's round latency, independent of batch size.
  fixed_overhead_seconds_ =
      plan.resources.round_latency_s * plan.NumRuntimeNodes();
}

AnyDataset ServablePipeline::Apply(const AnyDataset& batch,
                                   ExecContext* request_ctx,
                                   double* variable_seconds) const {
  KS_CHECK(request_ctx != nullptr);
  KS_CHECK_EQ(request_ctx->ledger()->TotalSeconds(), 0.0)
      << "request contexts must arrive with a fresh ledger";
  AnyDataset out = fitted_->Apply(batch, request_ctx);
  if (variable_seconds != nullptr) {
    *variable_seconds = request_ctx->ledger()->TotalSeconds();
  }
  return out;
}

void ServablePipeline::ObserveBatch(size_t records, double variable_seconds) {
  if (records == 0) return;
  const double per_record = variable_seconds / static_cast<double>(records);
  if (!calibrated_) {
    per_record_seconds_ = per_record;
    calibrated_ = true;
  } else {
    per_record_seconds_ = 0.5 * per_record_seconds_ + 0.5 * per_record;
  }
}

}  // namespace serve
}  // namespace keystone
