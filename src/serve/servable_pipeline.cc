#include "src/serve/servable_pipeline.h"

#include <cmath>
#include <utility>

#include "src/analysis/dataflow.h"
#include "src/analysis/plan_validator.h"
#include "src/common/check.h"
#include "src/core/exec_context.h"
#include "src/sim/virtual_time.h"

namespace keystone {
namespace serve {

ServablePipeline::ServablePipeline(
    std::shared_ptr<FittedPipelineUntyped> fitted, bool validate,
    bool use_static_prior)
    : fitted_(std::move(fitted)) {
  KS_CHECK(fitted_ != nullptr);
  const PhysicalPlan& plan = fitted_->plan();
  if (validate) {
    const analysis::ValidationReport report =
        analysis::ValidateServablePlan(plan, &fitted_->models());
    KS_CHECK(report.ok()) << "pipeline is not servable:\n" << report.ToString();
  }
  // Every runtime node is one job submission: a scheduling round at the
  // cluster's round latency, independent of batch size.
  fixed_overhead_seconds_ =
      plan.resources.round_latency_s * plan.NumRuntimeNodes();
  if (use_static_prior) {
    // Seed the per-record estimate from the plan's dataflow annotations:
    // each runtime node's cost model priced at a statically inferred
    // one-record input. Counts as the first calibration point, so observed
    // batches refine it by EWMA instead of discarding it.
    const double prior =
        analysis::StaticServingSecondsPerRecord(plan, fitted_->models());
    if (prior >= 0) {
      per_record_seconds_ = prior;
      calibrated_ = true;
      static_prior_ = true;
    }
  }
}

AnyDataset ServablePipeline::Apply(const AnyDataset& batch,
                                   ExecContext* request_ctx,
                                   double* variable_seconds) const {
  KS_CHECK(request_ctx != nullptr);
  KS_CHECK_EQ(request_ctx->ledger()->TotalSeconds(), 0.0)
      << "request contexts must arrive with a fresh ledger";
  AnyDataset out = fitted_->Apply(batch, request_ctx);
  if (variable_seconds != nullptr) {
    *variable_seconds = request_ctx->ledger()->TotalSeconds();
  }
  return out;
}

void ServablePipeline::ObserveBatch(size_t records, double variable_seconds) {
  if (records == 0) return;
  ++batches_observed_;
  // Score the prediction this batch was admitted under, before updating.
  const double predicted =
      static_cast<double>(records) * per_record_seconds_;
  if (variable_seconds > 0) {
    last_relative_error_ =
        std::fabs(predicted - variable_seconds) / variable_seconds;
  } else {
    last_relative_error_ = predicted > 0 ? 1.0 : 0.0;
  }
  if (steady_state_batch_ < 0 &&
      last_relative_error_ <= kSteadyStateRelError) {
    steady_state_batch_ = static_cast<int>(batches_observed_);
  }
  const double per_record = variable_seconds / static_cast<double>(records);
  if (!calibrated_) {
    per_record_seconds_ = per_record;
    calibrated_ = true;
  } else {
    per_record_seconds_ = 0.5 * per_record_seconds_ + 0.5 * per_record;
  }
}

}  // namespace serve
}  // namespace keystone
