#ifndef KEYSTONE_SERVE_REQUEST_H_
#define KEYSTONE_SERVE_REQUEST_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/data/dist_dataset.h"

namespace keystone {
namespace serve {

/// One single-row apply request as the load generator hands it to the
/// server: which tenant, when (virtual seconds), and which payload row of
/// the tenant's codec to featurize.
struct ServeRequest {
  int tenant = -1;
  /// Request id, unique per tenant, assigned by the load source.
  uint64_t id = 0;
  /// Closed-loop user tag (source-private; -1 for open-loop traffic).
  int user = -1;
  /// Arrival timestamp on the virtual-time axis.
  double arrival_seconds = 0.0;
  /// Index into the tenant codec's payload universe.
  size_t payload = 0;
};

/// Why an arrival was shed instead of admitted.
enum class RejectReason {
  kNone,
  kQueueFull,       // bounded queue at depth
  kPredictedCost,   // predicted latency exceeded the admission budget
  kErrorBudget,     // tenant burning its SLO error budget too fast
};

inline const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kPredictedCost:
      return "predicted-cost";
    case RejectReason::kErrorBudget:
      return "error-budget";
  }
  return "?";
}

/// The server's answer to one request: admission outcome, the virtual-time
/// trajectory (arrival -> dispatch -> completion), SLO attainment, and the
/// encoded output row. Responses are emitted in deterministic event order;
/// concatenating `output` fields yields the byte-identical response stream
/// the serving tests compare across thread counts.
struct ServeResponse {
  int tenant = -1;
  uint64_t id = 0;
  int user = -1;
  bool accepted = false;
  RejectReason reject = RejectReason::kNone;

  double arrival_seconds = 0.0;
  double dispatch_seconds = 0.0;    // micro-batch service start
  double completion_seconds = 0.0;  // == arrival for rejected requests
  double latency_seconds = 0.0;
  bool slo_met = false;

  uint64_t batch_id = 0;
  size_t batch_size = 0;
  std::string output;  // encoded sink row ("" for rejected requests)
};

/// Bridges the type-erased server to a tenant's typed request/response
/// schema: materializes a micro-batch dataset from payload indices and
/// encodes sink rows to stable text. Implementations must be deterministic
/// functions of their inputs — the byte-identity guarantee rests on it.
class RequestCodec {
 public:
  virtual ~RequestCodec() = default;

  /// Size of the payload universe requests may index into.
  virtual size_t NumPayloads() const = 0;

  /// Builds the micro-batch dataset for the given payload rows. The
  /// partitioning must not depend on ambient state (pool size, load), only
  /// on the batch itself.
  virtual AnyDataset MakeBatch(const std::vector<size_t>& payloads) const = 0;

  /// Encodes every row of a batch output, in row order.
  virtual std::vector<std::string> EncodeBatch(
      const AnyDataset& batch_output) const = 0;
};

/// Round-trippable text for the record types the serving tests and
/// benchmarks use. %.17g preserves doubles exactly, so equal outputs have
/// equal encodings and vice versa.
inline void AppendRecordText(double value, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

inline void AppendRecordText(const std::string& value, std::string* out) {
  *out += value;
}

inline void AppendRecordText(const std::vector<double>& value,
                             std::string* out) {
  for (size_t i = 0; i < value.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendRecordText(value[i], out);
  }
}

/// Typed codec over an in-memory payload universe: requests address rows of
/// `payloads`, batches are DistDataset<A> with a fixed partition cap (so
/// batch content and partitioning are independent of thread count), and
/// outputs are encoded via AppendRecordText overloads.
template <typename A, typename B>
class TypedRequestCodec : public RequestCodec {
 public:
  explicit TypedRequestCodec(std::vector<A> payloads,
                             size_t max_batch_partitions = 8)
      : payloads_(std::move(payloads)),
        max_batch_partitions_(max_batch_partitions) {
    KS_CHECK(!payloads_.empty()) << "codec needs a non-empty payload universe";
    KS_CHECK_GT(max_batch_partitions_, 0u);
  }

  size_t NumPayloads() const override { return payloads_.size(); }

  AnyDataset MakeBatch(const std::vector<size_t>& payloads) const override {
    KS_CHECK(!payloads.empty());
    std::vector<A> rows;
    rows.reserve(payloads.size());
    for (size_t index : payloads) {
      KS_CHECK(index < payloads_.size())
          << "request payload " << index << " outside the universe";
      rows.push_back(payloads_[index]);
    }
    const size_t parts = std::min(max_batch_partitions_, rows.size());
    return DistDataset<A>::Partitioned(std::move(rows), parts);
  }

  std::vector<std::string> EncodeBatch(
      const AnyDataset& batch_output) const override {
    const auto typed = DistDataset<B>::Cast(batch_output);
    std::vector<std::string> rows;
    rows.reserve(typed->NumRecords());
    for (const auto& partition : typed->partitions()) {
      for (const B& record : partition) {
        std::string text;
        AppendRecordText(record, &text);
        rows.push_back(std::move(text));
      }
    }
    return rows;
  }

 private:
  std::vector<A> payloads_;
  size_t max_batch_partitions_;
};

}  // namespace serve
}  // namespace keystone

#endif  // KEYSTONE_SERVE_REQUEST_H_
