#ifndef KEYSTONE_SERVE_SERVABLE_PIPELINE_H_
#define KEYSTONE_SERVE_SERVABLE_PIPELINE_H_

#include <cstddef>
#include <memory>

#include "src/core/executor.h"
#include "src/data/dist_dataset.h"

namespace keystone {

class ExecContext;

namespace serve {

/// A fitted pipeline packaged for the request path: the compiled
/// PhysicalPlan with train-only nodes stripped by the runtime mask, the
/// fitted models, and a self-calibrating per-record cost estimate the
/// server's admission control consults before accepting work.
///
/// Construction statically validates the servable view (see
/// analysis::ValidateServablePlan) so a plan that would KS_CHECK-abort
/// inside PlanRunner::RunApply — an estimator left on the runtime path, an
/// unbound source, a train-only terminal — is rejected at load time, not
/// mid-request.
class ServablePipeline {
 public:
  /// Wraps a fitted pipeline. With `validate` (the default), aborts unless
  /// ValidateServablePlan passes against the plan and model map. With
  /// `use_static_prior` (the default), the per-record cost estimate is
  /// seeded from the plan's static dataflow annotations
  /// (analysis::StaticServingSecondsPerRecord) instead of starting at zero,
  /// so admission control predicts real service times from the very first
  /// batch; observations then refine the prior by EWMA as before. Plans
  /// without annotations silently fall back to the observe-first cold
  /// start.
  explicit ServablePipeline(std::shared_ptr<FittedPipelineUntyped> fitted,
                            bool validate = true,
                            bool use_static_prior = true);

  /// Runs the runtime path over one micro-batch on `request_ctx` (a
  /// per-request ExecContext from ExecContext::MakeRequestContext, whose
  /// fresh ledger isolates this batch's charges). Returns the sink dataset
  /// and stores the batch's data-dependent virtual cost — everything the
  /// per-run ledger accumulated — in `*variable_seconds`.
  AnyDataset Apply(const AnyDataset& batch, ExecContext* request_ctx,
                   double* variable_seconds) const;

  /// The per-batch fixed overhead: one scheduling round per runtime node,
  /// priced at the cluster's round latency. This is the term micro-batching
  /// amortizes — it is paid per batch, not per record.
  double FixedBatchOverheadSeconds() const { return fixed_overhead_seconds_; }

  /// Folds an observed batch into the per-record cost calibration (EWMA,
  /// alpha 0.5). Called by the server at dispatch time, on the serial event
  /// loop, so the estimate's evolution is deterministic.
  void ObserveBatch(size_t records, double variable_seconds);

  /// Predicted virtual service seconds for an n-record micro-batch:
  /// fixed overhead + n * calibrated per-record cost. Before the first
  /// observation the per-record term is 0 (admission is then effectively
  /// queue-depth only until calibrated).
  double PredictBatchSeconds(size_t records) const {
    return fixed_overhead_seconds_ +
           static_cast<double>(records) * per_record_seconds_;
  }

  double per_record_seconds() const { return per_record_seconds_; }
  const FittedPipelineUntyped& fitted() const { return *fitted_; }

  /// The per-record estimate was seeded from static dataflow analysis.
  bool has_static_prior() const { return static_prior_; }
  /// Batches folded into the calibration so far.
  size_t batches_observed() const { return batches_observed_; }
  /// Relative prediction error of the most recent batch, measured *before*
  /// folding it in (|predicted - observed| / observed); negative until the
  /// first observation.
  double last_relative_error() const { return last_relative_error_; }
  /// 1-based index of the first batch whose pre-update prediction error was
  /// within 10% of the observed cost — when the admission predictor reached
  /// steady state. Negative while it hasn't. A statically seeded prior
  /// reaches this earlier than the zero-cost cold start, which must always
  /// mispredict its first batch.
  int steady_state_batch() const { return steady_state_batch_; }

 private:
  /// Pre-update relative error below this counts as steady state.
  static constexpr double kSteadyStateRelError = 0.10;

  std::shared_ptr<FittedPipelineUntyped> fitted_;
  double fixed_overhead_seconds_ = 0.0;
  // Calibrated per-record variable cost; mutated only from the server's
  // serial event loop (ObserveBatch), never from kernel threads.
  double per_record_seconds_ = 0.0;
  bool calibrated_ = false;
  bool static_prior_ = false;
  size_t batches_observed_ = 0;
  double last_relative_error_ = -1.0;
  int steady_state_batch_ = -1;
};

}  // namespace serve
}  // namespace keystone

#endif  // KEYSTONE_SERVE_SERVABLE_PIPELINE_H_
