#ifndef KEYSTONE_SERVE_SERVABLE_PIPELINE_H_
#define KEYSTONE_SERVE_SERVABLE_PIPELINE_H_

#include <cstddef>
#include <memory>

#include "src/core/executor.h"
#include "src/data/dist_dataset.h"

namespace keystone {

class ExecContext;

namespace serve {

/// A fitted pipeline packaged for the request path: the compiled
/// PhysicalPlan with train-only nodes stripped by the runtime mask, the
/// fitted models, and a self-calibrating per-record cost estimate the
/// server's admission control consults before accepting work.
///
/// Construction statically validates the servable view (see
/// analysis::ValidateServablePlan) so a plan that would KS_CHECK-abort
/// inside PlanRunner::RunApply — an estimator left on the runtime path, an
/// unbound source, a train-only terminal — is rejected at load time, not
/// mid-request.
class ServablePipeline {
 public:
  /// Wraps a fitted pipeline. With `validate` (the default), aborts unless
  /// ValidateServablePlan passes against the plan and model map.
  explicit ServablePipeline(std::shared_ptr<FittedPipelineUntyped> fitted,
                            bool validate = true);

  /// Runs the runtime path over one micro-batch on `request_ctx` (a
  /// per-request ExecContext from ExecContext::MakeRequestContext, whose
  /// fresh ledger isolates this batch's charges). Returns the sink dataset
  /// and stores the batch's data-dependent virtual cost — everything the
  /// per-run ledger accumulated — in `*variable_seconds`.
  AnyDataset Apply(const AnyDataset& batch, ExecContext* request_ctx,
                   double* variable_seconds) const;

  /// The per-batch fixed overhead: one scheduling round per runtime node,
  /// priced at the cluster's round latency. This is the term micro-batching
  /// amortizes — it is paid per batch, not per record.
  double FixedBatchOverheadSeconds() const { return fixed_overhead_seconds_; }

  /// Folds an observed batch into the per-record cost calibration (EWMA,
  /// alpha 0.5). Called by the server at dispatch time, on the serial event
  /// loop, so the estimate's evolution is deterministic.
  void ObserveBatch(size_t records, double variable_seconds);

  /// Predicted virtual service seconds for an n-record micro-batch:
  /// fixed overhead + n * calibrated per-record cost. Before the first
  /// observation the per-record term is 0 (admission is then effectively
  /// queue-depth only until calibrated).
  double PredictBatchSeconds(size_t records) const {
    return fixed_overhead_seconds_ +
           static_cast<double>(records) * per_record_seconds_;
  }

  double per_record_seconds() const { return per_record_seconds_; }
  const FittedPipelineUntyped& fitted() const { return *fitted_; }

 private:
  std::shared_ptr<FittedPipelineUntyped> fitted_;
  double fixed_overhead_seconds_ = 0.0;
  // Calibrated per-record variable cost; mutated only from the server's
  // serial event loop (ObserveBatch), never from kernel threads.
  double per_record_seconds_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace serve
}  // namespace keystone

#endif  // KEYSTONE_SERVE_SERVABLE_PIPELINE_H_
