#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace keystone {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_log_level.load()),
      level_(level),
      file_(file),
      line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

}  // namespace internal
}  // namespace keystone
