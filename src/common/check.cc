#include "src/common/check.h"

namespace keystone {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "[KS_CHECK failed] %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace keystone
