#include "src/common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "src/common/check.h"

namespace keystone {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  task_available_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    KS_CHECK(!shutdown_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(&mu_);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || threads_.size() == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunked dynamic scheduling: each worker grabs the next index.
  auto counter = std::make_shared<std::atomic<size_t>>(0);
  const size_t workers = std::min(n, threads_.size());
  for (size_t w = 0; w < workers; ++w) {
    Submit([counter, n, &fn] {
      while (true) {
        const size_t i = counter->fetch_add(1);
        if (i >= n) break;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && tasks_.empty()) task_available_.Wait(&mu_);
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    busy_nanos_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count(),
        std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats out;
  out.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  out.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  out.busy_seconds =
      static_cast<double>(busy_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return out;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(  // NOLINT: leaked singleton
      std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace keystone
