#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace keystone {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-order bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextIndex(uint64_t n) {
  KS_CHECK_GT(n, 0u);
  // Rejection-free modulo bias is negligible for the workload sizes used
  // here, but use Lemire's multiply-shift reduction for uniformity anyway.
  const __uint128_t m =
      static_cast<__uint128_t>(NextU64()) * static_cast<__uint128_t>(n);
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

void Rng::FillGaussian(std::vector<double>* out) {
  for (auto& v : *out) v = NextGaussian();
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace keystone
