#ifndef KEYSTONE_COMMON_LOGGING_H_
#define KEYSTONE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace keystone {

/// Severity levels for the KS_LOG macro.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is emitted. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// One log statement. Emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace keystone

#define KS_LOG(level)                                   \
  ::keystone::internal::LogMessage(                     \
      ::keystone::LogLevel::k##level, __FILE__, __LINE__)

#endif  // KEYSTONE_COMMON_LOGGING_H_
