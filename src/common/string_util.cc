#include "src/common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace keystone {

std::vector<std::string> SplitString(std::string_view input,
                                     std::string_view delims) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || delims.find(input[i]) != std::string_view::npos) {
      if (i > start) pieces.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (auto& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string TrimWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return std::string(input.substr(begin, end - begin));
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

}  // namespace keystone
