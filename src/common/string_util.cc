#include "src/common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace keystone {

std::vector<std::string> SplitString(std::string_view input,
                                     std::string_view delims) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || delims.find(input[i]) != std::string_view::npos) {
      if (i > start) pieces.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (auto& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string TrimWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return std::string(input.substr(begin, end - begin));
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string ParamNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string EscapeToken(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '%' || c == ' ' || c == '\t' || c == '\n') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<std::string> UnescapeToken(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      out += in[i];
      continue;
    }
    // An escape needs two hex digits after the '%'; a trailing "%" or "%x"
    // means the input was truncated mid-token.
    if (i + 2 >= in.size()) return std::nullopt;
    const int hi = HexDigit(in[i + 1]);
    const int lo = HexDigit(in[i + 2]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

bool WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::string HumanSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

}  // namespace keystone
