#ifndef KEYSTONE_COMMON_STRING_UTIL_H_
#define KEYSTONE_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace keystone {

/// Splits `input` on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view input,
                                     std::string_view delims);

/// Lowercases ASCII characters in place semantics (returns a copy).
std::string ToLowerAscii(std::string_view input);

/// Strips leading and trailing ASCII whitespace.
std::string TrimWhitespace(std::string_view input);

/// Renders a byte count human-readably, e.g. "1.50 GB".
std::string HumanBytes(double bytes);

/// Renders seconds human-readably, e.g. "2.35 s" or "118 ms".
std::string HumanSeconds(double seconds);

/// Escapes `s` for embedding inside a double-quoted JSON string: quote,
/// backslash, and control characters below 0x20 (the named escapes \n, \t,
/// \r, \b, \f where they exist, \u00XX otherwise). The result round-trips
/// through any conforming JSON parser.
std::string JsonEscape(std::string_view s);

/// Renders a double as a JSON number. JSON has no NaN/Infinity literals,
/// so non-finite values degrade to 0 rather than corrupting the document.
std::string JsonNumber(double v);

/// Renders a double exactly (%.17g: the value round-trips), for operator
/// parameter signatures where two distinct values must never share a
/// rendering the way they can under %.6g.
std::string ParamNumber(double v);

/// Escapes a token for embedding in a whitespace-separated text format
/// (profile store, artifact-catalog manifest): '%', space, tab, and newline
/// become %XX hex escapes. Inverse of UnescapeToken.
std::string EscapeToken(std::string_view in);

/// Reverses EscapeToken. Returns nullopt when an escape is malformed
/// (truncated "%" / "%x" at end of input, or non-hex digits) so loaders of
/// corrupt or truncated files can fail gracefully instead of throwing.
std::optional<std::string> UnescapeToken(std::string_view in);

/// Writes `contents` to `path` atomically: the bytes land in a temp file
/// next to the target which is then renamed over it, so readers either see
/// the old complete file or the new complete file — never a torn write.
/// Returns false on any I/O failure (the temp file is cleaned up).
bool WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace keystone

#endif  // KEYSTONE_COMMON_STRING_UTIL_H_
