#ifndef KEYSTONE_COMMON_STRING_UTIL_H_
#define KEYSTONE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace keystone {

/// Splits `input` on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view input,
                                     std::string_view delims);

/// Lowercases ASCII characters in place semantics (returns a copy).
std::string ToLowerAscii(std::string_view input);

/// Strips leading and trailing ASCII whitespace.
std::string TrimWhitespace(std::string_view input);

/// Renders a byte count human-readably, e.g. "1.50 GB".
std::string HumanBytes(double bytes);

/// Renders seconds human-readably, e.g. "2.35 s" or "118 ms".
std::string HumanSeconds(double seconds);

/// Escapes `s` for embedding inside a double-quoted JSON string: quote,
/// backslash, and control characters below 0x20 (the named escapes \n, \t,
/// \r, \b, \f where they exist, \u00XX otherwise). The result round-trips
/// through any conforming JSON parser.
std::string JsonEscape(std::string_view s);

/// Renders a double as a JSON number. JSON has no NaN/Infinity literals,
/// so non-finite values degrade to 0 rather than corrupting the document.
std::string JsonNumber(double v);

}  // namespace keystone

#endif  // KEYSTONE_COMMON_STRING_UTIL_H_
