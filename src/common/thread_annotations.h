#ifndef KEYSTONE_COMMON_THREAD_ANNOTATIONS_H_
#define KEYSTONE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis annotation macros
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). When compiling
/// with clang the annotations turn `-Wthread-safety` into a static checker
/// for the locking discipline: members declare which mutex guards them
/// (GUARDED_BY), functions declare what they acquire/release or require
/// (ACQUIRE / RELEASE / REQUIRES / EXCLUDES), and the analysis rejects any
/// access that cannot prove the right capability is held. Other compilers
/// see empty macros, so the annotations are pure documentation there.
///
/// The annotated keystone::Mutex / keystone::MutexLock wrappers live in
/// src/common/mutex.h; every mutex-protected structure in the codebase uses
/// those (plain std::mutex is invisible to the analysis).

#if defined(__clang__) && defined(__has_attribute)
#define KS_THREAD_ANNOTATION_ATTRIBUTE(x) \
  (__has_attribute(x))
#else
#define KS_THREAD_ANNOTATION_ATTRIBUTE(x) 0
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(capability)
#define CAPABILITY(x) __attribute__((capability(x)))
#else
#define CAPABILITY(x)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#define SCOPED_CAPABILITY __attribute__((scoped_lockable))
#else
#define SCOPED_CAPABILITY
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by)
#define GUARDED_BY(x) __attribute__((guarded_by(x)))
#else
#define GUARDED_BY(x)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by)
#define PT_GUARDED_BY(x) __attribute__((pt_guarded_by(x)))
#else
#define PT_GUARDED_BY(x)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before)
#define ACQUIRED_BEFORE(...) __attribute__((acquired_before(__VA_ARGS__)))
#else
#define ACQUIRED_BEFORE(...)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after)
#define ACQUIRED_AFTER(...) __attribute__((acquired_after(__VA_ARGS__)))
#else
#define ACQUIRED_AFTER(...)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability)
#define REQUIRES(...) __attribute__((requires_capability(__VA_ARGS__)))
#else
#define REQUIRES(...)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability)
#define ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#else
#define ACQUIRE(...)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(release_capability)
#define RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#else
#define RELEASE(...)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability)
#define TRY_ACQUIRE(...) __attribute__((try_acquire_capability(__VA_ARGS__)))
#else
#define TRY_ACQUIRE(...)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded)
#define EXCLUDES(...) __attribute__((locks_excluded(__VA_ARGS__)))
#else
#define EXCLUDES(...)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability)
#define ASSERT_CAPABILITY(x) __attribute__((assert_capability(x)))
#else
#define ASSERT_CAPABILITY(x)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned)
#define RETURN_CAPABILITY(x) __attribute__((lock_returned(x)))
#else
#define RETURN_CAPABILITY(x)
#endif

#if KS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
#define NO_THREAD_SAFETY_ANALYSIS __attribute__((no_thread_safety_analysis))
#else
#define NO_THREAD_SAFETY_ANALYSIS
#endif

#endif  // KEYSTONE_COMMON_THREAD_ANNOTATIONS_H_
