#include "src/common/mutex.h"

#ifndef NDEBUG

#include <algorithm>
#include <vector>

#include "src/common/check.h"

namespace keystone {
namespace internal {

namespace {
/// Ranks of the ranked mutexes this thread currently holds, in acquisition
/// order. Unranked mutexes are exempt from order checking and never pushed.
thread_local std::vector<int> held_ranks;
}  // namespace

void CheckLockOrder(int rank) {
  if (rank == kLockRankUnranked) return;
  for (int held : held_ranks) {
    KS_CHECK_LT(held, rank)
        << "lock-order violation: acquiring a mutex of rank " << rank
        << " while holding rank " << held
        << " (locks must be acquired in ascending LockRank order)";
  }
}

void PushHeldRank(int rank) {
  if (rank == kLockRankUnranked) return;
  held_ranks.push_back(rank);
}

void PopHeldRank(int rank) {
  if (rank == kLockRankUnranked) return;
  const auto it = std::find(held_ranks.rbegin(), held_ranks.rend(), rank);
  KS_CHECK(it != held_ranks.rend())
      << "releasing a rank-" << rank << " mutex this thread does not hold";
  held_ranks.erase(std::next(it).base());
}

}  // namespace internal
}  // namespace keystone

#endif  // NDEBUG
