#ifndef KEYSTONE_COMMON_THREAD_POOL_H_
#define KEYSTONE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace keystone {

/// Fixed-size worker pool used to execute dataset partitions concurrently.
/// The pool executes real work; virtual cluster time is accounted separately
/// by the simulator (see src/sim). Tasks must not throw.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Runs fn(i) for i in [0, n), distributing across the pool, and blocks
  /// until all iterations finish.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

  /// Cumulative execution statistics (for observability scrapers; the pool
  /// itself stays dependency-free). `busy_seconds` is summed across
  /// workers, so it can exceed wall time.
  struct Stats {
    uint64_t tasks_submitted = 0;
    uint64_t tasks_executed = 0;
    double busy_seconds = 0.0;
  };
  Stats stats() const;

  /// Process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<int64_t> busy_nanos_{0};
  std::vector<std::thread> threads_;
};

}  // namespace keystone

#endif  // KEYSTONE_COMMON_THREAD_POOL_H_
