#ifndef KEYSTONE_COMMON_THREAD_POOL_H_
#define KEYSTONE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace keystone {

/// Fixed-size worker pool used to execute dataset partitions concurrently.
/// The pool executes real work; virtual cluster time is accounted separately
/// by the simulator (see src/sim). Tasks must not throw.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until all submitted tasks have completed.
  void Wait() EXCLUDES(mu_);

  /// Runs fn(i) for i in [0, n), distributing across the pool, and blocks
  /// until all iterations finish.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// Cumulative execution statistics (for observability scrapers; the pool
  /// itself stays dependency-free). `busy_seconds` is summed across
  /// workers, so it can exceed wall time.
  struct Stats {
    uint64_t tasks_submitted = 0;
    uint64_t tasks_executed = 0;
    double busy_seconds = 0.0;
  };
  Stats stats() const;

  /// Process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_{kLockRankThreadPool};
  CondVar task_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<int64_t> busy_nanos_{0};
  std::vector<std::thread> threads_;
};

}  // namespace keystone

#endif  // KEYSTONE_COMMON_THREAD_POOL_H_
