#ifndef KEYSTONE_COMMON_RNG_H_
#define KEYSTONE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace keystone {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. All synthetic workloads in this repository draw from Rng so
/// experiments are exactly reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextIndex(uint64_t n);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Fills `out` with standard normal samples.
  void FillGaussian(std::vector<double>* out);

  /// Derives an independent generator (useful for per-partition streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace keystone

#endif  // KEYSTONE_COMMON_RNG_H_
