#ifndef KEYSTONE_COMMON_MUTEX_H_
#define KEYSTONE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "src/common/thread_annotations.h"

namespace keystone {

/// Global lock-acquisition order (deadlock ranks). A thread may only
/// acquire a ranked Mutex whose rank is strictly greater than the rank of
/// every ranked mutex it already holds; debug builds abort on violations
/// (the lock-order assertion checker below). Unranked mutexes are exempt.
/// Gaps between values leave room for future locks.
enum LockRank : int {
  kLockRankUnranked = -1,
  kLockRankExecContext = 5,    // ExecContext actual-cost slot (leaf-like:
                               // never held across another acquisition)
  kLockRankLedger = 10,        // VirtualTimeLedger::mu_
  kLockRankProfileStore = 20,  // obs::ProfileStore::mu_
  kLockRankArtifactCatalog = 25,  // cache::ArtifactCatalog::mu_
  kLockRankTrace = 30,         // obs::TraceRecorder::mu_
  kLockRankDecisionLog = 32,   // obs::OptimizerDecisionLog::mu_
  kLockRankTimeline = 34,      // obs::ResourceTimeline::mu_
  kLockRankTelemetry = 36,     // obs::TelemetryHub::mu_
  kLockRankTelemetryWriter = 38,  // obs::TelemetryJsonlWriter::mu_
  kLockRankThreadPool = 40,    // ThreadPool::mu_
  kLockRankMetricsShard = 50,  // obs::MetricsRegistry stripes (leaf locks)
};

namespace internal {
#ifndef NDEBUG
/// Debug-only lock-order assertion checker: a thread-local stack of held
/// ranks. CheckLockOrder aborts when acquiring `rank` would violate the
/// global ascending-rank order declared above.
void CheckLockOrder(int rank);
void PushHeldRank(int rank);
void PopHeldRank(int rank);
#else
inline void CheckLockOrder(int /*rank*/) {}
inline void PushHeldRank(int /*rank*/) {}
inline void PopHeldRank(int /*rank*/) {}
#endif
}  // namespace internal

/// std::mutex wrapper carrying (a) the clang thread-safety `capability`
/// annotation, so `-Wthread-safety` statically checks the locking
/// discipline of everything guarded by it, and (b) an optional deadlock
/// rank enforced at runtime in debug builds.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    internal::CheckLockOrder(rank_);
    mu_.lock();
    internal::PushHeldRank(rank_);
  }

  void Unlock() RELEASE() {
    internal::PopHeldRank(rank_);
    mu_.unlock();
  }

  /// BasicLockable spellings so CondVar's condition_variable_any can
  /// release and reacquire the mutex while blocked.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }

  int rank() const { return rank_; }

 private:
  std::mutex mu_;
  int rank_ = kLockRankUnranked;
};

/// RAII scoped lock over Mutex (the annotated std::lock_guard analogue).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_->Unlock(); }

 private:
  Mutex* mu_;
};

/// Condition variable paired with Mutex. Wait atomically releases the
/// mutex while blocked and reacquires it before returning, so the caller's
/// capability is intact on both sides — which is exactly what REQUIRES
/// expresses to the static analysis. Callers loop on their condition
/// explicitly rather than passing predicate lambdas (a lambda body would
/// not inherit the caller's capability under the analysis).
class CondVar {
 public:
  void Wait(Mutex* mu) REQUIRES(mu) { cv_.wait(*mu); }
  /// Waits until notified or `seconds` elapse; either way the mutex is
  /// re-held on return. Lets pollers drain producer queues on a deadline
  /// so producers can enqueue without paying a futex wake per item.
  void WaitFor(Mutex* mu, double seconds) REQUIRES(mu) {
    cv_.wait_for(*mu, std::chrono::duration<double>(seconds));
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace keystone

#endif  // KEYSTONE_COMMON_MUTEX_H_
