#ifndef KEYSTONE_COMMON_TIMER_H_
#define KEYSTONE_COMMON_TIMER_H_

#include <chrono>

namespace keystone {

/// Wall-clock stopwatch for measuring real execution time (used by the
/// pipeline profiler and the benchmark harnesses).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace keystone

#endif  // KEYSTONE_COMMON_TIMER_H_
