#ifndef KEYSTONE_COMMON_CHECK_H_
#define KEYSTONE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace keystone {
namespace internal {

/// Prints a fatal error and aborts. Used by the KS_CHECK family below.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Stream-style message collector for KS_CHECK macros. The destructor of
/// CheckMessageVoidify swallows the stream so the macro can be used as a
/// statement with an optional trailing `<< "context"`.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace keystone

/// Aborts the program with a diagnostic if `condition` is false. Always
/// enabled (including release builds); use for invariants whose violation
/// means a programming error.
#define KS_CHECK(condition)                                              \
  if (condition) {                                                       \
  } else                                                                 \
    ::keystone::internal::CheckFailureStream(__FILE__, __LINE__,         \
                                             #condition)

#define KS_CHECK_EQ(a, b) KS_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define KS_CHECK_NE(a, b) KS_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define KS_CHECK_LT(a, b) KS_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define KS_CHECK_LE(a, b) KS_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define KS_CHECK_GT(a, b) KS_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define KS_CHECK_GE(a, b) KS_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define KS_DCHECK(condition) \
  if (true) {                \
  } else                     \
    ::keystone::internal::CheckFailureStream(__FILE__, __LINE__, #condition)
#else
#define KS_DCHECK(condition) KS_CHECK(condition)
#endif

#endif  // KEYSTONE_COMMON_CHECK_H_
