#ifndef KEYSTONE_CORE_EXECUTOR_H_
#define KEYSTONE_CORE_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/exec_context.h"
#include "src/core/pipeline.h"
#include "src/core/pipeline_graph.h"
#include "src/data/dist_dataset.h"
#include "src/optimizer/materialization.h"

namespace keystone {

/// Intermediate-data materialization policy (paper §4.3 / §5.4).
enum class CachePolicy {
  /// Nothing materialized (models excepted): every access recomputes.
  kNone,
  /// Cache only estimator results (the rule-based baseline).
  kRuleBased,
  /// Dynamic least-recently-used cache (the Spark default baseline).
  kLru,
  /// The paper's greedy Algorithm 1.
  kGreedy,
  /// Exhaustive optimal subset (small DAGs only; the ILP stand-in).
  kExhaustive,
};

const char* CachePolicyName(CachePolicy policy);

/// Which optimizations the executor applies — the "optimization levels" of
/// Figure 9 are presets over these flags.
struct OptimizationConfig {
  /// Choose physical implementations for Optimizable operators (§3).
  bool operator_selection = true;

  /// Merge common sub-expressions (§4.2).
  bool common_subexpression = true;

  /// Profile on samples and plan materialization (§4.1/§4.3).
  CachePolicy cache_policy = CachePolicy::kGreedy;

  /// Fraction of cluster memory available to the cache.
  double cache_fraction = 0.9;

  /// Override: absolute cache budget in bytes (<0 means use cache_fraction).
  double cache_budget_bytes = -1.0;

  /// Sample sizes for execution subsampling; the two points anchor the
  /// linear extrapolation of per-node time and size (§5.4).
  size_t profile_sample_small = 512;
  size_t profile_sample_large = 1024;

  /// Seed the optimizer from the context's ProfileStore: stored observed
  /// costs correct operator-selection estimates, and when the store holds a
  /// node profile for every train node at both sample sizes the sampling
  /// passes are skipped entirely in favour of the stored history
  /// (PipelineReport::profiles_from_store reports when that happened).
  bool reuse_stored_profiles = false;

  /// Statically validate plans (src/analysis): the logical graph as
  /// submitted, then the rewritten graph plus its materialization plan
  /// after optimization. Diagnostic counts land in the context's
  /// MetricsRegistry; any kError aborts the fit before execution starts.
  bool validate_plans = true;

  /// Unoptimized execution (None in Figure 9).
  static OptimizationConfig None();

  /// Whole-pipeline optimizations only (Pipe Only in Figure 9).
  static OptimizationConfig PipeOnly();

  /// Everything on (KeystoneML in Figure 9).
  static OptimizationConfig Full();
};

/// Per-node record of what the executor did and measured.
struct NodeExecutionRecord {
  int id = -1;
  std::string name;
  NodeKind kind = NodeKind::kSource;
  std::string chosen_physical;  // physical op, when node was Optimizable
  double compute_seconds = 0.0;  // per-pass virtual seconds, full scale
  double output_bytes = 0.0;
  int weight = 1;
  bool cached = false;
  DataStats output_stats;
};

/// Everything a benchmark needs to know about one Fit() run.
struct PipelineReport {
  std::vector<NodeExecutionRecord> nodes;
  std::vector<bool> cache_set;
  int cse_eliminated = 0;
  double optimize_seconds = 0.0;
  double load_seconds = 0.0;
  double featurize_seconds = 0.0;
  double solve_seconds = 0.0;
  /// Load + featurize + solve (training time under the cache policy).
  double total_train_seconds = 0.0;
  double cache_budget_bytes = 0.0;
  double cache_used_bytes = 0.0;
  /// True when the sampling passes were replaced by stored profiles
  /// (OptimizationConfig::reuse_stored_profiles and full store coverage).
  bool profiles_from_store = false;

  std::string ToString() const;
};

/// A fitted pipeline over the type-erased graph: estimators replaced by
/// their fitted models, optimizable operators by their chosen physical
/// implementations. Obtained from PipelineExecutor::Fit.
class FittedPipelineUntyped {
 public:
  FittedPipelineUntyped(std::shared_ptr<PipelineGraph> graph, int placeholder,
                        int sink,
                        std::map<int, std::shared_ptr<TransformerBase>> models,
                        std::map<int, std::shared_ptr<TransformerBase>>
                            chosen_transformers);

  /// Applies the runtime path to new data, charging the "Eval" ledger stage.
  AnyDataset Apply(const AnyDataset& input, ExecContext* ctx) const;

  /// The fitted model produced by the estimator node `id` (for inspection).
  std::shared_ptr<TransformerBase> ModelFor(int estimator_node) const;

  const PipelineGraph& graph() const { return *graph_; }
  int sink() const { return sink_; }

 private:
  std::shared_ptr<PipelineGraph> graph_;
  int placeholder_;
  int sink_;
  std::map<int, std::shared_ptr<TransformerBase>> models_;
  std::map<int, std::shared_ptr<TransformerBase>> chosen_transformers_;
};

/// Typed facade over FittedPipelineUntyped.
template <typename A, typename B>
class FittedPipeline {
 public:
  explicit FittedPipeline(std::shared_ptr<FittedPipelineUntyped> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<const DistDataset<B>> Apply(
      const std::shared_ptr<DistDataset<A>>& input, ExecContext* ctx) const {
    return DistDataset<B>::Cast(impl_->Apply(input, ctx));
  }

  /// Applies to one record (wraps it in a singleton dataset).
  B ApplyOne(const A& record, ExecContext* ctx) const {
    auto dataset = MakeDataset<A>({record}, 1);
    auto out = Apply(dataset, ctx);
    KS_CHECK_EQ(out->NumRecords(), 1u);
    return out->Collect()[0];
  }

  const FittedPipelineUntyped& impl() const { return *impl_; }
  const std::shared_ptr<FittedPipelineUntyped>& impl_ptr() const {
    return impl_;
  }

 private:
  std::shared_ptr<FittedPipelineUntyped> impl_;
};

/// Optimizes and trains pipelines: operator selection on sampled statistics,
/// common sub-expression elimination, profile-driven materialization, then
/// full execution with virtual-time accounting (paper Figure 1, stages 2-4).
class PipelineExecutor {
 public:
  PipelineExecutor(const ClusterResourceDescriptor& resources,
                   const OptimizationConfig& config);

  /// Optimizes and fits a typed pipeline.
  template <typename A, typename B>
  FittedPipeline<A, B> Fit(const Pipeline<A, B>& pipeline,
                           PipelineReport* report = nullptr) {
    return FittedPipeline<A, B>(
        FitGraph(*pipeline.graph(), pipeline.source(), pipeline.sink(),
                 report));
  }

  /// Type-erased core used by Fit.
  std::shared_ptr<FittedPipelineUntyped> FitGraph(const PipelineGraph& graph,
                                                  int placeholder, int sink,
                                                  PipelineReport* report);

  ExecContext* context() { return &context_; }
  const OptimizationConfig& config() const { return config_; }

 private:
  struct ProfileEntry {
    double seconds_small = 0.0;   // total modeled seconds at the small sample
    double seconds_large = 0.0;   // ... and at the large sample
    size_t records_small = 0;     // records actually flowing at each sample
    size_t records_large = 0;
    double bytes_per_record = 0.0;
    size_t full_records = 0;
  };

  // Runs the sampling pass at `sample_size`, choosing physical operators on
  // the way when `select_ops` is set. Fills per-node profile info and
  // records each node's profile into the context's ProfileStore.
  void ProfilePass(PipelineGraph* graph, const std::vector<bool>& train_mask,
                   size_t sample_size, bool select_ops, bool record_large,
                   std::map<int, int>* chosen_options,
                   std::vector<ProfileEntry>* profile,
                   PipelineReport* report);

  // Attempts to reconstruct the profile entries and operator choices from
  // the context's ProfileStore instead of executing the sampling passes.
  // Returns false (leaving outputs untouched) unless the store covers every
  // train node at both sample sizes.
  bool ReuseStoredProfiles(const PipelineGraph& graph,
                           const std::vector<bool>& train_mask,
                           std::map<int, int>* chosen_options,
                           std::vector<ProfileEntry>* profile);

  OptimizationConfig config_;
  ExecContext context_;
};

}  // namespace keystone

#endif  // KEYSTONE_CORE_EXECUTOR_H_
