#ifndef KEYSTONE_CORE_EXECUTOR_H_
#define KEYSTONE_CORE_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/exec_context.h"
#include "src/core/physical_plan.h"
#include "src/core/pipeline.h"
#include "src/core/pipeline_graph.h"
#include "src/data/dist_dataset.h"
#include "src/optimizer/materialization.h"

namespace keystone {

/// Per-node record of what the executor did and measured.
struct NodeExecutionRecord {
  int id = -1;
  std::string name;
  NodeKind kind = NodeKind::kSource;
  std::string chosen_physical;  // physical op, when node was Optimizable
  double compute_seconds = 0.0;  // per-pass virtual seconds, full scale
  double output_bytes = 0.0;
  int weight = 1;
  bool cached = false;
  DataStats output_stats;
};

/// Everything a benchmark needs to know about one Fit() run.
struct PipelineReport {
  std::vector<NodeExecutionRecord> nodes;
  std::vector<bool> cache_set;
  int cse_eliminated = 0;
  double optimize_seconds = 0.0;
  double load_seconds = 0.0;
  double featurize_seconds = 0.0;
  double solve_seconds = 0.0;
  /// Fault-recovery virtual seconds charged by the fault-injection layer
  /// during the training pass (zero without an enabled FaultPlan).
  double recovery_seconds = 0.0;
  /// Load + featurize + solve + recovery (training time under the cache
  /// policy, including any injected-fault overhead).
  double total_train_seconds = 0.0;
  double cache_budget_bytes = 0.0;
  double cache_used_bytes = 0.0;
  /// True when the sampling passes were replaced by stored profiles
  /// (OptimizationConfig::reuse_stored_profiles and full store coverage).
  bool profiles_from_store = false;

  std::string ToString() const;
};

/// A fitted pipeline: the compiled PhysicalPlan plus the models fitted for
/// its estimator nodes. Obtained from PipelineExecutor::Fit; Apply runs the
/// plan's runtime path through PlanRunner.
class FittedPipelineUntyped {
 public:
  FittedPipelineUntyped(
      std::shared_ptr<PhysicalPlan> plan,
      std::map<int, std::shared_ptr<TransformerBase>> models);

  /// Applies the runtime path to new data, charging the "Eval" ledger stage.
  AnyDataset Apply(const AnyDataset& input, ExecContext* ctx) const;

  /// The fitted model produced by the estimator node `id` (for inspection).
  std::shared_ptr<TransformerBase> ModelFor(int estimator_node) const;

  /// The compiled plan this pipeline executes (for inspection/dumping).
  const PhysicalPlan& plan() const { return *plan_; }
  /// Shared handle to the plan (ServablePipeline keeps it alive).
  const std::shared_ptr<PhysicalPlan>& plan_ptr() const { return plan_; }

  /// All fitted models, keyed by estimator node id.
  const std::map<int, std::shared_ptr<TransformerBase>>& models() const {
    return models_;
  }

  const PipelineGraph& graph() const { return *plan_->graph; }
  int sink() const { return plan_->sink; }

 private:
  std::shared_ptr<PhysicalPlan> plan_;
  std::map<int, std::shared_ptr<TransformerBase>> models_;
};

/// Typed facade over FittedPipelineUntyped.
template <typename A, typename B>
class FittedPipeline {
 public:
  explicit FittedPipeline(std::shared_ptr<FittedPipelineUntyped> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<const DistDataset<B>> Apply(
      const std::shared_ptr<DistDataset<A>>& input, ExecContext* ctx) const {
    return DistDataset<B>::Cast(impl_->Apply(input, ctx));
  }

  /// Applies to one record (wraps it in a singleton dataset).
  B ApplyOne(const A& record, ExecContext* ctx) const {
    auto dataset = MakeDataset<A>({record}, 1);
    auto out = Apply(dataset, ctx);
    KS_CHECK_EQ(out->NumRecords(), 1u);
    return out->Collect()[0];
  }

  const FittedPipelineUntyped& impl() const { return *impl_; }
  const std::shared_ptr<FittedPipelineUntyped>& impl_ptr() const {
    return impl_;
  }

 private:
  std::shared_ptr<FittedPipelineUntyped> impl_;
};

/// Optimizes and trains pipelines (paper Figure 1, stages 2-4) as an
/// explicit compile/execute split: Compile lowers the logical graph to a
/// PhysicalPlan and runs the optimizer pass pipeline over it (CSE, profile
/// + operator selection, materialization planning — re-validated after
/// every pass); FitGraph then executes the compiled plan through the single
/// PlanRunner and accounts virtual time under the cache policy.
class PipelineExecutor {
 public:
  PipelineExecutor(const ClusterResourceDescriptor& resources,
                   const OptimizationConfig& config);

  /// Optimizes and fits a typed pipeline.
  template <typename A, typename B>
  FittedPipeline<A, B> Fit(const Pipeline<A, B>& pipeline,
                           PipelineReport* report = nullptr) {
    return FittedPipeline<A, B>(
        FitGraph(*pipeline.graph(), pipeline.source(), pipeline.sink(),
                 report));
  }

  /// Compiles a logical graph to an optimized PhysicalPlan without
  /// executing the training pass: validates the submitted graph, lowers it
  /// (over a private copy), and runs the standard optimizer passes. Used by
  /// FitGraph and by the plan_dump / pipeline_lint tools.
  std::shared_ptr<PhysicalPlan> Compile(const PipelineGraph& graph,
                                        int placeholder, int sink);

  /// Type-erased core used by Fit: Compile + one PlanRunner fit pass +
  /// virtual-time accounting.
  std::shared_ptr<FittedPipelineUntyped> FitGraph(const PipelineGraph& graph,
                                                  int placeholder, int sink,
                                                  PipelineReport* report);

  ExecContext* context() { return &context_; }
  const OptimizationConfig& config() const { return config_; }

 private:
  OptimizationConfig config_;
  ExecContext context_;
};

}  // namespace keystone

#endif  // KEYSTONE_CORE_EXECUTOR_H_
