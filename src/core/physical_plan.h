#ifndef KEYSTONE_CORE_PHYSICAL_PLAN_H_
#define KEYSTONE_CORE_PHYSICAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/dataflow_lattice.h"
#include "src/core/pipeline_graph.h"
#include "src/data/data_stats.h"
#include "src/obs/decision_log.h"
#include "src/optimizer/materialization.h"
#include "src/sim/resources.h"

namespace keystone {

/// Intermediate-data materialization policy (paper §4.3 / §5.4).
enum class CachePolicy {
  /// Nothing materialized (models excepted): every access recomputes.
  kNone,
  /// Cache only estimator results (the rule-based baseline).
  kRuleBased,
  /// Dynamic least-recently-used cache (the Spark default baseline).
  kLru,
  /// The paper's greedy Algorithm 1.
  kGreedy,
  /// Exhaustive optimal subset (small DAGs only; the ILP stand-in).
  kExhaustive,
};

const char* CachePolicyName(CachePolicy policy);

/// Which optimizations the compiler applies — the "optimization levels" of
/// Figure 9 are presets over these flags.
struct OptimizationConfig {
  /// Choose physical implementations for Optimizable operators (§3).
  bool operator_selection = true;

  /// Merge common sub-expressions (§4.2).
  bool common_subexpression = true;

  /// Profile on samples and plan materialization (§4.1/§4.3).
  CachePolicy cache_policy = CachePolicy::kGreedy;

  /// Fraction of cluster memory available to the cache.
  double cache_fraction = 0.9;

  /// Override: absolute cache budget in bytes (<0 means use cache_fraction).
  double cache_budget_bytes = -1.0;

  /// Sample sizes for execution subsampling; the two points anchor the
  /// linear extrapolation of per-node time and size (§5.4).
  size_t profile_sample_small = 512;
  size_t profile_sample_large = 1024;

  /// Seed the optimizer from the context's ProfileStore: stored observed
  /// costs correct operator-selection estimates, and when the store holds a
  /// node profile for every train node at both sample sizes the sampling
  /// passes are skipped entirely in favour of the stored history
  /// (PipelineReport::profiles_from_store reports when that happened).
  bool reuse_stored_profiles = false;

  /// Statically validate plans (src/analysis): the logical graph as
  /// submitted, then the physical plan again after every optimizer pass.
  /// Diagnostic counts land in the context's MetricsRegistry; any kError
  /// aborts the fit before execution starts.
  bool validate_plans = true;

  /// Dispatch independent DAG branches concurrently during fit/apply
  /// execution (PlanRunner). Virtual-time charging is order-independent by
  /// construction, so results are bit-identical to serial execution; turn
  /// off to force strictly serial node order.
  bool parallel_branches = true;

  /// Expected per-node failure rate the materialization pass prices in:
  /// caching an output shields its downstream consumers from re-running the
  /// upstream chain when a task fails, so a non-zero rate shifts the greedy
  /// cache selection toward recompute-expensive subtrees (the Helix-style
  /// interaction). Zero (the default) reproduces the failure-free paper
  /// model exactly. Independent of any FaultPlan actually injected at run
  /// time: this is the optimizer's prior, not the simulation.
  double expected_fault_rate = 0.0;

  /// Fuse eligible producer→consumer chains into fused regions that the
  /// runner streams chunk-at-a-time without materializing intermediates
  /// (the SystemML-style operator-fusion pass). Results are byte-identical
  /// with or without fusion; the flag trades peak intermediate memory
  /// against chunk-loop overhead.
  bool operator_fusion = true;

  /// Reuse materialized intermediates from the context's ArtifactCatalog
  /// across runs (the Helix-style cross-run reuse pass). A no-op while the
  /// ExecContext has no catalog attached; with one attached, the ReusePass
  /// rewrites fingerprint-matching subgraphs into catalog reads and prunes
  /// the upstream chains they replace.
  bool cross_run_reuse = true;

  /// Unoptimized execution (None in Figure 9).
  static OptimizationConfig None();

  /// Whole-pipeline optimizations only (Pipe Only in Figure 9).
  static OptimizationConfig PipeOnly();

  /// Everything on (KeystoneML in Figure 9).
  static OptimizationConfig Full();
};

/// Execution modes a PhysicalPlan can be run in: the two subsampling passes
/// of §4.1, the full-scale training pass, and fitted-pipeline application.
enum class ExecMode {
  kProfileSmall,
  kProfileLarge,
  kFit,
  kApply,
};

const char* ExecModeName(ExecMode mode);

/// Per-node profile measured by the sampling passes (or reconstructed from
/// the ProfileStore): modeled seconds and record counts at both sample
/// sizes, anchoring the full-scale linear extrapolation (§5.4).
struct ProfileEntry {
  double seconds_small = 0.0;   // total modeled seconds at the small sample
  double seconds_large = 0.0;   // ... and at the large sample
  size_t records_small = 0;     // records actually flowing at each sample
  size_t records_large = 0;
  double bytes_per_record = 0.0;
  size_t full_records = 0;
};

/// One node of the physical plan: the logical graph node plus everything
/// the optimizer decided or derived for it — the resolved physical
/// operator, execution masks, structural fingerprint, profile, cache-set
/// membership, and full-scale cost estimates.
struct PlannedNode {
  int id = -1;
  NodeKind kind = NodeKind::kSource;
  std::string name;
  std::vector<int> inputs;
  int model_input = -1;

  /// Executes during the profile and fit passes (live and not downstream of
  /// the runtime placeholder).
  bool train = false;
  /// Executes during fitted-pipeline Apply (downstream of the placeholder
  /// and feeding the sink).
  bool runtime = false;

  /// The node's operator is Optimizable (has multiple physical options).
  bool optimizable = false;
  /// Selected physical option (-1 = not yet selected; the default option 0
  /// is resolved below either way).
  int chosen_option = -1;
  /// Resolved physical operator the runner executes. For optimizable nodes
  /// this is the chosen (or default) option; otherwise the logical operator
  /// itself. Null for source/placeholder/apply-model nodes.
  std::shared_ptr<TransformerBase> physical_transformer;
  std::shared_ptr<EstimatorBase> physical_estimator;
  /// Resolved physical operator name; non-empty iff the node is
  /// optimizable (matches NodeExecutionRecord::chosen_physical).
  std::string physical_name;
  /// Passes over inputs per execution (Iterative weight of the resolved op).
  int weight = 1;

  /// Stable structural identity: operator kind + logical signature + input
  /// cardinality. ProfileStore entries are keyed by this, so renaming a
  /// node neither misses nor mismatches stored profiles.
  std::string fingerprint;
  /// Lineage-closed identity: the node fingerprint extended with a hash
  /// over every transitive input's lineage fingerprint, so two nodes match
  /// only when their whole upstream subgraphs match. ArtifactCatalog
  /// entries are keyed by this (cross-run reuse must not conflate nodes
  /// whose local signatures agree but whose inputs differ).
  std::string lineage_fingerprint;
  /// Full-scale records flowing into the node (static dataflow estimate).
  size_t input_records = 0;
  /// Full-scale records this node's output holds (0 for estimators, whose
  /// output is a model).
  size_t full_records = 0;

  /// Chosen for materialization by the cache-selection pass.
  bool cached = false;
  /// Extrapolated full-scale compute seconds / output bytes (filled by the
  /// materialization pass whenever profiling ran).
  double est_seconds = 0.0;
  double est_output_bytes = 0.0;
  ProfileEntry profile;

  /// Static dataflow facts (filled by analysis::AnnotatePlan after the
  /// optimizer passes run; dataflow_annotated gates their validity).
  bool dataflow_annotated = false;
  /// Inferred per-record output shape. For estimator nodes this is the
  /// record shape the *fitted model* will produce.
  ValueShape inferred_shape;
  /// Inferred record-count interval of the node's output.
  CardinalityInterval cardinality;
  /// Effect class (estimator nodes are train-only by construction).
  EffectClass effect = EffectClass::kPure;
  /// Statically derived output bytes per record; < 0 when unknown.
  double inferred_bytes_per_record = -1.0;

  /// Index into PhysicalPlan::fused_regions when the FusionPass placed this
  /// node inside a fused region; -1 when unfused.
  int fused_region = -1;

  /// Cross-run reuse markers (set by the ReusePass when the context has an
  /// ArtifactCatalog). `reused`: the runner loads this node's output from
  /// the catalog instead of computing it. `reuse_pruned`: every train
  /// demand for this node is satisfied through reused descendants, so the
  /// fit pass skips it entirely. The train/runtime masks are untouched —
  /// serving still executes the node.
  bool reused = false;
  bool reuse_pruned = false;
  /// Catalog entry metadata backing a `reused` node (for validation and
  /// the decision log): the matched key, its generation, modeled load
  /// seconds, payload bytes, and tier ("memory"/"disk") at decision time.
  std::string reuse_fingerprint;
  uint64_t reuse_generation = 0;
  double reuse_load_seconds = 0.0;
  double reuse_bytes = 0.0;
  std::string reuse_tier;
};

/// A producer→consumer chain the FusionPass fused: the runner streams
/// chunks through the member operators back-to-back, materializing only the
/// tail's output. Members are consecutive pipeline stages (nodes[i+1]
/// consumes exactly nodes[i]); interior outputs never exist as datasets.
struct FusedRegion {
  int id = -1;
  /// Member node ids, producer first. Size >= 2; nodes.front() is the
  /// region head (reads the external input), nodes.back() the tail (the
  /// only member whose output is materialized).
  std::vector<int> nodes;
  /// True when the region lies on the apply-masked (serving) path.
  bool runtime = false;
  /// Joined member fingerprints: the region's stable structural identity.
  std::string fingerprint;
  /// Cost-model estimate of the avoided intermediate traffic: virtual
  /// seconds and bytes of materialization the fusion saves per execution.
  double est_saved_seconds = 0.0;
  double est_saved_bytes = 0.0;
};

/// The explicit physical plan: a lowered copy of the logical PipelineGraph
/// annotated with every optimizer decision. Produced by LowerToPhysical,
/// rewritten by the pass manager (src/optimizer/pass_manager.h), executed
/// by PlanRunner (src/core/plan_runner.h), and printed by tools/plan_dump.
struct PhysicalPlan {
  std::shared_ptr<PipelineGraph> graph;
  int placeholder = -1;
  int sink = -1;
  OptimizationConfig config;
  ClusterResourceDescriptor resources;

  /// One entry per graph node, indexed by node id.
  std::vector<PlannedNode> nodes;
  /// Fused regions chosen by the FusionPass (empty until it runs; member
  /// nodes carry their region index in PlannedNode::fused_region).
  std::vector<FusedRegion> fused_regions;
  /// Materialization set chosen by the cache-selection pass.
  std::vector<bool> cache_set;
  /// Train nodes demanded directly (no live train successor).
  std::vector<int> terminals;

  int cse_eliminated = 0;
  /// The CSE pass rewrote the graph (dead duplicates may remain).
  bool cse_applied = false;
  /// The materialization pass built a planning problem + cache set.
  bool materialized = false;
  /// Sampling passes were replaced by stored profiles.
  bool profiles_from_store = false;
  double cache_budget_bytes = 0.0;
  /// Virtual seconds charged to optimization (the sampling passes).
  double optimize_seconds = 0.0;
  /// The profile-extrapolated problem the cache set was selected against
  /// (valid when `materialized`; its graph pointer aliases `graph`).
  MaterializationProblem planning_problem;

  /// Structured provenance of every optimizer decision made while compiling
  /// this plan (LowerToPhysical creates it; the passes append; RelowerPlan
  /// preserves it). Shared so reports can outlive the plan.
  std::shared_ptr<obs::OptimizerDecisionLog> decision_log;

  /// Sets the chosen physical option for node `id` and every node sharing
  /// the same Optimizable operator instance (train-time copies and their
  /// runtime counterparts share instances), re-resolving the physical
  /// operator, name, and weight.
  void SetChosenOption(int id, int option);

  int NumTrainNodes() const;
  int NumRuntimeNodes() const;

  /// Human-readable plan listing (plan_dump default output). With
  /// `runtime_only` the listing is the servable view: only apply-masked
  /// (runtime) nodes, no train terminals, no compile-time decision log —
  /// exactly what ServablePipeline executes per request.
  std::string ToString(bool runtime_only = false) const;
  /// Machine-readable plan listing (plan_dump --json); `runtime_only` as
  /// for ToString.
  std::string ToJson(bool runtime_only = false) const;
};

/// Lowers a logical graph to the initial physical plan: resolves default
/// physical operators, computes execution masks, terminals, structural
/// fingerprints, and the static full-scale cardinality flow. The graph is
/// shared, not copied — callers owning a private copy pass it in.
PhysicalPlan LowerToPhysical(std::shared_ptr<PipelineGraph> graph,
                             int placeholder, int sink,
                             const OptimizationConfig& config,
                             const ClusterResourceDescriptor& resources);

/// Recomputes the node table, masks, terminals, fingerprints, and
/// cardinalities after a pass mutated the underlying graph (e.g. CSE).
/// Chosen options survive (they live on shared operator instances and are
/// re-applied by id where still present).
void RelowerPlan(PhysicalPlan* plan);

/// Per-node mask: true when the node's transitive train ancestry (data
/// inputs plus fitted-model dependencies) consists only of sources,
/// transformers, and gathers — the kinds whose lineage fingerprint fully
/// determines their output. Anything downstream of an estimator is
/// excluded: an estimator's structural name need not encode its full
/// configuration, so two differently-configured fits could collide on one
/// lineage fingerprint. Cross-run reuse (ReusePass, catalog publication)
/// only touches nodes this mask admits.
std::vector<bool> PureLineageMask(const PhysicalPlan& plan);

}  // namespace keystone

#endif  // KEYSTONE_CORE_PHYSICAL_PLAN_H_
