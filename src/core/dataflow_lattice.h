#ifndef KEYSTONE_CORE_DATAFLOW_LATTICE_H_
#define KEYSTONE_CORE_DATAFLOW_LATTICE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace keystone {

/// The type/shape abstract domain for the static dataflow analysis
/// (src/analysis/shape_inference.*). A ValueShape describes the per-record
/// value flowing along a plan edge: its kind plus up to three dimension
/// slots whose meaning depends on the kind. kTop means "unknown / any",
/// kBottom means "conflicting requirements" — the lattice is
///
///            kTop
///   scalar text tokens labels[k] vector[d] sparse[d] matrix[r x c] ...
///            kBottom
///
/// with unknown dimensions (kUnknownDim) above known ones within a kind.
enum class ShapeKind {
  kTop = 0,      // unknown: no information yet
  kScalar,       // a single number (double/int record)
  kText,         // a raw string record
  kTokens,       // a variable-length token sequence
  kLabels,       // a class id drawn from k classes; d0 = k
  kVector,       // dense vector; d0 = dim
  kSparseVector, // sparse vector; d0 = feature-space dim
  kMatrix,       // per-record descriptor matrix; d0 = rows, d1 = cols
  kVectorSeq,    // gathered branch outputs; d0 = count, d1 = total dim
  kImage,        // d0 = width, d1 = height, d2 = channels
  kBottom,       // conflict: incompatible shapes met on one edge
};

inline const char* ShapeKindName(ShapeKind kind) {
  switch (kind) {
    case ShapeKind::kTop: return "top";
    case ShapeKind::kScalar: return "scalar";
    case ShapeKind::kText: return "text";
    case ShapeKind::kTokens: return "tokens";
    case ShapeKind::kLabels: return "labels";
    case ShapeKind::kVector: return "vector";
    case ShapeKind::kSparseVector: return "sparse";
    case ShapeKind::kMatrix: return "matrix";
    case ShapeKind::kVectorSeq: return "vecseq";
    case ShapeKind::kImage: return "image";
    case ShapeKind::kBottom: return "bottom";
  }
  return "top";
}

struct ValueShape {
  static constexpr int64_t kUnknownDim = -1;

  ShapeKind kind = ShapeKind::kTop;
  int64_t d0 = kUnknownDim;
  int64_t d1 = kUnknownDim;
  int64_t d2 = kUnknownDim;

  static ValueShape Top() { return ValueShape{}; }
  static ValueShape Bottom() { return ValueShape{ShapeKind::kBottom}; }
  static ValueShape Scalar() { return ValueShape{ShapeKind::kScalar}; }
  static ValueShape Text() { return ValueShape{ShapeKind::kText}; }
  static ValueShape Tokens() { return ValueShape{ShapeKind::kTokens}; }
  static ValueShape Labels(int64_t k = kUnknownDim) {
    return ValueShape{ShapeKind::kLabels, k};
  }
  static ValueShape Vector(int64_t dim = kUnknownDim) {
    return ValueShape{ShapeKind::kVector, dim};
  }
  static ValueShape Sparse(int64_t dim = kUnknownDim) {
    return ValueShape{ShapeKind::kSparseVector, dim};
  }
  static ValueShape MatrixOf(int64_t rows = kUnknownDim,
                             int64_t cols = kUnknownDim) {
    return ValueShape{ShapeKind::kMatrix, rows, cols};
  }
  static ValueShape VectorSeq(int64_t count = kUnknownDim,
                              int64_t total_dim = kUnknownDim) {
    return ValueShape{ShapeKind::kVectorSeq, count, total_dim};
  }
  static ValueShape ImageOf(int64_t width = kUnknownDim,
                            int64_t height = kUnknownDim,
                            int64_t channels = kUnknownDim) {
    return ValueShape{ShapeKind::kImage, width, height, channels};
  }

  bool IsTop() const { return kind == ShapeKind::kTop; }
  bool IsBottom() const { return kind == ShapeKind::kBottom; }

  /// True when the kind is known and every dimension that determines the
  /// per-record width is known. Matrix rows and image width/height may vary
  /// record to record, so only descriptor width / channel count gate
  /// concreteness for those kinds.
  bool IsConcrete() const {
    switch (kind) {
      case ShapeKind::kTop:
      case ShapeKind::kBottom:
        return false;
      case ShapeKind::kScalar:
      case ShapeKind::kText:
      case ShapeKind::kTokens:
        return true;
      case ShapeKind::kLabels:
      case ShapeKind::kVector:
      case ShapeKind::kSparseVector:
        return d0 != kUnknownDim;
      case ShapeKind::kMatrix:
        return d1 != kUnknownDim;
      case ShapeKind::kVectorSeq:
        return d0 != kUnknownDim && d1 != kUnknownDim;
      case ShapeKind::kImage:
        return d2 != kUnknownDim;
    }
    return false;
  }

  /// Statically derived serialized size of one record in bytes, or a
  /// negative value when the shape does not determine it (text, tokens,
  /// sparse vectors, matrices with unknown row counts).
  double BytesPerRecord() const {
    constexpr double kWord = 8.0;
    switch (kind) {
      case ShapeKind::kScalar:
      case ShapeKind::kLabels:
        return kWord;
      case ShapeKind::kVector:
        return d0 == kUnknownDim ? -1.0 : kWord * static_cast<double>(d0);
      case ShapeKind::kVectorSeq:
        return d1 == kUnknownDim ? -1.0 : kWord * static_cast<double>(d1);
      case ShapeKind::kMatrix:
        return (d0 == kUnknownDim || d1 == kUnknownDim)
                   ? -1.0
                   : kWord * static_cast<double>(d0) *
                         static_cast<double>(d1);
      case ShapeKind::kImage:
        return (d0 == kUnknownDim || d1 == kUnknownDim || d2 == kUnknownDim)
                   ? -1.0
                   : kWord * static_cast<double>(d0) *
                         static_cast<double>(d1) * static_cast<double>(d2);
      default:
        return -1.0;
    }
  }

  /// Greatest lower bound: refines two constraints on the same edge.
  /// Top is the identity, Bottom absorbs, different kinds conflict, and
  /// within a kind each dimension unifies (known beats unknown; two
  /// different known dimensions are a conflict).
  ValueShape Meet(const ValueShape& other) const {
    if (IsTop()) return other;
    if (other.IsTop()) return *this;
    if (IsBottom() || other.IsBottom()) return Bottom();
    if (kind != other.kind) return Bottom();
    ValueShape out = *this;
    if (!MeetDim(d0, other.d0, &out.d0) || !MeetDim(d1, other.d1, &out.d1) ||
        !MeetDim(d2, other.d2, &out.d2)) {
      return Bottom();
    }
    return out;
  }

  /// Least upper bound: generalizes shapes arriving from different paths.
  ValueShape Join(const ValueShape& other) const {
    if (IsBottom()) return other;
    if (other.IsBottom()) return *this;
    if (IsTop() || other.IsTop()) return Top();
    if (kind != other.kind) return Top();
    ValueShape out = *this;
    out.d0 = d0 == other.d0 ? d0 : kUnknownDim;
    out.d1 = d1 == other.d1 ? d1 : kUnknownDim;
    out.d2 = d2 == other.d2 ? d2 : kUnknownDim;
    return out;
  }

  bool operator==(const ValueShape& other) const {
    return kind == other.kind && d0 == other.d0 && d1 == other.d1 &&
           d2 == other.d2;
  }
  bool operator!=(const ValueShape& other) const { return !(*this == other); }

  /// Compact human-readable form: "vector[256]", "matrix[?x64]",
  /// "image[32x32x3]", "top", "bottom".
  std::string ToString() const {
    const std::string name = ShapeKindName(kind);
    switch (kind) {
      case ShapeKind::kLabels:
      case ShapeKind::kVector:
      case ShapeKind::kSparseVector:
        return name + "[" + DimStr(d0) + "]";
      case ShapeKind::kMatrix:
      case ShapeKind::kVectorSeq:
        return name + "[" + DimStr(d0) + "x" + DimStr(d1) + "]";
      case ShapeKind::kImage:
        return name + "[" + DimStr(d0) + "x" + DimStr(d1) + "x" +
               DimStr(d2) + "]";
      default:
        return name;
    }
  }

 private:
  static bool MeetDim(int64_t a, int64_t b, int64_t* out) {
    if (a == kUnknownDim) {
      *out = b;
      return true;
    }
    if (b == kUnknownDim || a == b) {
      *out = a;
      return true;
    }
    return false;
  }

  static std::string DimStr(int64_t d) {
    return d == kUnknownDim ? "?" : std::to_string(d);
  }
};

/// Record-count abstraction: a closed interval [lo, hi] with hi = kUnbounded
/// meaning "no upper bound". Empty intervals (hi < lo) witness cardinality
/// contradictions — e.g. a supervised solver whose feature and label inputs
/// carry different exact counts.
struct CardinalityInterval {
  static constexpr int64_t kUnbounded = -1;

  int64_t lo = 0;
  int64_t hi = kUnbounded;

  static CardinalityInterval Any() { return CardinalityInterval{}; }
  static CardinalityInterval Exact(int64_t n) {
    return CardinalityInterval{n, n};
  }

  bool IsEmpty() const { return hi != kUnbounded && hi < lo; }
  bool IsExact() const { return hi != kUnbounded && hi == lo; }

  CardinalityInterval Intersect(const CardinalityInterval& other) const {
    CardinalityInterval out;
    out.lo = lo > other.lo ? lo : other.lo;
    if (hi == kUnbounded) {
      out.hi = other.hi;
    } else if (other.hi == kUnbounded) {
      out.hi = hi;
    } else {
      out.hi = hi < other.hi ? hi : other.hi;
    }
    return out;
  }

  bool operator==(const CardinalityInterval& other) const {
    return lo == other.lo && hi == other.hi;
  }

  std::string ToString() const {
    if (IsEmpty()) return "[empty]";
    std::string out = "[";
    out += std::to_string(lo);
    out += ',';
    out += hi == kUnbounded ? "inf)" : std::to_string(hi) + "]";
    return out;
  }
};

/// Effect class of a plan node, ordered from most to least freely movable.
/// Pure and seeded-deterministic transformers are fusion and
/// branch-parallelism candidates; stateful nodes must not run on
/// branch-parallel or serving paths; train-only nodes never run at serving
/// time at all (estimators, sampling transformers).
enum class EffectClass {
  kPure = 0,
  kSeededDeterministic,
  kStateful,
  kTrainOnly,
};

inline const char* EffectClassName(EffectClass effect) {
  switch (effect) {
    case EffectClass::kPure: return "pure";
    case EffectClass::kSeededDeterministic: return "seeded";
    case EffectClass::kStateful: return "stateful";
    case EffectClass::kTrainOnly: return "train-only";
  }
  return "pure";
}

/// Compile-time record shape for a C++ element type; the typed
/// Transformer/Estimator templates use this as their default transfer
/// function so every operator gets kind-level checking for free.
/// Specializations for linalg types live in src/data/element_traits.h and
/// for Image in src/ops/image.h, next to the types themselves.
template <typename T>
struct StaticShapeOf {
  static ValueShape Get() { return ValueShape::Top(); }
};

template <>
struct StaticShapeOf<double> {
  static ValueShape Get() { return ValueShape::Scalar(); }
};

template <>
struct StaticShapeOf<int> {
  static ValueShape Get() { return ValueShape::Scalar(); }
};

template <>
struct StaticShapeOf<std::string> {
  static ValueShape Get() { return ValueShape::Text(); }
};

template <>
struct StaticShapeOf<std::vector<std::string>> {
  static ValueShape Get() { return ValueShape::Tokens(); }
};

template <>
struct StaticShapeOf<std::vector<double>> {
  static ValueShape Get() { return ValueShape::Vector(); }
};

template <>
struct StaticShapeOf<std::vector<int>> {
  static ValueShape Get() { return ValueShape::Labels(); }
};

template <>
struct StaticShapeOf<std::vector<std::vector<double>>> {
  static ValueShape Get() { return ValueShape::VectorSeq(); }
};

template <typename A, typename B>
struct StaticShapeOf<std::pair<A, B>> {
  static ValueShape Get() { return StaticShapeOf<A>::Get(); }
};

}  // namespace keystone

#endif  // KEYSTONE_CORE_DATAFLOW_LATTICE_H_
