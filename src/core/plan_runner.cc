#include "src/core/plan_runner.h"

#include <algorithm>
#include <deque>
#include <thread>
#include <utility>

#include "src/analysis/plan_validator.h"
#include "src/cache/artifact_catalog.h"
#include "src/common/check.h"
#include "src/common/mutex.h"
#include "src/common/timer.h"
#include "src/obs/metrics.h"
#include "src/obs/profile_store.h"
#include "src/sim/faults/fault_plan.h"

namespace keystone {

namespace {

/// Fails fast on an insane fault-injection config (rates outside [0, 1],
/// negative backoff, ...) before any node executes under it. Gated on the
/// plan's validate_plans flag, like every other static check.
void ValidateFaultPlan(const PhysicalPlan& plan, ExecContext* ctx) {
  if (ctx->fault_plan() == nullptr || !plan.config.validate_plans) return;
  const analysis::ValidationReport report =
      analysis::ValidateFaultConfig(ctx->fault_plan()->config());
  analysis::RecordDiagnostics(report, ctx->metrics());
  KS_CHECK(report.ok()) << "fault-injection config failed validation:\n"
                        << report.ToString();
}

/// Bit-exact replay of DistDataset::ComputeStats over per-record stat
/// triples buffered in partition-major record order — the same left-fold
/// over the same doubles the materialized intermediate would have produced,
/// so fused execution reports identical statistics without the dataset.
DataStats ReplayStats(const std::vector<std::vector<ElementStat>>& parts,
                      double scale) {
  DataStats stats;
  size_t real_records = 0;
  for (const auto& part : parts) real_records += part.size();
  stats.num_records = real_records;
  if (real_records == 0) return stats;
  double bytes = 0.0;
  double nnz = 0.0;
  size_t dim = 0;
  for (const auto& part : parts) {
    for (const ElementStat& s : part) {
      bytes += s.bytes;
      nnz += s.nnz;
      dim = std::max(dim, s.dim);
    }
  }
  stats.dim = dim;
  stats.bytes_per_record = bytes / real_records;
  stats.avg_nnz = nnz / real_records;
  stats.sparsity = dim > 0 ? stats.avg_nnz / static_cast<double>(dim) : 1.0;
  stats.num_records = static_cast<size_t>(real_records * scale);
  return stats;
}

obs::TracePhase PhaseFor(ExecMode mode) {
  switch (mode) {
    case ExecMode::kProfileSmall:
      return obs::TracePhase::kProfileSmall;
    case ExecMode::kProfileLarge:
      return obs::TracePhase::kProfileLarge;
    case ExecMode::kFit:
      return obs::TracePhase::kTrain;
    case ExecMode::kApply:
      return obs::TracePhase::kEval;
  }
  return obs::TracePhase::kTrain;
}

}  // namespace

PlanRunner::PlanRunner(PhysicalPlan* plan, ExecContext* ctx)
    : plan_(plan), ctx_(ctx) {}

void PlanRunner::ExecuteNode(int id) {
  // Region members already executed by a fused streaming pass.
  if (outcomes_[id].executed) return;
  const PlannedNode& pn = plan_->nodes[id];
  if (pn.fused_region >= 0 && !InProfileMode()) {
    const FusedRegion& region = plan_->fused_regions[pn.fused_region];
    // Only the head dispatches the region; on fallback every member runs
    // through the normal whole-dataset body below.
    if (region.nodes.front() == id && TryExecuteFusedRegion(region)) return;
  }
  const GraphNode& node = plan_->graph->node(id);
  const auto& resources = ctx_->resources();
  const bool profile = InProfileMode();
  NodeOutcome& out = outcomes_[id];
  out.executed = true;
  obs::TraceSpan& span = out.span;
  span.node_id = id;
  span.name = pn.name;
  span.kind = NodeKindName(pn.kind);
  span.phase = PhaseFor(mode_);

  // A node the ReusePass rewrote into a catalog read: fetch the stored
  // payload instead of computing. Fit mode only — profile passes run before
  // the ReusePass marks anything, and the runtime path never reuses. The
  // payload carries its own virtual scale (preserved by the codec), so no
  // rescaling happens here. Fetch is const on the catalog (no promotion, no
  // access-order update), keeping parallel-branch execution race-free; the
  // entry's Touch lands in the id-ordered flush.
  if (mode_ == ExecMode::kFit && pn.reused) {
    cache::ArtifactCatalog* catalog = ctx_->artifact_catalog();
    KS_CHECK(catalog != nullptr)
        << "node " << pn.name << " marked reused without a catalog";
    Timer timer;
    outputs_[id] = catalog->Fetch(pn.reuse_fingerprint);
    span.wall_seconds = timer.ElapsedSeconds();
    KS_CHECK(outputs_[id] != nullptr)
        << "catalog entry vanished for node " << pn.name << " ("
        << pn.reuse_fingerprint << ")";
    out.out_stats = outputs_[id]->ComputeStats();
    const double per_node_bytes =
        out.out_stats.TotalBytes() / std::max(1, resources.num_nodes);
    span.physical = "catalog:" + pn.reuse_tier;
    if (pn.reuse_tier == "memory") {
      // Priced as a cluster-parallel memory scan of the stored bytes.
      out.charge_cost = CostProfile(0.0, per_node_bytes, 0.0);
      out.seconds = resources.SecondsFor(out.charge_cost);
    } else {
      // Disk reads are charged directly in disk seconds, like sources
      // (no CostProfile axis models disk bandwidth).
      out.seconds = resources.DiskReadSeconds(per_node_bytes);
    }
    span.predicted.bytes = per_node_bytes;
    span.partitions = outputs_[id]->NumPartitions();
    span.records_in = out.out_stats.num_records;
    out.sample_records = out.out_stats.num_records;
    return;
  }

  switch (pn.kind) {
    case NodeKind::kSource: {
      KS_CHECK(mode_ != ExecMode::kApply)
          << "unexpected " << NodeKindName(pn.kind) << " on the runtime path";
      if (profile) {
        Timer timer;
        outputs_[id] = node.bound_data->SamplePrefix(SampleSize());
        span.wall_seconds = timer.ElapsedSeconds();
      } else {
        outputs_[id] = node.bound_data;
      }
      out.out_stats = outputs_[id]->ComputeStats();
      out.seconds = resources.DiskReadSeconds(
          out.out_stats.TotalBytes() / std::max(1, resources.num_nodes));
      span.predicted.bytes =
          out.out_stats.TotalBytes() / std::max(1, resources.num_nodes);
      span.partitions = outputs_[id]->NumPartitions();
      span.records_in = out.out_stats.num_records;
      out.sample_records = out.out_stats.num_records;
      break;
    }
    case NodeKind::kTransformer:
    case NodeKind::kGather: {
      std::vector<AnyDataset> inputs;
      for (int dep : pn.inputs) {
        KS_CHECK(outputs_[dep] != nullptr)
            << "runtime node " << pn.name << " depends on train-only data";
        inputs.push_back(outputs_[dep]);
      }
      const double scale = inputs[0]->virtual_scale();
      const DataStats in_stats = inputs[0]->ComputeStats();
      if (profile && select_ != nullptr && pn.optimizable &&
          pn.chosen_option < 0) {
        select_(id, in_stats);  // may rewrite pn via SetChosenOption
      }
      const std::shared_ptr<TransformerBase> op = pn.physical_transformer;
      out.op_name = op->Name();
      span.physical = mode_ == ExecMode::kApply ? out.op_name
                                                : pn.physical_name;
      span.predicted = op->EstimateCost(in_stats, resources.num_nodes);
      ctx_->BeginOperatorScope();
      Timer timer;
      outputs_[id] = op->ApplyAny(inputs, ctx_);
      span.wall_seconds = timer.ElapsedSeconds();
      if (!profile) outputs_[id]->set_virtual_scale(scale);
      const auto actual = ctx_->TakeActualCost();
      span.observed = actual;
      out.in_stats = in_stats;
      if (profile) {
        span.used_observed = actual.has_value();
        out.record_observation = true;
        CostProfile cost = actual.has_value() ? *actual : span.predicted;
        cost.rounds = 0;  // Sample jobs skip full-cluster barriers.
        out.charge_cost = cost;  // also the timeline's per-resource split
        out.seconds = resources.SecondsFor(cost);
      } else {
        // With a virtual scale, kernel-reported costs describe the real
        // (small) run; use the cost model at the scaled statistics instead.
        span.used_observed = actual.has_value() && scale <= 1.0;
        out.record_observation = scale <= 1.0;
        out.charge_cost = span.used_observed ? *actual : span.predicted;
        out.seconds = resources.SecondsFor(out.charge_cost);
      }
      out.out_stats = outputs_[id]->ComputeStats();
      span.partitions = outputs_[id]->NumPartitions();
      span.records_in = in_stats.num_records;
      out.sample_records = out.out_stats.num_records;
      break;
    }
    case NodeKind::kEstimator: {
      KS_CHECK(mode_ != ExecMode::kApply)
          << "unexpected " << NodeKindName(pn.kind) << " on the runtime path";
      const AnyDataset data = outputs_[pn.inputs[0]];
      const AnyDataset labels =
          pn.inputs.size() > 1 ? outputs_[pn.inputs[1]] : nullptr;
      const double scale = data->virtual_scale();
      const DataStats in_stats = data->ComputeStats();
      if (profile && select_ != nullptr && pn.optimizable &&
          pn.chosen_option < 0) {
        select_(id, in_stats);
      }
      const std::shared_ptr<EstimatorBase> est = pn.physical_estimator;
      out.op_name = est->Name();
      span.physical = pn.physical_name;
      span.predicted = est->EstimateCost(in_stats, resources.num_nodes);
      ctx_->BeginOperatorScope();
      Timer timer;
      models_[id] = est->FitAny(data, labels, ctx_);
      span.wall_seconds = timer.ElapsedSeconds();
      const auto actual = ctx_->TakeActualCost();
      span.observed = actual;
      out.in_stats = in_stats;
      if (profile) {
        span.used_observed = actual.has_value();
        out.record_observation = true;
        CostProfile cost = actual.has_value() ? *actual : span.predicted;
        cost.rounds = 0;  // Sample jobs skip full-cluster barriers.
        out.charge_cost = cost;  // also the timeline's per-resource split
        out.seconds = resources.SecondsFor(cost);
      } else {
        span.used_observed = actual.has_value() && scale <= 1.0;
        out.record_observation = scale <= 1.0;
        out.charge_cost = span.used_observed ? *actual : span.predicted;
        out.seconds = resources.SecondsFor(out.charge_cost);
      }
      span.partitions = data->NumPartitions();
      span.records_in = in_stats.num_records;
      out.sample_records = data->NumRecords();
      break;
    }
    case NodeKind::kApplyModel: {
      const AnyDataset data = outputs_[pn.inputs[0]];
      KS_CHECK(data != nullptr)
          << "runtime node " << pn.name << " depends on train-only data";
      const double scale = data->virtual_scale();
      const DataStats in_stats = data->ComputeStats();
      std::shared_ptr<TransformerBase> model;
      if (mode_ == ExecMode::kApply) {
        auto it = apply_models_->find(pn.model_input);
        KS_CHECK(it != apply_models_->end())
            << "no model fitted for node " << pn.model_input;
        model = it->second;
      } else {
        model = models_[pn.model_input];
        KS_CHECK(model != nullptr)
            << "no model available for node " << pn.model_input;
      }
      out.op_name = model->Name();
      span.physical = out.op_name;
      span.predicted = model->EstimateCost(in_stats, resources.num_nodes);
      ctx_->BeginOperatorScope();
      Timer timer;
      outputs_[id] = model->ApplyAny({data}, ctx_);
      span.wall_seconds = timer.ElapsedSeconds();
      if (!profile) outputs_[id]->set_virtual_scale(scale);
      const auto actual = ctx_->TakeActualCost();
      span.observed = actual;
      out.in_stats = in_stats;
      if (profile) {
        span.used_observed = actual.has_value();
        out.record_observation = true;
        CostProfile cost = actual.has_value() ? *actual : span.predicted;
        cost.rounds = 0;  // Sample jobs skip full-cluster barriers.
        out.charge_cost = cost;  // also the timeline's per-resource split
        out.seconds = resources.SecondsFor(cost);
      } else {
        span.used_observed = actual.has_value() && scale <= 1.0;
        out.record_observation = scale <= 1.0;
        out.charge_cost = span.used_observed ? *actual : span.predicted;
        out.seconds = resources.SecondsFor(out.charge_cost);
      }
      out.out_stats = outputs_[id]->ComputeStats();
      span.partitions = outputs_[id]->NumPartitions();
      span.records_in = in_stats.num_records;
      out.sample_records = out.out_stats.num_records;
      break;
    }
    case NodeKind::kPlaceholder:
      KS_CHECK(false) << "placeholder cannot be on the training path";
  }

  // Cost-profile sanity: a NaN or negative prediction would silently
  // poison the extrapolation and every plan derived from it.
  if (profile && plan_->config.validate_plans) {
    analysis::ValidationReport cost_report;
    analysis::CheckCostProfile(span.predicted, id, pn.name, &cost_report);
    if (span.observed.has_value()) {
      analysis::CheckCostProfile(*span.observed, id, pn.name + " (observed)",
                                 &cost_report);
    }
    KS_CHECK(cost_report.ok()) << cost_report.ToString();
  }
}

bool PlanRunner::TryExecuteFusedRegion(const FusedRegion& region) {
  if (InProfileMode()) return false;
  if (ctx_->exec_options().style != ExecStyle::kChunked) return false;
  const auto& resources = ctx_->resources();
  const int head = region.nodes.front();
  const int tail = region.nodes.back();
  const PlannedNode& head_pn = plan_->nodes[head];
  const AnyDataset input = outputs_[head_pn.inputs[0]];
  if (input == nullptr || !input->SupportsChunking() ||
      input->NumPartitions() == 0) {
    return false;
  }

  // Resolve every member's operator up front; a single member without
  // chunked apply makes the whole region fall back (the FusionPass already
  // rejects such chains, but fitted models are only known at run time).
  const size_t k = region.nodes.size();
  std::vector<std::shared_ptr<TransformerBase>> ops;
  ops.reserve(k);
  for (int id : region.nodes) {
    const PlannedNode& pn = plan_->nodes[id];
    std::shared_ptr<TransformerBase> op;
    if (pn.kind == NodeKind::kApplyModel) {
      if (mode_ == ExecMode::kApply) {
        auto it = apply_models_->find(pn.model_input);
        if (it == apply_models_->end()) return false;
        op = it->second;
      } else {
        op = models_[pn.model_input];
      }
    } else {
      op = pn.physical_transformer;
    }
    if (op == nullptr || !op->SupportsChunkedApply()) return false;
    ops.push_back(std::move(op));
  }

  const double scale = input->virtual_scale();
  const size_t num_parts = input->NumPartitions();
  const size_t batch = std::max<size_t>(1, ctx_->exec_options().max_batch_size);

  // Stream chunks through the whole chain, one task per partition — the
  // same parallel grain as unfused ApplyAny. Interior records never exist
  // as a dataset: only their ElementStat triples are buffered (for the
  // stats replay) while the tail's chunks are kept for reassembly.
  std::vector<std::vector<std::vector<ElementStat>>> interior_stats(
      k - 1, std::vector<std::vector<ElementStat>>(num_parts));
  std::vector<std::vector<AnyChunk>> tail_chunks(num_parts);
  std::vector<double> part_peak(num_parts, 0.0);
  ctx_->BeginOperatorScope();
  Timer timer;
  ctx_->pool()->ParallelFor(num_parts, [&](size_t p) {
    const size_t psize = input->PartitionSize(p);
    size_t begin = 0;
    bool first = true;
    while (first || begin < psize) {
      first = false;
      const size_t count = std::min(batch, psize - begin);
      AnyChunk chunk = input->ChunkOf(p, begin, count);
      // Resident bytes counts the interior stages only — exactly the
      // intermediates the unfused style would materialize as datasets —
      // reusing the stat triples buffered for the replay.
      double resident = 0.0;
      for (size_t m = 0; m < k; ++m) {
        chunk = ops[m]->ApplyChunk(chunk, ctx_);
        if (m + 1 < k) {
          std::vector<ElementStat>& stats = interior_stats[m][p];
          for (size_t i = 0; i < chunk->size(); ++i) {
            stats.push_back(chunk->StatOf(i));
            resident += stats.back().bytes;
          }
        }
      }
      tail_chunks[p].push_back(std::move(chunk));
      part_peak[p] = std::max(part_peak[p], resident);
      begin += count;
      if (count == 0) break;  // empty partition: one typed empty chunk
    }
  });
  const double wall = timer.ElapsedSeconds();
  // ApplyChunk implementations do not report actual costs; drop any stray
  // report so it cannot leak into the next node scheduled on this thread.
  ctx_->TakeActualCost();

  // Reassemble the tail output serially, preserving the partition layout.
  std::unique_ptr<ChunkCollectorBase> collector;
  for (size_t p = 0; p < num_parts; ++p) {
    for (const AnyChunk& chunk : tail_chunks[p]) {
      if (collector == nullptr) {
        collector = chunk->MakeCollector();
        collector->Resize(num_parts);
      }
      collector->Append(p, chunk);
    }
  }
  KS_CHECK(collector != nullptr);  // every partition emits >= 1 chunk
  outputs_[tail] = collector->Finish();
  outputs_[tail]->set_virtual_scale(scale);

  // Fill each member's outcome exactly as unfused execution would have:
  // predictions from the (replayed) input stats, no observed costs, the
  // head's input stats computed from the materialized upstream dataset and
  // the tail's from the materialized output.
  DataStats in_stats = input->ComputeStats();
  NodeOutcome& head_out = outcomes_[head];
  head_out.fused_members = static_cast<int>(k);
  head_out.fused_chunk_peak_bytes = 0.0;
  for (size_t p = 0; p < num_parts; ++p) {
    head_out.fused_chunk_peak_bytes =
        std::max(head_out.fused_chunk_peak_bytes, part_peak[p]);
  }
  for (size_t m = 0; m < k; ++m) {
    const int id = region.nodes[m];
    const PlannedNode& pn = plan_->nodes[id];
    NodeOutcome& out = outcomes_[id];
    out.executed = true;
    obs::TraceSpan& span = out.span;
    span.node_id = id;
    span.name = pn.name;
    span.kind = NodeKindName(pn.kind);
    span.phase = PhaseFor(mode_);
    out.op_name = ops[m]->Name();
    if (pn.kind == NodeKind::kApplyModel) {
      span.physical = out.op_name;
    } else {
      span.physical =
          mode_ == ExecMode::kApply ? out.op_name : pn.physical_name;
    }
    span.predicted = ops[m]->EstimateCost(in_stats, resources.num_nodes);
    span.wall_seconds = m == 0 ? wall : 0.0;
    span.observed = std::nullopt;
    span.used_observed = false;
    out.in_stats = in_stats;
    out.record_observation = scale <= 1.0;
    out.charge_cost = span.predicted;
    out.seconds = resources.SecondsFor(out.charge_cost);
    DataStats out_stats;
    if (m + 1 < k) {
      out_stats = ReplayStats(interior_stats[m], scale);
      head_out.fused_bytes_avoided += out_stats.TotalBytes();
    } else {
      out_stats = outputs_[tail]->ComputeStats();
    }
    out.out_stats = out_stats;
    span.partitions = num_parts;
    span.records_in = in_stats.num_records;
    out.sample_records = out_stats.num_records;
    in_stats = out_stats;
  }
  return true;
}

double PlanRunner::RecomputeChainSeconds(int id, bool respect_cache) const {
  const NodeOutcome& out = outcomes_[id];
  // Placeholder input on the runtime path: nothing of ours to recompute.
  if (!out.executed) return 0.0;
  if (respect_cache && mode_ == ExecMode::kFit && plan_->cache_set[id]) {
    // Materialized output: recovery re-reads it from cluster memory.
    return ctx_->resources().MemoryReadSeconds(
        out.out_stats.TotalBytes() /
        std::max(1, ctx_->resources().num_nodes));
  }
  double total = out.seconds;
  for (int dep : plan_->nodes[id].inputs) {
    total += RecomputeChainSeconds(dep, respect_cache);
  }
  return total;
}

void PlanRunner::SimulateFaults(int id) {
  const faults::FaultPlan* fault_plan = ctx_->fault_plan();
  // Profile passes run sample jobs on a clean cluster; faults only hit the
  // full-scale fit and apply passes.
  if (fault_plan == nullptr || !fault_plan->Enabled() || InProfileMode()) {
    return;
  }
  NodeOutcome& out = outcomes_[id];
  const PlannedNode& pn = plan_->nodes[id];

  faults::RecoveryContext rctx;
  rctx.node_id = id;
  rctx.fingerprint = pn.fingerprint;
  rctx.base_seconds = out.seconds;
  rctx.partitions = std::max<size_t>(1, out.span.partitions);
  rctx.slots = ctx_->resources().TotalSlots();
  bool inputs_materialized = !pn.inputs.empty();
  for (int dep : pn.inputs) {
    rctx.lineage_recovery_seconds +=
        RecomputeChainSeconds(dep, /*respect_cache=*/true);
    rctx.full_lineage_seconds +=
        RecomputeChainSeconds(dep, /*respect_cache=*/false);
    inputs_materialized = inputs_materialized &&
                          mode_ == ExecMode::kFit && plan_->cache_set[dep];
  }
  rctx.inputs_materialized = inputs_materialized;

  out.fault = faults::SimulateNodeFaults(*fault_plan, rctx);
  if (!out.fault.Any()) return;

  out.span.fault_attempts = out.fault.attempts;
  out.span.recovery_seconds = out.fault.overhead_seconds;
  for (const faults::FaultEvent& event : out.fault.events) {
    if (event.cache_recovery) out.span.cache_recovery = true;
  }
  if (out.fault.overhead_seconds > 0.0) {
    ctx_->ledger()->ChargeSeconds("Recovery", out.fault.overhead_seconds);
    if (ctx_->timeline() != nullptr) {
      ctx_->timeline()->RecordRecoverySeconds(
          obs::TracePhaseName(out.span.phase), id, pn.name,
          out.fault.overhead_seconds);
    }
  }
  if (ctx_->metrics() != nullptr) {
    obs::MetricsRegistry* metrics = ctx_->metrics();
    for (const faults::FaultEvent& event : out.fault.events) {
      metrics->Increment("faults.injected");
      switch (event.kind) {
        case faults::FaultEvent::Kind::kTaskFailure:
          metrics->Increment("faults.task_failures");
          metrics->Increment("faults.retries");
          break;
        case faults::FaultEvent::Kind::kExecutorLoss:
          metrics->Increment("faults.executor_losses");
          metrics->Increment("faults.retries");
          break;
        case faults::FaultEvent::Kind::kStraggler:
          metrics->Increment("faults.stragglers");
          break;
      }
    }
    if (out.fault.retries_exhausted) {
      metrics->Increment("faults.retries_exhausted");
    }
    metrics->Observe("faults.recovery_seconds", out.fault.overhead_seconds);
  }
  if (plan_->decision_log != nullptr) {
    for (const faults::FaultEvent& event : out.fault.events) {
      obs::RecoveryDecision decision;
      decision.node_id = id;
      decision.node_name = pn.name;
      decision.kind = faults::FaultEventKindName(event.kind);
      decision.attempt = event.attempt;
      decision.cache_recovery = event.cache_recovery;
      decision.wasted_seconds = event.wasted_seconds;
      decision.backoff_seconds = event.backoff_seconds;
      decision.recovery_seconds = event.recovery_seconds;
      plan_->decision_log->RecordRecovery(std::move(decision));
    }
  }
}

void PlanRunner::FlushOutcome(int id) {
  NodeOutcome& out = outcomes_[id];
  if (!out.executed) return;
  PlannedNode& pn = plan_->nodes[id];

  if (mode_ == ExecMode::kApply) {
    out.span.virtual_seconds = ctx_->ledger()->Charge("Eval", out.charge_cost);
  } else {
    out.span.virtual_seconds = out.seconds;
  }
  out.span.output_bytes = out.out_stats.TotalBytes();
  if (mode_ == ExecMode::kFit) out.span.cached = plan_->cache_set[id];

  // Fault replay must run inside this serial, id-ordered flush: the draws
  // are order-independent by construction, but the ledger/metrics/trace
  // effects below have to land in the same order for every schedule.
  SimulateFaults(id);

  if (InProfileMode()) {
    ProfileEntry& entry = pn.profile;
    if (mode_ == ExecMode::kProfileLarge) {
      entry.seconds_large = out.seconds;
      entry.records_large = out.sample_records;
    } else {
      entry.seconds_small = out.seconds;
      entry.records_small = out.sample_records;
    }
    entry.bytes_per_record = out.out_stats.bytes_per_record;
    entry.full_records = pn.full_records;
    if (ctx_->profile_store() != nullptr) {
      obs::NodeProfileRecord record;
      record.seconds = out.seconds;
      record.records = out.sample_records;
      record.bytes_per_record = entry.bytes_per_record;
      record.full_records = entry.full_records;
      record.chosen_option = pn.chosen_option;
      ctx_->profile_store()->RecordNodeProfile(
          obs::ProfileStore::NodeKey(pn.fingerprint, SampleSize()), record);
    }
  }

  if (out.record_observation && out.span.observed.has_value() &&
      ctx_->profile_store() != nullptr) {
    ctx_->profile_store()->RecordObservation(
        out.op_name.empty() ? pn.name : out.op_name, out.in_stats,
        out.span.predicted, *out.span.observed, out.span.wall_seconds);
  }
  if (ctx_->timeline() != nullptr) {
    obs::ResourceTimeline* timeline = ctx_->timeline();
    const char* phase = obs::TracePhaseName(out.span.phase);
    if (pn.kind == NodeKind::kSource ||
        (pn.reused && pn.reuse_tier != "memory")) {
      // Source loads and disk-tier catalog reads are charged directly in
      // disk seconds (no CostProfile axis models disk bandwidth).
      timeline->RecordDiskSeconds(phase, id, pn.name, out.seconds);
    } else {
      timeline->RecordNodeCost(phase, id, pn.name, out.charge_cost,
                               ctx_->resources());
    }
    if (!InProfileMode()) {
      // Cache accounting: each data dependency either hits the materialized
      // set (fit mode only — apply recomputes the runtime path) or misses;
      // apply-model nodes additionally fetch their fitted model, which is
      // always materialized.
      for (int dep : pn.inputs) {
        const bool hit = mode_ == ExecMode::kFit && plan_->cache_set[dep];
        timeline->RecordCacheAccess(hit);
        if (ctx_->metrics() != nullptr) {
          ctx_->metrics()->Increment(hit ? "exec.cache_hits"
                                         : "exec.cache_misses");
        }
      }
      if (pn.kind == NodeKind::kApplyModel) {
        timeline->RecordCacheAccess(true);
        if (ctx_->metrics() != nullptr) {
          ctx_->metrics()->Increment("exec.cache_hits");
        }
      }
      if (mode_ == ExecMode::kFit && plan_->cache_set[id]) {
        timeline->RecordResidentBytes(out.out_stats.TotalBytes());
      }
    }
  }
  if (ctx_->metrics() != nullptr) {
    ctx_->metrics()->Increment(std::string("exec.spans.") +
                               obs::TracePhaseName(out.span.phase));
    ctx_->metrics()->Observe("exec.wall_seconds", out.span.wall_seconds);
    if (out.fused_members > 0) {
      ctx_->metrics()->Increment("exec.fused.regions");
      ctx_->metrics()->Increment("exec.fused.members", out.fused_members);
      ctx_->metrics()->Increment("exec.fused.intermediate_bytes_avoided",
                                 out.fused_bytes_avoided);
      ctx_->metrics()->Observe("exec.fused.chunk_resident_bytes",
                               out.fused_chunk_peak_bytes);
    }
  }
  // Catalog write-through happens here, inside the serial id-ordered flush:
  // Touch (access-order update) and Put (insert + possible eviction) are
  // the catalog's only mutations during a fit, so serial and
  // branch-parallel runs leave byte-identical catalog state.
  if (mode_ == ExecMode::kFit && ctx_->artifact_catalog() != nullptr) {
    cache::ArtifactCatalog* catalog = ctx_->artifact_catalog();
    if (pn.reused) {
      catalog->Touch(pn.reuse_fingerprint);
      if (ctx_->metrics() != nullptr) {
        ctx_->metrics()->Increment(pn.reuse_tier == "memory"
                                       ? "catalog.hits.memory"
                                       : "catalog.hits.disk");
      }
    } else if (catalog_publish_[id] && outputs_[id] != nullptr) {
      const bool stored = catalog->Put(
          pn.lineage_fingerprint, outputs_[id], out.out_stats.TotalBytes(),
          out.out_stats.num_records,
          RecomputeChainSeconds(id, /*respect_cache=*/false));
      if (stored && ctx_->metrics() != nullptr) {
        ctx_->metrics()->Increment("catalog.puts");
      }
    }
  }
  if (ctx_->telemetry() != nullptr) {
    // Windowed series mirror the cumulative metrics above. This runs in
    // the serial id-ordered flush, so the series land in the same order
    // for every schedule — the telemetry stream inherits the runner's
    // byte-identity guarantee.
    obs::TelemetryHub* telemetry = ctx_->telemetry();
    telemetry->Count(std::string("exec.nodes.") +
                     obs::TracePhaseName(out.span.phase));
    telemetry->Observe("exec.node_seconds", out.span.virtual_seconds);
    if (out.fault.overhead_seconds > 0.0) {
      telemetry->Count("exec.recovery_seconds", out.fault.overhead_seconds);
    }
  }
  const obs::TracePhase phase = out.span.phase;
  if (ctx_->tracer() != nullptr) ctx_->tracer()->Record(std::move(out.span));

  // One dedicated span per injected fault event, laid on the phase timeline
  // right after the node span it hit. Only faulted runs emit these.
  if (ctx_->tracer() != nullptr) {
    for (const faults::FaultEvent& event : out.fault.events) {
      obs::TraceSpan rspan;
      rspan.node_id = id;
      rspan.name = pn.name;
      rspan.kind = "recovery";
      rspan.physical = faults::FaultEventKindName(event.kind);
      rspan.phase = phase;
      rspan.fault_attempts = event.attempt + 1;
      rspan.cache_recovery = event.cache_recovery;
      rspan.recovery_seconds = event.wasted_seconds + event.backoff_seconds +
                               event.recovery_seconds;
      rspan.virtual_seconds = rspan.recovery_seconds;
      ctx_->tracer()->Record(std::move(rspan));
    }
  }
}

void PlanRunner::RunSerial(const std::vector<int>& exec_ids) {
  for (int id : exec_ids) ExecuteNode(id);
}

void PlanRunner::RunParallel(const std::vector<int>& exec_ids) {
  const int n = plan_->graph->size();
  std::vector<bool> in_set(n, false);
  for (int id : exec_ids) in_set[id] = true;
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<int>> succ(n);
  for (int id : exec_ids) {
    for (int dep : plan_->graph->Dependencies(id)) {
      if (in_set[dep]) {
        ++indegree[id];
        succ[dep].push_back(id);
      }
    }
  }
  // A fused region executes wholesale at its head's schedule slot, so the
  // head additionally waits on every non-head member's region-external
  // dependencies (in practice: fitted models). In-region deps are already
  // ordered by the chain itself and would only create cycles here.
  for (int id : exec_ids) {
    const PlannedNode& pn = plan_->nodes[id];
    if (pn.fused_region < 0) continue;
    const FusedRegion& region = plan_->fused_regions[pn.fused_region];
    if (region.nodes.front() != id) continue;
    std::vector<bool> in_region(n, false);
    for (int member : region.nodes) in_region[member] = true;
    for (int member : region.nodes) {
      if (member == id) continue;
      for (int dep : plan_->graph->Dependencies(member)) {
        if (in_set[dep] && !in_region[dep]) {
          ++indegree[id];
          succ[dep].push_back(id);
        }
      }
    }
  }

  // Dedicated scheduler threads over a ready queue. Node bodies must not
  // run on the shared ThreadPool: operators block in ParallelFor on that
  // pool, and ThreadPool::Wait waits for ALL in-flight tasks — scheduling
  // nodes there would deadlock a node task waiting on its own pool.
  Mutex mu;
  CondVar cv;
  std::deque<int> ready;
  size_t remaining = exec_ids.size();
  for (int id : exec_ids) {
    if (indegree[id] == 0) ready.push_back(id);
  }

  auto worker = [&]() {
    for (;;) {
      int id = -1;
      {
        MutexLock lock(&mu);
        while (ready.empty() && remaining > 0) cv.Wait(&mu);
        if (ready.empty()) return;
        id = ready.front();
        ready.pop_front();
      }
      ExecuteNode(id);
      {
        MutexLock lock(&mu);
        --remaining;
        for (int s : succ[id]) {
          if (--indegree[s] == 0) ready.push_back(s);
        }
        cv.NotifyAll();
      }
    }
  };

  // At least two workers even on single-core hosts, so the concurrent
  // scheduling path is always exercised (and sanitizer-checked) wherever
  // parallel_branches is on.
  const size_t hw = std::max(2u, std::thread::hardware_concurrency());
  const size_t workers =
      std::min<size_t>(exec_ids.size(), std::min<size_t>(hw, 8));
  std::vector<std::thread> threads;
  threads.reserve(workers > 0 ? workers - 1 : 0);
  for (size_t i = 1; i < workers; ++i) threads.emplace_back(worker);
  worker();  // the calling thread schedules too
  for (auto& t : threads) t.join();
  KS_CHECK(remaining == 0) << "plan scheduler stalled (cyclic dependencies?)";
}

RunResult PlanRunner::Run(ExecMode mode, const SelectHook& select) {
  KS_CHECK(mode != ExecMode::kApply) << "use RunApply for the runtime path";
  ValidateFaultPlan(*plan_, ctx_);
  mode_ = mode;
  select_ = select;
  apply_models_ = nullptr;
  const int n = plan_->graph->size();
  outputs_.assign(n, nullptr);
  models_.assign(n, nullptr);
  outcomes_.assign(n, NodeOutcome());

  std::vector<int> exec_ids;
  for (int id = 0; id < n; ++id) {
    // Nodes pruned by cross-run reuse are fully covered by reused
    // descendants; the fit pass never runs them (profile passes precede the
    // ReusePass, so the markers are never set there).
    if (plan_->nodes[id].train && !plan_->nodes[id].reuse_pruned) {
      exec_ids.push_back(id);
    }
  }

  // Publication set for the catalog write-through: pure-lineage transformer
  // and gather outputs this fit computes (reused nodes are refreshed via
  // Touch instead). Decided once here so the id-ordered flush stays cheap.
  catalog_publish_.assign(n, false);
  if (mode == ExecMode::kFit && plan_->config.cross_run_reuse &&
      ctx_->artifact_catalog() != nullptr) {
    const std::vector<bool> pure = PureLineageMask(*plan_);
    for (int id : exec_ids) {
      const PlannedNode& pn = plan_->nodes[id];
      catalog_publish_[id] =
          pure[id] && !pn.reused &&
          (pn.kind == NodeKind::kTransformer || pn.kind == NodeKind::kGather);
    }
  }

  if (mode == ExecMode::kFit && ctx_->timeline() != nullptr) {
    ctx_->timeline()->NoteCacheBudget(plan_->cache_budget_bytes);
  }

  // Profile passes stay serial: operator selection must see nodes in
  // topological order so upstream choices shape downstream samples.
  const bool parallel = plan_->config.parallel_branches && !InProfileMode() &&
                        exec_ids.size() > 1;
  if (parallel) {
    RunParallel(exec_ids);
  } else {
    RunSerial(exec_ids);
  }
  for (int id : exec_ids) FlushOutcome(id);
  if (ctx_->telemetry() != nullptr) {
    // The ledger total is the run's virtual clock: ticking here closes
    // every window this pass's charges crossed.
    ctx_->telemetry()->Tick(ctx_->ledger()->TotalSeconds());
  }

  RunResult result;
  result.node_seconds.assign(n, 0.0);
  result.out_stats.assign(n, DataStats());
  result.recovery_seconds.assign(n, 0.0);
  for (int id : exec_ids) {
    result.node_seconds[id] = outcomes_[id].seconds;
    result.out_stats[id] = outcomes_[id].out_stats;
    result.recovery_seconds[id] = outcomes_[id].fault.overhead_seconds;
    if (models_[id] != nullptr) result.models[id] = models_[id];
  }
  return result;
}

AnyDataset PlanRunner::RunApply(
    const AnyDataset& input,
    const std::map<int, std::shared_ptr<TransformerBase>>& models) {
  ValidateFaultPlan(*plan_, ctx_);
  mode_ = ExecMode::kApply;
  select_ = nullptr;
  apply_models_ = &models;
  const int n = plan_->graph->size();
  outputs_.assign(n, nullptr);
  models_.assign(n, nullptr);
  outcomes_.assign(n, NodeOutcome());
  KS_CHECK(plan_->placeholder >= 0) << "plan has no runtime placeholder";
  outputs_[plan_->placeholder] = input;

  std::vector<int> exec_ids;
  for (int id = 0; id < n; ++id) {
    if (plan_->nodes[id].runtime) exec_ids.push_back(id);
  }
  const bool parallel =
      plan_->config.parallel_branches && exec_ids.size() > 1;
  if (parallel) {
    RunParallel(exec_ids);
  } else {
    RunSerial(exec_ids);
  }
  for (int id : exec_ids) FlushOutcome(id);
  if (ctx_->telemetry() != nullptr) {
    ctx_->telemetry()->Tick(ctx_->ledger()->TotalSeconds());
  }

  KS_CHECK(outputs_[plan_->sink] != nullptr);
  return outputs_[plan_->sink];
}

void PlanRunner::EmitSyntheticProfileSpans(ExecMode mode) {
  KS_CHECK(mode == ExecMode::kProfileSmall || mode == ExecMode::kProfileLarge);
  const bool large = mode == ExecMode::kProfileLarge;
  for (const PlannedNode& pn : plan_->nodes) {
    if (!pn.train) continue;
    obs::TraceSpan span;
    span.node_id = pn.id;
    span.name = pn.name;
    span.kind = NodeKindName(pn.kind);
    span.phase = PhaseFor(mode);
    span.synthetic = true;
    span.physical = pn.physical_name;
    span.records_in =
        large ? pn.profile.records_large : pn.profile.records_small;
    span.virtual_seconds =
        large ? pn.profile.seconds_large : pn.profile.seconds_small;
    span.output_bytes =
        pn.profile.bytes_per_record * static_cast<double>(span.records_in);
    if (ctx_->metrics() != nullptr) {
      ctx_->metrics()->Increment(std::string("exec.spans.") +
                                 obs::TracePhaseName(span.phase));
      ctx_->metrics()->Increment("exec.spans.synthetic");
    }
    if (ctx_->tracer() != nullptr) ctx_->tracer()->Record(std::move(span));
  }
}

}  // namespace keystone
