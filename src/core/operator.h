#ifndef KEYSTONE_CORE_OPERATOR_H_
#define KEYSTONE_CORE_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/dataflow_lattice.h"
#include "src/core/exec_context.h"
#include "src/data/dist_dataset.h"
#include "src/sim/cost_profile.h"

namespace keystone {

/// Base class for all physical operators that map datasets to datasets.
/// Mirrors the paper's Transformer trait: a deterministic, side-effect-free
/// unary function over data items, plus a CostModel used by the optimizer.
class TransformerBase {
 public:
  virtual ~TransformerBase() = default;

  /// Operator name (diagnostics, DAG rendering, bench output).
  virtual std::string Name() const = 0;

  /// Stable digest of the configuration that changes this operator's
  /// output: constructor parameters, hyper-parameters, seeds. Folded into
  /// node fingerprints, so two instances of one operator class with
  /// different parameters never share a lineage identity — the artifact
  /// catalog and profile store key on those fingerprints, and conflating
  /// a Scale(2) with a Scale(3) would serve one branch's cached output to
  /// the other. Parameterless operators keep the default empty signature.
  virtual std::string ParamSignature() const { return ""; }

  /// Applies the operator to (usually one) input dataset(s).
  virtual AnyDataset ApplyAny(const std::vector<AnyDataset>& inputs,
                              ExecContext* ctx) const = 0;

  /// Whether ApplyChunk is implemented. Row-wise Transformer<A, B>
  /// subclasses get it for free; operators with a bespoke ApplyAny (gather,
  /// whole-dataset kernels) stay on the whole-dataset path, and the
  /// FusionPass refuses to put them inside a fused region.
  virtual bool SupportsChunkedApply() const { return false; }

  /// Batched apply over one cache-resident chunk, producing the output
  /// chunk. Must agree record-for-record with ApplyAny; only called when
  /// SupportsChunkedApply().
  virtual AnyChunk ApplyChunk(const AnyChunk& in, ExecContext* ctx) const {
    (void)in;
    (void)ctx;
    KS_CHECK(false) << Name() << " does not support chunked apply";
    return nullptr;
  }

  /// CostModel: estimated critical-path cost of processing a dataset with
  /// statistics `in` on `workers` cluster nodes (paper Figure 3). The
  /// default charges one memory scan of the input.
  virtual CostProfile EstimateCost(const DataStats& in, int workers) const {
    CostProfile cost;
    cost.bytes = in.TotalBytes() / std::max(1, workers);
    return cost;
  }

  /// Bytes of cluster memory required during execution beyond inputs and
  /// outputs (used for feasibility checks; 0 = negligible).
  virtual double ScratchMemoryBytes(const DataStats& in, int workers) const {
    (void)in;
    (void)workers;
    return 0.0;
  }

  /// Number of passes the operator makes over its input (paper's Iterative
  /// trait weight; 1 for ordinary transformers).
  virtual int Weight() const { return 1; }

  // --- Static dataflow metadata (consumed by src/analysis) -----------------

  /// Shape this operator requires of each input record; Top = anything.
  /// The inference engine meets the incoming shape with this requirement
  /// and reports a shape.dim_mismatch diagnostic when the meet is Bottom.
  virtual ValueShape InputShapeRequirement() const {
    return ValueShape::Top();
  }

  /// Transfer function: output record shape given the input record shape.
  /// The engine has already met `in` with InputShapeRequirement(), so
  /// implementations may assume the kind matches their requirement.
  virtual ValueShape TransferShape(const ValueShape& in) const {
    (void)in;
    return ValueShape::Top();
  }

  /// Multi-input transfer function (gather-style operators).
  virtual ValueShape TransferShapeMulti(
      const std::vector<ValueShape>& ins) const {
    return ins.size() == 1 ? TransferShape(ins[0]) : ValueShape::Top();
  }

  /// Effect class for the purity/fusibility analysis. Pure by default;
  /// operators that draw from a fixed seed declare kSeededDeterministic,
  /// and anything with hidden mutable state declares kStateful.
  virtual EffectClass Effect() const { return EffectClass::kPure; }
};

/// Typed per-record transformer. Implementations override Apply (record at
/// a time); ApplyAny maps it over every partition on the worker pool.
template <typename A, typename B>
class Transformer : public TransformerBase {
 public:
  using InputType = A;
  using OutputType = B;

  /// Applies the operator to a single data item.
  virtual B Apply(const A& input) const = 0;

  /// Kind-level defaults from the static record types; operators whose
  /// output dimensions depend on configuration refine these further.
  ValueShape InputShapeRequirement() const override {
    return StaticShapeOf<A>::Get();
  }
  ValueShape TransferShape(const ValueShape& in) const override {
    (void)in;
    return StaticShapeOf<B>::Get();
  }

  AnyDataset ApplyAny(const std::vector<AnyDataset>& inputs,
                      ExecContext* ctx) const override {
    KS_CHECK_EQ(inputs.size(), 1u);
    auto in = DistDataset<A>::Cast(inputs[0]);
    std::vector<std::vector<B>> out(in->NumPartitions());
    ctx->pool()->ParallelFor(in->NumPartitions(), [&](size_t p) {
      const auto& part = in->partition(p);
      out[p].reserve(part.size());
      for (const auto& rec : part) out[p].push_back(Apply(rec));
    });
    return std::make_shared<DistDataset<B>>(std::move(out));
  }

  bool SupportsChunkedApply() const override { return true; }

  AnyChunk ApplyChunk(const AnyChunk& in, ExecContext* ctx) const override {
    (void)ctx;
    const auto typed = Chunk<A>::Cast(in);
    std::vector<B> out;
    out.reserve(typed->records().size());
    for (const A& rec : typed->records()) out.push_back(Apply(rec));
    return std::make_shared<Chunk<B>>(std::move(out));
  }
};

/// Base class for operators that are fit on a dataset and produce a
/// transformer (the paper's Estimator: a function-generating function).
class EstimatorBase {
 public:
  virtual ~EstimatorBase() = default;

  virtual std::string Name() const = 0;

  /// Stable digest of output-changing configuration; see
  /// TransformerBase::ParamSignature.
  virtual std::string ParamSignature() const { return ""; }

  /// Fits on `data` (and `labels` when the estimator is supervised; null
  /// otherwise), returning the fitted model as a transformer.
  virtual std::shared_ptr<TransformerBase> FitAny(const AnyDataset& data,
                                                  const AnyDataset& labels,
                                                  ExecContext* ctx) const = 0;

  /// CostModel for the fitting step (see TransformerBase::EstimateCost).
  virtual CostProfile EstimateCost(const DataStats& in, int workers) const {
    CostProfile cost;
    cost.bytes = in.TotalBytes() / std::max(1, workers);
    return cost;
  }

  virtual double ScratchMemoryBytes(const DataStats& in, int workers) const {
    (void)in;
    (void)workers;
    return 0.0;
  }

  /// Number of passes over the input dataset during fitting (the Iterative
  /// weight; e.g. ~#iterations for gradient methods). Materialization uses
  /// this to weigh recomputation costs.
  virtual int Weight() const { return 1; }

  /// True when the estimator consumes a label dataset.
  virtual bool IsSupervised() const { return false; }

  // --- Static dataflow metadata (consumed by src/analysis) -----------------

  /// Shape required of the training-data records; Top = anything.
  virtual ValueShape InputShapeRequirement() const {
    return ValueShape::Top();
  }

  /// Shape required of the label records (supervised estimators only).
  virtual ValueShape LabelShapeRequirement() const {
    return ValueShape::Top();
  }

  /// Record shape the fitted model will produce given the shape of the
  /// training data it was fit on (e.g. PCA: matrix[r x d] -> matrix[r x k]).
  virtual ValueShape ModelOutputShape(const ValueShape& data_in) const {
    (void)data_in;
    return ValueShape::Top();
  }

  /// Effect class of the fitting step; seeded estimators (k-means, GMM,
  /// randomized projections) declare kSeededDeterministic.
  virtual EffectClass Effect() const { return EffectClass::kPure; }
};

/// Typed unsupervised estimator over records of type A producing a
/// Transformer<A, B>.
template <typename A, typename B>
class Estimator : public EstimatorBase {
 public:
  using InputType = A;
  using OutputType = B;

  virtual std::shared_ptr<Transformer<A, B>> Fit(const DistDataset<A>& data,
                                                 ExecContext* ctx) const = 0;

  ValueShape InputShapeRequirement() const override {
    return StaticShapeOf<A>::Get();
  }
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    (void)data_in;
    return StaticShapeOf<B>::Get();
  }

  std::shared_ptr<TransformerBase> FitAny(const AnyDataset& data,
                                          const AnyDataset& labels,
                                          ExecContext* ctx) const override {
    KS_CHECK(labels == nullptr) << Name() << " is unsupervised";
    auto typed = DistDataset<A>::Cast(data);
    return Fit(*typed, ctx);
  }
};

/// Typed supervised estimator: fit on (data, labels) pairs.
template <typename A, typename B, typename L>
class LabelEstimator : public EstimatorBase {
 public:
  using InputType = A;
  using OutputType = B;
  using LabelType = L;

  virtual std::shared_ptr<Transformer<A, B>> Fit(const DistDataset<A>& data,
                                                 const DistDataset<L>& labels,
                                                 ExecContext* ctx) const = 0;

  ValueShape InputShapeRequirement() const override {
    return StaticShapeOf<A>::Get();
  }
  ValueShape LabelShapeRequirement() const override {
    return StaticShapeOf<L>::Get();
  }
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    (void)data_in;
    return StaticShapeOf<B>::Get();
  }

  std::shared_ptr<TransformerBase> FitAny(const AnyDataset& data,
                                          const AnyDataset& labels,
                                          ExecContext* ctx) const override {
    KS_CHECK(labels != nullptr) << Name() << " requires labels";
    auto typed_data = DistDataset<A>::Cast(data);
    auto typed_labels = DistDataset<L>::Cast(labels);
    return Fit(*typed_data, *typed_labels, ctx);
  }

  bool IsSupervised() const override { return true; }
};

/// A logical transformer with multiple physical implementations (the
/// paper's Optimizable trait). The operator-level optimizer evaluates each
/// option's CostModel on sampled statistics and picks the cheapest feasible
/// one; without optimization the default (first) option is used.
class OptimizableTransformer : public TransformerBase {
 public:
  OptimizableTransformer(std::string name,
                         std::vector<std::shared_ptr<TransformerBase>> options)
      : name_(std::move(name)), options_(std::move(options)) {
    KS_CHECK(!options_.empty());
  }

  std::string Name() const override { return name_; }

  /// A logical operator is parameterized by its physical options' shared
  /// hyper-parameters; every option carries the same configuration, so the
  /// default option's signature stands in for the logical node's.
  std::string ParamSignature() const override {
    return options_[0]->ParamSignature();
  }

  const std::vector<std::shared_ptr<TransformerBase>>& options() const {
    return options_;
  }

  /// Default physical operator (used when optimization is off).
  const std::shared_ptr<TransformerBase>& default_option() const {
    return options_[0];
  }

  AnyDataset ApplyAny(const std::vector<AnyDataset>& inputs,
                      ExecContext* ctx) const override {
    return options_[0]->ApplyAny(inputs, ctx);
  }

  bool SupportsChunkedApply() const override {
    return options_[0]->SupportsChunkedApply();
  }
  AnyChunk ApplyChunk(const AnyChunk& in, ExecContext* ctx) const override {
    return options_[0]->ApplyChunk(in, ctx);
  }

  CostProfile EstimateCost(const DataStats& in, int workers) const override {
    return options_[0]->EstimateCost(in, workers);
  }

  ValueShape InputShapeRequirement() const override {
    return options_[0]->InputShapeRequirement();
  }
  ValueShape TransferShape(const ValueShape& in) const override {
    return options_[0]->TransferShape(in);
  }
  ValueShape TransferShapeMulti(
      const std::vector<ValueShape>& ins) const override {
    return options_[0]->TransferShapeMulti(ins);
  }
  EffectClass Effect() const override { return options_[0]->Effect(); }

 private:
  std::string name_;
  std::vector<std::shared_ptr<TransformerBase>> options_;
};

/// A logical estimator with multiple physical implementations.
class OptimizableEstimator : public EstimatorBase {
 public:
  OptimizableEstimator(std::string name,
                       std::vector<std::shared_ptr<EstimatorBase>> options)
      : name_(std::move(name)), options_(std::move(options)) {
    KS_CHECK(!options_.empty());
  }

  std::string Name() const override { return name_; }

  /// See OptimizableTransformer::ParamSignature.
  std::string ParamSignature() const override {
    return options_[0]->ParamSignature();
  }

  const std::vector<std::shared_ptr<EstimatorBase>>& options() const {
    return options_;
  }

  const std::shared_ptr<EstimatorBase>& default_option() const {
    return options_[0];
  }

  std::shared_ptr<TransformerBase> FitAny(const AnyDataset& data,
                                          const AnyDataset& labels,
                                          ExecContext* ctx) const override {
    return options_[0]->FitAny(data, labels, ctx);
  }

  CostProfile EstimateCost(const DataStats& in, int workers) const override {
    return options_[0]->EstimateCost(in, workers);
  }

  int Weight() const override { return options_[0]->Weight(); }

  bool IsSupervised() const override { return options_[0]->IsSupervised(); }

  ValueShape InputShapeRequirement() const override {
    return options_[0]->InputShapeRequirement();
  }
  ValueShape LabelShapeRequirement() const override {
    return options_[0]->LabelShapeRequirement();
  }
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    return options_[0]->ModelOutputShape(data_in);
  }
  EffectClass Effect() const override { return options_[0]->Effect(); }

 private:
  std::string name_;
  std::vector<std::shared_ptr<EstimatorBase>> options_;
};

}  // namespace keystone

#endif  // KEYSTONE_CORE_OPERATOR_H_
