#ifndef KEYSTONE_CORE_EXEC_CONTEXT_H_
#define KEYSTONE_CORE_EXEC_CONTEXT_H_

#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/profile_store.h"
#include "src/obs/resource_timeline.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/sim/cost_profile.h"
#include "src/sim/resources.h"
#include "src/sim/virtual_time.h"

namespace keystone {

namespace faults {
class FaultPlan;
}  // namespace faults

namespace cache {
class ArtifactCatalog;
}  // namespace cache

/// How the PlanRunner evaluates fused regions of the physical plan.
enum class ExecStyle {
  /// Materialize every node's full output (the pre-fusion behavior; fused
  /// regions are planned but executed node-at-a-time).
  kWholeDataset,
  /// Stream cache-resident chunks of max_batch_size records through each
  /// fused region, materializing only the region tail.
  kChunked,
};

/// Execution-style knobs, part of the shared environment: a PipelineExecutor
/// or PipelineServer sets them once and every run (and every serving
/// request context minted via MakeRequestContext) inherits them. Chunked
/// and whole-dataset execution are byte-identical in every observable
/// effect — the knob trades peak intermediate memory against chunk-loop
/// overhead, never results.
struct ExecOptions {
  /// Records per chunk when streaming a fused region (chunked style).
  size_t max_batch_size = 1024;
  ExecStyle style = ExecStyle::kChunked;
};

/// Everything an operator needs at execution time: the cluster description,
/// the virtual-time ledger, and a worker pool for real (in-process) compute.
/// Operators run their real kernels on the pool and report the cost profile
/// of the equivalent distributed execution, which the executor charges to
/// the ledger. The context also carries the observability sinks — trace
/// recorder, metrics registry, and observed-cost profile store — which
/// default to the process-wide instances and may be redirected per context.
///
/// The state splits into two layers:
///  - the shared execution *environment* (cluster description, worker pool,
///    observability sinks), safely shared across any number of contexts and
///    long-lived (a PipelineExecutor or a PipelineServer owns one); and
///  - the per-run state (ledger, fault plan, actual-cost slots) that
///    belongs to exactly one fit or one serving request.
/// MakeRequestContext() clones the environment into a fresh context with
/// clean per-run state — the serving path mints one per batch so request
/// ledgers never bleed into each other or into a concurrent fit.
class ExecContext {
 public:
  explicit ExecContext(const ClusterResourceDescriptor& resources)
      : resources_(resources),
        ledger_(resources),
        pool_(&ThreadPool::Global()),
        tracer_(&obs::TraceRecorder::Global()),
        metrics_(&obs::MetricsRegistry::Global()),
        profile_store_(&obs::ProfileStore::Global()),
        timeline_(&obs::ResourceTimeline::Global()) {
    ledger_.set_metrics(metrics_);
  }

  // --- Shared execution environment --------------------------------------

  const ClusterResourceDescriptor& resources() const { return resources_; }
  ThreadPool* pool() { return pool_; }
  /// Redirects kernel execution to a caller-owned pool (e.g. the
  /// PipelineServer's dedicated serving pool). The pool is borrowed; the
  /// caller keeps it alive across every run on this context.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Observability sinks. Never null by default; set to nullptr to disable.
  obs::TraceRecorder* tracer() const { return tracer_; }
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }
  obs::MetricsRegistry* metrics() const { return metrics_; }
  void set_metrics(obs::MetricsRegistry* metrics) {
    metrics_ = metrics;
    ledger_.set_metrics(metrics);
  }
  obs::ProfileStore* profile_store() const { return profile_store_; }
  void set_profile_store(obs::ProfileStore* store) { profile_store_ = store; }
  obs::ResourceTimeline* timeline() const { return timeline_; }
  void set_timeline(obs::ResourceTimeline* timeline) { timeline_ = timeline; }

  /// Optional windowed time-series sink (null by default — telemetry is
  /// opt-in, unlike the always-on sinks above). When set, PlanRunner
  /// streams per-node observations into it and ticks it along the
  /// ledger's virtual-time axis as node outcomes flush.
  obs::TelemetryHub* telemetry() const { return telemetry_; }
  void set_telemetry(obs::TelemetryHub* telemetry) { telemetry_ = telemetry; }

  /// Execution-style knobs (chunked vs whole-dataset, chunk size).
  const ExecOptions& exec_options() const { return exec_options_; }
  void set_exec_options(const ExecOptions& options) {
    exec_options_ = options;
  }

  /// Optional cross-run artifact catalog (src/cache). Null by default —
  /// cross-run reuse is opt-in. When set (and the plan's
  /// OptimizationConfig::cross_run_reuse is on), the ReusePass rewrites
  /// fingerprint-matching nodes into catalog reads and the fit pass
  /// publishes eligible intermediates back into it. Borrowed, not owned.
  cache::ArtifactCatalog* artifact_catalog() const { return catalog_; }
  void set_artifact_catalog(cache::ArtifactCatalog* catalog) {
    catalog_ = catalog;
  }

  /// A fresh context sharing this one's environment (resources, pool,
  /// observability sinks) with clean per-run state: a zeroed ledger, no
  /// fault plan, no pending actual-cost reports. The serving request path
  /// reads a request's virtual service seconds off its own ledger.
  std::unique_ptr<ExecContext> MakeRequestContext() const {
    auto ctx = std::make_unique<ExecContext>(resources_);
    ctx->pool_ = pool_;
    ctx->tracer_ = tracer_;
    ctx->set_metrics(metrics_);
    ctx->profile_store_ = profile_store_;
    ctx->timeline_ = timeline_;
    ctx->telemetry_ = telemetry_;
    ctx->exec_options_ = exec_options_;
    ctx->catalog_ = catalog_;
    return ctx;
  }

  // --- Per-run state ------------------------------------------------------

  VirtualTimeLedger* ledger() { return &ledger_; }

  /// Optional fault-injection plan. When set (and enabled), PlanRunner
  /// replays every full-scale node execution under the plan and charges the
  /// resulting retry/recompute/straggler time to the "Recovery" ledger
  /// stage. Null (the default) means a cluster that never fails — all
  /// pre-fault behavior is preserved bit-for-bit. The plan is borrowed, not
  /// owned; the caller keeps it alive across the run.
  const faults::FaultPlan* fault_plan() const { return fault_plan_; }
  void set_fault_plan(const faults::FaultPlan* plan) { fault_plan_ = plan; }

  /// Operators whose cost depends on runtime behaviour (e.g. iterative
  /// solvers whose iteration count is data dependent) call this during
  /// ApplyAny/FitAny; the executor reads and clears it afterwards, falling
  /// back to the operator's a-priori cost estimate when absent. The slot is
  /// per calling thread so branch-parallel node execution cannot attribute
  /// one branch's report to another: PlanRunner invokes the operator and
  /// takes its cost on the same scheduler thread.
  void ReportActualCost(const CostProfile& cost) {
    MutexLock lock(&actual_mu_);
    actual_cost_[std::this_thread::get_id()] = cost;
  }

  std::optional<CostProfile> TakeActualCost() {
    MutexLock lock(&actual_mu_);
    auto it = actual_cost_.find(std::this_thread::get_id());
    if (it == actual_cost_.end()) return std::nullopt;
    CostProfile out = it->second;
    actual_cost_.erase(it);
    return out;
  }

  /// Discards any unconsumed actual-cost report left on this thread. The
  /// runner calls this immediately before invoking an operator so a stale
  /// report — left by a caller that ran an operator without taking its
  /// cost — can never be attributed to the next operator. Returns true when
  /// a stale report was actually dropped (also counted in the
  /// `exec.stale_actual_costs` metric).
  bool BeginOperatorScope() {
    bool stale = false;
    {
      MutexLock lock(&actual_mu_);
      stale = actual_cost_.erase(std::this_thread::get_id()) > 0;
    }
    if (stale && metrics_ != nullptr) {
      metrics_->Increment("exec.stale_actual_costs");
    }
    return stale;
  }

 private:
  ClusterResourceDescriptor resources_;
  VirtualTimeLedger ledger_;
  ThreadPool* pool_;
  obs::TraceRecorder* tracer_;
  obs::MetricsRegistry* metrics_;
  obs::ProfileStore* profile_store_;
  obs::ResourceTimeline* timeline_;
  obs::TelemetryHub* telemetry_ = nullptr;
  ExecOptions exec_options_;
  cache::ArtifactCatalog* catalog_ = nullptr;
  const faults::FaultPlan* fault_plan_ = nullptr;
  /// Leaf lock (lowest rank): held only for map access, never across a call
  /// into metrics/trace/ledger.
  mutable Mutex actual_mu_{kLockRankExecContext};
  std::map<std::thread::id, CostProfile> actual_cost_ GUARDED_BY(actual_mu_);
};

}  // namespace keystone

#endif  // KEYSTONE_CORE_EXEC_CONTEXT_H_
