#ifndef KEYSTONE_CORE_EXEC_CONTEXT_H_
#define KEYSTONE_CORE_EXEC_CONTEXT_H_

#include <memory>
#include <optional>

#include "src/common/thread_pool.h"
#include "src/sim/cost_profile.h"
#include "src/sim/resources.h"
#include "src/sim/virtual_time.h"

namespace keystone {

/// Everything an operator needs at execution time: the cluster description,
/// the virtual-time ledger, and a worker pool for real (in-process) compute.
/// Operators run their real kernels on the pool and report the cost profile
/// of the equivalent distributed execution, which the executor charges to
/// the ledger.
class ExecContext {
 public:
  explicit ExecContext(const ClusterResourceDescriptor& resources)
      : resources_(resources),
        ledger_(resources),
        pool_(&ThreadPool::Global()) {}

  const ClusterResourceDescriptor& resources() const { return resources_; }
  VirtualTimeLedger* ledger() { return &ledger_; }
  ThreadPool* pool() { return pool_; }

  /// Operators whose cost depends on runtime behaviour (e.g. iterative
  /// solvers whose iteration count is data dependent) call this during
  /// ApplyAny/FitAny; the executor reads and clears it afterwards, falling
  /// back to the operator's a-priori cost estimate when absent.
  void ReportActualCost(const CostProfile& cost) { actual_cost_ = cost; }

  std::optional<CostProfile> TakeActualCost() {
    auto out = actual_cost_;
    actual_cost_.reset();
    return out;
  }

 private:
  ClusterResourceDescriptor resources_;
  VirtualTimeLedger ledger_;
  ThreadPool* pool_;
  std::optional<CostProfile> actual_cost_;
};

}  // namespace keystone

#endif  // KEYSTONE_CORE_EXEC_CONTEXT_H_
