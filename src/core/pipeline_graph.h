#ifndef KEYSTONE_CORE_PIPELINE_GRAPH_H_
#define KEYSTONE_CORE_PIPELINE_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/operator.h"
#include "src/data/dist_dataset.h"

namespace keystone {

/// Node kinds in the operator DAG (paper Figure 5).
enum class NodeKind {
  /// A dataset bound at construction time (training data, labels).
  kSource,
  /// The pipeline's runtime input (bound when the fitted pipeline is
  /// applied to new data).
  kPlaceholder,
  /// A transformer applied to one upstream dataset.
  kTransformer,
  /// An estimator fit on upstream dataset(s); output is a model.
  kEstimator,
  /// Applies the model produced by an estimator node to a dataset.
  kApplyModel,
  /// Zips the outputs of several branches into per-record sequences.
  kGather,
};

const char* NodeKindName(NodeKind kind);

/// One node of the operator DAG.
struct GraphNode {
  NodeKind kind = NodeKind::kSource;
  std::string name;

  /// Dataset inputs (node ids). Transformer: 1. Estimator: 1 (data) or
  /// 2 (data, labels). ApplyModel: 1. Gather: >= 1.
  std::vector<int> inputs;

  /// For kApplyModel: the estimator node that supplies the model.
  int model_input = -1;

  /// Operator payloads (by kind).
  std::shared_ptr<TransformerBase> transformer;
  std::shared_ptr<EstimatorBase> estimator;
  AnyDataset bound_data;
};

/// The operator DAG built incrementally by the Pipeline API. Nodes are
/// append-only and identified by dense integer ids; every edge points from a
/// lower id to a higher id, so node order is already topological.
class PipelineGraph {
 public:
  int AddSource(AnyDataset data, std::string name);
  int AddPlaceholder(std::string name);
  int AddTransformer(std::shared_ptr<TransformerBase> op, int input);
  int AddEstimator(std::shared_ptr<EstimatorBase> op, int data_input,
                   int label_input);  // label_input = -1 if unsupervised
  int AddApplyModel(int estimator_node, int data_input);
  int AddGather(std::shared_ptr<TransformerBase> gather_op,
                std::vector<int> inputs);

  const GraphNode& node(int id) const { return nodes_[id]; }
  GraphNode* mutable_node(int id) { return &nodes_[id]; }
  int size() const { return static_cast<int>(nodes_.size()); }

  /// All dependency ids of a node: inputs plus model_input when set.
  std::vector<int> Dependencies(int id) const;

  /// Direct successors of every node (consumers).
  std::vector<std::vector<int>> SuccessorLists() const;

  /// Nodes that (transitively) depend on `root`, including root.
  std::vector<bool> ReachableFrom(int root) const;

  /// Nodes that `target` (transitively) depends on, including target.
  std::vector<bool> AncestorsOf(int target) const;

  /// Copies the sub-DAG feeding `target` with `placeholder` replaced by
  /// `replacement`; nodes not downstream of `placeholder` are shared, not
  /// copied. Returns the id corresponding to `target` in the copy.
  int CopyWithSubstitution(int target, int placeholder, int replacement);

  /// Merges structurally identical nodes (same kind, operator instance,
  /// bound data and dependencies) — the paper's common sub-expression
  /// elimination (§4.2). Returns the number of nodes eliminated and fills
  /// `remap` (old id -> surviving id) if non-null.
  int EliminateCommonSubexpressions(std::vector<int>* remap);

  /// Graphviz rendering for diagnostics.
  std::string ToDot() const;

 private:
  int AddNode(GraphNode node);

  std::vector<GraphNode> nodes_;
};

}  // namespace keystone

#endif  // KEYSTONE_CORE_PIPELINE_GRAPH_H_
