#ifndef KEYSTONE_CORE_PIPELINE_H_
#define KEYSTONE_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "src/core/pipeline_graph.h"

namespace keystone {

/// Zips the per-record outputs of several branch datasets (all of element
/// type B and identical record order) into records of type std::vector<B>.
/// Implements the paper's `gather` combinator.
template <typename B>
class GatherTransformer : public TransformerBase {
 public:
  std::string Name() const override { return "Gather"; }

  AnyDataset ApplyAny(const std::vector<AnyDataset>& inputs,
                      ExecContext* ctx) const override {
    (void)ctx;
    KS_CHECK(!inputs.empty());
    std::vector<std::shared_ptr<const DistDataset<B>>> branches;
    branches.reserve(inputs.size());
    for (const auto& in : inputs) branches.push_back(DistDataset<B>::Cast(in));
    const size_t parts = branches[0]->NumPartitions();
    for (const auto& b : branches) {
      KS_CHECK_EQ(b->NumPartitions(), parts);
    }
    std::vector<std::vector<std::vector<B>>> out(parts);
    for (size_t p = 0; p < parts; ++p) {
      const size_t records = branches[0]->partition(p).size();
      out[p].resize(records);
      for (const auto& b : branches) {
        KS_CHECK_EQ(b->partition(p).size(), records);
        for (size_t i = 0; i < records; ++i) {
          out[p][i].push_back(b->partition(p)[i]);
        }
      }
    }
    return std::make_shared<DistDataset<std::vector<B>>>(std::move(out));
  }

  /// Branches must agree in kind; the gathered record is a sequence whose
  /// total flattened dimension is the sum of the branch dimensions.
  ValueShape TransferShapeMulti(
      const std::vector<ValueShape>& ins) const override {
    if (ins.empty()) return ValueShape::Top();
    int64_t total = 0;
    bool known = true;
    for (const ValueShape& in : ins) {
      if (in.IsBottom()) return ValueShape::Bottom();
      int64_t dim = ValueShape::kUnknownDim;
      switch (in.kind) {
        case ShapeKind::kScalar: dim = 1; break;
        case ShapeKind::kVector: dim = in.d0; break;
        default: break;
      }
      if (dim == ValueShape::kUnknownDim) {
        known = false;
      } else {
        total += dim;
      }
    }
    return ValueShape::VectorSeq(static_cast<int64_t>(ins.size()),
                                 known ? total : ValueShape::kUnknownDim);
  }
};

/// Flattens gathered branch outputs (vectors of dense vectors) into one
/// concatenated feature vector per record. Commonly follows Gather when
/// branches emit feature blocks (e.g. the TIMIT pipeline).
class ConcatFeatures : public Transformer<std::vector<std::vector<double>>,
                                          std::vector<double>> {
 public:
  std::string Name() const override { return "ConcatFeatures"; }

  std::vector<double> Apply(
      const std::vector<std::vector<double>>& blocks) const override {
    std::vector<double> out;
    size_t total = 0;
    for (const auto& b : blocks) total += b.size();
    out.reserve(total);
    for (const auto& b : blocks) out.insert(out.end(), b.begin(), b.end());
    return out;
  }

  ValueShape TransferShape(const ValueShape& in) const override {
    return ValueShape::Vector(in.kind == ShapeKind::kVectorSeq
                                  ? in.d1
                                  : ValueShape::kUnknownDim);
  }
};

/// Typed, lazily-built ML pipeline from records of type A to records of
/// type B (paper Figure 4). Pipelines share an underlying operator DAG;
/// `AndThen` appends nodes and returns a new typed view. Call
/// PipelineExecutor::Fit (src/core/executor.h) to optimize and train.
template <typename A, typename B>
class Pipeline {
 public:
  Pipeline(std::shared_ptr<PipelineGraph> graph, int source, int sink)
      : graph_(std::move(graph)), source_(source), sink_(sink) {}

  /// Chains a typed transformer (any subclass of Transformer<B, C>).
  template <typename Op>
  auto AndThen(std::shared_ptr<Op> op) const
      -> Pipeline<A, typename Op::OutputType> {
    using C = typename Op::OutputType;
    static_assert(std::is_base_of_v<Transformer<B, C>, Op>,
                  "operator input type must match pipeline output type");
    const int node = graph_->AddTransformer(std::move(op), sink_);
    return Pipeline<A, C>(graph_, source_, node);
  }

  /// Chains a logical (possibly Optimizable) transformer whose output type
  /// cannot be deduced; C must be supplied explicitly.
  template <typename C>
  Pipeline<A, C> AndThenLogical(std::shared_ptr<TransformerBase> op) const {
    const int node = graph_->AddTransformer(std::move(op), sink_);
    return Pipeline<A, C>(graph_, source_, node);
  }

  /// Chains an unsupervised estimator fit on this pipeline's prefix applied
  /// to `data`; at runtime the fitted model transforms the pipeline input.
  template <typename Op>
  auto AndThen(std::shared_ptr<Op> est,
               std::shared_ptr<DistDataset<A>> data) const
      -> Pipeline<A, typename Op::OutputType> {
    using C = typename Op::OutputType;
    static_assert(std::is_base_of_v<Estimator<B, C>, Op>,
                  "estimator input type must match pipeline output type");
    return AndThenEstimatorImpl<C>(std::move(est), std::move(data), nullptr);
  }

  /// Chains a supervised estimator fit on (prefix(data), labels).
  template <typename Op, typename L>
  auto AndThen(std::shared_ptr<Op> est, std::shared_ptr<DistDataset<A>> data,
               std::shared_ptr<DistDataset<L>> labels) const
      -> Pipeline<A, typename Op::OutputType> {
    using C = typename Op::OutputType;
    static_assert(
        std::is_base_of_v<LabelEstimator<B, C, typename Op::LabelType>, Op>,
        "estimator input type must match pipeline output type");
    static_assert(std::is_same_v<L, typename Op::LabelType>,
                  "label dataset type must match the estimator's label type");
    return AndThenEstimatorImpl<C>(std::move(est), std::move(data),
                                   std::move(labels));
  }

  /// Chains a logical estimator (possibly Optimizable); C explicit.
  template <typename C>
  Pipeline<A, C> AndThenLogicalEstimator(std::shared_ptr<EstimatorBase> est,
                                         AnyDataset data,
                                         AnyDataset labels) const {
    return AndThenEstimatorImpl<C>(std::move(est), std::move(data),
                                   std::move(labels));
  }

  /// Combines the outputs of several branches (all rooted at the same
  /// input) into per-record sequences.
  static Pipeline<A, std::vector<B>> Gather(
      const std::vector<Pipeline<A, B>>& branches) {
    KS_CHECK(!branches.empty());
    auto graph = branches[0].graph_;
    const int source = branches[0].source_;
    std::vector<int> sinks;
    sinks.reserve(branches.size());
    for (const auto& b : branches) {
      KS_CHECK(b.graph_ == graph)
          << "gathered branches must share one pipeline graph";
      KS_CHECK_EQ(b.source_, source);
      sinks.push_back(b.sink_);
    }
    const int node =
        graph->AddGather(std::make_shared<GatherTransformer<B>>(), sinks);
    return Pipeline<A, std::vector<B>>(graph, source, node);
  }

  const std::shared_ptr<PipelineGraph>& graph() const { return graph_; }
  int source() const { return source_; }
  int sink() const { return sink_; }

 private:
  template <typename FA, typename FB>
  friend class Pipeline;

  template <typename C>
  Pipeline<A, C> AndThenEstimatorImpl(std::shared_ptr<EstimatorBase> est,
                                      AnyDataset data,
                                      AnyDataset labels) const {
    // Training branch: replicate the prefix onto a source bound to `data`.
    const int data_source = graph_->AddSource(std::move(data), "TrainData");
    const int train_features =
        graph_->CopyWithSubstitution(sink_, source_, data_source);
    int label_source = -1;
    if (labels != nullptr) {
      label_source = graph_->AddSource(std::move(labels), "TrainLabels");
    }
    const int est_node =
        graph_->AddEstimator(std::move(est), train_features, label_source);
    // Runtime branch: apply the fitted model to the pipeline stream.
    const int apply_node = graph_->AddApplyModel(est_node, sink_);
    return Pipeline<A, C>(graph_, source_, apply_node);
  }

  std::shared_ptr<PipelineGraph> graph_;
  int source_;
  int sink_;
};

/// Starts a new pipeline: an identity over records of type A.
template <typename A>
Pipeline<A, A> PipelineInput(const std::string& name = "Input") {
  auto graph = std::make_shared<PipelineGraph>();
  const int placeholder = graph->AddPlaceholder(name);
  return Pipeline<A, A>(graph, placeholder, placeholder);
}

}  // namespace keystone

#endif  // KEYSTONE_CORE_PIPELINE_H_
