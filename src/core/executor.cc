#include "src/core/executor.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"
#include "src/common/string_util.h"
#include "src/optimizer/operator_optimizer.h"

namespace keystone {

namespace {

/// Spark-like admission control for the LRU baseline: objects above this
/// fraction of the cache are never admitted (§5.4 discusses the implicit
/// policy and its failure mode).
constexpr double kLruAdmitFraction = 0.35;

/// Resolves the physical transformer for a node, honoring a chosen option
/// when the node's operator is Optimizable.
std::shared_ptr<TransformerBase> EffectiveTransformer(
    const GraphNode& node, const std::map<const void*, int>& chosen) {
  auto* optimizable =
      dynamic_cast<OptimizableTransformer*>(node.transformer.get());
  if (optimizable == nullptr) return node.transformer;
  auto it = chosen.find(optimizable);
  const int index = it == chosen.end() ? 0 : it->second;
  return optimizable->options()[index];
}

std::shared_ptr<EstimatorBase> EffectiveEstimator(
    const GraphNode& node, const std::map<const void*, int>& chosen) {
  auto* optimizable =
      dynamic_cast<OptimizableEstimator*>(node.estimator.get());
  if (optimizable == nullptr) return node.estimator;
  auto it = chosen.find(optimizable);
  const int index = it == chosen.end() ? 0 : it->second;
  return optimizable->options()[index];
}

}  // namespace

const char* CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kNone:
      return "none";
    case CachePolicy::kRuleBased:
      return "rule-based";
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kGreedy:
      return "greedy";
    case CachePolicy::kExhaustive:
      return "exhaustive";
  }
  return "?";
}

OptimizationConfig OptimizationConfig::None() {
  OptimizationConfig cfg;
  cfg.operator_selection = false;
  cfg.common_subexpression = false;
  cfg.cache_policy = CachePolicy::kNone;
  return cfg;
}

OptimizationConfig OptimizationConfig::PipeOnly() {
  OptimizationConfig cfg;
  cfg.operator_selection = false;
  cfg.common_subexpression = true;
  cfg.cache_policy = CachePolicy::kGreedy;
  return cfg;
}

OptimizationConfig OptimizationConfig::Full() { return OptimizationConfig(); }

std::string PipelineReport::ToString() const {
  std::ostringstream os;
  os << "PipelineReport{optimize=" << HumanSeconds(optimize_seconds)
     << ", load=" << HumanSeconds(load_seconds)
     << ", featurize=" << HumanSeconds(featurize_seconds)
     << ", solve=" << HumanSeconds(solve_seconds)
     << ", total=" << HumanSeconds(total_train_seconds)
     << ", cse_eliminated=" << cse_eliminated << ", cache="
     << HumanBytes(cache_used_bytes) << "/" << HumanBytes(cache_budget_bytes)
     << "}\n";
  for (const auto& node : nodes) {
    os << "  [" << node.id << "] " << node.name;
    if (!node.chosen_physical.empty()) os << " -> " << node.chosen_physical;
    os << " t/pass=" << HumanSeconds(node.compute_seconds)
       << " w=" << node.weight << " out=" << HumanBytes(node.output_bytes)
       << (node.cached ? " [cached]" : "") << "\n";
  }
  return os.str();
}

FittedPipelineUntyped::FittedPipelineUntyped(
    std::shared_ptr<PipelineGraph> graph, int placeholder, int sink,
    std::map<int, std::shared_ptr<TransformerBase>> models,
    std::map<int, std::shared_ptr<TransformerBase>> chosen_transformers)
    : graph_(std::move(graph)),
      placeholder_(placeholder),
      sink_(sink),
      models_(std::move(models)),
      chosen_transformers_(std::move(chosen_transformers)) {}

std::shared_ptr<TransformerBase> FittedPipelineUntyped::ModelFor(
    int estimator_node) const {
  auto it = models_.find(estimator_node);
  KS_CHECK(it != models_.end())
      << "no model fitted for node " << estimator_node;
  return it->second;
}

AnyDataset FittedPipelineUntyped::Apply(const AnyDataset& input,
                                        ExecContext* ctx) const {
  const auto runtime_mask = graph_->ReachableFrom(placeholder_);
  const auto needed = graph_->AncestorsOf(sink_);
  const auto& resources = ctx->resources();

  // Charge loading the evaluation data.
  const DataStats input_stats = input->ComputeStats();
  ctx->ledger()->ChargeSeconds(
      "LoadTest", resources.DiskReadSeconds(input_stats.TotalBytes() /
                                            std::max(1, resources.num_nodes)));

  std::map<int, AnyDataset> outputs;
  outputs[placeholder_] = input;

  for (int id = 0; id < graph_->size(); ++id) {
    if (!runtime_mask[id] || !needed[id] || id == placeholder_) continue;
    const GraphNode& node = graph_->node(id);
    std::vector<AnyDataset> inputs;
    for (int dep : node.inputs) {
      auto it = outputs.find(dep);
      KS_CHECK(it != outputs.end())
          << "runtime node " << node.name << " depends on train-only data";
      inputs.push_back(it->second);
    }
    const DataStats in_stats = inputs[0]->ComputeStats();

    std::shared_ptr<TransformerBase> op;
    switch (node.kind) {
      case NodeKind::kTransformer:
      case NodeKind::kGather: {
        auto it = chosen_transformers_.find(id);
        op = it != chosen_transformers_.end() ? it->second : node.transformer;
        break;
      }
      case NodeKind::kApplyModel:
        op = ModelFor(node.model_input);
        break;
      default:
        KS_CHECK(false) << "unexpected " << NodeKindName(node.kind)
                        << " on the runtime path";
    }
    outputs[id] = op->ApplyAny(inputs, ctx);
    outputs[id]->set_virtual_scale(inputs[0]->virtual_scale());
    const auto actual = ctx->TakeActualCost();
    const CostProfile cost =
        (actual.has_value() && inputs[0]->virtual_scale() <= 1.0)
            ? *actual
            : op->EstimateCost(in_stats, resources.num_nodes);
    ctx->ledger()->Charge("Eval", cost);
  }
  auto it = outputs.find(sink_);
  KS_CHECK(it != outputs.end());
  return it->second;
}

PipelineExecutor::PipelineExecutor(const ClusterResourceDescriptor& resources,
                                   const OptimizationConfig& config)
    : config_(config), context_(resources) {}

void PipelineExecutor::ProfilePass(PipelineGraph* graph,
                                   const std::vector<bool>& train_mask,
                                   size_t sample_size, bool select_ops,
                                   bool record_large,
                                   std::map<int, int>* chosen_options,
                                   std::vector<ProfileEntry>* profile,
                                   PipelineReport* report) {
  const auto& resources = context_.resources();
  std::map<int, AnyDataset> outputs;
  std::map<int, std::shared_ptr<TransformerBase>> sample_models;
  std::map<const void*, int> chosen_ptrs;
  for (const auto& [id, index] : *chosen_options) {
    const GraphNode& node = graph->node(id);
    const void* op = node.transformer != nullptr
                         ? static_cast<const void*>(node.transformer.get())
                         : static_cast<const void*>(node.estimator.get());
    chosen_ptrs[op] = index;
  }

  for (int id = 0; id < graph->size(); ++id) {
    if (!train_mask[id]) continue;
    GraphNode& node = *graph->mutable_node(id);
    ProfileEntry& entry = (*profile)[id];
    double seconds = 0.0;
    DataStats out_stats;

    switch (node.kind) {
      case NodeKind::kSource: {
        entry.full_records = static_cast<size_t>(
            node.bound_data->NumRecords() * node.bound_data->virtual_scale());
        auto sample = node.bound_data->SamplePrefix(sample_size);
        outputs[id] = sample;
        out_stats = sample->ComputeStats();
        seconds = resources.DiskReadSeconds(out_stats.TotalBytes() /
                                            std::max(1, resources.num_nodes));
        break;
      }
      case NodeKind::kTransformer:
      case NodeKind::kGather: {
        std::vector<AnyDataset> inputs;
        for (int dep : node.inputs) inputs.push_back(outputs.at(dep));
        const DataStats in_stats = inputs[0]->ComputeStats();
        entry.full_records = (*profile)[node.inputs[0]].full_records;

        auto* optimizable =
            dynamic_cast<OptimizableTransformer*>(node.transformer.get());
        if (select_ops && optimizable != nullptr &&
            chosen_ptrs.count(optimizable) == 0) {
          const DataStats full_stats = in_stats.ScaledTo(entry.full_records);
          const PhysicalChoice choice =
              ChooseTransformerOption(*optimizable, full_stats, resources);
          (*chosen_options)[id] = choice.option_index;
          chosen_ptrs[optimizable] = choice.option_index;
        }
        auto op = EffectiveTransformer(node, chosen_ptrs);
        outputs[id] = op->ApplyAny(inputs, &context_);
        const auto actual = context_.TakeActualCost();
        CostProfile cost = actual.has_value()
                               ? *actual
                               : op->EstimateCost(in_stats,
                                                  resources.num_nodes);
        cost.rounds = 0;  // Sample jobs skip full-cluster barriers.
        seconds = resources.SecondsFor(cost);
        out_stats = outputs[id]->ComputeStats();
        break;
      }
      case NodeKind::kEstimator: {
        const AnyDataset data = outputs.at(node.inputs[0]);
        const AnyDataset labels =
            node.inputs.size() > 1 ? outputs.at(node.inputs[1]) : nullptr;
        const DataStats in_stats = data->ComputeStats();
        entry.full_records = 0;  // Output is a model, not a dataset.

        auto* optimizable =
            dynamic_cast<OptimizableEstimator*>(node.estimator.get());
        if (select_ops && optimizable != nullptr &&
            chosen_ptrs.count(optimizable) == 0) {
          const size_t full_n = (*profile)[node.inputs[0]].full_records;
          const DataStats full_stats = in_stats.ScaledTo(full_n);
          const PhysicalChoice choice =
              ChooseEstimatorOption(*optimizable, full_stats, resources);
          (*chosen_options)[id] = choice.option_index;
          chosen_ptrs[optimizable] = choice.option_index;
        }
        auto est = EffectiveEstimator(node, chosen_ptrs);
        sample_models[id] = est->FitAny(data, labels, &context_);
        const auto actual = context_.TakeActualCost();
        CostProfile cost = actual.has_value()
                               ? *actual
                               : est->EstimateCost(in_stats,
                                                   resources.num_nodes);
        cost.rounds = 0;  // Sample jobs skip full-cluster barriers.
        seconds = resources.SecondsFor(cost);
        break;
      }
      case NodeKind::kApplyModel: {
        const AnyDataset data = outputs.at(node.inputs[0]);
        const DataStats in_stats = data->ComputeStats();
        entry.full_records = (*profile)[node.inputs[0]].full_records;
        auto model = sample_models.at(node.model_input);
        outputs[id] = model->ApplyAny({data}, &context_);
        const auto actual = context_.TakeActualCost();
        CostProfile cost = actual.has_value()
                               ? *actual
                               : model->EstimateCost(in_stats,
                                                     resources.num_nodes);
        cost.rounds = 0;  // Sample jobs skip full-cluster barriers.
        seconds = resources.SecondsFor(cost);
        out_stats = outputs[id]->ComputeStats();
        break;
      }
      case NodeKind::kPlaceholder:
        KS_CHECK(false) << "placeholder cannot be on the training path";
    }

    // Records that flowed through this node during the sample pass (the
    // node input count; for sources/transformers that equals the output).
    size_t sample_records = out_stats.num_records;
    if (node.kind == NodeKind::kEstimator) {
      sample_records = outputs.count(node.inputs[0]) > 0
                           ? outputs.at(node.inputs[0])->NumRecords()
                           : 0;
    }
    if (record_large) {
      entry.seconds_large = seconds;
      entry.records_large = sample_records;
    } else {
      entry.seconds_small = seconds;
      entry.records_small = sample_records;
    }
    entry.bytes_per_record = out_stats.bytes_per_record;
    (void)report;
  }
}

std::shared_ptr<FittedPipelineUntyped> PipelineExecutor::FitGraph(
    const PipelineGraph& original, int placeholder, int sink,
    PipelineReport* report) {
  PipelineReport local_report;
  if (report == nullptr) report = &local_report;
  *report = PipelineReport();

  auto graph = std::make_shared<PipelineGraph>(original);
  const auto& resources = context_.resources();

  // --- Whole-pipeline rewrite: common sub-expression elimination (§4.2).
  if (config_.common_subexpression) {
    std::vector<int> remap;
    report->cse_eliminated = graph->EliminateCommonSubexpressions(&remap);
    sink = remap[sink];
    placeholder = remap[placeholder];
  }

  const auto live = graph->AncestorsOf(sink);
  const auto runtime_mask = graph->ReachableFrom(placeholder);
  std::vector<bool> train_mask(graph->size());
  for (int id = 0; id < graph->size(); ++id) {
    train_mask[id] = live[id] && !runtime_mask[id];
  }

  // --- Execution subsampling + operator selection (§3, §4.1).
  const bool plan_cache = config_.cache_policy == CachePolicy::kGreedy ||
                          config_.cache_policy == CachePolicy::kExhaustive;
  const bool need_profile = config_.operator_selection || plan_cache;
  std::map<int, int> chosen_options;
  std::vector<ProfileEntry> profile(graph->size());
  if (need_profile) {
    ProfilePass(graph.get(), train_mask, config_.profile_sample_large,
                config_.operator_selection, /*record_large=*/true,
                &chosen_options, &profile, report);
    ProfilePass(graph.get(), train_mask, config_.profile_sample_small,
                /*select_ops=*/false, /*record_large=*/false, &chosen_options,
                &profile, report);
    for (int id = 0; id < graph->size(); ++id) {
      if (train_mask[id]) {
        report->optimize_seconds +=
            profile[id].seconds_small + profile[id].seconds_large;
      }
    }
  }

  std::map<const void*, int> chosen_ptrs;
  for (const auto& [id, index] : chosen_options) {
    const GraphNode& node = graph->node(id);
    const void* op = node.transformer != nullptr
                         ? static_cast<const void*>(node.transformer.get())
                         : static_cast<const void*>(node.estimator.get());
    chosen_ptrs[op] = index;
  }

  // --- Materialization planning from the extrapolated profile (§4.3).
  const double budget =
      config_.cache_budget_bytes >= 0.0
          ? config_.cache_budget_bytes
          : config_.cache_fraction * resources.ClusterMemoryBytes();
  report->cache_budget_bytes = budget;

  auto node_weight = [&](int id) -> int {
    const GraphNode& node = graph->node(id);
    if (node.kind == NodeKind::kEstimator) {
      return EffectiveEstimator(node, chosen_ptrs)->Weight();
    }
    if (node.transformer != nullptr) {
      return EffectiveTransformer(node, chosen_ptrs)->Weight();
    }
    return 1;
  };

  auto terminals_of = [&]() {
    const auto succ = graph->SuccessorLists();
    std::vector<int> terminals;
    for (int id = 0; id < graph->size(); ++id) {
      if (!train_mask[id]) continue;
      bool has_train_succ = false;
      for (int s : succ[id]) {
        if (train_mask[s] && live[s]) has_train_succ = true;
      }
      if (!has_train_succ) terminals.push_back(id);
    }
    return terminals;
  };
  const std::vector<int> terminals = terminals_of();

  std::vector<bool> cache_set(graph->size(), false);
  if (plan_cache) {
    MaterializationProblem plan;
    plan.graph = graph.get();
    plan.resources = resources;
    plan.memory_budget_bytes = budget;
    plan.terminals = terminals;
    plan.info.resize(graph->size());
    for (int id = 0; id < graph->size(); ++id) {
      NodeRuntimeInfo& info = plan.info[id];
      info.live = train_mask[id];
      if (!info.live) continue;
      const GraphNode& node = graph->node(id);
      info.weight = node_weight(id);
      info.always_cached = node.kind == NodeKind::kEstimator;
      const ProfileEntry& entry = profile[id];
      const double n_full = static_cast<double>(entry.full_records);
      // Linear extrapolation through the two sampled points (§5.4); when
      // the dataset is smaller than both sample sizes the points coincide,
      // so fall back to proportional scaling.
      double total_seconds;
      if (entry.records_large > entry.records_small) {
        const double slope =
            (entry.seconds_large - entry.seconds_small) /
            (entry.records_large - entry.records_small);
        total_seconds = std::max(
            0.0, entry.seconds_large +
                     slope * (n_full - entry.records_large));
      } else {
        total_seconds = entry.seconds_large * n_full /
                        std::max<size_t>(1, entry.records_large);
      }
      info.compute_seconds = total_seconds / std::max(1, info.weight);
      info.output_bytes = entry.bytes_per_record * n_full;
    }
    cache_set = config_.cache_policy == CachePolicy::kGreedy
                    ? GreedyCacheSelection(plan)
                    : ExhaustiveCacheSelection(plan);
  }

  // --- Full-scale execution of the training path.
  std::map<int, AnyDataset> outputs;
  std::map<int, std::shared_ptr<TransformerBase>> models;
  std::vector<NodeRuntimeInfo> actual_info(graph->size());
  report->nodes.clear();

  for (int id = 0; id < graph->size(); ++id) {
    if (!train_mask[id]) continue;
    const GraphNode& node = graph->node(id);
    NodeExecutionRecord record;
    record.id = id;
    record.name = node.name;
    record.kind = node.kind;
    record.weight = node_weight(id);

    double total_seconds = 0.0;
    DataStats out_stats;
    switch (node.kind) {
      case NodeKind::kSource: {
        outputs[id] = node.bound_data;
        out_stats = node.bound_data->ComputeStats();
        total_seconds = resources.DiskReadSeconds(
            out_stats.TotalBytes() / std::max(1, resources.num_nodes));
        break;
      }
      case NodeKind::kTransformer:
      case NodeKind::kGather: {
        std::vector<AnyDataset> inputs;
        for (int dep : node.inputs) inputs.push_back(outputs.at(dep));
        const double scale = inputs[0]->virtual_scale();
        const DataStats in_stats = inputs[0]->ComputeStats();
        auto op = EffectiveTransformer(node, chosen_ptrs);
        if (op != node.transformer) record.chosen_physical = op->Name();
        outputs[id] = op->ApplyAny(inputs, &context_);
        outputs[id]->set_virtual_scale(scale);
        // With a virtual scale, kernel-reported costs describe the real
        // (small) run; use the cost model at the scaled statistics instead.
        const auto actual = context_.TakeActualCost();
        total_seconds = resources.SecondsFor(
            (actual.has_value() && scale <= 1.0)
                ? *actual
                : op->EstimateCost(in_stats, resources.num_nodes));
        out_stats = outputs[id]->ComputeStats();
        break;
      }
      case NodeKind::kEstimator: {
        const AnyDataset data = outputs.at(node.inputs[0]);
        const AnyDataset labels =
            node.inputs.size() > 1 ? outputs.at(node.inputs[1]) : nullptr;
        const double scale = data->virtual_scale();
        const DataStats in_stats = data->ComputeStats();
        auto est = EffectiveEstimator(node, chosen_ptrs);
        if (est != node.estimator) record.chosen_physical = est->Name();
        models[id] = est->FitAny(data, labels, &context_);
        const auto actual = context_.TakeActualCost();
        total_seconds = resources.SecondsFor(
            (actual.has_value() && scale <= 1.0)
                ? *actual
                : est->EstimateCost(in_stats, resources.num_nodes));
        break;
      }
      case NodeKind::kApplyModel: {
        const AnyDataset data = outputs.at(node.inputs[0]);
        const double scale = data->virtual_scale();
        const DataStats in_stats = data->ComputeStats();
        auto model = models.at(node.model_input);
        outputs[id] = model->ApplyAny({data}, &context_);
        outputs[id]->set_virtual_scale(scale);
        const auto actual = context_.TakeActualCost();
        total_seconds = resources.SecondsFor(
            (actual.has_value() && scale <= 1.0)
                ? *actual
                : model->EstimateCost(in_stats, resources.num_nodes));
        out_stats = outputs[id]->ComputeStats();
        break;
      }
      case NodeKind::kPlaceholder:
        KS_CHECK(false) << "placeholder cannot be on the training path";
    }

    NodeRuntimeInfo& info = actual_info[id];
    info.live = true;
    info.weight = record.weight;
    info.always_cached = node.kind == NodeKind::kEstimator;
    info.compute_seconds = total_seconds / std::max(1, record.weight);
    info.output_bytes = out_stats.TotalBytes();

    record.compute_seconds = info.compute_seconds;
    record.output_bytes = info.output_bytes;
    record.cached = cache_set[id];
    record.output_stats = out_stats;
    report->nodes.push_back(std::move(record));
  }

  // --- Final virtual-time accounting under the configured cache policy.
  MaterializationProblem actual;
  actual.graph = graph.get();
  actual.resources = resources;
  actual.memory_budget_bytes = budget;
  actual.terminals = terminals;
  actual.info = std::move(actual_info);

  std::vector<double> per_node;
  if (config_.cache_policy == CachePolicy::kLru) {
    report->total_train_seconds =
        SimulateLruRuntime(actual, budget, kLruAdmitFraction, &per_node);
  } else {
    report->total_train_seconds =
        EstimateRuntimeDetailed(actual, cache_set, &per_node);
  }
  report->cache_set = cache_set;
  report->cache_used_bytes = CacheSetBytes(actual, cache_set);

  for (int id = 0; id < graph->size(); ++id) {
    if (!train_mask[id]) continue;
    switch (graph->node(id).kind) {
      case NodeKind::kSource:
        report->load_seconds += per_node[id];
        break;
      case NodeKind::kEstimator:
        report->solve_seconds += per_node[id];
        break;
      default:
        report->featurize_seconds += per_node[id];
        break;
    }
  }
  context_.ledger()->ChargeSeconds("Optimize", report->optimize_seconds);
  context_.ledger()->ChargeSeconds("Load", report->load_seconds);
  context_.ledger()->ChargeSeconds("Featurize", report->featurize_seconds);
  context_.ledger()->ChargeSeconds("Solve", report->solve_seconds);

  // --- Resolve chosen physical transformers for the runtime path.
  std::map<int, std::shared_ptr<TransformerBase>> chosen_transformers;
  for (int id = 0; id < graph->size(); ++id) {
    const GraphNode& node = graph->node(id);
    if (node.transformer == nullptr) continue;
    auto* optimizable =
        dynamic_cast<OptimizableTransformer*>(node.transformer.get());
    if (optimizable == nullptr) continue;
    auto it = chosen_ptrs.find(optimizable);
    const int index = it == chosen_ptrs.end() ? 0 : it->second;
    chosen_transformers[id] = optimizable->options()[index];
  }

  return std::make_shared<FittedPipelineUntyped>(
      graph, placeholder, sink, std::move(models),
      std::move(chosen_transformers));
}

}  // namespace keystone
