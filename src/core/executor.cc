#include "src/core/executor.h"

#include <algorithm>
#include <sstream>

#include "src/analysis/plan_validator.h"
#include "src/common/check.h"
#include "src/common/string_util.h"
#include "src/common/timer.h"
#include "src/obs/metrics.h"
#include "src/obs/profile_store.h"
#include "src/obs/trace.h"
#include "src/optimizer/operator_optimizer.h"

namespace keystone {

namespace {

/// Spark-like admission control for the LRU baseline: objects above this
/// fraction of the cache are never admitted (§5.4 discusses the implicit
/// policy and its failure mode).
constexpr double kLruAdmitFraction = 0.35;

/// Resolves the physical transformer for a node, honoring a chosen option
/// when the node's operator is Optimizable.
std::shared_ptr<TransformerBase> EffectiveTransformer(
    const GraphNode& node, const std::map<const void*, int>& chosen) {
  auto* optimizable =
      dynamic_cast<OptimizableTransformer*>(node.transformer.get());
  if (optimizable == nullptr) return node.transformer;
  auto it = chosen.find(optimizable);
  const int index = it == chosen.end() ? 0 : it->second;
  return optimizable->options()[index];
}

std::shared_ptr<EstimatorBase> EffectiveEstimator(
    const GraphNode& node, const std::map<const void*, int>& chosen) {
  auto* optimizable =
      dynamic_cast<OptimizableEstimator*>(node.estimator.get());
  if (optimizable == nullptr) return node.estimator;
  auto it = chosen.find(optimizable);
  const int index = it == chosen.end() ? 0 : it->second;
  return optimizable->options()[index];
}

/// Collects everything one operator execution produces for observability;
/// the executor fills one of these per node per pass and flushes it to the
/// context's trace recorder / metrics / profile store.
struct SpanDraft {
  obs::TraceSpan span;
  // Input stats at the scale the kernel actually ran (for the store).
  DataStats in_stats;
  bool record_observation = false;

  void Flush(ExecContext* ctx, const std::string& op_name) {
    if (record_observation && span.observed.has_value() &&
        ctx->profile_store() != nullptr) {
      ctx->profile_store()->RecordObservation(op_name, in_stats,
                                              span.predicted, *span.observed,
                                              span.wall_seconds);
    }
    if (ctx->metrics() != nullptr) {
      ctx->metrics()->Increment(
          std::string("exec.spans.") + obs::TracePhaseName(span.phase));
      ctx->metrics()->Observe("exec.wall_seconds", span.wall_seconds);
    }
    if (ctx->tracer() != nullptr) ctx->tracer()->Record(std::move(span));
  }
};

}  // namespace

const char* CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kNone:
      return "none";
    case CachePolicy::kRuleBased:
      return "rule-based";
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kGreedy:
      return "greedy";
    case CachePolicy::kExhaustive:
      return "exhaustive";
  }
  return "?";
}

OptimizationConfig OptimizationConfig::None() {
  OptimizationConfig cfg;
  cfg.operator_selection = false;
  cfg.common_subexpression = false;
  cfg.cache_policy = CachePolicy::kNone;
  return cfg;
}

OptimizationConfig OptimizationConfig::PipeOnly() {
  OptimizationConfig cfg;
  cfg.operator_selection = false;
  cfg.common_subexpression = true;
  cfg.cache_policy = CachePolicy::kGreedy;
  return cfg;
}

OptimizationConfig OptimizationConfig::Full() { return OptimizationConfig(); }

std::string PipelineReport::ToString() const {
  std::ostringstream os;
  os << "PipelineReport{optimize=" << HumanSeconds(optimize_seconds)
     << (profiles_from_store ? " (from store)" : "")
     << ", load=" << HumanSeconds(load_seconds)
     << ", featurize=" << HumanSeconds(featurize_seconds)
     << ", solve=" << HumanSeconds(solve_seconds)
     << ", total=" << HumanSeconds(total_train_seconds)
     << ", cse_eliminated=" << cse_eliminated << ", cache="
     << HumanBytes(cache_used_bytes) << "/" << HumanBytes(cache_budget_bytes)
     << "}\n";
  for (const auto& node : nodes) {
    os << "  [" << node.id << "] " << node.name;
    if (!node.chosen_physical.empty()) os << " -> " << node.chosen_physical;
    os << " t/pass=" << HumanSeconds(node.compute_seconds)
       << " w=" << node.weight << " out=" << HumanBytes(node.output_bytes)
       << (node.cached ? " [cached]" : "") << "\n";
  }
  return os.str();
}

FittedPipelineUntyped::FittedPipelineUntyped(
    std::shared_ptr<PipelineGraph> graph, int placeholder, int sink,
    std::map<int, std::shared_ptr<TransformerBase>> models,
    std::map<int, std::shared_ptr<TransformerBase>> chosen_transformers)
    : graph_(std::move(graph)),
      placeholder_(placeholder),
      sink_(sink),
      models_(std::move(models)),
      chosen_transformers_(std::move(chosen_transformers)) {}

std::shared_ptr<TransformerBase> FittedPipelineUntyped::ModelFor(
    int estimator_node) const {
  auto it = models_.find(estimator_node);
  KS_CHECK(it != models_.end())
      << "no model fitted for node " << estimator_node;
  return it->second;
}

AnyDataset FittedPipelineUntyped::Apply(const AnyDataset& input,
                                        ExecContext* ctx) const {
  const auto runtime_mask = graph_->ReachableFrom(placeholder_);
  const auto needed = graph_->AncestorsOf(sink_);
  const auto& resources = ctx->resources();

  // Charge loading the evaluation data.
  const DataStats input_stats = input->ComputeStats();
  ctx->ledger()->ChargeSeconds(
      "LoadTest", resources.DiskReadSeconds(input_stats.TotalBytes() /
                                            std::max(1, resources.num_nodes)));

  std::map<int, AnyDataset> outputs;
  outputs[placeholder_] = input;

  for (int id = 0; id < graph_->size(); ++id) {
    if (!runtime_mask[id] || !needed[id] || id == placeholder_) continue;
    const GraphNode& node = graph_->node(id);
    std::vector<AnyDataset> inputs;
    for (int dep : node.inputs) {
      auto it = outputs.find(dep);
      KS_CHECK(it != outputs.end())
          << "runtime node " << node.name << " depends on train-only data";
      inputs.push_back(it->second);
    }
    const DataStats in_stats = inputs[0]->ComputeStats();

    std::shared_ptr<TransformerBase> op;
    switch (node.kind) {
      case NodeKind::kTransformer:
      case NodeKind::kGather: {
        auto it = chosen_transformers_.find(id);
        op = it != chosen_transformers_.end() ? it->second : node.transformer;
        break;
      }
      case NodeKind::kApplyModel:
        op = ModelFor(node.model_input);
        break;
      default:
        KS_CHECK(false) << "unexpected " << NodeKindName(node.kind)
                        << " on the runtime path";
    }
    SpanDraft draft;
    draft.span.node_id = id;
    draft.span.name = node.name;
    draft.span.kind = NodeKindName(node.kind);
    draft.span.phase = obs::TracePhase::kEval;
    draft.span.physical = op->Name();
    draft.span.predicted = op->EstimateCost(in_stats, resources.num_nodes);
    draft.span.records_in = in_stats.num_records;
    ctx->BeginOperatorScope();
    Timer timer;
    outputs[id] = op->ApplyAny(inputs, ctx);
    draft.span.wall_seconds = timer.ElapsedSeconds();
    outputs[id]->set_virtual_scale(inputs[0]->virtual_scale());
    draft.span.partitions = outputs[id]->NumPartitions();
    const auto actual = ctx->TakeActualCost();
    draft.span.observed = actual;
    draft.span.used_observed =
        actual.has_value() && inputs[0]->virtual_scale() <= 1.0;
    draft.record_observation = inputs[0]->virtual_scale() <= 1.0;
    draft.in_stats = in_stats;
    const CostProfile cost =
        draft.span.used_observed
            ? *actual
            : op->EstimateCost(in_stats, resources.num_nodes);
    draft.span.virtual_seconds = ctx->ledger()->Charge("Eval", cost);
    draft.span.output_bytes = outputs[id]->ComputeStats().TotalBytes();
    draft.Flush(ctx, op->Name());
  }
  auto it = outputs.find(sink_);
  KS_CHECK(it != outputs.end());
  return it->second;
}

PipelineExecutor::PipelineExecutor(const ClusterResourceDescriptor& resources,
                                   const OptimizationConfig& config)
    : config_(config), context_(resources) {}

void PipelineExecutor::ProfilePass(PipelineGraph* graph,
                                   const std::vector<bool>& train_mask,
                                   size_t sample_size, bool select_ops,
                                   bool record_large,
                                   std::map<int, int>* chosen_options,
                                   std::vector<ProfileEntry>* profile,
                                   PipelineReport* report) {
  const auto& resources = context_.resources();
  // Observed history only corrects selection estimates when the user opted
  // into profile reuse; default behaviour stays purely model-driven.
  const obs::ProfileStore* history =
      config_.reuse_stored_profiles ? context_.profile_store() : nullptr;
  const obs::TracePhase phase = record_large ? obs::TracePhase::kProfileLarge
                                             : obs::TracePhase::kProfileSmall;
  std::map<int, AnyDataset> outputs;
  std::map<int, std::shared_ptr<TransformerBase>> sample_models;
  std::map<const void*, int> chosen_ptrs;
  for (const auto& [id, index] : *chosen_options) {
    const GraphNode& node = graph->node(id);
    const void* op = node.transformer != nullptr
                         ? static_cast<const void*>(node.transformer.get())
                         : static_cast<const void*>(node.estimator.get());
    chosen_ptrs[op] = index;
  }

  for (int id = 0; id < graph->size(); ++id) {
    if (!train_mask[id]) continue;
    GraphNode& node = *graph->mutable_node(id);
    ProfileEntry& entry = (*profile)[id];
    double seconds = 0.0;
    DataStats out_stats;
    SpanDraft draft;
    draft.span.node_id = id;
    draft.span.name = node.name;
    draft.span.kind = NodeKindName(node.kind);
    draft.span.phase = phase;
    std::string op_name;

    switch (node.kind) {
      case NodeKind::kSource: {
        entry.full_records = static_cast<size_t>(
            node.bound_data->NumRecords() * node.bound_data->virtual_scale());
        Timer timer;
        auto sample = node.bound_data->SamplePrefix(sample_size);
        draft.span.wall_seconds = timer.ElapsedSeconds();
        outputs[id] = sample;
        out_stats = sample->ComputeStats();
        seconds = resources.DiskReadSeconds(out_stats.TotalBytes() /
                                            std::max(1, resources.num_nodes));
        draft.span.predicted.bytes =
            out_stats.TotalBytes() / std::max(1, resources.num_nodes);
        draft.span.partitions = sample->NumPartitions();
        draft.span.records_in = out_stats.num_records;
        break;
      }
      case NodeKind::kTransformer:
      case NodeKind::kGather: {
        std::vector<AnyDataset> inputs;
        for (int dep : node.inputs) inputs.push_back(outputs.at(dep));
        const DataStats in_stats = inputs[0]->ComputeStats();
        entry.full_records = (*profile)[node.inputs[0]].full_records;

        auto* optimizable =
            dynamic_cast<OptimizableTransformer*>(node.transformer.get());
        if (select_ops && optimizable != nullptr &&
            chosen_ptrs.count(optimizable) == 0) {
          const DataStats full_stats = in_stats.ScaledTo(entry.full_records);
          const PhysicalChoice choice = ChooseTransformerOption(
              *optimizable, full_stats, resources, history);
          (*chosen_options)[id] = choice.option_index;
          chosen_ptrs[optimizable] = choice.option_index;
        }
        auto op = EffectiveTransformer(node, chosen_ptrs);
        op_name = op->Name();
        if (op != node.transformer) draft.span.physical = op_name;
        draft.span.predicted = op->EstimateCost(in_stats, resources.num_nodes);
        context_.BeginOperatorScope();
        Timer timer;
        outputs[id] = op->ApplyAny(inputs, &context_);
        draft.span.wall_seconds = timer.ElapsedSeconds();
        const auto actual = context_.TakeActualCost();
        draft.span.observed = actual;
        draft.span.used_observed = actual.has_value();
        draft.in_stats = in_stats;
        draft.record_observation = true;
        CostProfile cost =
            actual.has_value() ? *actual : draft.span.predicted;
        cost.rounds = 0;  // Sample jobs skip full-cluster barriers.
        seconds = resources.SecondsFor(cost);
        out_stats = outputs[id]->ComputeStats();
        draft.span.partitions = outputs[id]->NumPartitions();
        draft.span.records_in = in_stats.num_records;
        break;
      }
      case NodeKind::kEstimator: {
        const AnyDataset data = outputs.at(node.inputs[0]);
        const AnyDataset labels =
            node.inputs.size() > 1 ? outputs.at(node.inputs[1]) : nullptr;
        const DataStats in_stats = data->ComputeStats();
        entry.full_records = 0;  // Output is a model, not a dataset.

        auto* optimizable =
            dynamic_cast<OptimizableEstimator*>(node.estimator.get());
        if (select_ops && optimizable != nullptr &&
            chosen_ptrs.count(optimizable) == 0) {
          const size_t full_n = (*profile)[node.inputs[0]].full_records;
          const DataStats full_stats = in_stats.ScaledTo(full_n);
          const PhysicalChoice choice = ChooseEstimatorOption(
              *optimizable, full_stats, resources, history);
          (*chosen_options)[id] = choice.option_index;
          chosen_ptrs[optimizable] = choice.option_index;
        }
        auto est = EffectiveEstimator(node, chosen_ptrs);
        op_name = est->Name();
        if (est != node.estimator) draft.span.physical = op_name;
        draft.span.predicted =
            est->EstimateCost(in_stats, resources.num_nodes);
        context_.BeginOperatorScope();
        Timer timer;
        sample_models[id] = est->FitAny(data, labels, &context_);
        draft.span.wall_seconds = timer.ElapsedSeconds();
        const auto actual = context_.TakeActualCost();
        draft.span.observed = actual;
        draft.span.used_observed = actual.has_value();
        draft.in_stats = in_stats;
        draft.record_observation = true;
        CostProfile cost =
            actual.has_value() ? *actual : draft.span.predicted;
        cost.rounds = 0;  // Sample jobs skip full-cluster barriers.
        seconds = resources.SecondsFor(cost);
        draft.span.partitions = data->NumPartitions();
        draft.span.records_in = in_stats.num_records;
        break;
      }
      case NodeKind::kApplyModel: {
        const AnyDataset data = outputs.at(node.inputs[0]);
        const DataStats in_stats = data->ComputeStats();
        entry.full_records = (*profile)[node.inputs[0]].full_records;
        auto model = sample_models.at(node.model_input);
        op_name = model->Name();
        draft.span.physical = op_name;
        draft.span.predicted =
            model->EstimateCost(in_stats, resources.num_nodes);
        context_.BeginOperatorScope();
        Timer timer;
        outputs[id] = model->ApplyAny({data}, &context_);
        draft.span.wall_seconds = timer.ElapsedSeconds();
        const auto actual = context_.TakeActualCost();
        draft.span.observed = actual;
        draft.span.used_observed = actual.has_value();
        draft.in_stats = in_stats;
        draft.record_observation = true;
        CostProfile cost =
            actual.has_value() ? *actual : draft.span.predicted;
        cost.rounds = 0;  // Sample jobs skip full-cluster barriers.
        seconds = resources.SecondsFor(cost);
        out_stats = outputs[id]->ComputeStats();
        draft.span.partitions = outputs[id]->NumPartitions();
        draft.span.records_in = in_stats.num_records;
        break;
      }
      case NodeKind::kPlaceholder:
        KS_CHECK(false) << "placeholder cannot be on the training path";
    }

    // Records that flowed through this node during the sample pass (the
    // node input count; for sources/transformers that equals the output).
    size_t sample_records = out_stats.num_records;
    if (node.kind == NodeKind::kEstimator) {
      sample_records = outputs.count(node.inputs[0]) > 0
                           ? outputs.at(node.inputs[0])->NumRecords()
                           : 0;
    }
    if (record_large) {
      entry.seconds_large = seconds;
      entry.records_large = sample_records;
    } else {
      entry.seconds_small = seconds;
      entry.records_small = sample_records;
    }
    entry.bytes_per_record = out_stats.bytes_per_record;

    if (context_.profile_store() != nullptr) {
      obs::NodeProfileRecord record;
      record.seconds = seconds;
      record.records = sample_records;
      record.bytes_per_record = entry.bytes_per_record;
      record.full_records = entry.full_records;
      auto chosen = chosen_options->find(id);
      record.chosen_option =
          chosen == chosen_options->end() ? -1 : chosen->second;
      context_.profile_store()->RecordNodeProfile(
          obs::ProfileStore::NodeKey(id, node.name, sample_size), record);
    }
    // Cost-profile sanity: a NaN or negative prediction would silently
    // poison the extrapolation and every plan derived from it.
    if (config_.validate_plans) {
      analysis::ValidationReport cost_report;
      analysis::CheckCostProfile(draft.span.predicted, id, node.name,
                                 &cost_report);
      if (draft.span.observed.has_value()) {
        analysis::CheckCostProfile(*draft.span.observed, id,
                                   node.name + " (observed)", &cost_report);
      }
      KS_CHECK(cost_report.ok()) << cost_report.ToString();
    }
    draft.span.virtual_seconds = seconds;
    draft.span.output_bytes = out_stats.TotalBytes();
    draft.Flush(&context_, op_name.empty() ? node.name : op_name);
    (void)report;
  }
}

bool PipelineExecutor::ReuseStoredProfiles(const PipelineGraph& graph,
                                           const std::vector<bool>& train_mask,
                                           std::map<int, int>* chosen_options,
                                           std::vector<ProfileEntry>* profile) {
  obs::ProfileStore* store = context_.profile_store();
  if (store == nullptr) return false;
  struct Stored {
    int id;
    obs::NodeProfileRecord small;
    obs::NodeProfileRecord large;
  };
  std::vector<Stored> stored;
  for (int id = 0; id < graph.size(); ++id) {
    if (!train_mask[id]) continue;
    const std::string& name = graph.node(id).name;
    const auto large = store->NodeProfileFor(obs::ProfileStore::NodeKey(
        id, name, config_.profile_sample_large));
    const auto small = store->NodeProfileFor(obs::ProfileStore::NodeKey(
        id, name, config_.profile_sample_small));
    if (!large.has_value() || !small.has_value()) return false;
    stored.push_back({id, *small, *large});
  }
  // Full coverage: rebuild what the two sampling passes would have filled.
  for (const Stored& s : stored) {
    ProfileEntry& entry = (*profile)[s.id];
    entry.seconds_large = s.large.seconds;
    entry.records_large = s.large.records;
    entry.seconds_small = s.small.seconds;
    entry.records_small = s.small.records;
    // The small pass runs last live, so its stats are the ones that stick.
    entry.bytes_per_record = s.small.bytes_per_record;
    entry.full_records = s.large.full_records;
    if (s.large.chosen_option >= 0) {
      (*chosen_options)[s.id] = s.large.chosen_option;
    }
  }
  return true;
}

std::shared_ptr<FittedPipelineUntyped> PipelineExecutor::FitGraph(
    const PipelineGraph& original, int placeholder, int sink,
    PipelineReport* report) {
  PipelineReport local_report;
  if (report == nullptr) report = &local_report;
  *report = PipelineReport();

  // --- Static validation of the logical graph as submitted: catch
  // ill-formed DAGs before any rewriting or execution happens.
  if (config_.validate_plans) {
    analysis::PlanValidationOptions vopts;
    vopts.sink = sink;
    vopts.placeholder = placeholder;
    const analysis::ValidationReport vreport =
        analysis::PlanValidator(vopts).Validate(original);
    analysis::RecordDiagnostics(vreport, context_.metrics());
    KS_CHECK(vreport.ok()) << "pipeline plan failed validation:\n"
                           << vreport.ToString();
  }

  auto graph = std::make_shared<PipelineGraph>(original);
  const auto& resources = context_.resources();

  // --- Whole-pipeline rewrite: common sub-expression elimination (§4.2).
  if (config_.common_subexpression) {
    std::vector<int> remap;
    report->cse_eliminated = graph->EliminateCommonSubexpressions(&remap);
    sink = remap[sink];
    placeholder = remap[placeholder];
  }

  const auto live = graph->AncestorsOf(sink);
  const auto runtime_mask = graph->ReachableFrom(placeholder);
  std::vector<bool> train_mask(graph->size());
  for (int id = 0; id < graph->size(); ++id) {
    train_mask[id] = live[id] && !runtime_mask[id];
  }

  // --- Execution subsampling + operator selection (§3, §4.1).
  const bool plan_cache = config_.cache_policy == CachePolicy::kGreedy ||
                          config_.cache_policy == CachePolicy::kExhaustive;
  const bool need_profile = config_.operator_selection || plan_cache;
  std::map<int, int> chosen_options;
  std::vector<ProfileEntry> profile(graph->size());
  if (need_profile) {
    bool reused = false;
    if (config_.reuse_stored_profiles) {
      reused = ReuseStoredProfiles(*graph, train_mask, &chosen_options,
                                   &profile);
      if (reused) {
        report->profiles_from_store = true;
        if (context_.metrics() != nullptr) {
          context_.metrics()->Increment("profile_store.reuses");
        }
      }
    }
    if (!reused) {
      ProfilePass(graph.get(), train_mask, config_.profile_sample_large,
                  config_.operator_selection, /*record_large=*/true,
                  &chosen_options, &profile, report);
      ProfilePass(graph.get(), train_mask, config_.profile_sample_small,
                  /*select_ops=*/false, /*record_large=*/false,
                  &chosen_options, &profile, report);
      for (int id = 0; id < graph->size(); ++id) {
        if (train_mask[id]) {
          report->optimize_seconds +=
              profile[id].seconds_small + profile[id].seconds_large;
        }
      }
    }
  }

  std::map<const void*, int> chosen_ptrs;
  for (const auto& [id, index] : chosen_options) {
    const GraphNode& node = graph->node(id);
    const void* op = node.transformer != nullptr
                         ? static_cast<const void*>(node.transformer.get())
                         : static_cast<const void*>(node.estimator.get());
    chosen_ptrs[op] = index;
  }

  // --- Materialization planning from the extrapolated profile (§4.3).
  const double budget =
      config_.cache_budget_bytes >= 0.0
          ? config_.cache_budget_bytes
          : config_.cache_fraction * resources.ClusterMemoryBytes();
  report->cache_budget_bytes = budget;

  auto node_weight = [&](int id) -> int {
    const GraphNode& node = graph->node(id);
    if (node.kind == NodeKind::kEstimator) {
      return EffectiveEstimator(node, chosen_ptrs)->Weight();
    }
    if (node.transformer != nullptr) {
      return EffectiveTransformer(node, chosen_ptrs)->Weight();
    }
    return 1;
  };

  auto terminals_of = [&]() {
    const auto succ = graph->SuccessorLists();
    std::vector<int> terminals;
    for (int id = 0; id < graph->size(); ++id) {
      if (!train_mask[id]) continue;
      bool has_train_succ = false;
      for (int s : succ[id]) {
        if (train_mask[s] && live[s]) has_train_succ = true;
      }
      if (!has_train_succ) terminals.push_back(id);
    }
    return terminals;
  };
  const std::vector<int> terminals = terminals_of();

  std::vector<bool> cache_set(graph->size(), false);
  MaterializationProblem plan;
  if (plan_cache) {
    plan.graph = graph.get();
    plan.resources = resources;
    plan.memory_budget_bytes = budget;
    plan.terminals = terminals;
    plan.info.resize(graph->size());
    for (int id = 0; id < graph->size(); ++id) {
      NodeRuntimeInfo& info = plan.info[id];
      info.live = train_mask[id];
      if (!info.live) continue;
      const GraphNode& node = graph->node(id);
      info.weight = node_weight(id);
      info.always_cached = node.kind == NodeKind::kEstimator;
      const ProfileEntry& entry = profile[id];
      const double n_full = static_cast<double>(entry.full_records);
      // Linear extrapolation through the two sampled points (§5.4); when
      // the dataset is smaller than both sample sizes the points coincide,
      // so fall back to proportional scaling.
      double total_seconds;
      if (entry.records_large > entry.records_small) {
        const double slope =
            (entry.seconds_large - entry.seconds_small) /
            (entry.records_large - entry.records_small);
        total_seconds = std::max(
            0.0, entry.seconds_large +
                     slope * (n_full - entry.records_large));
      } else {
        total_seconds = entry.seconds_large * n_full /
                        std::max<size_t>(1, entry.records_large);
      }
      info.compute_seconds = total_seconds / std::max(1, info.weight);
      info.output_bytes = entry.bytes_per_record * n_full;
    }
    cache_set = config_.cache_policy == CachePolicy::kGreedy
                    ? GreedyCacheSelection(plan)
                    : ExhaustiveCacheSelection(plan);
  }

  // --- Static validation of the optimized plan: the rewritten graph and
  // the materialization plan it is about to execute.
  if (config_.validate_plans) {
    analysis::PlanValidationOptions vopts;
    vopts.sink = sink;
    vopts.placeholder = placeholder;
    vopts.expect_cse = config_.common_subexpression;
    vopts.warn_unreachable = false;  // CSE leaves dead duplicates behind.
    const analysis::PlanValidator validator(vopts);
    analysis::ValidationReport vreport = validator.Validate(*graph);
    if (plan_cache) vreport.Merge(validator.ValidatePlan(plan, cache_set));
    analysis::RecordDiagnostics(vreport, context_.metrics());
    KS_CHECK(vreport.ok()) << "optimized plan failed validation:\n"
                           << vreport.ToString();
  }

  // --- Full-scale execution of the training path.
  std::map<int, AnyDataset> outputs;
  std::map<int, std::shared_ptr<TransformerBase>> models;
  std::vector<NodeRuntimeInfo> actual_info(graph->size());
  report->nodes.clear();

  for (int id = 0; id < graph->size(); ++id) {
    if (!train_mask[id]) continue;
    const GraphNode& node = graph->node(id);
    NodeExecutionRecord record;
    record.id = id;
    record.name = node.name;
    record.kind = node.kind;
    record.weight = node_weight(id);

    double total_seconds = 0.0;
    DataStats out_stats;
    SpanDraft draft;
    draft.span.node_id = id;
    draft.span.name = node.name;
    draft.span.kind = NodeKindName(node.kind);
    draft.span.phase = obs::TracePhase::kTrain;
    std::string op_name;
    switch (node.kind) {
      case NodeKind::kSource: {
        outputs[id] = node.bound_data;
        out_stats = node.bound_data->ComputeStats();
        total_seconds = resources.DiskReadSeconds(
            out_stats.TotalBytes() / std::max(1, resources.num_nodes));
        draft.span.predicted.bytes =
            out_stats.TotalBytes() / std::max(1, resources.num_nodes);
        draft.span.partitions = node.bound_data->NumPartitions();
        draft.span.records_in = out_stats.num_records;
        break;
      }
      case NodeKind::kTransformer:
      case NodeKind::kGather: {
        std::vector<AnyDataset> inputs;
        for (int dep : node.inputs) inputs.push_back(outputs.at(dep));
        const double scale = inputs[0]->virtual_scale();
        const DataStats in_stats = inputs[0]->ComputeStats();
        auto op = EffectiveTransformer(node, chosen_ptrs);
        if (op != node.transformer) record.chosen_physical = op->Name();
        op_name = op->Name();
        draft.span.physical = record.chosen_physical;
        draft.span.predicted = op->EstimateCost(in_stats, resources.num_nodes);
        context_.BeginOperatorScope();
        Timer timer;
        outputs[id] = op->ApplyAny(inputs, &context_);
        draft.span.wall_seconds = timer.ElapsedSeconds();
        outputs[id]->set_virtual_scale(scale);
        // With a virtual scale, kernel-reported costs describe the real
        // (small) run; use the cost model at the scaled statistics instead.
        const auto actual = context_.TakeActualCost();
        draft.span.observed = actual;
        draft.span.used_observed = actual.has_value() && scale <= 1.0;
        draft.record_observation = scale <= 1.0;
        draft.in_stats = in_stats;
        total_seconds = resources.SecondsFor(
            draft.span.used_observed ? *actual : draft.span.predicted);
        out_stats = outputs[id]->ComputeStats();
        draft.span.partitions = outputs[id]->NumPartitions();
        draft.span.records_in = in_stats.num_records;
        break;
      }
      case NodeKind::kEstimator: {
        const AnyDataset data = outputs.at(node.inputs[0]);
        const AnyDataset labels =
            node.inputs.size() > 1 ? outputs.at(node.inputs[1]) : nullptr;
        const double scale = data->virtual_scale();
        const DataStats in_stats = data->ComputeStats();
        auto est = EffectiveEstimator(node, chosen_ptrs);
        if (est != node.estimator) record.chosen_physical = est->Name();
        op_name = est->Name();
        draft.span.physical = record.chosen_physical;
        draft.span.predicted =
            est->EstimateCost(in_stats, resources.num_nodes);
        context_.BeginOperatorScope();
        Timer timer;
        models[id] = est->FitAny(data, labels, &context_);
        draft.span.wall_seconds = timer.ElapsedSeconds();
        const auto actual = context_.TakeActualCost();
        draft.span.observed = actual;
        draft.span.used_observed = actual.has_value() && scale <= 1.0;
        draft.record_observation = scale <= 1.0;
        draft.in_stats = in_stats;
        total_seconds = resources.SecondsFor(
            draft.span.used_observed ? *actual : draft.span.predicted);
        draft.span.partitions = data->NumPartitions();
        draft.span.records_in = in_stats.num_records;
        break;
      }
      case NodeKind::kApplyModel: {
        const AnyDataset data = outputs.at(node.inputs[0]);
        const double scale = data->virtual_scale();
        const DataStats in_stats = data->ComputeStats();
        auto model = models.at(node.model_input);
        op_name = model->Name();
        draft.span.physical = op_name;
        draft.span.predicted =
            model->EstimateCost(in_stats, resources.num_nodes);
        context_.BeginOperatorScope();
        Timer timer;
        outputs[id] = model->ApplyAny({data}, &context_);
        draft.span.wall_seconds = timer.ElapsedSeconds();
        outputs[id]->set_virtual_scale(scale);
        const auto actual = context_.TakeActualCost();
        draft.span.observed = actual;
        draft.span.used_observed = actual.has_value() && scale <= 1.0;
        draft.record_observation = scale <= 1.0;
        draft.in_stats = in_stats;
        total_seconds = resources.SecondsFor(
            draft.span.used_observed ? *actual : draft.span.predicted);
        out_stats = outputs[id]->ComputeStats();
        draft.span.partitions = outputs[id]->NumPartitions();
        draft.span.records_in = in_stats.num_records;
        break;
      }
      case NodeKind::kPlaceholder:
        KS_CHECK(false) << "placeholder cannot be on the training path";
    }

    NodeRuntimeInfo& info = actual_info[id];
    info.live = true;
    info.weight = record.weight;
    info.always_cached = node.kind == NodeKind::kEstimator;
    info.compute_seconds = total_seconds / std::max(1, record.weight);
    info.output_bytes = out_stats.TotalBytes();

    record.compute_seconds = info.compute_seconds;
    record.output_bytes = info.output_bytes;
    record.cached = cache_set[id];
    record.output_stats = out_stats;
    draft.span.virtual_seconds = total_seconds;
    draft.span.cached = cache_set[id];
    draft.span.output_bytes = info.output_bytes;
    draft.Flush(&context_, op_name.empty() ? node.name : op_name);
    report->nodes.push_back(std::move(record));
  }

  // --- Final virtual-time accounting under the configured cache policy.
  MaterializationProblem actual;
  actual.graph = graph.get();
  actual.resources = resources;
  actual.memory_budget_bytes = budget;
  actual.terminals = terminals;
  actual.info = std::move(actual_info);

  std::vector<double> per_node;
  if (config_.cache_policy == CachePolicy::kLru) {
    report->total_train_seconds =
        SimulateLruRuntime(actual, budget, kLruAdmitFraction, &per_node);
  } else {
    report->total_train_seconds =
        EstimateRuntimeDetailed(actual, cache_set, &per_node);
  }
  report->cache_set = cache_set;
  report->cache_used_bytes = CacheSetBytes(actual, cache_set);

  for (int id = 0; id < graph->size(); ++id) {
    if (!train_mask[id]) continue;
    switch (graph->node(id).kind) {
      case NodeKind::kSource:
        report->load_seconds += per_node[id];
        break;
      case NodeKind::kEstimator:
        report->solve_seconds += per_node[id];
        break;
      default:
        report->featurize_seconds += per_node[id];
        break;
    }
  }
  context_.ledger()->ChargeSeconds("Optimize", report->optimize_seconds);
  context_.ledger()->ChargeSeconds("Load", report->load_seconds);
  context_.ledger()->ChargeSeconds("Featurize", report->featurize_seconds);
  context_.ledger()->ChargeSeconds("Solve", report->solve_seconds);

  if (obs::MetricsRegistry* metrics = context_.metrics()) {
    metrics->Increment("exec.fits");
    metrics->Increment("optimizer.cse_eliminated", report->cse_eliminated);
    int planned_nodes = 0;
    for (int id = 0; id < graph->size(); ++id) {
      if (cache_set[id]) ++planned_nodes;
    }
    metrics->Set("cache.planned_nodes", planned_nodes);
    metrics->Set("cache.budget_bytes", report->cache_budget_bytes);
    metrics->Set("cache.used_bytes", report->cache_used_bytes);
    const ThreadPool::Stats pool = context_.pool()->stats();
    metrics->Set("pool.tasks_submitted",
                 static_cast<double>(pool.tasks_submitted));
    metrics->Set("pool.tasks_executed",
                 static_cast<double>(pool.tasks_executed));
    metrics->Set("pool.busy_seconds", pool.busy_seconds);
  }

  // --- Resolve chosen physical transformers for the runtime path.
  std::map<int, std::shared_ptr<TransformerBase>> chosen_transformers;
  for (int id = 0; id < graph->size(); ++id) {
    const GraphNode& node = graph->node(id);
    if (node.transformer == nullptr) continue;
    auto* optimizable =
        dynamic_cast<OptimizableTransformer*>(node.transformer.get());
    if (optimizable == nullptr) continue;
    auto it = chosen_ptrs.find(optimizable);
    const int index = it == chosen_ptrs.end() ? 0 : it->second;
    chosen_transformers[id] = optimizable->options()[index];
  }

  return std::make_shared<FittedPipelineUntyped>(
      graph, placeholder, sink, std::move(models),
      std::move(chosen_transformers));
}

}  // namespace keystone
