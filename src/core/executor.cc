#include "src/core/executor.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/analysis/dataflow.h"
#include "src/analysis/plan_validator.h"
#include "src/cache/artifact_catalog.h"
#include "src/common/check.h"
#include "src/common/string_util.h"
#include "src/core/plan_runner.h"
#include "src/obs/calibration.h"
#include "src/obs/metrics.h"
#include "src/optimizer/pass_manager.h"

namespace keystone {

namespace {

/// Spark-like admission control for the LRU baseline: objects above this
/// fraction of the cache are never admitted (§5.4 discusses the implicit
/// policy and its failure mode).
constexpr double kLruAdmitFraction = 0.35;

}  // namespace

std::string PipelineReport::ToString() const {
  std::ostringstream os;
  os << "PipelineReport{optimize=" << HumanSeconds(optimize_seconds)
     << (profiles_from_store ? " (from store)" : "")
     << ", load=" << HumanSeconds(load_seconds)
     << ", featurize=" << HumanSeconds(featurize_seconds)
     << ", solve=" << HumanSeconds(solve_seconds);
  // Only faulted runs print the recovery term, so fault-free reports keep
  // their exact pre-fault shape.
  if (recovery_seconds > 0.0) {
    os << ", recovery=" << HumanSeconds(recovery_seconds);
  }
  os << ", total=" << HumanSeconds(total_train_seconds)
     << ", cse_eliminated=" << cse_eliminated << ", cache="
     << HumanBytes(cache_used_bytes) << "/" << HumanBytes(cache_budget_bytes)
     << "}\n";
  for (const auto& node : nodes) {
    os << "  [" << node.id << "] " << node.name;
    if (!node.chosen_physical.empty()) os << " -> " << node.chosen_physical;
    os << " t/pass=" << HumanSeconds(node.compute_seconds)
       << " w=" << node.weight << " out=" << HumanBytes(node.output_bytes)
       << (node.cached ? " [cached]" : "") << "\n";
  }
  return os.str();
}

FittedPipelineUntyped::FittedPipelineUntyped(
    std::shared_ptr<PhysicalPlan> plan,
    std::map<int, std::shared_ptr<TransformerBase>> models)
    : plan_(std::move(plan)), models_(std::move(models)) {}

std::shared_ptr<TransformerBase> FittedPipelineUntyped::ModelFor(
    int estimator_node) const {
  auto it = models_.find(estimator_node);
  KS_CHECK(it != models_.end())
      << "no model fitted for node " << estimator_node;
  return it->second;
}

AnyDataset FittedPipelineUntyped::Apply(const AnyDataset& input,
                                        ExecContext* ctx) const {
  const auto& resources = ctx->resources();
  // Charge loading the evaluation data.
  const DataStats input_stats = input->ComputeStats();
  ctx->ledger()->ChargeSeconds(
      "LoadTest", resources.DiskReadSeconds(input_stats.TotalBytes() /
                                            std::max(1, resources.num_nodes)));
  PlanRunner runner(plan_.get(), ctx);
  return runner.RunApply(input, models_);
}

PipelineExecutor::PipelineExecutor(const ClusterResourceDescriptor& resources,
                                   const OptimizationConfig& config)
    : config_(config), context_(resources) {}

std::shared_ptr<PhysicalPlan> PipelineExecutor::Compile(
    const PipelineGraph& original, int placeholder, int sink) {
  // --- Static validation of the logical graph as submitted: catch
  // ill-formed DAGs before lowering (which assumes a well-formed DAG).
  if (config_.validate_plans) {
    analysis::PlanValidationOptions vopts;
    vopts.sink = sink;
    vopts.placeholder = placeholder;
    const analysis::ValidationReport vreport =
        analysis::PlanValidator(vopts).Validate(original);
    analysis::RecordDiagnostics(vreport, context_.metrics());
    KS_CHECK(vreport.ok()) << "pipeline plan failed validation:\n"
                           << vreport.ToString();
  }

  // --- Lower to the PhysicalPlan IR over a private copy of the graph,
  // then run the optimizer pass pipeline (CSE, profile + selection,
  // materialization planning), re-validating after every pass.
  auto graph = std::make_shared<PipelineGraph>(original);
  auto plan = std::make_shared<PhysicalPlan>(LowerToPhysical(
      std::move(graph), placeholder, sink, config_, context_.resources()));

  // --- Static dataflow inference over the freshly lowered IR: shape /
  // cardinality / effect facts plus the shape.* / card.* / effect.* rules,
  // before any pass rewrites the plan.
  if (config_.validate_plans) {
    const analysis::DataflowResult flow = analysis::InferDataflow(*plan);
    const analysis::ValidationReport dreport =
        analysis::CheckDataflow(*plan, flow);
    analysis::RecordDiagnostics(dreport, context_.metrics());
    KS_CHECK(dreport.ok()) << "pipeline plan failed validation:\n"
                           << dreport.ToString();
  }

  PassManager manager;
  RegisterStandardPasses(&manager);
  PassContext pctx;
  pctx.ctx = &context_;
  manager.Run(plan.get(), &pctx);

  // --- Final inference over the optimized plan: annotate every node with
  // its inferred facts (surfaced by plan_dump/explain and consumed by the
  // serving admission prior). The fusibility report itself is logged by the
  // FusionPass, which consumes the chains.
  const analysis::DataflowResult flow = analysis::InferDataflow(*plan);
  analysis::AnnotatePlan(plan.get(), flow);
  return plan;
}

std::shared_ptr<FittedPipelineUntyped> PipelineExecutor::FitGraph(
    const PipelineGraph& original, int placeholder, int sink,
    PipelineReport* report) {
  PipelineReport local_report;
  if (report == nullptr) report = &local_report;
  *report = PipelineReport();

  // Each fit is one catalog generation: artifacts published below carry it,
  // and compaction later drops generations that have aged out.
  if (cache::ArtifactCatalog* catalog = context_.artifact_catalog()) {
    catalog->BeginGeneration();
  }

  auto plan = Compile(original, placeholder, sink);
  const auto& resources = context_.resources();
  report->cse_eliminated = plan->cse_eliminated;
  report->profiles_from_store = plan->profiles_from_store;
  report->optimize_seconds = plan->optimize_seconds;
  report->cache_budget_bytes = plan->cache_budget_bytes;

  // --- Full-scale execution of the training path: the single execution
  // loop, shared with the profile and apply modes, lives in PlanRunner.
  PlanRunner runner(plan.get(), &context_);
  RunResult run = runner.Run(ExecMode::kFit);

  // --- Accounting: per-node records and final virtual-time charges under
  // the configured cache policy.
  std::vector<NodeRuntimeInfo> actual_info(plan->nodes.size());
  report->nodes.clear();
  for (const PlannedNode& pn : plan->nodes) {
    // Reuse-pruned nodes never executed this fit; they stay out of the
    // report and dead to the actual-runtime model.
    if (!pn.train || pn.reuse_pruned) continue;
    NodeExecutionRecord record;
    record.id = pn.id;
    record.name = pn.name;
    record.kind = pn.kind;
    record.weight = pn.weight;
    record.chosen_physical = pn.physical_name;

    NodeRuntimeInfo& info = actual_info[pn.id];
    info.live = true;
    // A reused node's seconds are one catalog load, paid once regardless of
    // the node's demand weight.
    info.weight = pn.reused ? 1 : pn.weight;
    info.always_cached = pn.kind == NodeKind::kEstimator;
    info.compute_seconds =
        pn.reused ? run.node_seconds[pn.id]
                  : run.node_seconds[pn.id] / std::max(1, pn.weight);
    info.output_bytes = run.out_stats[pn.id].TotalBytes();

    record.compute_seconds = info.compute_seconds;
    record.output_bytes = info.output_bytes;
    record.cached = plan->cache_set[pn.id];
    record.output_stats = run.out_stats[pn.id];
    report->nodes.push_back(std::move(record));
  }

  MaterializationProblem actual;
  actual.graph = plan->graph.get();
  actual.resources = resources;
  actual.memory_budget_bytes = plan->cache_budget_bytes;
  actual.terminals = plan->terminals;
  actual.info = std::move(actual_info);

  std::vector<double> per_node;
  if (config_.cache_policy == CachePolicy::kLru) {
    report->total_train_seconds = SimulateLruRuntime(
        actual, plan->cache_budget_bytes, kLruAdmitFraction, &per_node);
  } else {
    report->total_train_seconds =
        EstimateRuntimeDetailed(actual, plan->cache_set, &per_node);
  }
  report->cache_set = plan->cache_set;
  report->cache_used_bytes = CacheSetBytes(actual, plan->cache_set);

  for (const PlannedNode& pn : plan->nodes) {
    if (!pn.train || pn.reuse_pruned) continue;
    switch (pn.kind) {
      case NodeKind::kSource:
        report->load_seconds += per_node[pn.id];
        break;
      case NodeKind::kEstimator:
        report->solve_seconds += per_node[pn.id];
        break;
      default:
        report->featurize_seconds += per_node[pn.id];
        break;
    }
    report->recovery_seconds += run.recovery_seconds[pn.id];
  }
  // PlanRunner already charged recovery to the ledger's "Recovery" stage
  // during its id-ordered flush; here it only joins the report total.
  report->total_train_seconds += report->recovery_seconds;
  context_.ledger()->ChargeSeconds("Optimize", report->optimize_seconds);
  context_.ledger()->ChargeSeconds("Load", report->load_seconds);
  context_.ledger()->ChargeSeconds("Featurize", report->featurize_seconds);
  context_.ledger()->ChargeSeconds("Solve", report->solve_seconds);

  if (obs::MetricsRegistry* metrics = context_.metrics()) {
    metrics->Increment("exec.fits");
    metrics->Increment("optimizer.cse_eliminated", report->cse_eliminated);
    int planned_nodes = 0;
    for (size_t id = 0; id < plan->cache_set.size(); ++id) {
      if (plan->cache_set[id]) ++planned_nodes;
    }
    metrics->Set("cache.planned_nodes", planned_nodes);
    metrics->Set("cache.budget_bytes", report->cache_budget_bytes);
    metrics->Set("cache.used_bytes", report->cache_used_bytes);
    const ThreadPool::Stats pool = context_.pool()->stats();
    metrics->Set("pool.tasks_submitted",
                 static_cast<double>(pool.tasks_submitted));
    metrics->Set("pool.tasks_executed",
                 static_cast<double>(pool.tasks_executed));
    metrics->Set("pool.busy_seconds", pool.busy_seconds);
    if (cache::ArtifactCatalog* catalog = context_.artifact_catalog()) {
      metrics->Set("catalog.entries",
                   static_cast<double>(catalog->NumEntries()));
      metrics->Set("catalog.memory_bytes", catalog->MemoryBytes());
      const cache::CatalogStats cstats = catalog->Stats();
      metrics->Set("catalog.evictions", static_cast<double>(cstats.evictions));
      metrics->Set("catalog.dropped", static_cast<double>(cstats.dropped));
    }

    // Cost-model calibration: predicted-vs-observed residuals over every
    // span this context has traced (gauges — rebuilt each fit, not summed).
    // Fresh runs calibrate from live spans; profile-reuse runs fall back to
    // the store's persisted observation history.
    if (context_.tracer() != nullptr) {
      obs::CalibrationReport calibration =
          obs::BuildCalibrationFromSpans(context_.tracer()->Spans(), resources);
      if (calibration.samples == 0 && context_.profile_store() != nullptr) {
        calibration =
            obs::BuildCalibrationFromStore(*context_.profile_store(),
                                           resources);
      }
      obs::RecordCalibration(calibration, metrics);
    }
  }

  return std::make_shared<FittedPipelineUntyped>(plan,
                                                 std::move(run.models));
}

}  // namespace keystone
