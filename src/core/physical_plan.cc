#include "src/core/physical_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string_view>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace keystone {

namespace {

/// The shared operator instance a node carries (CSE and train/runtime
/// copies share instances, so this is the propagation key for choices).
const void* OperatorKey(const GraphNode& node) {
  if (node.transformer != nullptr) return node.transformer.get();
  if (node.estimator != nullptr) return node.estimator.get();
  return nullptr;
}

/// Resolves the physical operator for a planned node from its logical node
/// and chosen option: the selected (or default) option for Optimizable
/// operators, the logical operator itself otherwise.
void ResolvePhysical(const GraphNode& node, PlannedNode* pn) {
  pn->optimizable = false;
  pn->physical_transformer = nullptr;
  pn->physical_estimator = nullptr;
  pn->physical_name.clear();
  pn->weight = 1;
  switch (node.kind) {
    case NodeKind::kTransformer:
    case NodeKind::kGather: {
      auto* optimizable =
          dynamic_cast<OptimizableTransformer*>(node.transformer.get());
      if (optimizable != nullptr) {
        pn->optimizable = true;
        const int index = pn->chosen_option >= 0 ? pn->chosen_option : 0;
        pn->physical_transformer = optimizable->options()[index];
        pn->physical_name = pn->physical_transformer->Name();
      } else {
        pn->physical_transformer = node.transformer;
      }
      pn->weight = pn->physical_transformer->Weight();
      break;
    }
    case NodeKind::kEstimator: {
      auto* optimizable =
          dynamic_cast<OptimizableEstimator*>(node.estimator.get());
      if (optimizable != nullptr) {
        pn->optimizable = true;
        const int index = pn->chosen_option >= 0 ? pn->chosen_option : 0;
        pn->physical_estimator = optimizable->options()[index];
        pn->physical_name = pn->physical_estimator->Name();
      } else {
        pn->physical_estimator = node.estimator;
      }
      pn->weight = pn->physical_estimator->Weight();
      break;
    }
    default:
      // Sources carry data; placeholders and apply-model nodes resolve
      // their operator (the runtime input / the fitted model) at run time.
      break;
  }
}

/// `Name` plus the operator's parameter digest, so two instances of one
/// operator class configured differently never share a signature. A
/// Scale(2) and a Scale(3) produce different data; keying the profile
/// store or the artifact catalog on the bare class name would let one
/// stand in for the other.
std::string ParamQualifiedName(const TransformerBase& op) {
  const std::string params = op.ParamSignature();
  return params.empty() ? op.Name() : op.Name() + "(" + params + ")";
}

std::string ParamQualifiedName(const EstimatorBase& op) {
  const std::string params = op.ParamSignature();
  return params.empty() ? op.Name() : op.Name() + "(" + params + ")";
}

/// The rename-stable part of a node's identity: the logical operator's
/// signature, independent of the user-facing node name.
std::string OperatorSignature(const PipelineGraph& graph,
                              const GraphNode& node) {
  switch (node.kind) {
    case NodeKind::kSource:
      return "source";
    case NodeKind::kPlaceholder:
      return "placeholder";
    case NodeKind::kTransformer:
    case NodeKind::kGather:
      return ParamQualifiedName(*node.transformer);
    case NodeKind::kEstimator:
      return ParamQualifiedName(*node.estimator);
    case NodeKind::kApplyModel: {
      const GraphNode& est = graph.node(node.model_input);
      return "apply(" + (est.estimator != nullptr
                             ? ParamQualifiedName(*est.estimator)
                             : est.name) +
             ")";
    }
  }
  return "?";
}

// JSON escaping/number rendering come from common/string_util (shared with
// the obs exporters).

/// FNV-1a over a byte string; folds the transitive-input identities into a
/// fixed-width suffix so lineage fingerprints stay bounded on deep DAGs.
uint64_t Fnv1a(uint64_t h, std::string_view s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

const char* CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kNone:
      return "none";
    case CachePolicy::kRuleBased:
      return "rule-based";
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kGreedy:
      return "greedy";
    case CachePolicy::kExhaustive:
      return "exhaustive";
  }
  return "?";
}

OptimizationConfig OptimizationConfig::None() {
  OptimizationConfig cfg;
  cfg.operator_selection = false;
  cfg.common_subexpression = false;
  cfg.cache_policy = CachePolicy::kNone;
  cfg.operator_fusion = false;
  cfg.cross_run_reuse = false;
  return cfg;
}

OptimizationConfig OptimizationConfig::PipeOnly() {
  OptimizationConfig cfg;
  cfg.operator_selection = false;
  cfg.common_subexpression = true;
  cfg.cache_policy = CachePolicy::kGreedy;
  return cfg;
}

OptimizationConfig OptimizationConfig::Full() { return OptimizationConfig(); }

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kProfileSmall:
      return "profile-small";
    case ExecMode::kProfileLarge:
      return "profile-large";
    case ExecMode::kFit:
      return "fit";
    case ExecMode::kApply:
      return "apply";
  }
  return "?";
}

void PhysicalPlan::SetChosenOption(int id, int option) {
  KS_CHECK(id >= 0 && id < static_cast<int>(nodes.size()));
  const void* key = OperatorKey(graph->node(id));
  KS_CHECK(key != nullptr) << "node " << id << " has no operator to choose";
  // Train-time copies and their runtime counterparts share the Optimizable
  // instance (CopyWithSubstitution shares operators), so one selection
  // binds every node carrying that instance.
  for (PlannedNode& pn : nodes) {
    if (!pn.optimizable) continue;
    if (OperatorKey(graph->node(pn.id)) != key) continue;
    pn.chosen_option = option;
    ResolvePhysical(graph->node(pn.id), &pn);
  }
}

int PhysicalPlan::NumTrainNodes() const {
  int n = 0;
  for (const PlannedNode& pn : nodes) n += pn.train ? 1 : 0;
  return n;
}

int PhysicalPlan::NumRuntimeNodes() const {
  int n = 0;
  for (const PlannedNode& pn : nodes) n += pn.runtime ? 1 : 0;
  return n;
}

std::string PhysicalPlan::ToString(bool runtime_only) const {
  std::ostringstream os;
  os << "PhysicalPlan{policy=" << CachePolicyName(config.cache_policy)
     << ", opsel=" << (config.operator_selection ? "on" : "off")
     << ", cse=" << (cse_applied ? "applied" : "off") << "/" << cse_eliminated
     << " eliminated, nodes=" << nodes.size() << " (train=" << NumTrainNodes()
     << ", runtime=" << NumRuntimeNodes() << ")"
     << ", placeholder=" << placeholder << ", sink=" << sink
     << ", budget=" << HumanBytes(cache_budget_bytes)
     << ", optimize=" << HumanSeconds(optimize_seconds)
     << ", profiles=" << (profiles_from_store ? "store" : "live");
  if (runtime_only) os << ", view=runtime";
  os << "}\n";
  for (const PlannedNode& pn : nodes) {
    if (runtime_only ? !pn.runtime : (!pn.train && !pn.runtime)) continue;
    os << "  [" << pn.id << "] " << pn.name;
    if (!pn.physical_name.empty()) {
      os << " -> " << pn.physical_name << " (option " << pn.chosen_option
         << ")";
    }
    os << " (" << NodeKindName(pn.kind) << ")";
    if (pn.train) os << " train";
    if (pn.runtime) os << " runtime";
    if (pn.cached) os << " cached";
    if (pn.fused_region >= 0) os << " fused=r" << pn.fused_region;
    if (pn.reused) os << " reused(" << pn.reuse_tier << ")";
    if (pn.reuse_pruned) os << " reuse-pruned";
    os << "\n      fp=\"" << pn.fingerprint << "\" inputs=[";
    for (size_t i = 0; i < pn.inputs.size(); ++i) {
      if (i > 0) os << ",";
      os << pn.inputs[i];
    }
    os << "]";
    if (pn.model_input >= 0) os << " model=" << pn.model_input;
    os << " in=" << pn.input_records << " full=" << pn.full_records
       << " w=" << pn.weight;
    if (materialized && pn.train) {
      os << " est=" << HumanSeconds(pn.est_seconds)
         << " out=" << HumanBytes(pn.est_output_bytes);
    }
    if (pn.train && (pn.profile.records_small > 0 ||
                     pn.profile.records_large > 0)) {
      os << "\n      profile: " << HumanSeconds(pn.profile.seconds_small)
         << "@" << pn.profile.records_small << " / "
         << HumanSeconds(pn.profile.seconds_large) << "@"
         << pn.profile.records_large << ", "
         << HumanBytes(pn.profile.bytes_per_record) << "/rec";
    }
    if (pn.reused) {
      os << "\n      reuse: key=\"" << pn.reuse_fingerprint << "\" gen="
         << pn.reuse_generation << " load="
         << HumanSeconds(pn.reuse_load_seconds) << " "
         << HumanBytes(pn.reuse_bytes);
    }
    if (pn.dataflow_annotated) {
      os << "\n      dataflow: shape=" << pn.inferred_shape.ToString()
         << " card=" << pn.cardinality.ToString()
         << " effect=" << EffectClassName(pn.effect);
      if (pn.inferred_bytes_per_record >= 0) {
        os << " " << HumanBytes(pn.inferred_bytes_per_record) << "/rec";
      }
    }
    os << "\n";
  }
  // Fused regions visible in this view: every region in the full view, the
  // runtime (servable) ones in the runtime view. Members above are listed
  // once with their `fused=r<k>` tag, not re-expanded as independent nodes.
  bool any_region = false;
  for (const FusedRegion& region : fused_regions) {
    if (runtime_only && !region.runtime) continue;
    if (!any_region) os << "  fused regions:\n";
    any_region = true;
    os << "    r" << region.id << ": [";
    for (size_t i = 0; i < region.nodes.size(); ++i) {
      if (i > 0) os << " -> ";
      os << region.nodes[i];
    }
    os << "] " << (region.runtime ? "runtime" : "train") << " fp=\""
       << region.fingerprint << "\" saves "
       << HumanSeconds(region.est_saved_seconds) << " / "
       << HumanBytes(region.est_saved_bytes) << "\n";
  }
  if (!runtime_only) {
    if (!terminals.empty()) {
      os << "  terminals:";
      for (int t : terminals) os << " " << t;
      os << "\n";
    }
    if (decision_log != nullptr && !decision_log->Empty()) {
      os << decision_log->ToString();
    }
  }
  return os.str();
}

std::string PhysicalPlan::ToJson(bool runtime_only) const {
  std::ostringstream os;
  os << "{\"policy\":\"" << CachePolicyName(config.cache_policy) << "\""
     << ",\"view\":\"" << (runtime_only ? "runtime" : "full") << "\""
     << ",\"operator_selection\":"
     << (config.operator_selection ? "true" : "false")
     << ",\"common_subexpression\":"
     << (config.common_subexpression ? "true" : "false")
     << ",\"cse_applied\":" << (cse_applied ? "true" : "false")
     << ",\"cse_eliminated\":" << cse_eliminated
     << ",\"materialized\":" << (materialized ? "true" : "false")
     << ",\"profiles_from_store\":" << (profiles_from_store ? "true" : "false")
     << ",\"cache_budget_bytes\":" << JsonNumber(cache_budget_bytes)
     << ",\"optimize_seconds\":" << JsonNumber(optimize_seconds)
     << ",\"sink\":" << sink << ",\"placeholder\":" << placeholder
     << ",\"terminals\":[";
  for (size_t i = 0; i < terminals.size(); ++i) {
    if (i > 0) os << ",";
    os << terminals[i];
  }
  os << "],\"nodes\":[";
  bool first = true;
  for (const PlannedNode& pn : nodes) {
    if (runtime_only ? !pn.runtime : (!pn.train && !pn.runtime)) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << pn.id << ",\"name\":\"" << JsonEscape(pn.name)
       << "\",\"kind\":\"" << NodeKindName(pn.kind) << "\",\"inputs\":[";
    for (size_t i = 0; i < pn.inputs.size(); ++i) {
      if (i > 0) os << ",";
      os << pn.inputs[i];
    }
    os << "],\"model_input\":" << pn.model_input
       << ",\"train\":" << (pn.train ? "true" : "false")
       << ",\"runtime\":" << (pn.runtime ? "true" : "false")
       << ",\"optimizable\":" << (pn.optimizable ? "true" : "false")
       << ",\"chosen_option\":" << pn.chosen_option << ",\"physical\":\""
       << JsonEscape(pn.physical_name) << "\",\"fingerprint\":\""
       << JsonEscape(pn.fingerprint) << "\",\"lineage_fingerprint\":\""
       << JsonEscape(pn.lineage_fingerprint) << "\",\"input_records\":"
       << pn.input_records << ",\"full_records\":" << pn.full_records
       << ",\"weight\":" << pn.weight
       << ",\"cached\":" << (pn.cached ? "true" : "false");
    if (pn.fused_region >= 0) os << ",\"fused_region\":" << pn.fused_region;
    // Reuse markers render only when the ReusePass set them, so plans
    // compiled without a catalog keep their exact prior JSON shape.
    if (pn.reused) {
      os << ",\"reused\":true,\"reuse\":{\"fingerprint\":\""
         << JsonEscape(pn.reuse_fingerprint) << "\",\"generation\":"
         << pn.reuse_generation << ",\"tier\":\"" << JsonEscape(pn.reuse_tier)
         << "\",\"load_seconds\":" << JsonNumber(pn.reuse_load_seconds)
         << ",\"bytes\":" << JsonNumber(pn.reuse_bytes) << "}";
    }
    if (pn.reuse_pruned) os << ",\"reuse_pruned\":true";
    os << ",\"dataflow\":{\"annotated\":"
       << (pn.dataflow_annotated ? "true" : "false") << ",\"shape\":\""
       << pn.inferred_shape.ToString() << "\",\"shape_kind\":\""
       << ShapeKindName(pn.inferred_shape.kind) << "\",\"cardinality\":\""
       << pn.cardinality.ToString() << "\",\"effect\":\""
       << EffectClassName(pn.effect) << "\",\"bytes_per_record\":"
       << JsonNumber(pn.inferred_bytes_per_record) << "}"
       << ",\"est_seconds\":" << JsonNumber(pn.est_seconds)
       << ",\"est_output_bytes\":" << JsonNumber(pn.est_output_bytes)
       << ",\"profile\":{\"seconds_small\":"
       << JsonNumber(pn.profile.seconds_small)
       << ",\"seconds_large\":" << JsonNumber(pn.profile.seconds_large)
       << ",\"records_small\":" << pn.profile.records_small
       << ",\"records_large\":" << pn.profile.records_large
       << ",\"bytes_per_record\":" << JsonNumber(pn.profile.bytes_per_record)
       << ",\"full_records\":" << pn.profile.full_records << "}}";
  }
  os << "]";
  bool any_region = false;
  for (const FusedRegion& region : fused_regions) {
    if (runtime_only && !region.runtime) continue;
    os << (any_region ? "," : ",\"fused_regions\":[");
    any_region = true;
    os << "{\"id\":" << region.id << ",\"nodes\":[";
    for (size_t i = 0; i < region.nodes.size(); ++i) {
      if (i > 0) os << ",";
      os << region.nodes[i];
    }
    os << "],\"runtime\":" << (region.runtime ? "true" : "false")
       << ",\"fingerprint\":\"" << JsonEscape(region.fingerprint)
       << "\",\"est_saved_seconds\":" << JsonNumber(region.est_saved_seconds)
       << ",\"est_saved_bytes\":" << JsonNumber(region.est_saved_bytes) << "}";
  }
  if (any_region) os << "]";
  if (!runtime_only && decision_log != nullptr && !decision_log->Empty()) {
    os << ",\"decision_log\":" << decision_log->ToJson();
  }
  os << "}";
  return os.str();
}

PhysicalPlan LowerToPhysical(std::shared_ptr<PipelineGraph> graph,
                             int placeholder, int sink,
                             const OptimizationConfig& config,
                             const ClusterResourceDescriptor& resources) {
  PhysicalPlan plan;
  plan.graph = std::move(graph);
  plan.placeholder = placeholder;
  plan.sink = sink;
  plan.config = config;
  plan.resources = resources;
  plan.decision_log = std::make_shared<obs::OptimizerDecisionLog>();
  RelowerPlan(&plan);
  return plan;
}

void RelowerPlan(PhysicalPlan* plan) {
  const PipelineGraph& graph = *plan->graph;
  const int n = graph.size();

  // Chosen options survive a relower (CSE keeps node ids stable; the
  // surviving node re-resolves from its saved choice).
  std::vector<int> prev_chosen(n, -1);
  for (const PlannedNode& pn : plan->nodes) {
    if (pn.id >= 0 && pn.id < n) prev_chosen[pn.id] = pn.chosen_option;
  }

  const auto live = graph.AncestorsOf(plan->sink);
  const auto runtime_mask = plan->placeholder >= 0
                                ? graph.ReachableFrom(plan->placeholder)
                                : std::vector<bool>(n, false);

  plan->nodes.assign(n, PlannedNode());
  plan->cache_set.assign(n, false);
  // Fusion decisions are tied to node identity; a graph rewrite invalidates
  // them (the FusionPass runs last, after any relowering pass).
  plan->fused_regions.clear();
  // Static full-scale cardinality flow, in (topological) id order:
  // sources emit their bound record count, record-wise operators preserve
  // their input's count, estimators emit a model (0 records), and the
  // runtime path (fed by the placeholder) is unknown until Apply.
  std::vector<size_t> flow(n, 0);
  for (int id = 0; id < n; ++id) {
    const GraphNode& node = graph.node(id);
    PlannedNode& pn = plan->nodes[id];
    pn.id = id;
    pn.kind = node.kind;
    pn.name = node.name;
    pn.inputs = node.inputs;
    pn.model_input = node.model_input;
    pn.train = live[id] && !runtime_mask[id];
    pn.runtime =
        runtime_mask[id] && live[id] && id != plan->placeholder;
    pn.chosen_option = prev_chosen[id];
    ResolvePhysical(node, &pn);

    switch (node.kind) {
      case NodeKind::kSource: {
        flow[id] = static_cast<size_t>(node.bound_data->NumRecords() *
                                       node.bound_data->virtual_scale());
        pn.input_records = flow[id];
        pn.full_records = flow[id];
        break;
      }
      case NodeKind::kPlaceholder:
        flow[id] = 0;
        break;
      case NodeKind::kEstimator:
        pn.input_records = node.inputs.empty() ? 0 : flow[node.inputs[0]];
        pn.full_records = 0;  // Output is a model, not a dataset.
        flow[id] = 0;
        break;
      default:
        pn.input_records = node.inputs.empty() ? 0 : flow[node.inputs[0]];
        pn.full_records = pn.input_records;
        flow[id] = pn.full_records;
        break;
    }
    std::ostringstream fp;
    fp << NodeKindName(node.kind) << "|" << OperatorSignature(graph, node)
       << "|" << pn.input_records;
    pn.fingerprint = fp.str();
    // Lineage fingerprint: the local fingerprint plus a hash folding in
    // every input's lineage identity. Edges are forward (inputs < id), so
    // inputs' lineage fingerprints are already final in this id-order loop.
    uint64_t h = Fnv1a(14695981039346656037ULL, pn.fingerprint);
    for (int in : node.inputs) {
      h = Fnv1a(h, plan->nodes[in].lineage_fingerprint);
    }
    if (node.model_input >= 0) {
      h = Fnv1a(h, plan->nodes[node.model_input].lineage_fingerprint);
    }
    char suffix[24];
    std::snprintf(suffix, sizeof(suffix), "#%016llx",
                  static_cast<unsigned long long>(h));  // NOLINT
    pn.lineage_fingerprint = pn.fingerprint + suffix;
  }

  // Train nodes demanded directly: no live train successor consumes them.
  plan->terminals.clear();
  const auto succ = graph.SuccessorLists();
  for (int id = 0; id < n; ++id) {
    if (!plan->nodes[id].train) continue;
    bool has_train_succ = false;
    for (int s : succ[id]) {
      if (plan->nodes[s].train && live[s]) has_train_succ = true;
    }
    if (!has_train_succ) plan->terminals.push_back(id);
  }
}

std::vector<bool> PureLineageMask(const PhysicalPlan& plan) {
  std::vector<bool> pure(plan.nodes.size(), false);
  for (const PlannedNode& pn : plan.nodes) {  // ids are topological
    switch (pn.kind) {
      case NodeKind::kSource:
        pure[pn.id] = true;
        break;
      case NodeKind::kTransformer:
      case NodeKind::kGather: {
        bool ok = pn.model_input < 0;
        for (int in : pn.inputs) ok = ok && pure[in];
        pure[pn.id] = ok;
        break;
      }
      default:
        break;
    }
  }
  return pure;
}

}  // namespace keystone
