#include "src/core/pipeline_graph.h"

#include <functional>
#include <map>
#include <sstream>
#include <tuple>

#include "src/common/check.h"

namespace keystone {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSource:
      return "Source";
    case NodeKind::kPlaceholder:
      return "Placeholder";
    case NodeKind::kTransformer:
      return "Transformer";
    case NodeKind::kEstimator:
      return "Estimator";
    case NodeKind::kApplyModel:
      return "ApplyModel";
    case NodeKind::kGather:
      return "Gather";
  }
  return "?";
}

int PipelineGraph::AddNode(GraphNode node) {
  for (int dep : node.inputs) {
    KS_CHECK_GE(dep, 0);
    KS_CHECK_LT(dep, size());
  }
  if (node.model_input >= 0) {
    KS_CHECK_LT(node.model_input, size());
  }
  nodes_.push_back(std::move(node));
  return size() - 1;
}

int PipelineGraph::AddSource(AnyDataset data, std::string name) {
  GraphNode node;
  node.kind = NodeKind::kSource;
  node.name = std::move(name);
  node.bound_data = std::move(data);
  return AddNode(std::move(node));
}

int PipelineGraph::AddPlaceholder(std::string name) {
  GraphNode node;
  node.kind = NodeKind::kPlaceholder;
  node.name = std::move(name);
  return AddNode(std::move(node));
}

int PipelineGraph::AddTransformer(std::shared_ptr<TransformerBase> op,
                                  int input) {
  GraphNode node;
  node.kind = NodeKind::kTransformer;
  node.name = op->Name();
  node.transformer = std::move(op);
  node.inputs = {input};
  return AddNode(std::move(node));
}

int PipelineGraph::AddEstimator(std::shared_ptr<EstimatorBase> op,
                                int data_input, int label_input) {
  GraphNode node;
  node.kind = NodeKind::kEstimator;
  node.name = op->Name();
  node.estimator = std::move(op);
  node.inputs = {data_input};
  if (label_input >= 0) node.inputs.push_back(label_input);
  return AddNode(std::move(node));
}

int PipelineGraph::AddApplyModel(int estimator_node, int data_input) {
  KS_CHECK(nodes_[estimator_node].kind == NodeKind::kEstimator);
  GraphNode node;
  node.kind = NodeKind::kApplyModel;
  node.name = "Apply(" + nodes_[estimator_node].name + ")";
  node.inputs = {data_input};
  node.model_input = estimator_node;
  return AddNode(std::move(node));
}

int PipelineGraph::AddGather(std::shared_ptr<TransformerBase> gather_op,
                             std::vector<int> inputs) {
  KS_CHECK(!inputs.empty());
  GraphNode node;
  node.kind = NodeKind::kGather;
  node.name = gather_op->Name();
  node.transformer = std::move(gather_op);
  node.inputs = std::move(inputs);
  return AddNode(std::move(node));
}

std::vector<int> PipelineGraph::Dependencies(int id) const {
  std::vector<int> deps = nodes_[id].inputs;
  if (nodes_[id].model_input >= 0) deps.push_back(nodes_[id].model_input);
  return deps;
}

std::vector<std::vector<int>> PipelineGraph::SuccessorLists() const {
  std::vector<std::vector<int>> succ(size());
  for (int id = 0; id < size(); ++id) {
    for (int dep : Dependencies(id)) succ[dep].push_back(id);
  }
  return succ;
}

std::vector<bool> PipelineGraph::ReachableFrom(int root) const {
  std::vector<bool> reachable(size(), false);
  reachable[root] = true;
  // Edges go low id -> high id, so one forward sweep suffices.
  for (int id = 0; id < size(); ++id) {
    if (reachable[id]) continue;
    for (int dep : Dependencies(id)) {
      if (reachable[dep]) {
        reachable[id] = true;
        break;
      }
    }
  }
  return reachable;
}

std::vector<bool> PipelineGraph::AncestorsOf(int target) const {
  std::vector<bool> needed(size(), false);
  needed[target] = true;
  for (int id = size() - 1; id >= 0; --id) {
    if (!needed[id]) continue;
    for (int dep : Dependencies(id)) needed[dep] = true;
  }
  return needed;
}

int PipelineGraph::CopyWithSubstitution(int target, int placeholder,
                                        int replacement) {
  const std::vector<bool> downstream = ReachableFrom(placeholder);
  std::map<int, int> mapping;
  mapping[placeholder] = replacement;

  std::function<int(int)> copy = [&](int id) -> int {
    auto it = mapping.find(id);
    if (it != mapping.end()) return it->second;
    if (!downstream[id]) {
      // Independent of the placeholder: share the existing node.
      mapping[id] = id;
      return id;
    }
    GraphNode clone = nodes_[id];
    for (auto& input : clone.inputs) input = copy(input);
    if (clone.model_input >= 0) clone.model_input = copy(clone.model_input);
    const int new_id = AddNode(std::move(clone));
    mapping[id] = new_id;
    return new_id;
  };
  return copy(target);
}

int PipelineGraph::EliminateCommonSubexpressions(std::vector<int>* remap) {
  // Canonical id for each node; nodes with identical signatures share one.
  std::vector<int> canon(size());
  using Signature = std::tuple<int, const void*, const void*, std::vector<int>,
                               int, std::string>;
  std::map<Signature, int> seen;
  int eliminated = 0;
  for (int id = 0; id < size(); ++id) {
    const GraphNode& node = nodes_[id];
    std::vector<int> mapped_inputs = node.inputs;
    for (auto& in : mapped_inputs) in = canon[in];
    const int mapped_model =
        node.model_input >= 0 ? canon[node.model_input] : -1;
    const void* op_identity = node.transformer != nullptr
                                  ? static_cast<const void*>(node.transformer.get())
                                  : static_cast<const void*>(node.estimator.get());
    // Placeholders are never merged with each other except identical id —
    // use the name to keep distinct placeholders distinct.
    Signature sig{static_cast<int>(node.kind), op_identity,
                  static_cast<const void*>(node.bound_data.get()),
                  mapped_inputs, mapped_model,
                  node.kind == NodeKind::kPlaceholder ? node.name : ""};
    auto [it, inserted] = seen.emplace(sig, id);
    if (inserted) {
      canon[id] = id;
      // Rewrite this node's edges to canonical form in place.
      nodes_[id].inputs = mapped_inputs;
      nodes_[id].model_input = mapped_model;
    } else {
      canon[id] = it->second;
      ++eliminated;
    }
  }
  if (remap != nullptr) *remap = canon;
  return eliminated;
}

std::string PipelineGraph::ToDot() const {
  std::ostringstream os;
  os << "digraph pipeline {\n  rankdir=LR;\n";
  for (int id = 0; id < size(); ++id) {
    const GraphNode& node = nodes_[id];
    const char* shape = node.kind == NodeKind::kEstimator ? "box" : "ellipse";
    os << "  n" << id << " [label=\"" << node.name << "\", shape=" << shape
       << "];\n";
    for (int dep : node.inputs) {
      os << "  n" << dep << " -> n" << id << ";\n";
    }
    if (node.model_input >= 0) {
      os << "  n" << node.model_input << " -> n" << id
         << " [style=dashed];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace keystone
