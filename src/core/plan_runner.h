#ifndef KEYSTONE_CORE_PLAN_RUNNER_H_
#define KEYSTONE_CORE_PLAN_RUNNER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/exec_context.h"
#include "src/core/physical_plan.h"
#include "src/data/data_stats.h"
#include "src/data/dist_dataset.h"
#include "src/obs/trace.h"
#include "src/sim/faults/recovery.h"

namespace keystone {

/// Invoked by profile-mode runs for optimizable nodes whose option has not
/// been chosen yet, immediately before the node executes. `in_stats`
/// describes the sampled input actually flowing into the node; the hook
/// typically scales it to full cardinality, scores the options, and calls
/// PhysicalPlan::SetChosenOption (operator selection, §3).
using SelectHook = std::function<void(int id, const DataStats& in_stats)>;

/// What one Run produced, for the executor's accounting.
struct RunResult {
  /// Fitted models keyed by estimator node id (fit mode; sample models in
  /// profile modes).
  std::map<int, std::shared_ptr<TransformerBase>> models;
  /// Per-node modeled virtual seconds of this pass, indexed by node id.
  std::vector<double> node_seconds;
  /// Per-node output statistics, indexed by node id (estimators: empty —
  /// their output is a model).
  std::vector<DataStats> out_stats;
  /// Per-node fault-recovery virtual seconds charged to the "Recovery"
  /// ledger stage, indexed by node id. All zero unless the ExecContext
  /// carries an enabled FaultPlan.
  std::vector<double> recovery_seconds;
};

/// The single execution engine for PhysicalPlans. Every mode — the two
/// sampling passes (§4.1), the full-scale training pass, and
/// fitted-pipeline apply — runs the same per-node body through the same
/// instrumentation point: one trace span, one metrics update, and one
/// profile-store observation per node execution.
///
/// Fit and apply dispatch independent DAG branches concurrently
/// (OptimizationConfig::parallel_branches) on dedicated scheduler threads;
/// profile modes stay serial so operator selection sees nodes in
/// topological order. Virtual seconds are computed per node from the pure
/// cost model, and all observable effects — trace spans, ledger charges,
/// metrics, store writes — are buffered per node and flushed in node-id
/// order after the pass, so parallel runs are bit-identical to serial ones.
class PlanRunner {
 public:
  PlanRunner(PhysicalPlan* plan, ExecContext* ctx);

  /// Executes the training path in `mode` (profile-small / profile-large /
  /// fit). `select` fires per unchosen optimizable node in profile modes.
  RunResult Run(ExecMode mode, const SelectHook& select = nullptr);

  /// Executes the runtime path on `input`, charging each node to the
  /// "Eval" ledger stage. `models` supplies the fitted models for
  /// apply-model nodes. Returns the sink's output.
  AnyDataset RunApply(
      const AnyDataset& input,
      const std::map<int, std::shared_ptr<TransformerBase>>& models);

  /// Emits one synthetic trace span per train node for a profile phase
  /// that was skipped (reuse_stored_profiles), reconstructed from the
  /// plan's ProfileEntry, so plan reports and metrics do not silently omit
  /// those nodes.
  void EmitSyntheticProfileSpans(ExecMode mode);

 private:
  /// Everything one node execution produced, buffered so effects can be
  /// flushed deterministically in node-id order after the pass.
  struct NodeOutcome {
    bool executed = false;
    obs::TraceSpan span;
    DataStats in_stats;   // input stats at the scale the kernel ran
    DataStats out_stats;  // output stats (estimators: default)
    bool record_observation = false;
    std::string op_name;  // physical operator name (store key)
    double seconds = 0.0;  // modeled virtual seconds of this execution
    /// The cost profile `seconds` was modeled from (apply mode charges it
    /// to the "Eval" ledger stage); also the ResourceTimeline's
    /// per-resource split. Sources have none — they occupy disk directly.
    CostProfile charge_cost;
    size_t sample_records = 0;  // profile modes: records that flowed
    /// Fused-region accounting, set on the region head's outcome only and
    /// emitted as exec.fused.* metrics during the id-ordered flush (so the
    /// emission order is identical for every schedule).
    int fused_members = 0;
    double fused_bytes_avoided = 0.0;    // interior outputs never materialized
    double fused_chunk_peak_bytes = 0.0; // max resident bytes across chunks
    /// Fault-injection replay of this execution (empty without a plan).
    /// Computed during the serial, id-ordered flush so the draws and the
    /// lineage costs they price are identical for every schedule.
    faults::FaultOutcome fault;
  };

  void ExecuteNode(int id);
  void FlushOutcome(int id);

  /// Streams cache-resident chunks of the region head's input through every
  /// member's ApplyChunk, materializing only the tail output
  /// (ExecStyle::kChunked). Fills each member's NodeOutcome so the flushed
  /// effects are byte-identical to unfused whole-dataset execution. Returns
  /// false — leaving all outcomes untouched — when the region cannot stream
  /// (whole-dataset style, unchunkable input, or an operator without
  /// chunked apply), in which case the caller executes members node by
  /// node.
  bool TryExecuteFusedRegion(const FusedRegion& region);

  /// Virtual seconds to re-produce node `id`'s output during recovery:
  /// a cache read when the output is materialized and `respect_cache`
  /// holds, else the node's own seconds plus its inputs' chains.
  double RecomputeChainSeconds(int id, bool respect_cache) const;

  /// Replays outcome `id` under the context's fault plan (no-op without
  /// one) and routes the priced recovery into ledger, metrics, timeline,
  /// trace, and the plan's decision log. Called from FlushOutcome.
  void SimulateFaults(int id);
  void RunSerial(const std::vector<int>& exec_ids);
  void RunParallel(const std::vector<int>& exec_ids);

  bool InProfileMode() const {
    return mode_ == ExecMode::kProfileSmall ||
           mode_ == ExecMode::kProfileLarge;
  }
  size_t SampleSize() const {
    return mode_ == ExecMode::kProfileSmall
               ? plan_->config.profile_sample_small
               : plan_->config.profile_sample_large;
  }

  PhysicalPlan* plan_;
  ExecContext* ctx_;

  // Per-run state; indexed by node id. In parallel runs each scheduler
  // thread writes only the slots of nodes it executed, and cross-thread
  // visibility is ordered by the scheduler's ready-queue mutex.
  ExecMode mode_ = ExecMode::kFit;
  SelectHook select_;
  /// Fit mode with an ArtifactCatalog: nodes whose output is published into
  /// the catalog during the id-ordered flush (pure-lineage transformers and
  /// gathers the ReusePass did not already rewrite). Empty otherwise.
  std::vector<bool> catalog_publish_;
  std::vector<AnyDataset> outputs_;
  std::vector<std::shared_ptr<TransformerBase>> models_;
  std::vector<NodeOutcome> outcomes_;
  const std::map<int, std::shared_ptr<TransformerBase>>* apply_models_ =
      nullptr;
};

}  // namespace keystone

#endif  // KEYSTONE_CORE_PLAN_RUNNER_H_
