#ifndef KEYSTONE_TUNING_GRID_SEARCH_H_
#define KEYSTONE_TUNING_GRID_SEARCH_H_

#include <vector>

#include "src/core/executor.h"
#include "src/linalg/vector_ops.h"
#include "src/ops/metrics.h"

namespace keystone {

/// Hyperparameter search over pipeline variants — the integration the paper
/// lists as future work (§7, citing TuPAQ [56]). Candidates are branches of
/// one pipeline graph: their shared featurization prefix is merged by
/// common sub-expression elimination and materialized once by the greedy
/// cache planner, so fitting N solver configurations costs roughly one
/// featurization plus N solves, instead of N full pipeline runs.
template <typename A>
struct GridSearchResult {
  /// Index of the candidate with the highest validation accuracy.
  size_t best_index = 0;

  /// Validation accuracy per candidate.
  std::vector<double> accuracies;

  /// The single optimized training run that fit every candidate.
  PipelineReport report;

  /// The fitted combined pipeline: applying it yields, per record, the
  /// score vectors of every candidate (in candidate order).
  FittedPipeline<A, std::vector<std::vector<double>>> fitted;
};

/// Fits every candidate classifier pipeline (all sharing one graph and
/// input placeholder, each producing per-class scores) in a single
/// optimized execution, then ranks them by argmax accuracy on the
/// validation set.
template <typename A>
GridSearchResult<A> GridSearchClassifiers(
    PipelineExecutor* executor,
    const std::vector<Pipeline<A, std::vector<double>>>& candidates,
    const std::shared_ptr<DistDataset<A>>& validation_data,
    const std::vector<int>& validation_labels) {
  KS_CHECK(!candidates.empty());
  auto combined = Pipeline<A, std::vector<double>>::Gather(candidates);

  PipelineReport report;
  auto fitted = executor->Fit(combined, &report);

  const auto all_scores =
      fitted.Apply(validation_data, executor->context())->Collect();
  KS_CHECK_EQ(all_scores.size(), validation_labels.size());

  GridSearchResult<A> result{0, {}, std::move(report), std::move(fitted)};
  result.accuracies.resize(candidates.size(), 0.0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    std::vector<int> predictions;
    predictions.reserve(all_scores.size());
    for (const auto& record_scores : all_scores) {
      predictions.push_back(static_cast<int>(ArgMax(record_scores[c])));
    }
    result.accuracies[c] = Accuracy(predictions, validation_labels);
    if (result.accuracies[c] > result.accuracies[result.best_index]) {
      result.best_index = c;
    }
  }
  return result;
}

}  // namespace keystone

#endif  // KEYSTONE_TUNING_GRID_SEARCH_H_
