#ifndef KEYSTONE_DATA_DATA_STATS_H_
#define KEYSTONE_DATA_DATA_STATS_H_

#include <cstddef>
#include <string>

namespace keystone {

/// Statistics about a dataset (the paper's A_s): everything the per-operator
/// cost models need to choose a physical implementation. Collected on data
/// samples during execution subsampling (paper §4.1) and extrapolated.
struct DataStats {
  /// Number of records (examples).
  size_t num_records = 0;

  /// Feature dimension of each record, when meaningful (0 otherwise).
  size_t dim = 0;

  /// Average number of non-zero features per record (== dim when dense).
  double avg_nnz = 0.0;

  /// Fraction of entries that are non-zero (1.0 for dense data).
  double sparsity = 1.0;

  /// Average serialized bytes per record.
  double bytes_per_record = 0.0;

  /// Total estimated bytes for the dataset.
  double TotalBytes() const {
    return bytes_per_record * static_cast<double>(num_records);
  }

  bool IsSparse() const { return sparsity < 0.5; }

  /// Returns a copy rescaled to describe `n` records with the same per-record
  /// shape (used to extrapolate sample statistics to full datasets).
  DataStats ScaledTo(size_t n) const {
    DataStats out = *this;
    out.num_records = n;
    return out;
  }

  std::string ToString() const;
};

}  // namespace keystone

#endif  // KEYSTONE_DATA_DATA_STATS_H_
