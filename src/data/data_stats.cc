#include "src/data/data_stats.h"

#include <cstdio>

namespace keystone {

std::string DataStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "DataStats{n=%zu, d=%zu, avg_nnz=%.1f, sparsity=%.4f, "
                "bytes/rec=%.1f}",
                num_records, dim, avg_nnz, sparsity, bytes_per_record);
  return buf;
}

}  // namespace keystone
