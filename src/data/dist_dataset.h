#ifndef KEYSTONE_DATA_DIST_DATASET_H_
#define KEYSTONE_DATA_DIST_DATASET_H_

#include <functional>
#include <memory>
#include <typeindex>
#include <vector>

#include "src/common/check.h"
#include "src/data/data_stats.h"
#include "src/data/element_traits.h"

namespace keystone {

class DatasetBase;
using AnyDataset = std::shared_ptr<DatasetBase>;

/// Per-record statistics triple, extracted while a record is chunk-resident
/// so fused execution can replay ComputeStats' accumulation order without
/// keeping the records themselves alive.
struct ElementStat {
  double bytes = 0.0;
  double nnz = 0.0;
  size_t dim = 0;
};

class ChunkCollectorBase;

/// A cache-resident slice of one partition: the unit of work of the chunked
/// execution style. Chunks are typed underneath (Chunk<T>) and type-erased
/// here so the PlanRunner can stream them through a fused operator chain
/// without knowing the intermediate element types.
class ChunkBase {
 public:
  virtual ~ChunkBase() = default;

  virtual size_t size() const = 0;
  virtual std::type_index ElementType() const = 0;

  /// The stats triple of record `i`, in chunk order.
  virtual ElementStat StatOf(size_t i) const = 0;

  /// A collector that reassembles chunks of this element type into a
  /// DistDataset (used to materialize a fused region's tail output).
  virtual std::unique_ptr<ChunkCollectorBase> MakeCollector() const = 0;
};

using AnyChunk = std::shared_ptr<ChunkBase>;

/// Reassembles per-partition chunk streams into a partitioned dataset.
class ChunkCollectorBase {
 public:
  virtual ~ChunkCollectorBase() = default;

  virtual void Resize(size_t num_partitions) = 0;
  /// Appends `chunk`'s records to partition `p` (in stream order).
  virtual void Append(size_t p, const AnyChunk& chunk) = 0;
  virtual AnyDataset Finish() = 0;
};

/// Type-erased handle to a partitioned dataset. The pipeline DAG and the
/// optimizer work with DatasetBase; typed operators downcast via
/// DistDataset<T>::Cast, checked with the element type index.
class DatasetBase {
 public:
  virtual ~DatasetBase() = default;

  virtual size_t NumRecords() const = 0;
  virtual size_t NumPartitions() const = 0;
  virtual std::type_index ElementType() const = 0;

  /// Data statistics (the paper's A_s) over the stored records. The record
  /// count is multiplied by virtual_scale() (see below).
  virtual DataStats ComputeStats() const = 0;

  /// A dataset holding the first `max_records` records (for execution
  /// subsampling, paper §4.1). Keeps the partition structure proportional.
  /// The sample is a real dataset: its virtual scale is 1.
  virtual std::shared_ptr<DatasetBase> SamplePrefix(size_t max_records)
      const = 0;

  /// Static per-record shape for the dataflow analysis; Top when the
  /// element type gives no information.
  virtual ValueShape ElementShape() const { return ValueShape::Top(); }

  /// Whether ChunkOf can slice this dataset (DistDataset: yes; opaque
  /// dataset adapters default to no, which makes the runner fall back to
  /// whole-dataset execution).
  virtual bool SupportsChunking() const { return false; }

  /// Records in partition `p` (chunking datasets only; 0 otherwise).
  virtual size_t PartitionSize(size_t p) const {
    (void)p;
    return 0;
  }

  /// A chunk holding `count` records of partition `p` starting at `begin`
  /// (`count == 0` yields an empty, still correctly typed chunk — the type
  /// witness for empty partitions). Null when unsupported.
  virtual AnyChunk ChunkOf(size_t p, size_t begin, size_t count) const {
    (void)p;
    (void)begin;
    (void)count;
    return nullptr;
  }

  /// Virtual record-count multiplier. Benchmarks reproduce paper-scale
  /// experiments by holding a laptop-scale dataset whose *statistics*
  /// describe the full-size workload: kernels execute on the real records,
  /// while the simulator charges time for scale * NumRecords() records.
  double virtual_scale() const { return virtual_scale_; }
  void set_virtual_scale(double scale) { virtual_scale_ = scale; }

 protected:
  double virtual_scale_ = 1.0;
};

/// Typed chunk: an owned, contiguous run of records.
template <typename T>
class Chunk : public ChunkBase {
 public:
  Chunk() = default;
  explicit Chunk(std::vector<T> records) : records_(std::move(records)) {}

  size_t size() const override { return records_.size(); }

  std::type_index ElementType() const override {
    return std::type_index(typeid(T));
  }

  ElementStat StatOf(size_t i) const override {
    const T& rec = records_[i];
    return ElementStat{ElementBytes(rec), ElementNnz(rec), ElementDim(rec)};
  }

  std::unique_ptr<ChunkCollectorBase> MakeCollector() const override;

  /// Downcasts a type-erased chunk, checking the element type.
  static std::shared_ptr<const Chunk<T>> Cast(const AnyChunk& base) {
    KS_CHECK(base != nullptr);
    KS_CHECK(base->ElementType() == std::type_index(typeid(T)))
        << "chunk element type mismatch";
    return std::static_pointer_cast<const Chunk<T>>(base);
  }

  const std::vector<T>& records() const { return records_; }

 private:
  std::vector<T> records_;
};

/// A partitioned, typed, immutable collection — the simulator's stand-in for
/// an RDD. Partitions model the unit of distributed parallelism: the
/// executor schedules one task per partition over the simulated cluster's
/// worker slots.
template <typename T>
class DistDataset : public DatasetBase {
 public:
  DistDataset() = default;

  explicit DistDataset(std::vector<std::vector<T>> partitions)
      : partitions_(std::move(partitions)) {}

  /// Splits `records` into `num_partitions` nearly-equal contiguous chunks.
  static std::shared_ptr<DistDataset<T>> Partitioned(std::vector<T> records,
                                                     size_t num_partitions) {
    KS_CHECK_GT(num_partitions, 0u);
    std::vector<std::vector<T>> parts(num_partitions);
    const size_t n = records.size();
    size_t begin = 0;
    for (size_t p = 0; p < num_partitions; ++p) {
      const size_t count = n / num_partitions + (p < n % num_partitions);
      parts[p].reserve(count);
      for (size_t i = 0; i < count; ++i) {
        parts[p].push_back(std::move(records[begin + i]));
      }
      begin += count;
    }
    return std::make_shared<DistDataset<T>>(std::move(parts));
  }

  /// Downcasts a type-erased handle, checking the element type.
  static std::shared_ptr<const DistDataset<T>> Cast(const AnyDataset& base) {
    KS_CHECK(base != nullptr);
    KS_CHECK(base->ElementType() == std::type_index(typeid(T)))
        << "dataset element type mismatch";
    return std::static_pointer_cast<const DistDataset<T>>(base);
  }

  size_t NumRecords() const override {
    size_t n = 0;
    for (const auto& p : partitions_) n += p.size();
    return n;
  }

  size_t NumPartitions() const override { return partitions_.size(); }

  std::type_index ElementType() const override {
    return std::type_index(typeid(T));
  }

  DataStats ComputeStats() const override {
    DataStats stats;
    stats.num_records = NumRecords();
    if (stats.num_records == 0) return stats;
    const size_t real_records = stats.num_records;
    double bytes = 0.0;
    double nnz = 0.0;
    size_t dim = 0;
    for (const auto& part : partitions_) {
      for (const auto& rec : part) {
        bytes += ElementBytes(rec);
        nnz += ElementNnz(rec);
        dim = std::max(dim, ElementDim(rec));
      }
    }
    stats.dim = dim;
    stats.bytes_per_record = bytes / real_records;
    stats.avg_nnz = nnz / real_records;
    stats.sparsity = dim > 0 ? stats.avg_nnz / static_cast<double>(dim) : 1.0;
    stats.num_records =
        static_cast<size_t>(real_records * virtual_scale_);
    return stats;
  }

  ValueShape ElementShape() const override {
    for (const auto& part : partitions_) {
      if (!part.empty()) return ShapeOfElement(part.front());
    }
    return StaticShapeOf<T>::Get();
  }

  std::shared_ptr<DatasetBase> SamplePrefix(size_t max_records) const override {
    std::vector<T> sampled;
    sampled.reserve(std::min(max_records, NumRecords()));
    for (const auto& part : partitions_) {
      for (const auto& rec : part) {
        if (sampled.size() >= max_records) break;
        sampled.push_back(rec);
      }
      if (sampled.size() >= max_records) break;
    }
    const size_t parts =
        std::max<size_t>(1, std::min(partitions_.size(), sampled.size()));
    return Partitioned(std::move(sampled), parts);
  }

  bool SupportsChunking() const override { return true; }

  size_t PartitionSize(size_t p) const override {
    KS_CHECK_LT(p, partitions_.size());
    return partitions_[p].size();
  }

  AnyChunk ChunkOf(size_t p, size_t begin, size_t count) const override {
    KS_CHECK_LT(p, partitions_.size());
    const std::vector<T>& part = partitions_[p];
    KS_CHECK(begin + count <= part.size());
    std::vector<T> records(part.begin() + begin, part.begin() + begin + count);
    return std::make_shared<Chunk<T>>(std::move(records));
  }

  const std::vector<std::vector<T>>& partitions() const { return partitions_; }
  const std::vector<T>& partition(size_t p) const { return partitions_[p]; }

  /// All records flattened into one vector (copies).
  std::vector<T> Collect() const {
    std::vector<T> out;
    out.reserve(NumRecords());
    for (const auto& part : partitions_) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  /// Applies fn to every record, preserving partitioning.
  template <typename U>
  std::shared_ptr<DistDataset<U>> Map(
      const std::function<U(const T&)>& fn) const {
    std::vector<std::vector<U>> out(partitions_.size());
    for (size_t p = 0; p < partitions_.size(); ++p) {
      out[p].reserve(partitions_[p].size());
      for (const auto& rec : partitions_[p]) out[p].push_back(fn(rec));
    }
    return std::make_shared<DistDataset<U>>(std::move(out));
  }

 private:
  std::vector<std::vector<T>> partitions_;
};

/// Typed collector: accumulates chunk records per partition, then hands the
/// partitions to a DistDataset<T> without further copies.
template <typename T>
class ChunkCollector : public ChunkCollectorBase {
 public:
  void Resize(size_t num_partitions) override {
    partitions_.resize(num_partitions);
  }

  void Append(size_t p, const AnyChunk& chunk) override {
    KS_CHECK_LT(p, partitions_.size());
    const auto typed = Chunk<T>::Cast(chunk);
    partitions_[p].insert(partitions_[p].end(), typed->records().begin(),
                          typed->records().end());
  }

  AnyDataset Finish() override {
    return std::make_shared<DistDataset<T>>(std::move(partitions_));
  }

 private:
  std::vector<std::vector<T>> partitions_;
};

template <typename T>
std::unique_ptr<ChunkCollectorBase> Chunk<T>::MakeCollector() const {
  return std::make_unique<ChunkCollector<T>>();
}

/// Convenience: wraps records into a dataset with one partition per `chunk`
/// records, at least one partition.
template <typename T>
std::shared_ptr<DistDataset<T>> MakeDataset(std::vector<T> records,
                                            size_t num_partitions = 8) {
  const size_t n = records.size();
  const size_t parts = std::max<size_t>(1, std::min(num_partitions, n));
  return DistDataset<T>::Partitioned(std::move(records), parts);
}

}  // namespace keystone

#endif  // KEYSTONE_DATA_DIST_DATASET_H_
