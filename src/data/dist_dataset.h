#ifndef KEYSTONE_DATA_DIST_DATASET_H_
#define KEYSTONE_DATA_DIST_DATASET_H_

#include <functional>
#include <memory>
#include <typeindex>
#include <vector>

#include "src/common/check.h"
#include "src/data/data_stats.h"
#include "src/data/element_traits.h"

namespace keystone {

/// Type-erased handle to a partitioned dataset. The pipeline DAG and the
/// optimizer work with DatasetBase; typed operators downcast via
/// DistDataset<T>::Cast, checked with the element type index.
class DatasetBase {
 public:
  virtual ~DatasetBase() = default;

  virtual size_t NumRecords() const = 0;
  virtual size_t NumPartitions() const = 0;
  virtual std::type_index ElementType() const = 0;

  /// Data statistics (the paper's A_s) over the stored records. The record
  /// count is multiplied by virtual_scale() (see below).
  virtual DataStats ComputeStats() const = 0;

  /// A dataset holding the first `max_records` records (for execution
  /// subsampling, paper §4.1). Keeps the partition structure proportional.
  /// The sample is a real dataset: its virtual scale is 1.
  virtual std::shared_ptr<DatasetBase> SamplePrefix(size_t max_records)
      const = 0;

  /// Static per-record shape for the dataflow analysis; Top when the
  /// element type gives no information.
  virtual ValueShape ElementShape() const { return ValueShape::Top(); }

  /// Virtual record-count multiplier. Benchmarks reproduce paper-scale
  /// experiments by holding a laptop-scale dataset whose *statistics*
  /// describe the full-size workload: kernels execute on the real records,
  /// while the simulator charges time for scale * NumRecords() records.
  double virtual_scale() const { return virtual_scale_; }
  void set_virtual_scale(double scale) { virtual_scale_ = scale; }

 protected:
  double virtual_scale_ = 1.0;
};

using AnyDataset = std::shared_ptr<DatasetBase>;

/// A partitioned, typed, immutable collection — the simulator's stand-in for
/// an RDD. Partitions model the unit of distributed parallelism: the
/// executor schedules one task per partition over the simulated cluster's
/// worker slots.
template <typename T>
class DistDataset : public DatasetBase {
 public:
  DistDataset() = default;

  explicit DistDataset(std::vector<std::vector<T>> partitions)
      : partitions_(std::move(partitions)) {}

  /// Splits `records` into `num_partitions` nearly-equal contiguous chunks.
  static std::shared_ptr<DistDataset<T>> Partitioned(std::vector<T> records,
                                                     size_t num_partitions) {
    KS_CHECK_GT(num_partitions, 0u);
    std::vector<std::vector<T>> parts(num_partitions);
    const size_t n = records.size();
    size_t begin = 0;
    for (size_t p = 0; p < num_partitions; ++p) {
      const size_t count = n / num_partitions + (p < n % num_partitions);
      parts[p].reserve(count);
      for (size_t i = 0; i < count; ++i) {
        parts[p].push_back(std::move(records[begin + i]));
      }
      begin += count;
    }
    return std::make_shared<DistDataset<T>>(std::move(parts));
  }

  /// Downcasts a type-erased handle, checking the element type.
  static std::shared_ptr<const DistDataset<T>> Cast(const AnyDataset& base) {
    KS_CHECK(base != nullptr);
    KS_CHECK(base->ElementType() == std::type_index(typeid(T)))
        << "dataset element type mismatch";
    return std::static_pointer_cast<const DistDataset<T>>(base);
  }

  size_t NumRecords() const override {
    size_t n = 0;
    for (const auto& p : partitions_) n += p.size();
    return n;
  }

  size_t NumPartitions() const override { return partitions_.size(); }

  std::type_index ElementType() const override {
    return std::type_index(typeid(T));
  }

  DataStats ComputeStats() const override {
    DataStats stats;
    stats.num_records = NumRecords();
    if (stats.num_records == 0) return stats;
    const size_t real_records = stats.num_records;
    double bytes = 0.0;
    double nnz = 0.0;
    size_t dim = 0;
    for (const auto& part : partitions_) {
      for (const auto& rec : part) {
        bytes += ElementBytes(rec);
        nnz += ElementNnz(rec);
        dim = std::max(dim, ElementDim(rec));
      }
    }
    stats.dim = dim;
    stats.bytes_per_record = bytes / real_records;
    stats.avg_nnz = nnz / real_records;
    stats.sparsity = dim > 0 ? stats.avg_nnz / static_cast<double>(dim) : 1.0;
    stats.num_records =
        static_cast<size_t>(real_records * virtual_scale_);
    return stats;
  }

  ValueShape ElementShape() const override {
    for (const auto& part : partitions_) {
      if (!part.empty()) return ShapeOfElement(part.front());
    }
    return StaticShapeOf<T>::Get();
  }

  std::shared_ptr<DatasetBase> SamplePrefix(size_t max_records) const override {
    std::vector<T> sampled;
    sampled.reserve(std::min(max_records, NumRecords()));
    for (const auto& part : partitions_) {
      for (const auto& rec : part) {
        if (sampled.size() >= max_records) break;
        sampled.push_back(rec);
      }
      if (sampled.size() >= max_records) break;
    }
    const size_t parts =
        std::max<size_t>(1, std::min(partitions_.size(), sampled.size()));
    return Partitioned(std::move(sampled), parts);
  }

  const std::vector<std::vector<T>>& partitions() const { return partitions_; }
  const std::vector<T>& partition(size_t p) const { return partitions_[p]; }

  /// All records flattened into one vector (copies).
  std::vector<T> Collect() const {
    std::vector<T> out;
    out.reserve(NumRecords());
    for (const auto& part : partitions_) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  /// Applies fn to every record, preserving partitioning.
  template <typename U>
  std::shared_ptr<DistDataset<U>> Map(
      const std::function<U(const T&)>& fn) const {
    std::vector<std::vector<U>> out(partitions_.size());
    for (size_t p = 0; p < partitions_.size(); ++p) {
      out[p].reserve(partitions_[p].size());
      for (const auto& rec : partitions_[p]) out[p].push_back(fn(rec));
    }
    return std::make_shared<DistDataset<U>>(std::move(out));
  }

 private:
  std::vector<std::vector<T>> partitions_;
};

/// Convenience: wraps records into a dataset with one partition per `chunk`
/// records, at least one partition.
template <typename T>
std::shared_ptr<DistDataset<T>> MakeDataset(std::vector<T> records,
                                            size_t num_partitions = 8) {
  const size_t n = records.size();
  const size_t parts = std::max<size_t>(1, std::min(num_partitions, n));
  return DistDataset<T>::Partitioned(std::move(records), parts);
}

}  // namespace keystone

#endif  // KEYSTONE_DATA_DIST_DATASET_H_
