#ifndef KEYSTONE_DATA_ELEMENT_TRAITS_H_
#define KEYSTONE_DATA_ELEMENT_TRAITS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/dataflow_lattice.h"
#include "src/linalg/matrix.h"
#include "src/linalg/sparse.h"

namespace keystone {

/// Customization points describing dataset element types to the statistics
/// collector: serialized size, feature dimension and non-zero count. New
/// element types (e.g. Image in src/ops) add overloads next to their type.

// --- Serialized size in bytes ---------------------------------------------

inline double ElementBytes(double) { return sizeof(double); }
inline double ElementBytes(int) { return sizeof(int); }

inline double ElementBytes(const std::string& s) {
  return static_cast<double>(s.size());
}

inline double ElementBytes(const std::vector<double>& v) {
  return static_cast<double>(v.size() * sizeof(double));
}

inline double ElementBytes(const std::vector<std::string>& tokens) {
  double total = 8.0 * tokens.size();
  for (const auto& t : tokens) total += t.size();
  return total;
}

inline double ElementBytes(const SparseVector& v) {
  return static_cast<double>(v.nnz() * (sizeof(double) + sizeof(uint32_t)));
}

/// Per-record descriptor matrices (image pipelines): one row per
/// descriptor, dim = descriptor width.
inline double ElementBytes(const Matrix& m) {
  return static_cast<double>(m.size() * sizeof(double));
}

template <typename A, typename B>
double ElementBytes(const std::pair<A, B>& p) {
  return ElementBytes(p.first) + ElementBytes(p.second);
}

// --- Feature dimension ------------------------------------------------------

inline size_t ElementDim(double) { return 1; }
inline size_t ElementDim(int) { return 1; }
inline size_t ElementDim(const std::string&) { return 0; }
inline size_t ElementDim(const std::vector<double>& v) { return v.size(); }
inline size_t ElementDim(const std::vector<std::string>&) { return 0; }
inline size_t ElementDim(const SparseVector& v) { return v.dim; }
inline size_t ElementDim(const Matrix& m) { return m.cols(); }

template <typename A, typename B>
size_t ElementDim(const std::pair<A, B>& p) {
  return ElementDim(p.first);
}

// --- Non-zero count ---------------------------------------------------------

inline double ElementNnz(double v) { return v != 0.0 ? 1.0 : 0.0; }
inline double ElementNnz(int v) { return v != 0 ? 1.0 : 0.0; }
inline double ElementNnz(const std::string&) { return 0.0; }

inline double ElementNnz(const std::vector<double>& v) {
  double nnz = 0.0;
  for (double x : v) {
    if (x != 0.0) nnz += 1.0;
  }
  return nnz;
}

inline double ElementNnz(const std::vector<std::string>&) { return 0.0; }
inline double ElementNnz(const SparseVector& v) {
  return static_cast<double>(v.nnz());
}
inline double ElementNnz(const Matrix& m) {
  return static_cast<double>(m.size());
}

template <typename A, typename B>
double ElementNnz(const std::pair<A, B>& p) {
  return ElementNnz(p.first);
}

// --- Static record shape (dataflow analysis) --------------------------------

inline ValueShape ShapeOfElement(double) { return ValueShape::Scalar(); }
inline ValueShape ShapeOfElement(int) { return ValueShape::Scalar(); }
inline ValueShape ShapeOfElement(const std::string&) {
  return ValueShape::Text();
}
inline ValueShape ShapeOfElement(const std::vector<double>& v) {
  return ValueShape::Vector(static_cast<int64_t>(v.size()));
}
inline ValueShape ShapeOfElement(const std::vector<std::string>&) {
  return ValueShape::Tokens();
}
inline ValueShape ShapeOfElement(const SparseVector& v) {
  return ValueShape::Sparse(static_cast<int64_t>(v.dim));
}
/// Descriptor width is a per-dataset invariant; row counts vary per record.
inline ValueShape ShapeOfElement(const Matrix& m) {
  return ValueShape::MatrixOf(ValueShape::kUnknownDim,
                              static_cast<int64_t>(m.cols()));
}

template <typename A, typename B>
ValueShape ShapeOfElement(const std::pair<A, B>& p) {
  return ShapeOfElement(p.first);
}

template <>
struct StaticShapeOf<SparseVector> {
  static ValueShape Get() { return ValueShape::Sparse(); }
};

template <>
struct StaticShapeOf<Matrix> {
  static ValueShape Get() { return ValueShape::MatrixOf(); }
};

// --- Generic nested containers (e.g. gathered branch outputs) ---------------

template <typename T>
double ElementBytes(const std::vector<T>& v) {
  double total = 0.0;
  for (const auto& item : v) total += ElementBytes(item);
  return total;
}

template <typename T>
size_t ElementDim(const std::vector<T>& v) {
  size_t total = 0;
  for (const auto& item : v) total += ElementDim(item);
  return total;
}

template <typename T>
double ElementNnz(const std::vector<T>& v) {
  double total = 0.0;
  for (const auto& item : v) total += ElementNnz(item);
  return total;
}

template <typename T>
ValueShape ShapeOfElement(const std::vector<T>& v) {
  return ValueShape::VectorSeq(static_cast<int64_t>(v.size()),
                               static_cast<int64_t>(ElementDim(v)));
}

}  // namespace keystone

#endif  // KEYSTONE_DATA_ELEMENT_TRAITS_H_
