#include "src/solvers/linear_model.h"

#include "src/common/check.h"
#include "src/linalg/gemm.h"

namespace keystone {

LinearMapModel::LinearMapModel(Matrix weights, std::vector<double> intercept)
    : weights_(std::move(weights)), intercept_(std::move(intercept)) {
  if (intercept_.empty()) intercept_.assign(weights_.cols(), 0.0);
  KS_CHECK_EQ(intercept_.size(), weights_.cols());
}

std::vector<double> LinearMapModel::Apply(const std::vector<double>& x) const {
  KS_CHECK_EQ(x.size(), weights_.rows());
  std::vector<double> out = intercept_;
  for (size_t j = 0; j < x.size(); ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    const double* wrow = weights_.RowPtr(j);
    for (size_t c = 0; c < out.size(); ++c) out[c] += xj * wrow[c];
  }
  return out;
}

CostProfile LinearMapModel::EstimateCost(const DataStats& in,
                                         int workers) const {
  CostProfile cost;
  const double n = static_cast<double>(in.num_records);
  const double k = static_cast<double>(weights_.cols());
  cost.flops = 2.0 * n * in.avg_nnz * k / std::max(1, workers);
  cost.bytes = in.TotalBytes() / std::max(1, workers);
  return cost;
}

SparseLinearMapModel::SparseLinearMapModel(Matrix weights,
                                           std::vector<double> intercept)
    : weights_(std::move(weights)), intercept_(std::move(intercept)) {
  if (intercept_.empty()) intercept_.assign(weights_.cols(), 0.0);
  KS_CHECK_EQ(intercept_.size(), weights_.cols());
}

std::vector<double> SparseLinearMapModel::Apply(const SparseVector& x) const {
  std::vector<double> out = intercept_;
  for (size_t i = 0; i < x.nnz(); ++i) {
    const uint32_t j = x.indices[i];
    KS_CHECK_LT(j, weights_.rows());
    const double xj = x.values[i];
    const double* wrow = weights_.RowPtr(j);
    for (size_t c = 0; c < out.size(); ++c) out[c] += xj * wrow[c];
  }
  return out;
}

CostProfile SparseLinearMapModel::EstimateCost(const DataStats& in,
                                               int workers) const {
  CostProfile cost;
  const double n = static_cast<double>(in.num_records);
  const double k = static_cast<double>(weights_.cols());
  cost.flops = 2.0 * n * in.avg_nnz * k / std::max(1, workers);
  cost.bytes = in.TotalBytes() / std::max(1, workers);
  return cost;
}

double LeastSquaresLoss(const Matrix& a, const Matrix& x, const Matrix& b) {
  const Matrix residual = Gemm(a, x) - b;
  const double f = residual.FrobeniusNorm();
  return f * f / static_cast<double>(a.rows());
}

}  // namespace keystone
