#include "src/solvers/solver_costs.h"

#include <algorithm>
#include <cmath>

namespace keystone {
namespace solver_costs {

namespace {
constexpr double kBytesPerDouble = 8.0;
}  // namespace

CostProfile LocalExact(double n, double d, double k, double s) {
  CostProfile cost;
  // Gram/QR factorization plus back-solve, all on the driver node. Sparse
  // inputs accelerate the Gram accumulation (n s d instead of n d^2) but the
  // factorization of the d x d system is dense regardless.
  cost.flops = 2.0 * n * s * (d + k) + d * d * d / 3.0;
  cost.bytes = kBytesPerDouble * (n * s + d * d + d * k);
  // The whole dataset moves to one node over its single link.
  cost.network = kBytesPerDouble * n * (s + k);
  cost.rounds = 1.0;
  return cost;
}

CostProfile DistributedExact(double n, double d, double k, double s, int w) {
  const double workers = std::max(1, w);
  CostProfile cost;
  // Per-node partial Gram + right-hand side, tree-aggregated, then a local
  // dense factorization on the driver.
  cost.flops = 2.0 * n * s * (d + k) / workers + d * d * d / 3.0;
  cost.bytes = kBytesPerDouble * (n * s / workers + d * d + d * k);
  cost.network = kBytesPerDouble * d * (d + k);
  cost.rounds = 1.0 + std::log2(std::max(2.0, static_cast<double>(workers)));
  return cost;
}

CostProfile Lbfgs(double n, double d, double k, double s, double i, int w) {
  const double workers = std::max(1, w);
  CostProfile cost;
  // Each pass computes predictions and the gradient: two sparse products.
  cost.flops = i * 4.0 * n * s * k / workers;
  cost.bytes = i * kBytesPerDouble * (n * s / workers + d * k);
  // Gradient aggregation (d x k) every pass over the busiest link.
  cost.network = i * kBytesPerDouble * d * k;
  // One broadcast + one reduce barrier per pass.
  cost.rounds = 2.0 * i;
  return cost;
}

CostProfile Block(double n, double d, double k, double s, double b, double i,
                  int w) {
  const double workers = std::max(1, w);
  const double blocks = std::max(1.0, d / b);
  CostProfile cost;
  // Per epoch over all blocks: Gram accumulation touches each stored entry
  // once per block column (2 n s (b + k) total across blocks for sparse
  // inputs, 2 n d (b + k) dense), plus a b^3/3 local solve per block.
  cost.flops = i * (2.0 * n * s * (b + k) / workers +
                    blocks * b * b * b / 3.0);
  cost.bytes = i * kBytesPerDouble * (n * s / workers + n * k / workers +
                                      d * k);
  // Block model broadcast + residual collection per block per epoch.
  cost.network = i * kBytesPerDouble * d * (b + k);
  // Two barriers per block solve, sequential across blocks.
  cost.rounds = 2.0 * i * blocks;
  return cost;
}

double LocalExactScratch(double n, double d, double k, double s) {
  // The driver materializes the gathered data plus the dense d x d system.
  return kBytesPerDouble * (n * s + d * d + d * k);
}

double DistributedExactScratch(double n, double d, double k, double s,
                               int w) {
  const double workers = std::max(1, w);
  return kBytesPerDouble * (n * s / workers + d * d + d * k);
}

double LbfgsScratch(double n, double d, double k, double s, int w) {
  const double workers = std::max(1, w);
  // Partitioned data plus model and ~2m history matrices (m = 10).
  return kBytesPerDouble * (n * s / workers + 22.0 * d * k);
}

double BlockScratch(double n, double d, double k, double b, int w) {
  const double workers = std::max(1, w);
  return kBytesPerDouble * (n * b / workers + d * k + n * k / workers);
}

}  // namespace solver_costs
}  // namespace keystone
