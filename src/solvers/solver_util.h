#ifndef KEYSTONE_SOLVERS_SOLVER_UTIL_H_
#define KEYSTONE_SOLVERS_SOLVER_UTIL_H_

#include <vector>

#include "src/data/dist_dataset.h"
#include "src/linalg/matrix.h"
#include "src/linalg/sparse.h"

namespace keystone {

/// Stacks a dataset of dense feature vectors into an n x d matrix.
Matrix AssembleDense(const DistDataset<std::vector<double>>& data);

/// Stacks a dataset of sparse feature vectors into a CSR matrix. `dim`
/// overrides the feature dimension (0 = max of record dims).
SparseMatrix AssembleSparse(const DistDataset<SparseVector>& data,
                            size_t dim = 0);

/// One-hot encodes integer class labels into an n x num_classes matrix with
/// +1 for the class and 0 elsewhere.
Matrix OneHotLabels(const std::vector<int>& labels, int num_classes);

/// Stacks a dataset of dense label vectors into an n x k matrix.
Matrix AssembleLabels(const DistDataset<std::vector<double>>& labels);

}  // namespace keystone

#endif  // KEYSTONE_SOLVERS_SOLVER_UTIL_H_
