#ifndef KEYSTONE_SOLVERS_SOLVER_COSTS_H_
#define KEYSTONE_SOLVERS_SOLVER_COSTS_H_

#include "src/sim/cost_profile.h"

namespace keystone {
namespace solver_costs {

/// Cost models for the linear solver family (paper Table 1), with the
/// constants the paper omits "for readability" filled in. All quantities
/// follow the critical-path convention: flops/bytes are per busiest node,
/// network is over the most loaded link.
///
///   n — examples, d — features, k — classes,
///   s — average non-zeros per example (s == d when dense),
///   i — passes over the data, b — block size, w — workers.

/// Exact solve on a single node (gather + QR/normal equations).
/// Compute O(n d (d + k)), network O(n (d + k)), memory O(d (n + k)).
CostProfile LocalExact(double n, double d, double k, double s);

/// Communication-avoiding distributed exact solve (TSQR/Gram aggregation).
/// Compute O(n d (d + k) / w), network O(d (d + k)), memory O(n d / w + d^2).
CostProfile DistributedExact(double n, double d, double k, double s, int w);

/// L-BFGS: i data passes, gradient aggregation each pass.
/// Compute O(i n s k / w), network O(i d k), memory O(n s / w + d k).
CostProfile Lbfgs(double n, double d, double k, double s, double i, int w);

/// Block coordinate solve: i epochs over d/b feature blocks. Sparse inputs
/// (s < d) accelerate the per-block Gram accumulation.
/// Compute O(i n s (b + k) / w), network O(i d (b + k)),
/// memory O(n b / w + d k).
CostProfile Block(double n, double d, double k, double s, double b, double i,
                  int w);

/// Scratch memory (bytes per node) for feasibility checks.
double LocalExactScratch(double n, double d, double k, double s);
double DistributedExactScratch(double n, double d, double k, double s, int w);
double LbfgsScratch(double n, double d, double k, double s, int w);
double BlockScratch(double n, double d, double k, double b, int w);

}  // namespace solver_costs
}  // namespace keystone

#endif  // KEYSTONE_SOLVERS_SOLVER_COSTS_H_
