#ifndef KEYSTONE_SOLVERS_LBFGS_H_
#define KEYSTONE_SOLVERS_LBFGS_H_

#include <functional>
#include <vector>

namespace keystone {

/// Configuration for the generic L-BFGS optimizer.
struct LbfgsOptions {
  int max_iterations = 50;
  int history = 10;          // memory m for the two-loop recursion
  double gradient_tol = 1e-6;
  double initial_step = 1.0;
  int max_line_search_steps = 20;
};

/// Result of an L-BFGS run.
struct LbfgsResult {
  std::vector<double> x;
  double objective = 0.0;
  int iterations = 0;       // outer iterations taken
  int gradient_evals = 0;   // data passes (function+gradient evaluations)
  bool converged = false;
};

/// Objective callback: fills `gradient` (same size as x) and returns f(x).
using LbfgsObjective = std::function<double(const std::vector<double>& x,
                                            std::vector<double>* gradient)>;

/// Minimizes f via limited-memory BFGS with backtracking Armijo line
/// search. This is the workhorse behind the dense and sparse L-BFGS linear
/// solvers and the logistic regression operator.
LbfgsResult MinimizeLbfgs(const LbfgsObjective& objective,
                          std::vector<double> x0, const LbfgsOptions& options);

}  // namespace keystone

#endif  // KEYSTONE_SOLVERS_LBFGS_H_
