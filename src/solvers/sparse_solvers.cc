#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/linalg/gemm.h"
#include "src/linalg/qr.h"
#include "src/solvers/lbfgs.h"
#include "src/solvers/objectives.h"
#include "src/solvers/solver_costs.h"
#include "src/solvers/solver_util.h"
#include "src/solvers/solvers.h"

namespace keystone {

namespace {

// Guard against accidentally materializing a huge dense Gram matrix in a
// test process: beyond this dimension the exact sparse solve would need
// more memory than any single node has (the paper's crash regime).
constexpr size_t kMaxDenseGramDim = 20000;

size_t SparseFeatureDim(const DistDataset<SparseVector>& data) {
  size_t d = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& rec : part) {
      d = std::max(d, rec.dim != 0 ? rec.dim
                                   : (rec.indices.empty()
                                          ? 0
                                          : rec.indices.back() + 1));
    }
  }
  return d;
}

}  // namespace

// --- SparseLbfgsSolver ------------------------------------------------------

std::shared_ptr<Transformer<SparseVector, DenseVec>> SparseLbfgsSolver::Fit(
    const DistDataset<SparseVector>& data, const DistDataset<DenseVec>& labels,
    ExecContext* ctx) const {
  const size_t d = SparseFeatureDim(data);
  const SparseMatrix a = AssembleSparse(data, d);
  const Matrix b = AssembleLabels(labels);
  KS_CHECK_EQ(a.rows(), b.rows());
  const size_t k = b.cols();
  internal_solvers::SparseDesign design{&a};

  LbfgsOptions options;
  options.max_iterations = config_.lbfgs_iterations;
  const double lambda = config_.l2_reg;
  const bool logistic = config_.loss == LinearSolverConfig::Loss::kLogistic;

  LbfgsResult result = MinimizeLbfgs(
      [&](const std::vector<double>& x, std::vector<double>* grad) {
        return logistic
                   ? internal_solvers::LogisticObjective(design, b, lambda, d,
                                                         k, x, grad)
                   : internal_solvers::LeastSquaresObjective(design, b, lambda,
                                                             d, k, x, grad);
      },
      std::vector<double>(d * k, 0.0), options);

  Matrix x(d, k);
  std::copy(result.x.begin(), result.x.end(), x.data());
  const double avg_nnz =
      static_cast<double>(a.nnz()) / std::max<size_t>(1, a.rows());
  ctx->ReportActualCost(solver_costs::Lbfgs(a.rows(), d, k, avg_nnz,
                                            result.gradient_evals,
                                            ctx->resources().num_nodes));
  return std::make_shared<SparseLinearMapModel>(std::move(x), DenseVec{});
}

CostProfile SparseLbfgsSolver::EstimateCost(const DataStats& in,
                                            int workers) const {
  return solver_costs::Lbfgs(in.num_records, in.dim, config_.num_classes,
                             in.avg_nnz, config_.lbfgs_iterations, workers);
}

double SparseLbfgsSolver::ScratchMemoryBytes(const DataStats& in,
                                             int workers) const {
  return solver_costs::LbfgsScratch(in.num_records, in.dim,
                                    config_.num_classes, in.avg_nnz, workers);
}

// --- SparseExactSolver ------------------------------------------------------

std::shared_ptr<Transformer<SparseVector, DenseVec>> SparseExactSolver::Fit(
    const DistDataset<SparseVector>& data, const DistDataset<DenseVec>& labels,
    ExecContext* ctx) const {
  const size_t d = SparseFeatureDim(data);
  KS_CHECK_LE(d, kMaxDenseGramDim)
      << "SparseExactSolver: dense " << d << "x" << d
      << " Gram matrix exceeds node memory (the paper's crash case)";
  const SparseMatrix a = AssembleSparse(data, d);
  const Matrix b = AssembleLabels(labels);
  const size_t k = b.cols();

  // Dense Gram accumulation from CSR rows.
  Matrix gram(d, d);
  for (size_t i = 0; i < a.rows(); ++i) {
    const auto [begin, end] = a.RowRange(i);
    for (size_t p = begin; p < end; ++p) {
      const uint32_t cp = a.indices()[p];
      const double vp = a.values()[p];
      double* grow = gram.RowPtr(cp);
      for (size_t q = begin; q < end; ++q) {
        grow[a.indices()[q]] += vp * a.values()[q];
      }
    }
  }
  const double ridge = std::max(config_.l2_reg, 1e-10);
  for (size_t i = 0; i < d; ++i) gram(i, i) += ridge;
  Matrix x = SolveSpd(gram, a.TransMatMul(b));

  const double avg_nnz =
      static_cast<double>(a.nnz()) / std::max<size_t>(1, a.rows());
  ctx->ReportActualCost(
      solver_costs::LocalExact(a.rows(), d, k, avg_nnz));
  return std::make_shared<SparseLinearMapModel>(std::move(x), DenseVec{});
}

CostProfile SparseExactSolver::EstimateCost(const DataStats& in,
                                            int workers) const {
  // Distributed TSQR over densified partitions: quadratic compute in d.
  const double w = std::max(1, workers);
  const double n = in.num_records;
  const double d = in.dim;
  const double k = config_.num_classes;
  CostProfile cost;
  cost.flops = 2.0 * n * d * (d + k) / w + d * d * d / 3.0;
  cost.bytes = 4.0 * n * d / w + 8.0 * (d * d + d * k);
  cost.network = 8.0 * d * (d + k);
  cost.rounds = 2.0 + std::log2(std::max(2, workers));
  return cost;
}

double SparseExactSolver::ScratchMemoryBytes(const DataStats& in,
                                             int workers) const {
  // Densified single-precision partition copy plus the d x d factor.
  const double w = std::max(1, workers);
  return 4.0 * in.num_records * in.dim / w + 8.0 * in.dim * in.dim;
}

// --- SparseBlockSolver ------------------------------------------------------

std::shared_ptr<Transformer<SparseVector, DenseVec>> SparseBlockSolver::Fit(
    const DistDataset<SparseVector>& data, const DistDataset<DenseVec>& labels,
    ExecContext* ctx) const {
  const size_t d = SparseFeatureDim(data);
  const SparseMatrix a = AssembleSparse(data, d);
  const Matrix b = AssembleLabels(labels);
  const size_t n = a.rows();
  const size_t k = b.cols();
  const size_t block = std::min(config_.block_size, d);
  const double ridge = std::max(config_.l2_reg, 1e-10);

  Matrix x(d, k);
  Matrix residual = b;
  for (int epoch = 0; epoch < config_.block_epochs; ++epoch) {
    for (size_t c0 = 0; c0 < d; c0 += block) {
      const size_t c1 = std::min(c0 + block, d);
      const size_t width = c1 - c0;
      // Densify the block's columns — the step that throws away sparsity.
      Matrix a_j(n, width);
      for (size_t i = 0; i < n; ++i) {
        const auto [begin, end] = a.RowRange(i);
        for (size_t p = begin; p < end; ++p) {
          const uint32_t col = a.indices()[p];
          if (col >= c0 && col < c1) a_j(i, col - c0) = a.values()[p];
        }
      }
      const Matrix x_j = x.RowSlice(c0, c1);
      Matrix target = residual + Gemm(a_j, x_j);
      Matrix gram = Gram(a_j);
      for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += ridge;
      Matrix x_j_new = SolveSpd(gram, GemmTransA(a_j, target));
      residual = target - Gemm(a_j, x_j_new);
      for (size_t r = 0; r < width; ++r) {
        for (size_t c = 0; c < k; ++c) x(c0 + r, c) = x_j_new(r, c);
      }
    }
  }
  const double avg_nnz =
      static_cast<double>(a.nnz()) / std::max<size_t>(1, n);
  ctx->ReportActualCost(solver_costs::Block(n, d, k, avg_nnz, block,
                                            config_.block_epochs,
                                            ctx->resources().num_nodes));
  return std::make_shared<SparseLinearMapModel>(std::move(x), DenseVec{});
}

CostProfile SparseBlockSolver::EstimateCost(const DataStats& in,
                                            int workers) const {
  return solver_costs::Block(in.num_records, in.dim, config_.num_classes,
                             in.avg_nnz,
                             std::min<size_t>(config_.block_size, in.dim),
                             config_.block_epochs, workers);
}

double SparseBlockSolver::ScratchMemoryBytes(const DataStats& in,
                                             int workers) const {
  return solver_costs::BlockScratch(in.num_records, in.dim,
                                    config_.num_classes,
                                    std::min<size_t>(config_.block_size,
                                                     in.dim),
                                    workers);
}

// --- Logical sparse solver --------------------------------------------------

std::shared_ptr<OptimizableEstimator> MakeSparseLinearSolver(
    const LinearSolverConfig& config) {
  std::vector<std::shared_ptr<EstimatorBase>> options = {
      std::make_shared<SparseLbfgsSolver>(config),
      std::make_shared<SparseExactSolver>(config),
      std::make_shared<SparseBlockSolver>(config),
  };
  return std::make_shared<OptimizableEstimator>("LinearSolver",
                                                std::move(options));
}

}  // namespace keystone
