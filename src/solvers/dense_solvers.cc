#include <algorithm>

#include "src/common/check.h"
#include "src/linalg/gemm.h"
#include "src/linalg/qr.h"
#include "src/solvers/lbfgs.h"
#include "src/solvers/objectives.h"
#include "src/solvers/solver_costs.h"
#include "src/solvers/solver_util.h"
#include "src/solvers/solvers.h"

namespace keystone {

namespace {

// Solves min ||A X - B|| + lambda ||X|| exactly: normal equations when
// n >= d, min-norm dual when n < d (needed for sample-size fits).
Matrix ExactLeastSquares(const Matrix& a, const Matrix& b, double lambda) {
  const size_t n = a.rows();
  const size_t d = a.cols();
  const double ridge = std::max(lambda, 1e-10);
  if (n >= d) {
    Matrix gram = Gram(a);
    for (size_t i = 0; i < d; ++i) gram(i, i) += ridge;
    return SolveSpd(gram, GemmTransA(a, b));
  }
  // X = A^T (A A^T + ridge I)^{-1} B.
  Matrix outer = GemmTransB(a, a);
  for (size_t i = 0; i < n; ++i) outer(i, i) += ridge;
  const Matrix y = SolveSpd(outer, b);
  return GemmTransA(a, y);
}

}  // namespace

// --- LocalExactSolver -------------------------------------------------------

std::shared_ptr<Transformer<DenseVec, DenseVec>> LocalExactSolver::Fit(
    const DistDataset<DenseVec>& data, const DistDataset<DenseVec>& labels,
    ExecContext* ctx) const {
  const Matrix a = AssembleDense(data);
  const Matrix b = AssembleLabels(labels);
  KS_CHECK_EQ(a.rows(), b.rows());
  Matrix x = ExactLeastSquares(a, b, config_.l2_reg);
  ctx->ReportActualCost(solver_costs::LocalExact(a.rows(), a.cols(), b.cols(),
                                                 a.cols()));
  return std::make_shared<LinearMapModel>(std::move(x), DenseVec{});
}

CostProfile LocalExactSolver::EstimateCost(const DataStats& in,
                                           int workers) const {
  (void)workers;  // Single-node operator.
  return solver_costs::LocalExact(in.num_records, in.dim, config_.num_classes,
                                  in.dim);
}

double LocalExactSolver::ScratchMemoryBytes(const DataStats& in,
                                            int workers) const {
  (void)workers;
  return solver_costs::LocalExactScratch(in.num_records, in.dim,
                                         config_.num_classes, in.dim);
}

// --- DistributedExactSolver -------------------------------------------------

std::shared_ptr<Transformer<DenseVec, DenseVec>> DistributedExactSolver::Fit(
    const DistDataset<DenseVec>& data, const DistDataset<DenseVec>& labels,
    ExecContext* ctx) const {
  // Per-partition partial Gram + A^T B, then aggregate — the real kernel
  // mirrors the distributed algorithm's structure.
  const Matrix b = AssembleLabels(labels);
  size_t d = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& rec : part) d = std::max(d, rec.size());
  }
  KS_CHECK_GT(d, 0u);
  const size_t k = b.cols();

  Matrix gram(d, d);
  Matrix atb(d, k);
  size_t row = 0;
  for (const auto& part : data.partitions()) {
    // Partition-local accumulation.
    Matrix a_part(part.size(), d);
    for (size_t i = 0; i < part.size(); ++i) {
      KS_CHECK_EQ(part[i].size(), d);
      std::copy(part[i].begin(), part[i].end(), a_part.RowPtr(i));
    }
    const Matrix b_part = b.RowSlice(row, row + part.size());
    row += part.size();
    gram += Gram(a_part);
    GemmAccumulate(a_part.Transposed(), b_part, &atb);
  }
  const double ridge = std::max(config_.l2_reg, 1e-10);
  for (size_t i = 0; i < d; ++i) gram(i, i) += ridge;
  Matrix x = SolveSpd(gram, atb);

  const size_t n = data.NumRecords();
  ctx->ReportActualCost(solver_costs::DistributedExact(
      n, d, k, d, ctx->resources().num_nodes));
  return std::make_shared<LinearMapModel>(std::move(x), DenseVec{});
}

CostProfile DistributedExactSolver::EstimateCost(const DataStats& in,
                                                 int workers) const {
  return solver_costs::DistributedExact(in.num_records, in.dim,
                                        config_.num_classes, in.dim, workers);
}

double DistributedExactSolver::ScratchMemoryBytes(const DataStats& in,
                                                  int workers) const {
  return solver_costs::DistributedExactScratch(
      in.num_records, in.dim, config_.num_classes, in.dim, workers);
}

// --- DenseLbfgsSolver -------------------------------------------------------

std::shared_ptr<Transformer<DenseVec, DenseVec>> DenseLbfgsSolver::Fit(
    const DistDataset<DenseVec>& data, const DistDataset<DenseVec>& labels,
    ExecContext* ctx) const {
  const Matrix a = AssembleDense(data);
  const Matrix b = AssembleLabels(labels);
  const size_t d = a.cols();
  const size_t k = b.cols();
  internal_solvers::DenseDesign design{&a};

  LbfgsOptions options;
  options.max_iterations = config_.lbfgs_iterations;
  const double lambda = config_.l2_reg;
  const bool logistic = config_.loss == LinearSolverConfig::Loss::kLogistic;

  LbfgsResult result = MinimizeLbfgs(
      [&](const std::vector<double>& x, std::vector<double>* grad) {
        return logistic
                   ? internal_solvers::LogisticObjective(design, b, lambda, d,
                                                         k, x, grad)
                   : internal_solvers::LeastSquaresObjective(design, b, lambda,
                                                             d, k, x, grad);
      },
      std::vector<double>(d * k, 0.0), options);

  Matrix x(d, k);
  std::copy(result.x.begin(), result.x.end(), x.data());
  ctx->ReportActualCost(solver_costs::Lbfgs(a.rows(), d, k, d,
                                            result.gradient_evals,
                                            ctx->resources().num_nodes));
  return std::make_shared<LinearMapModel>(std::move(x), DenseVec{});
}

CostProfile DenseLbfgsSolver::EstimateCost(const DataStats& in,
                                           int workers) const {
  return solver_costs::Lbfgs(in.num_records, in.dim, config_.num_classes,
                             in.dim, config_.lbfgs_iterations, workers);
}

double DenseLbfgsSolver::ScratchMemoryBytes(const DataStats& in,
                                            int workers) const {
  return solver_costs::LbfgsScratch(in.num_records, in.dim,
                                    config_.num_classes, in.dim, workers);
}

// --- DenseBlockSolver -------------------------------------------------------

std::shared_ptr<Transformer<DenseVec, DenseVec>> DenseBlockSolver::Fit(
    const DistDataset<DenseVec>& data, const DistDataset<DenseVec>& labels,
    ExecContext* ctx) const {
  const Matrix a = AssembleDense(data);
  const Matrix b = AssembleLabels(labels);
  const size_t n = a.rows();
  const size_t d = a.cols();
  const size_t k = b.cols();
  const size_t block = std::min(config_.block_size, d);
  const double ridge = std::max(config_.l2_reg, 1e-10);

  Matrix x(d, k);
  Matrix residual = b;  // B - A X with X = 0.
  for (int epoch = 0; epoch < config_.block_epochs; ++epoch) {
    for (size_t c0 = 0; c0 < d; c0 += block) {
      const size_t c1 = std::min(c0 + block, d);
      const Matrix a_j = a.ColSlice(c0, c1);
      const Matrix x_j = x.RowSlice(c0, c1);
      // Target including this block's current contribution.
      Matrix target = residual + Gemm(a_j, x_j);
      Matrix gram = Gram(a_j);
      for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += ridge;
      Matrix x_j_new = SolveSpd(gram, GemmTransA(a_j, target));
      residual = target - Gemm(a_j, x_j_new);
      for (size_t r = 0; r < x_j_new.rows(); ++r) {
        for (size_t c = 0; c < k; ++c) x(c0 + r, c) = x_j_new(r, c);
      }
    }
  }
  ctx->ReportActualCost(solver_costs::Block(n, d, k, d, block,
                                            config_.block_epochs,
                                            ctx->resources().num_nodes));
  return std::make_shared<LinearMapModel>(std::move(x), DenseVec{});
}

CostProfile DenseBlockSolver::EstimateCost(const DataStats& in,
                                           int workers) const {
  return solver_costs::Block(in.num_records, in.dim, config_.num_classes,
                             in.dim,
                             std::min<size_t>(config_.block_size, in.dim),
                             config_.block_epochs, workers);
}

double DenseBlockSolver::ScratchMemoryBytes(const DataStats& in,
                                            int workers) const {
  return solver_costs::BlockScratch(in.num_records, in.dim,
                                    config_.num_classes,
                                    std::min<size_t>(config_.block_size,
                                                     in.dim),
                                    workers);
}

// --- Logical dense solver ---------------------------------------------------

std::shared_ptr<OptimizableEstimator> MakeDenseLinearSolver(
    const LinearSolverConfig& config) {
  std::vector<std::shared_ptr<EstimatorBase>> options = {
      std::make_shared<DenseLbfgsSolver>(config),
      std::make_shared<DistributedExactSolver>(config),
      std::make_shared<LocalExactSolver>(config),
      std::make_shared<DenseBlockSolver>(config),
  };
  return std::make_shared<OptimizableEstimator>("LinearSolver",
                                                std::move(options));
}

}  // namespace keystone
