#include "src/solvers/solver_util.h"

#include "src/common/check.h"

namespace keystone {

Matrix AssembleDense(const DistDataset<std::vector<double>>& data) {
  const size_t n = data.NumRecords();
  KS_CHECK_GT(n, 0u);
  size_t d = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& rec : part) d = std::max(d, rec.size());
  }
  Matrix out(n, d);
  size_t row = 0;
  for (const auto& part : data.partitions()) {
    for (const auto& rec : part) {
      KS_CHECK_EQ(rec.size(), d) << "ragged dense feature vectors";
      std::copy(rec.begin(), rec.end(), out.RowPtr(row));
      ++row;
    }
  }
  return out;
}

SparseMatrix AssembleSparse(const DistDataset<SparseVector>& data,
                            size_t dim) {
  std::vector<SparseVector> rows;
  rows.reserve(data.NumRecords());
  size_t max_dim = dim;
  for (const auto& part : data.partitions()) {
    for (const auto& rec : part) {
      max_dim = std::max(max_dim, rec.dim);
      rows.push_back(rec);
    }
  }
  return SparseMatrix::FromRows(rows, max_dim);
}

Matrix OneHotLabels(const std::vector<int>& labels, int num_classes) {
  Matrix out(labels.size(), num_classes);
  for (size_t i = 0; i < labels.size(); ++i) {
    KS_CHECK_GE(labels[i], 0);
    KS_CHECK_LT(labels[i], num_classes);
    out(i, labels[i]) = 1.0;
  }
  return out;
}

Matrix AssembleLabels(const DistDataset<std::vector<double>>& labels) {
  return AssembleDense(labels);
}

}  // namespace keystone
