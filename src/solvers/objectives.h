#ifndef KEYSTONE_SOLVERS_OBJECTIVES_H_
#define KEYSTONE_SOLVERS_OBJECTIVES_H_

#include <cmath>
#include <vector>

#include "src/linalg/gemm.h"
#include "src/linalg/matrix.h"
#include "src/linalg/sparse.h"

namespace keystone {
namespace internal_solvers {

/// Adapters giving dense and sparse design matrices one product interface.
struct DenseDesign {
  const Matrix* a;
  Matrix Times(const Matrix& x) const { return Gemm(*a, x); }
  Matrix TransTimes(const Matrix& r) const { return GemmTransA(*a, r); }
  size_t rows() const { return a->rows(); }
};

struct SparseDesign {
  const SparseMatrix* a;
  Matrix Times(const Matrix& x) const { return a->MatMul(x); }
  Matrix TransTimes(const Matrix& r) const { return a->TransMatMul(r); }
  size_t rows() const { return a->rows(); }
};

/// Least-squares objective over the flattened d x k weight matrix:
///   f(X) = ||A X - B||_F^2 / (2n) + (lambda/2) ||X||_F^2.
/// Fills `grad` and returns f.
template <typename Design>
double LeastSquaresObjective(const Design& design, const Matrix& b,
                             double lambda, size_t d, size_t k,
                             const std::vector<double>& x_flat,
                             std::vector<double>* grad) {
  const double n = static_cast<double>(design.rows());
  Matrix x(d, k);
  std::copy(x_flat.begin(), x_flat.end(), x.data());

  Matrix residual = design.Times(x) - b;  // n x k
  const double fro = residual.FrobeniusNorm();
  double f = fro * fro / (2.0 * n);

  Matrix g = design.TransTimes(residual);  // d x k
  g *= 1.0 / n;
  grad->assign(x_flat.size(), 0.0);
  for (size_t i = 0; i < x_flat.size(); ++i) {
    (*grad)[i] = g.data()[i] + lambda * x_flat[i];
    f += 0.5 * lambda * x_flat[i] * x_flat[i];
  }
  return f;
}

/// Multinomial logistic (softmax cross-entropy) objective with one-hot
/// labels B:
///   f(X) = -(1/n) sum_i log softmax(A_i X)_{y_i} + (lambda/2)||X||_F^2.
template <typename Design>
double LogisticObjective(const Design& design, const Matrix& b, double lambda,
                         size_t d, size_t k,
                         const std::vector<double>& x_flat,
                         std::vector<double>* grad) {
  const double n = static_cast<double>(design.rows());
  Matrix x(d, k);
  std::copy(x_flat.begin(), x_flat.end(), x.data());

  Matrix scores = design.Times(x);  // n x k
  double f = 0.0;
  // Convert scores to (P - B) in place, accumulating the loss.
  for (size_t i = 0; i < scores.rows(); ++i) {
    double* row = scores.RowPtr(i);
    double max_score = row[0];
    for (size_t c = 1; c < k; ++c) max_score = std::max(max_score, row[c]);
    double z = 0.0;
    for (size_t c = 0; c < k; ++c) z += std::exp(row[c] - max_score);
    const double log_z = std::log(z) + max_score;
    for (size_t c = 0; c < k; ++c) {
      const double p = std::exp(row[c] - log_z);
      f -= b(i, c) * (row[c] - log_z);
      row[c] = p - b(i, c);
    }
  }
  f /= n;

  Matrix g = design.TransTimes(scores);
  g *= 1.0 / n;
  grad->assign(x_flat.size(), 0.0);
  for (size_t i = 0; i < x_flat.size(); ++i) {
    (*grad)[i] = g.data()[i] + lambda * x_flat[i];
    f += 0.5 * lambda * x_flat[i] * x_flat[i];
  }
  return f;
}

}  // namespace internal_solvers
}  // namespace keystone

#endif  // KEYSTONE_SOLVERS_OBJECTIVES_H_
