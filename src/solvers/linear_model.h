#ifndef KEYSTONE_SOLVERS_LINEAR_MODEL_H_
#define KEYSTONE_SOLVERS_LINEAR_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/operator.h"
#include "src/linalg/matrix.h"
#include "src/linalg/sparse.h"

namespace keystone {

/// Fitted linear map X in R^{d x k} applied to dense feature vectors:
/// f(x) = x^T X (+ intercept). The Transformer produced by every dense
/// linear solver.
class LinearMapModel : public Transformer<std::vector<double>,
                                          std::vector<double>> {
 public:
  LinearMapModel(Matrix weights, std::vector<double> intercept);

  std::string Name() const override { return "LinearMap"; }

  std::vector<double> Apply(const std::vector<double>& x) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;

  ValueShape InputShapeRequirement() const override {
    return ValueShape::Vector(static_cast<int64_t>(weights_.rows()));
  }
  ValueShape TransferShape(const ValueShape& in) const override {
    (void)in;
    return ValueShape::Vector(static_cast<int64_t>(weights_.cols()));
  }

  const Matrix& weights() const { return weights_; }
  const std::vector<double>& intercept() const { return intercept_; }

 private:
  Matrix weights_;  // d x k
  std::vector<double> intercept_;
};

/// Fitted linear map applied to sparse feature vectors.
class SparseLinearMapModel : public Transformer<SparseVector,
                                                std::vector<double>> {
 public:
  SparseLinearMapModel(Matrix weights, std::vector<double> intercept);

  std::string Name() const override { return "SparseLinearMap"; }

  std::vector<double> Apply(const SparseVector& x) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;

  ValueShape InputShapeRequirement() const override {
    return ValueShape::Sparse(static_cast<int64_t>(weights_.rows()));
  }
  ValueShape TransferShape(const ValueShape& in) const override {
    (void)in;
    return ValueShape::Vector(static_cast<int64_t>(weights_.cols()));
  }

  const Matrix& weights() const { return weights_; }

 private:
  Matrix weights_;  // d x k
  std::vector<double> intercept_;
};

/// Mean squared Frobenius loss ||A X - B||_F^2 / n over a dense dataset.
double LeastSquaresLoss(const Matrix& a, const Matrix& x, const Matrix& b);

}  // namespace keystone

#endif  // KEYSTONE_SOLVERS_LINEAR_MODEL_H_
