#include "src/solvers/lbfgs.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "src/common/check.h"
#include "src/linalg/vector_ops.h"

namespace keystone {

LbfgsResult MinimizeLbfgs(const LbfgsObjective& objective,
                          std::vector<double> x0,
                          const LbfgsOptions& options) {
  LbfgsResult result;
  result.x = std::move(x0);
  const size_t n = result.x.size();

  std::vector<double> grad(n, 0.0);
  double f = objective(result.x, &grad);
  ++result.gradient_evals;

  // (s, y, rho) history for the two-loop recursion.
  std::deque<std::vector<double>> s_hist;
  std::deque<std::vector<double>> y_hist;
  std::deque<double> rho_hist;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const double grad_norm = Norm2(grad);
    if (grad_norm <= options.gradient_tol * std::max(1.0, Norm2(result.x))) {
      result.converged = true;
      break;
    }

    // Two-loop recursion: direction = -H grad.
    std::vector<double> q = grad;
    std::vector<double> alpha(s_hist.size());
    for (size_t i = s_hist.size(); i-- > 0;) {
      alpha[i] = rho_hist[i] * Dot(s_hist[i], q);
      Axpy(-alpha[i], y_hist[i], &q);
    }
    if (!s_hist.empty()) {
      const auto& s_last = s_hist.back();
      const auto& y_last = y_hist.back();
      const double gamma = Dot(s_last, y_last) / Dot(y_last, y_last);
      Scale(gamma, &q);
    }
    for (size_t i = 0; i < s_hist.size(); ++i) {
      const double beta = rho_hist[i] * Dot(y_hist[i], q);
      Axpy(alpha[i] - beta, s_hist[i], &q);
    }
    std::vector<double> direction = std::move(q);
    Scale(-1.0, &direction);

    double directional = Dot(grad, direction);
    if (directional >= 0.0) {
      // Not a descent direction (can happen with loss noise): restart with
      // steepest descent.
      direction = grad;
      Scale(-1.0, &direction);
      directional = -Dot(grad, grad);
      s_hist.clear();
      y_hist.clear();
      rho_hist.clear();
    }

    // Weak Wolfe line search (bisection, Lewis–Overton style). Enforcing
    // the curvature condition keeps s^T y > 0 so the quasi-Newton history
    // stays well conditioned.
    constexpr double kC1 = 1e-4;  // Sufficient decrease.
    constexpr double kC2 = 0.9;   // Curvature.
    std::vector<double> x_new(n);
    std::vector<double> grad_new(n);
    double f_new = f;
    double lo = 0.0;
    double hi = std::numeric_limits<double>::infinity();
    double step = options.initial_step;
    bool accepted = false;
    for (int ls = 0; ls < 2 * options.max_line_search_steps; ++ls) {
      for (size_t i = 0; i < n; ++i) {
        x_new[i] = result.x[i] + step * direction[i];
      }
      f_new = objective(x_new, &grad_new);
      ++result.gradient_evals;
      if (f_new > f + kC1 * step * directional) {
        hi = step;
        step = 0.5 * (lo + hi);
      } else if (Dot(grad_new, direction) < kC2 * directional) {
        lo = step;
        step = std::isinf(hi) ? 2.0 * step : 0.5 * (lo + hi);
      } else {
        accepted = true;
        break;
      }
    }
    // Accept a plain sufficient-decrease point if the curvature condition
    // could not be satisfied within the budget.
    if (!accepted && f_new <= f + kC1 * step * directional) accepted = true;
    if (!accepted) break;  // Line search failed; give up at current point.

    // Update history.
    std::vector<double> s(n);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
      s[i] = x_new[i] - result.x[i];
      y[i] = grad_new[i] - grad[i];
    }
    const double sy = Dot(s, y);
    if (sy > 1e-12) {
      s_hist.push_back(std::move(s));
      y_hist.push_back(std::move(y));
      rho_hist.push_back(1.0 / sy);
      if (static_cast<int>(s_hist.size()) > options.history) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    }

    result.x = std::move(x_new);
    grad = std::move(grad_new);
    f = f_new;
    ++result.iterations;
  }

  result.objective = f;
  return result;
}

}  // namespace keystone
