#ifndef KEYSTONE_SOLVERS_SOLVERS_H_
#define KEYSTONE_SOLVERS_SOLVERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/string_util.h"
#include "src/core/operator.h"
#include "src/linalg/sparse.h"
#include "src/solvers/linear_model.h"

namespace keystone {

using DenseVec = std::vector<double>;

/// Hyperparameters shared by the linear solver family. `num_classes` is the
/// label dimension k (the one-hot width for classification).
struct LinearSolverConfig {
  int num_classes = 2;
  double l2_reg = 1e-6;
  int lbfgs_iterations = 50;
  int block_epochs = 3;
  size_t block_size = 2048;

  /// Loss minimized by the gradient solvers.
  enum class Loss { kLeastSquares, kLogistic } loss = Loss::kLeastSquares;
};

/// Signature of everything in the config that changes a fitted model, used
/// as every solver's ParamSignature so two grid-search variants of one
/// solver class never share a lineage fingerprint.
inline std::string SolverParamSignature(const LinearSolverConfig& c) {
  return "k=" + std::to_string(c.num_classes) + ",l2=" + ParamNumber(c.l2_reg) +
         ",lbfgs=" + std::to_string(c.lbfgs_iterations) +
         ",epochs=" + std::to_string(c.block_epochs) +
         ",block=" + std::to_string(c.block_size) +
         (c.loss == LinearSolverConfig::Loss::kLogistic ? ",logistic"
                                                        : ",lsq");
}

// ---------------------------------------------------------------------------
// Dense physical solvers (features are std::vector<double>).
// ---------------------------------------------------------------------------

/// Exact least-squares solve on a single node: gathers the dataset to the
/// driver and solves the normal equations (min-norm dual form when n < d).
class LocalExactSolver : public LabelEstimator<DenseVec, DenseVec, DenseVec> {
 public:
  explicit LocalExactSolver(const LinearSolverConfig& config)
      : config_(config) {}

  std::string Name() const override { return "LocalExactSolver"; }
  std::string ParamSignature() const override {
    return SolverParamSignature(config_);
  }

  std::shared_ptr<Transformer<DenseVec, DenseVec>> Fit(
      const DistDataset<DenseVec>& data, const DistDataset<DenseVec>& labels,
      ExecContext* ctx) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;
  double ScratchMemoryBytes(const DataStats& in, int workers) const override;

  ValueShape LabelShapeRequirement() const override {
    return ValueShape::Vector(config_.num_classes);
  }
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    (void)data_in;
    return ValueShape::Vector(config_.num_classes);
  }

 private:
  LinearSolverConfig config_;
};

/// Communication-avoiding distributed exact solve: per-partition Gram
/// matrices are tree-aggregated and the d x d system solved on the driver
/// (the paper's "Dist. QR" row of Table 1).
class DistributedExactSolver
    : public LabelEstimator<DenseVec, DenseVec, DenseVec> {
 public:
  explicit DistributedExactSolver(const LinearSolverConfig& config)
      : config_(config) {}

  std::string Name() const override { return "DistributedExactSolver"; }
  std::string ParamSignature() const override {
    return SolverParamSignature(config_);
  }

  std::shared_ptr<Transformer<DenseVec, DenseVec>> Fit(
      const DistDataset<DenseVec>& data, const DistDataset<DenseVec>& labels,
      ExecContext* ctx) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;
  double ScratchMemoryBytes(const DataStats& in, int workers) const override;

  ValueShape LabelShapeRequirement() const override {
    return ValueShape::Vector(config_.num_classes);
  }
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    (void)data_in;
    return ValueShape::Vector(config_.num_classes);
  }

 private:
  LinearSolverConfig config_;
};

/// Dense L-BFGS solver (least squares or logistic loss).
class DenseLbfgsSolver : public LabelEstimator<DenseVec, DenseVec, DenseVec> {
 public:
  explicit DenseLbfgsSolver(const LinearSolverConfig& config)
      : config_(config) {}

  std::string Name() const override { return "DenseLbfgsSolver"; }
  std::string ParamSignature() const override {
    return SolverParamSignature(config_);
  }

  std::shared_ptr<Transformer<DenseVec, DenseVec>> Fit(
      const DistDataset<DenseVec>& data, const DistDataset<DenseVec>& labels,
      ExecContext* ctx) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;
  double ScratchMemoryBytes(const DataStats& in, int workers) const override;
  int Weight() const override { return config_.lbfgs_iterations; }

  ValueShape LabelShapeRequirement() const override {
    return ValueShape::Vector(config_.num_classes);
  }
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    (void)data_in;
    return ValueShape::Vector(config_.num_classes);
  }

 private:
  LinearSolverConfig config_;
};

/// Dense block coordinate (Gauss-Seidel) solver: features are partitioned
/// into blocks of `block_size`; each epoch solves every block's normal
/// equations against the current residual.
class DenseBlockSolver : public LabelEstimator<DenseVec, DenseVec, DenseVec> {
 public:
  explicit DenseBlockSolver(const LinearSolverConfig& config)
      : config_(config) {}

  std::string Name() const override { return "DenseBlockSolver"; }
  std::string ParamSignature() const override {
    return SolverParamSignature(config_);
  }

  std::shared_ptr<Transformer<DenseVec, DenseVec>> Fit(
      const DistDataset<DenseVec>& data, const DistDataset<DenseVec>& labels,
      ExecContext* ctx) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;
  double ScratchMemoryBytes(const DataStats& in, int workers) const override;
  int Weight() const override { return config_.block_epochs; }

  ValueShape LabelShapeRequirement() const override {
    return ValueShape::Vector(config_.num_classes);
  }
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    (void)data_in;
    return ValueShape::Vector(config_.num_classes);
  }

 private:
  LinearSolverConfig config_;
};

// ---------------------------------------------------------------------------
// Sparse physical solvers (features are SparseVector).
// ---------------------------------------------------------------------------

/// Sparse L-BFGS: gradients via CSR products, cost scales with nnz.
class SparseLbfgsSolver
    : public LabelEstimator<SparseVector, DenseVec, DenseVec> {
 public:
  explicit SparseLbfgsSolver(const LinearSolverConfig& config)
      : config_(config) {}

  std::string Name() const override { return "SparseLbfgsSolver"; }
  std::string ParamSignature() const override {
    return SolverParamSignature(config_);
  }

  std::shared_ptr<Transformer<SparseVector, DenseVec>> Fit(
      const DistDataset<SparseVector>& data,
      const DistDataset<DenseVec>& labels, ExecContext* ctx) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;
  double ScratchMemoryBytes(const DataStats& in, int workers) const override;
  int Weight() const override { return config_.lbfgs_iterations; }

  ValueShape LabelShapeRequirement() const override {
    return ValueShape::Vector(config_.num_classes);
  }
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    (void)data_in;
    return ValueShape::Vector(config_.num_classes);
  }

 private:
  LinearSolverConfig config_;
};

/// Exact solve over sparse features. Like the Spark implementation the
/// paper measured, the factorization stage materializes a dense
/// (single-precision) copy of each partition, so per-node memory grows
/// linearly in n*d/w and the solver crashes beyond a few thousand features
/// on a 65M-example corpus — the paper's Figure 6 crash regime.
class SparseExactSolver
    : public LabelEstimator<SparseVector, DenseVec, DenseVec> {
 public:
  explicit SparseExactSolver(const LinearSolverConfig& config)
      : config_(config) {}

  std::string Name() const override { return "SparseExactSolver"; }
  std::string ParamSignature() const override {
    return SolverParamSignature(config_);
  }

  std::shared_ptr<Transformer<SparseVector, DenseVec>> Fit(
      const DistDataset<SparseVector>& data,
      const DistDataset<DenseVec>& labels, ExecContext* ctx) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;
  double ScratchMemoryBytes(const DataStats& in, int workers) const override;

  ValueShape LabelShapeRequirement() const override {
    return ValueShape::Vector(config_.num_classes);
  }
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    (void)data_in;
    return ValueShape::Vector(config_.num_classes);
  }

 private:
  LinearSolverConfig config_;
};

/// Block coordinate solver over sparse features. Each block is densified
/// for the local solve, losing the sparsity advantage — the reason it is
/// 26-260x slower than L-BFGS on text features (paper §3).
class SparseBlockSolver
    : public LabelEstimator<SparseVector, DenseVec, DenseVec> {
 public:
  explicit SparseBlockSolver(const LinearSolverConfig& config)
      : config_(config) {}

  std::string Name() const override { return "SparseBlockSolver"; }
  std::string ParamSignature() const override {
    return SolverParamSignature(config_);
  }

  std::shared_ptr<Transformer<SparseVector, DenseVec>> Fit(
      const DistDataset<SparseVector>& data,
      const DistDataset<DenseVec>& labels, ExecContext* ctx) const override;

  CostProfile EstimateCost(const DataStats& in, int workers) const override;
  double ScratchMemoryBytes(const DataStats& in, int workers) const override;
  int Weight() const override { return config_.block_epochs; }

  ValueShape LabelShapeRequirement() const override {
    return ValueShape::Vector(config_.num_classes);
  }
  ValueShape ModelOutputShape(const ValueShape& data_in) const override {
    (void)data_in;
    return ValueShape::Vector(config_.num_classes);
  }

 private:
  LinearSolverConfig config_;
};

// ---------------------------------------------------------------------------
// Logical (Optimizable) solvers.
// ---------------------------------------------------------------------------

/// The logical LinearSolver over dense features: an Optimizable estimator
/// whose options are {DistributedExact, LocalExact, L-BFGS, Block}.
std::shared_ptr<OptimizableEstimator> MakeDenseLinearSolver(
    const LinearSolverConfig& config);

/// The logical LinearSolver over sparse features:
/// {L-BFGS, Exact, Block}.
std::shared_ptr<OptimizableEstimator> MakeSparseLinearSolver(
    const LinearSolverConfig& config);

}  // namespace keystone

#endif  // KEYSTONE_SOLVERS_SOLVERS_H_
