#ifndef KEYSTONE_SIM_VIRTUAL_TIME_H_
#define KEYSTONE_SIM_VIRTUAL_TIME_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/sim/cost_profile.h"
#include "src/sim/resources.h"

namespace keystone {

/// Accumulates simulated (virtual) cluster time, broken down by named stage.
/// Operators execute their real kernels in-process; the time the same work
/// would take on the configured cluster is charged here. This is the ledger
/// every benchmark reads its numbers from. Charging is thread-safe so
/// operators running on the worker pool may charge concurrently; when a
/// metrics registry is attached every charge is also counted and sized
/// there (`ledger.charges`, `ledger.charge_seconds`).
class VirtualTimeLedger {
 public:
  explicit VirtualTimeLedger(const ClusterResourceDescriptor& resources)
      : resources_(resources) {}

  /// Charges the estimated seconds for a critical-path cost profile.
  double Charge(const std::string& stage, const CostProfile& cost);

  /// Charges a raw number of virtual seconds. The charge must be finite
  /// and non-negative (KS_CHECK): a NaN/infinite/negative charge would
  /// silently corrupt TotalSeconds() and every report built from it. When
  /// a metrics registry is attached, the `ledger.total_seconds` gauge
  /// tracks the running total (and is reset to 0 by Reset()).
  void ChargeSeconds(const std::string& stage, double seconds) EXCLUDES(mu_);

  /// Total virtual seconds across all stages.
  double TotalSeconds() const EXCLUDES(mu_);

  /// Virtual seconds charged to one stage.
  double StageSeconds(const std::string& stage) const EXCLUDES(mu_);

  /// Per-stage breakdown in insertion order.
  std::vector<std::pair<std::string, double>> Breakdown() const EXCLUDES(mu_);

  const ClusterResourceDescriptor& resources() const { return resources_; }

  /// Attaches a metrics registry (nullptr detaches).
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  void Reset() EXCLUDES(mu_);

  std::string ToString() const EXCLUDES(mu_);

 private:
  ClusterResourceDescriptor resources_;
  /// Ranked below the metrics stripes: a charge may fan out into the
  /// metrics registry, never the other way around (see LockRank).
  mutable Mutex mu_{kLockRankLedger};
  std::vector<std::string> stage_order_ GUARDED_BY(mu_);
  std::map<std::string, double> stage_seconds_ GUARDED_BY(mu_);
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Observer of a VirtualClock's advances. The telemetry hub implements
/// this to close time windows at deterministic virtual instants.
class TickListener {
 public:
  virtual ~TickListener() = default;
  /// The clock moved forward to `now_seconds` (monotone within an epoch).
  virtual void OnAdvance(double now_seconds) = 0;
  /// The clock rewound to 0: a new run/epoch begins.
  virtual void OnReset() {}
};

/// Deterministic virtual-time tick source. The PipelineServer's event loop
/// (and any other virtual-time driver) owns one and advances it as events
/// are processed; listeners observe the exact same sequence of instants
/// regardless of kernel-pool size because all advances happen on the
/// serial event loop. Deliberately not thread-safe for the same reason as
/// BoundedRequestQueue: only the serial loop touches it.
class VirtualClock {
 public:
  double Now() const { return now_; }

  /// Moves the clock forward and notifies listeners. Advances to the past
  /// are ignored (events can carry equal timestamps).
  void AdvanceTo(double now_seconds);

  /// Rewinds to 0 and notifies listeners a new epoch began.
  void Reset();

  void AddListener(TickListener* listener);
  void RemoveListener(TickListener* listener);

 private:
  double now_ = 0.0;
  std::vector<TickListener*> listeners_;
};

/// Makespan (seconds) of independent tasks greedily list-scheduled over
/// `slots` parallel workers, longest-processing-time-first. Used to simulate
/// a distributed stage made of per-partition tasks (and the fault layer's
/// straggler model). An empty task list returns 0 for any slot count;
/// scheduling a non-empty list on `slots <= 0` or passing a negative or
/// non-finite task duration KS_CHECK-fails with a clear message.
double StageMakespan(const std::vector<double>& task_seconds, int slots);

}  // namespace keystone

#endif  // KEYSTONE_SIM_VIRTUAL_TIME_H_
