#include "src/sim/virtual_time.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace keystone {

double VirtualTimeLedger::Charge(const std::string& stage,
                                 const CostProfile& cost) {
  const double seconds = resources_.SecondsFor(cost);
  ChargeSeconds(stage, seconds);
  return seconds;
}

void VirtualTimeLedger::ChargeSeconds(const std::string& stage,
                                      double seconds) {
  // Input hygiene: a NaN or infinite charge would silently corrupt
  // TotalSeconds() and every report derived from it (NaN also poisons all
  // later additions), and a negative charge would let a bad cost profile
  // claw time back. Fail loudly at the source instead.
  KS_CHECK(std::isfinite(seconds))
      << "non-finite virtual-time charge to stage '" << stage
      << "': " << seconds;
  KS_CHECK_GE(seconds, 0.0)
      << "negative virtual-time charge to stage '" << stage << "'";
  double total = 0.0;
  {
    MutexLock lock(&mu_);
    auto it = stage_seconds_.find(stage);
    if (it == stage_seconds_.end()) {
      stage_order_.push_back(stage);
      stage_seconds_[stage] = seconds;
    } else {
      it->second += seconds;
    }
    for (const auto& [_, s] : stage_seconds_) total += s;
  }
  if (metrics_ != nullptr) {
    metrics_->Increment("ledger.charges");
    metrics_->Observe("ledger.charge_seconds", seconds);
    metrics_->Set("ledger.total_seconds", total);
  }
}

double VirtualTimeLedger::TotalSeconds() const {
  MutexLock lock(&mu_);
  double total = 0.0;
  for (const auto& [_, s] : stage_seconds_) total += s;
  return total;
}

double VirtualTimeLedger::StageSeconds(const std::string& stage) const {
  MutexLock lock(&mu_);
  auto it = stage_seconds_.find(stage);
  return it == stage_seconds_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> VirtualTimeLedger::Breakdown()
    const {
  MutexLock lock(&mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(stage_order_.size());
  for (const auto& name : stage_order_) {
    out.emplace_back(name, stage_seconds_.at(name));
  }
  return out;
}

void VirtualTimeLedger::Reset() {
  {
    MutexLock lock(&mu_);
    // Cleared together: Breakdown() iterates stage_order_ and indexes
    // stage_seconds_ by those names, so the two must never diverge.
    stage_order_.clear();
    stage_seconds_.clear();
  }
  // Keep any attached gauge coherent with the now-empty ledger.
  if (metrics_ != nullptr) metrics_->Set("ledger.total_seconds", 0.0);
}

std::string VirtualTimeLedger::ToString() const {
  std::ostringstream os;
  os << "VirtualTime{total=" << HumanSeconds(TotalSeconds());
  for (const auto& [name, s] : Breakdown()) {
    os << ", " << name << "=" << HumanSeconds(s);
  }
  os << "}";
  return os.str();
}

void VirtualClock::AdvanceTo(double now_seconds) {
  if (now_seconds <= now_) return;
  now_ = now_seconds;
  for (TickListener* listener : listeners_) listener->OnAdvance(now_);
}

void VirtualClock::Reset() {
  now_ = 0.0;
  for (TickListener* listener : listeners_) listener->OnReset();
}

void VirtualClock::AddListener(TickListener* listener) {
  if (listener == nullptr) return;
  listeners_.push_back(listener);
}

void VirtualClock::RemoveListener(TickListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

double StageMakespan(const std::vector<double>& task_seconds, int slots) {
  // An empty stage takes no time regardless of the slot count — checked
  // before the slots guard so callers scheduling zero tasks on a cluster
  // they haven't sized yet get 0, not an abort.
  if (task_seconds.empty()) return 0.0;
  KS_CHECK_GT(slots, 0) << "cannot schedule " << task_seconds.size()
                        << " tasks on a cluster with no worker slots";
  std::vector<double> sorted = task_seconds;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  // Min-heap of per-slot finish times.
  std::priority_queue<double, std::vector<double>, std::greater<double>> heap;
  for (int i = 0; i < slots; ++i) heap.push(0.0);
  for (double t : sorted) {
    KS_CHECK(std::isfinite(t) && t >= 0.0)
        << "invalid task duration " << t << " in stage makespan";
    const double earliest = heap.top();
    heap.pop();
    heap.push(earliest + t);
  }
  double makespan = 0.0;
  while (!heap.empty()) {
    makespan = heap.top();
    heap.pop();
  }
  return makespan;
}

}  // namespace keystone
