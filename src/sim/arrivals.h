#ifndef KEYSTONE_SIM_ARRIVALS_H_
#define KEYSTONE_SIM_ARRIVALS_H_

#include <cstdint>

#include "src/common/rng.h"

namespace keystone {

/// Samples an exponential holding time with the given mean from `rng`.
/// The building block of every virtual-time arrival/think process in the
/// serving simulator; mean <= 0 returns 0 (a degenerate, instant process).
double ExponentialSample(Rng* rng, double mean_seconds);

/// Deterministic Poisson arrival process on the virtual-time axis:
/// successive Next() calls return non-decreasing arrival timestamps whose
/// inter-arrival gaps are exponential with rate `rate_per_second`. Seeded,
/// so a load trace is exactly reproducible run-to-run — the foundation of
/// the serving benchmarks' byte-identical determinism claims.
class PoissonArrivals {
 public:
  PoissonArrivals(double rate_per_second, uint64_t seed);

  /// Timestamp (virtual seconds) of the next arrival.
  double Next();

  double rate() const { return rate_; }

 private:
  double rate_;
  double now_ = 0.0;
  Rng rng_;
};

}  // namespace keystone

#endif  // KEYSTONE_SIM_ARRIVALS_H_
