#ifndef KEYSTONE_SIM_RESOURCES_H_
#define KEYSTONE_SIM_RESOURCES_H_

#include <string>

#include "src/sim/cost_profile.h"

namespace keystone {

/// Cluster resource descriptor (paper §3, the `R` in c(f, A_s, R)).
/// Captures per-node compute/memory/disk characteristics and the network,
/// normally collected via configuration data and microbenchmarks; here the
/// presets mirror the EC2 instance types the paper evaluated on.
struct ClusterResourceDescriptor {
  int num_nodes = 1;
  int cores_per_node = 8;

  /// Sustained double-precision throughput per node, GFLOP/s.
  double gflops_per_node = 40.0;

  /// Main-memory bandwidth per node, GB/s.
  double mem_bandwidth_gb = 20.0;

  /// Local disk (SSD) bandwidth per node, GB/s.
  double disk_bandwidth_gb = 0.4;

  /// Per-link network bandwidth, GB/s (10 GbE ~ 1.25 GB/s).
  double network_gb = 1.25;

  /// Memory available for caching per node, GB.
  double memory_per_node_gb = 122.0;

  /// Seconds per synchronous coordination round (BSP barrier / job launch
  /// scheduling overhead — ~100 ms on Spark-era clusters).
  double round_latency_s = 0.1;

  /// EC2 r3.4xlarge (8 physical cores, 122 GB, SSD, 10 GbE): the paper's
  /// main experiment configuration.
  static ClusterResourceDescriptor R3_4xlarge(int nodes);

  /// EC2 c3.4xlarge (compute optimized, 30 GB memory): used for the solver
  /// microbenchmarks in Figure 6.
  static ClusterResourceDescriptor C3_4xlarge(int nodes);

  /// Single local workstation (for the "local" physical operators).
  static ClusterResourceDescriptor LocalWorkstation();

  /// Total worker slots in the cluster.
  int TotalSlots() const { return num_nodes * cores_per_node; }

  /// Total cache capacity across the cluster, bytes.
  double ClusterMemoryBytes() const {
    return memory_per_node_gb * 1e9 * num_nodes;
  }

  /// Converts a critical-path cost profile into estimated seconds:
  ///   Rexec * cexec + Rcoord * ccoord
  /// with Rexec derived from node compute/memory speed and Rcoord from the
  /// network speed (paper Equation 1).
  double SecondsFor(const CostProfile& cost) const;

  /// Seconds to scan `bytes` from memory on one node.
  double MemoryReadSeconds(double bytes) const {
    return bytes / (mem_bandwidth_gb * 1e9);
  }

  /// Seconds to scan `bytes` from local disk on one node.
  double DiskReadSeconds(double bytes) const {
    return bytes / (disk_bandwidth_gb * 1e9);
  }

  std::string ToString() const;
};

}  // namespace keystone

#endif  // KEYSTONE_SIM_RESOURCES_H_
