#ifndef KEYSTONE_SIM_FAULTS_RECOVERY_H_
#define KEYSTONE_SIM_FAULTS_RECOVERY_H_

// Recovery simulation: replays one node execution under a FaultPlan and
// prices what the cluster would have paid to survive the injected faults —
// wasted partial work, retry backoff, lineage recomputation of
// non-materialized upstream outputs (or the far cheaper cache read when the
// inputs were materialized), and straggler slowdown bounded by speculative
// execution. Everything is virtual time; the real kernels run exactly once.

#include <string>
#include <vector>

#include "src/sim/faults/fault_plan.h"

namespace keystone {
namespace faults {

/// What one injected fault cost, in virtual seconds.
struct FaultEvent {
  enum class Kind { kTaskFailure, kExecutorLoss, kStraggler };

  Kind kind = Kind::kTaskFailure;
  int attempt = 0;  // 0-based attempt the fault hit
  /// Partial work lost when the attempt died (failures only).
  double wasted_seconds = 0.0;
  /// Retry scheduling delay charged before the next attempt.
  double backoff_seconds = 0.0;
  /// Re-acquiring the node's inputs: lineage recompute or cache read.
  double recovery_seconds = 0.0;
  /// True when every input was re-read from the materialized cache (task
  /// failures with fully cached inputs); false when lineage recompute ran.
  bool cache_recovery = false;
};

const char* FaultEventKindName(FaultEvent::Kind kind);

/// Total fault overhead of one node execution.
struct FaultOutcome {
  std::vector<FaultEvent> events;
  int attempts = 1;  // total attempts including the successful one
  /// True when max_retries was exhausted and the final attempt was forced
  /// to succeed despite an injected failure draw.
  bool retries_exhausted = false;
  /// Sum of all event costs: wasted + backoff + recovery + straggler.
  double overhead_seconds = 0.0;

  bool Any() const { return !events.empty(); }
};

/// Everything recovery pricing needs to know about the node execution it is
/// replaying. The caller (PlanRunner) fills this from the run's per-node
/// outcomes, so the numbers reflect the schedule actually being executed.
struct RecoveryContext {
  int node_id = -1;
  std::string fingerprint;

  /// Modeled virtual seconds of one clean execution of this node.
  double base_seconds = 0.0;

  /// Partition/slot shape of the node's stage, for the straggler model:
  /// the stage is treated as `partitions` equal tasks list-scheduled over
  /// `slots` workers (StageMakespan).
  size_t partitions = 1;
  int slots = 1;

  /// Seconds to re-acquire the node's inputs when a retry respects the
  /// materialized set: cached inputs are re-read from cluster memory,
  /// non-cached ones pay their upstream recompute chain.
  double lineage_recovery_seconds = 0.0;

  /// Seconds to re-acquire the inputs when cached partitions were lost
  /// with their executor: the full upstream chain recomputes, cache or not.
  double full_lineage_seconds = 0.0;

  /// True when every direct input was materialized (a task-failure retry
  /// recovers purely from cache).
  bool inputs_materialized = false;
};

/// Extra virtual seconds a straggling attempt adds: the stage's tasks are
/// laid out with StageMakespan, the slowest task is slowed by the
/// configured multiplier (capped by speculative execution when enabled),
/// and the overhead is the makespan growth over the clean schedule.
double StragglerOverheadSeconds(const RecoveryContext& ctx,
                                const FaultInjectionConfig& config);

/// Replays the node execution under `plan`: draws each attempt's fault,
/// prices failures (wasted work + backoff + input recovery) until an
/// attempt succeeds or retries are exhausted, and adds straggler overhead
/// on the successful attempt. Pure and deterministic — identical inputs
/// always produce identical outcomes, on any thread.
FaultOutcome SimulateNodeFaults(const FaultPlan& plan,
                                const RecoveryContext& ctx);

}  // namespace faults
}  // namespace keystone

#endif  // KEYSTONE_SIM_FAULTS_RECOVERY_H_
