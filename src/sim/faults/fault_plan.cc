#include "src/sim/faults/fault_plan.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace keystone {
namespace faults {

namespace {

/// FNV-1a over the fingerprint: a stable, platform-independent string hash
/// (std::hash is implementation-defined and would break replay across
/// standard libraries).
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// SplitMix64 finalizer: decorrelates the combined key before it seeds the
/// per-draw generator.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double RetryPolicy::BackoffSeconds(int failed_attempt) const {
  KS_CHECK_GE(failed_attempt, 0);
  double backoff = backoff_base_seconds;
  for (int i = 0; i < failed_attempt; ++i) backoff *= backoff_multiplier;
  return backoff;
}

FaultDraw FaultPlan::DrawFor(int node_id, const std::string& fingerprint,
                             int attempt) const {
  FaultDraw draw;
  if (!Enabled()) return draw;
  // One private generator per (seed, node, attempt): draws are a pure
  // function of stable identity, independent of scheduling order.
  uint64_t key = Mix(config_.seed);
  key = Mix(key ^ Fnv1a(fingerprint));
  key = Mix(key ^ static_cast<uint64_t>(node_id));
  key = Mix(key ^ static_cast<uint64_t>(attempt));
  Rng rng(key);

  // A single uniform decides the failure kind so the two rates partition
  // one interval: [0, loss) executor loss, [loss, loss + task) task failure.
  const double u = rng.NextDouble();
  if (u < config_.executor_loss_rate) {
    draw.fails = true;
    draw.executor_loss = true;
  } else if (u < config_.executor_loss_rate + config_.task_failure_rate) {
    draw.fails = true;
  }
  if (draw.fails) {
    // How far the attempt got before dying; drawn after the kind so the
    // fraction stream is independent of the rates.
    draw.fail_fraction = rng.Uniform(0.1, 0.9);
  }
  draw.straggler = rng.NextDouble() < config_.straggler_rate;
  return draw;
}

std::string FaultPlan::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "FaultPlan{seed=%llu, task=%.3g, exec_loss=%.3g, straggler=%.3g x%.2g, "
      "retries=%d, backoff=%.3gs x%.2g%s}",
      static_cast<unsigned long long>(config_.seed),
      config_.task_failure_rate, config_.executor_loss_rate,
      config_.straggler_rate, config_.straggler_multiplier,
      config_.retry.max_retries, config_.retry.backoff_base_seconds,
      config_.retry.backoff_multiplier,
      config_.speculative_execution ? ", spec-ex" : "");
  return buf;
}

}  // namespace faults
}  // namespace keystone
