#include "src/sim/faults/recovery.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/sim/virtual_time.h"

namespace keystone {
namespace faults {

const char* FaultEventKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kTaskFailure:
      return "task-failure";
    case FaultEvent::Kind::kExecutorLoss:
      return "executor-loss";
    case FaultEvent::Kind::kStraggler:
      return "straggler";
  }
  return "unknown";
}

double StragglerOverheadSeconds(const RecoveryContext& ctx,
                                const FaultInjectionConfig& config) {
  if (ctx.base_seconds <= 0.0) return 0.0;
  const size_t tasks = std::max<size_t>(1, ctx.partitions);
  const int slots = std::max(1, ctx.slots);
  // Recover the per-task time that makes the clean schedule's makespan
  // equal the node's modeled seconds: equal tasks list-schedule into
  // ceil(tasks / slots) waves.
  const size_t waves = (tasks + static_cast<size_t>(slots) - 1) /
                       static_cast<size_t>(slots);
  const double task_seconds = ctx.base_seconds / static_cast<double>(waves);
  double multiplier = config.straggler_multiplier;
  if (config.speculative_execution) {
    // A backup copy launches once the task overruns; the effective
    // slowdown is capped at the speculation window.
    multiplier = std::min(multiplier, config.speculation_cap);
  }
  if (multiplier <= 1.0) return 0.0;
  std::vector<double> task_times(tasks, task_seconds);
  task_times[0] = task_seconds * multiplier;  // the straggling task
  const double makespan = StageMakespan(task_times, slots);
  return std::max(0.0, makespan - ctx.base_seconds);
}

FaultOutcome SimulateNodeFaults(const FaultPlan& plan,
                                const RecoveryContext& ctx) {
  FaultOutcome out;
  if (!plan.Enabled()) return out;
  const RetryPolicy& retry = plan.config().retry;
  KS_CHECK_GE(retry.max_retries, 0);

  for (int attempt = 0;; ++attempt) {
    const FaultDraw draw =
        plan.DrawFor(ctx.node_id, ctx.fingerprint, attempt);
    const bool can_retry = attempt < retry.max_retries;
    if (draw.fails && can_retry) {
      FaultEvent event;
      event.kind = draw.executor_loss ? FaultEvent::Kind::kExecutorLoss
                                      : FaultEvent::Kind::kTaskFailure;
      event.attempt = attempt;
      event.wasted_seconds = draw.fail_fraction * ctx.base_seconds;
      event.backoff_seconds = retry.BackoffSeconds(attempt);
      if (draw.executor_loss) {
        // Cached partitions died with the executor: full lineage recompute.
        event.recovery_seconds = ctx.full_lineage_seconds;
        event.cache_recovery = false;
      } else {
        event.recovery_seconds = ctx.lineage_recovery_seconds;
        event.cache_recovery = ctx.inputs_materialized;
      }
      out.overhead_seconds += event.wasted_seconds + event.backoff_seconds +
                              event.recovery_seconds;
      out.events.push_back(event);
      continue;
    }

    // This attempt completes — naturally, or forced because the retry
    // budget ran out (the simulator must terminate either way).
    out.retries_exhausted = draw.fails;
    if (draw.straggler) {
      const double slow = StragglerOverheadSeconds(ctx, plan.config());
      if (slow > 0.0) {
        FaultEvent event;
        event.kind = FaultEvent::Kind::kStraggler;
        event.attempt = attempt;
        event.recovery_seconds = slow;
        out.overhead_seconds += slow;
        out.events.push_back(event);
      }
    }
    out.attempts = attempt + 1;
    return out;
  }
}

}  // namespace faults
}  // namespace keystone
