#ifndef KEYSTONE_SIM_FAULTS_FAULT_PLAN_H_
#define KEYSTONE_SIM_FAULTS_FAULT_PLAN_H_

// Deterministic fault injection for the cluster simulator. KeystoneML's
// cost model assumes a Spark-like substrate where tasks fail, executors
// die, and stragglers appear — and where lineage-based recomputation and
// task retry make those failures survivable. A FaultPlan decides, for every
// (node, attempt) pair, whether that execution attempt fails, loses its
// executor, or straggles. Every decision is a pure function of the plan's
// seed and the node's stable identity, NEVER of execution order: the
// branch-parallel and serial schedules of PlanRunner must draw identical
// faults so their ledgers stay byte-identical. No std::random_device or
// global engine is ever consulted.

#include <cstdint>
#include <string>

namespace keystone {
namespace faults {

/// Bounded-retry policy with exponential backoff in virtual time.
/// A failed attempt charges BackoffSeconds(attempt) of coordination delay
/// before the next attempt starts (Spark's task re-launch delay).
struct RetryPolicy {
  /// Maximum retries per node execution; the attempt after the last retry
  /// is forced to succeed so the simulator always terminates (forced
  /// successes are surfaced via the `faults.retries_exhausted` metric).
  int max_retries = 3;

  /// Virtual seconds of scheduling delay before the first retry.
  double backoff_base_seconds = 0.1;

  /// Multiplier applied per subsequent retry (exponential backoff).
  double backoff_multiplier = 2.0;

  double BackoffSeconds(int failed_attempt) const;
};

/// Everything that parameterizes a FaultPlan. Rates are per node-execution
/// attempt; all randomness derives from `seed`.
struct FaultInjectionConfig {
  uint64_t seed = 0;

  /// Probability an attempt fails as a plain task failure: partial work is
  /// wasted and non-materialized upstream outputs must be recomputed
  /// (materialized ones recover from cache).
  double task_failure_rate = 0.0;

  /// Probability an attempt fails as an executor loss: like a task failure,
  /// but cached upstream partitions die with the executor, so recovery pays
  /// full lineage recompute even for materialized inputs.
  double executor_loss_rate = 0.0;

  /// Probability an attempt straggles: its slowest task runs
  /// `straggler_multiplier` times longer than its siblings.
  double straggler_rate = 0.0;

  /// Slowdown of a straggling task (>= 1).
  double straggler_multiplier = 4.0;

  /// Speculative execution: when a task straggles, a backup copy is
  /// launched and the effective slowdown is capped at `speculation_cap`
  /// (the original plus one relaunch), mirroring Spark's spec-ex.
  bool speculative_execution = true;
  double speculation_cap = 2.0;

  RetryPolicy retry;

  /// True when any fault can ever be injected.
  bool Enabled() const {
    return task_failure_rate > 0.0 || executor_loss_rate > 0.0 ||
           straggler_rate > 0.0;
  }
};

/// What the plan decided for one (node, attempt) execution.
struct FaultDraw {
  bool fails = false;          // the attempt fails and must be retried
  bool executor_loss = false;  // the failure also lost cached partitions
  bool straggler = false;      // the attempt's slowest task straggles
  /// Fraction of the attempt's work completed before the failure hit
  /// (wasted virtual seconds = fail_fraction * attempt seconds).
  double fail_fraction = 0.0;
};

/// A compiled, immutable fault schedule. Thread-safe by construction: every
/// method is const and DrawFor derives a private PRNG per (node, attempt)
/// from the seed and the node's stable identity, so concurrent scheduler
/// threads draw identical faults regardless of execution order.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultInjectionConfig& config) : config_(config) {}

  const FaultInjectionConfig& config() const { return config_; }
  bool Enabled() const { return config_.Enabled(); }

  /// The fault decision for attempt `attempt` (0-based) of the node with
  /// the given plan id and structural fingerprint. Deterministic: same
  /// (seed, id, fingerprint, attempt) always yields the same draw.
  FaultDraw DrawFor(int node_id, const std::string& fingerprint,
                    int attempt) const;

  std::string ToString() const;

 private:
  FaultInjectionConfig config_;
};

}  // namespace faults
}  // namespace keystone

#endif  // KEYSTONE_SIM_FAULTS_FAULT_PLAN_H_
