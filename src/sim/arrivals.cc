#include "src/sim/arrivals.h"

#include <cmath>

#include "src/common/check.h"

namespace keystone {

double ExponentialSample(Rng* rng, double mean_seconds) {
  if (mean_seconds <= 0.0) return 0.0;
  // NextDouble() is in [0, 1), so 1-u is in (0, 1] and the log is finite.
  const double u = rng->NextDouble();
  return -mean_seconds * std::log(1.0 - u);
}

PoissonArrivals::PoissonArrivals(double rate_per_second, uint64_t seed)
    : rate_(rate_per_second), rng_(seed) {
  KS_CHECK(rate_per_second > 0.0) << "arrival rate must be positive";
}

double PoissonArrivals::Next() {
  now_ += ExponentialSample(&rng_, 1.0 / rate_);
  return now_;
}

}  // namespace keystone
