#include "src/sim/resources.h"

#include <cstdio>

namespace keystone {

std::string CostProfile::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "CostProfile{flops=%.3g, bytes=%.3g, network=%.3g}", flops,
                bytes, network);
  return buf;
}

ClusterResourceDescriptor ClusterResourceDescriptor::R3_4xlarge(int nodes) {
  ClusterResourceDescriptor r;
  r.num_nodes = nodes;
  r.cores_per_node = 8;
  r.gflops_per_node = 70.0;  // 8 Ivy Bridge cores, sustained DGEMM.
  r.mem_bandwidth_gb = 25.0;
  r.disk_bandwidth_gb = 0.45;  // 320 GB SSD.
  r.network_gb = 1.25;         // 10 GbE.
  r.memory_per_node_gb = 122.0;
  return r;
}

ClusterResourceDescriptor ClusterResourceDescriptor::C3_4xlarge(int nodes) {
  ClusterResourceDescriptor r;
  r.num_nodes = nodes;
  r.cores_per_node = 8;
  r.gflops_per_node = 90.0;  // Compute optimized.
  r.mem_bandwidth_gb = 25.0;
  r.disk_bandwidth_gb = 0.4;
  r.network_gb = 1.25;
  r.memory_per_node_gb = 30.0;
  return r;
}

ClusterResourceDescriptor ClusterResourceDescriptor::LocalWorkstation() {
  ClusterResourceDescriptor r;
  r.num_nodes = 1;
  r.cores_per_node = 16;
  r.gflops_per_node = 140.0;
  r.mem_bandwidth_gb = 40.0;
  r.disk_bandwidth_gb = 0.5;
  r.network_gb = 1e9;  // No network hop for local execution.
  r.memory_per_node_gb = 256.0;
  r.round_latency_s = 1e-4;  // Thread-level synchronization only.
  return r;
}

double ClusterResourceDescriptor::SecondsFor(const CostProfile& cost) const {
  const double exec_seconds = cost.flops / (gflops_per_node * 1e9) +
                              cost.bytes / (mem_bandwidth_gb * 1e9);
  const double coord_seconds =
      cost.network / (network_gb * 1e9) + cost.rounds * round_latency_s;
  return exec_seconds + coord_seconds;
}

std::string ClusterResourceDescriptor::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Cluster{nodes=%d, cores/node=%d, %.0f GFLOP/s, mem %.0f "
                "GB/s, disk %.2f GB/s, net %.2f GB/s, %.0f GB/node}",
                num_nodes, cores_per_node, gflops_per_node, mem_bandwidth_gb,
                disk_bandwidth_gb, network_gb, memory_per_node_gb);
  return buf;
}

}  // namespace keystone
