#include "src/workloads/datasets.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace keystone {
namespace workloads {

namespace {

std::vector<std::vector<double>> OneHot(const std::vector<int>& labels,
                                        int num_classes) {
  std::vector<std::vector<double>> out(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    out[i].assign(num_classes, 0.0);
    out[i][labels[i]] = 1.0;
  }
  return out;
}

/// Zipf sampler over [0, vocabulary) via inverse-CDF on precomputed mass.
class ZipfSampler {
 public:
  ZipfSampler(size_t vocabulary, double exponent) {
    cdf_.resize(vocabulary);
    double total = 0.0;
    for (size_t i = 0; i < vocabulary; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = total;
    }
    for (auto& v : cdf_) v /= total;
  }

  size_t Sample(Rng* rng) const {
    const double u = rng->NextDouble();
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

TextCorpus AmazonLike(size_t train_docs, size_t test_docs,
                      size_t tokens_per_doc, size_t vocabulary,
                      uint64_t seed) {
  Rng rng(seed);
  TextCorpus corpus;
  corpus.num_classes = 2;
  const ZipfSampler zipf(vocabulary, 1.1);

  // A band of sentiment-bearing tokens: positive docs draw them from the
  // first half, negative docs from the second half.
  const size_t sentiment_tokens = std::max<size_t>(20, vocabulary / 50);

  auto make_doc = [&](int label) {
    std::string doc;
    for (size_t t = 0; t < tokens_per_doc; ++t) {
      size_t token;
      if (rng.Bernoulli(0.25)) {
        // Sentiment token biased by class.
        const size_t half = sentiment_tokens / 2;
        const size_t offset = label == 0 ? 0 : half;
        token = vocabulary + offset + rng.NextIndex(half);
      } else {
        token = zipf.Sample(&rng);
      }
      doc += "w" + std::to_string(token);
      doc += ' ';
    }
    return doc;
  };

  std::vector<std::string> train;
  std::vector<std::string> test;
  for (size_t i = 0; i < train_docs; ++i) {
    const int label = static_cast<int>(i % 2);
    corpus.train_label_ids.push_back(label);
    train.push_back(make_doc(label));
  }
  for (size_t i = 0; i < test_docs; ++i) {
    const int label = static_cast<int>(rng.NextIndex(2));
    corpus.test_label_ids.push_back(label);
    test.push_back(make_doc(label));
  }
  corpus.train_docs = MakeDataset(std::move(train), 8);
  corpus.test_docs = MakeDataset(std::move(test), 8);
  corpus.train_labels =
      MakeDataset(OneHot(corpus.train_label_ids, 2), 8);
  return corpus;
}

DenseCorpus DenseClasses(size_t train, size_t test, size_t dim,
                         int num_classes, double margin, uint64_t seed) {
  Rng rng(seed);
  DenseCorpus corpus;
  corpus.num_classes = num_classes;

  // Class means: random unit directions scaled by margin.
  Matrix means = Matrix::GaussianRandom(num_classes, dim, &rng);
  for (int c = 0; c < num_classes; ++c) {
    double norm = 0.0;
    for (size_t j = 0; j < dim; ++j) norm += means(c, j) * means(c, j);
    norm = std::sqrt(norm);
    for (size_t j = 0; j < dim; ++j) {
      means(c, j) *= margin / std::max(norm, 1e-12);
    }
  }

  auto make_split = [&](size_t count, std::vector<int>* labels) {
    std::vector<std::vector<double>> records(count);
    for (size_t i = 0; i < count; ++i) {
      const int c = static_cast<int>(i % num_classes);
      labels->push_back(c);
      records[i].resize(dim);
      for (size_t j = 0; j < dim; ++j) {
        records[i][j] = means(c, j) + rng.NextGaussian();
      }
    }
    return records;
  };

  corpus.train = MakeDataset(make_split(train, &corpus.train_label_ids), 8);
  corpus.test = MakeDataset(make_split(test, &corpus.test_label_ids), 8);
  corpus.train_labels =
      MakeDataset(OneHot(corpus.train_label_ids, num_classes), 8);
  return corpus;
}

ImageCorpus TexturedImages(size_t train, size_t test, size_t image_size,
                           size_t channels, int num_classes, double noise,
                           uint64_t seed) {
  Rng rng(seed);
  ImageCorpus corpus;
  corpus.num_classes = num_classes;

  // Each class owns a pool of grating orientations. Images are tiled and
  // every tile draws an orientation from its class pool, so per-image
  // descriptor *distributions* are class-specific while individual images
  // still show internal diversity (which Fisher-vector encodings need).
  constexpr int kPoolSize = 3;
  std::vector<std::vector<double>> orientation_pools(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    for (int i = 0; i < kPoolSize; ++i) {
      orientation_pools[c].push_back(
          M_PI * (c * kPoolSize + i) / (num_classes * kPoolSize) +
          rng.Uniform(-0.02, 0.02));
    }
  }
  const size_t tile = std::max<size_t>(4, image_size / 4);

  auto make_image = [&](int c) {
    Image img(image_size, image_size, channels);
    const size_t tiles = (image_size + tile - 1) / tile;
    // Per-tile orientation and phase.
    std::vector<double> tile_cos(tiles * tiles);
    std::vector<double> tile_sin(tiles * tiles);
    std::vector<double> tile_phase(tiles * tiles);
    for (size_t t = 0; t < tiles * tiles; ++t) {
      const double theta =
          orientation_pools[c][rng.NextIndex(kPoolSize)];
      tile_cos[t] = std::cos(theta);
      tile_sin[t] = std::sin(theta);
      tile_phase[t] = rng.Uniform(0, 2 * M_PI);
    }
    const double frequency = 0.9;
    for (size_t ch = 0; ch < channels; ++ch) {
      const double chroma = 0.6 + 0.4 * std::sin(c + 2.0 * ch);
      for (size_t y = 0; y < image_size; ++y) {
        for (size_t x = 0; x < image_size; ++x) {
          const size_t t = (y / tile) * tiles + (x / tile);
          const double u = tile_cos[t] * x + tile_sin[t] * y;
          const double v =
              0.5 + 0.4 * chroma * std::sin(frequency * u + tile_phase[t]) +
              noise * rng.NextGaussian();
          img.at(ch, y, x) = std::min(1.0, std::max(0.0, v));
        }
      }
    }
    return img;
  };

  auto make_split = [&](size_t count, std::vector<int>* labels) {
    std::vector<Image> images;
    images.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const int c = static_cast<int>(i % num_classes);
      labels->push_back(c);
      images.push_back(make_image(c));
    }
    return images;
  };

  corpus.train = MakeDataset(make_split(train, &corpus.train_label_ids), 8);
  corpus.test = MakeDataset(make_split(test, &corpus.test_label_ids), 8);
  corpus.train_labels =
      MakeDataset(OneHot(corpus.train_label_ids, num_classes), 8);
  return corpus;
}

}  // namespace workloads
}  // namespace keystone
