#ifndef KEYSTONE_WORKLOADS_PIPELINES_H_
#define KEYSTONE_WORKLOADS_PIPELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/executor.h"
#include "src/core/pipeline.h"
#include "src/linalg/vector_ops.h"
#include "src/ops/metrics.h"
#include "src/solvers/solvers.h"
#include "src/workloads/datasets.h"

namespace keystone {
namespace workloads {

/// Builders for the paper's five end-to-end applications (Tables 3-5),
/// operating on the synthetic corpora from datasets.h. Each returns a lazy
/// pipeline ready for PipelineExecutor::Fit.

/// Amazon text classification (Figure 2): Trim -> LowerCase -> Tokenize ->
/// NGrams(1,2) -> CommonSparseFeatures -> LinearSolver (sparse, logical).
Pipeline<std::string, std::vector<double>> BuildAmazonPipeline(
    const TextCorpus& corpus, size_t num_features,
    const LinearSolverConfig& solver_config);

/// TIMIT kernel SVM: StandardScaler -> gather of `blocks` random-feature
/// blocks -> concat -> LinearSolver (dense, logical).
Pipeline<std::vector<double>, std::vector<double>> BuildTimitPipeline(
    const DenseCorpus& corpus, size_t blocks, size_t block_dim, double gamma,
    const LinearSolverConfig& solver_config, uint64_t seed);

/// VOC image classification (Figure 5): GrayScale -> SIFT -> PCA (logical)
/// -> GMM/FisherVector -> normalize -> LinearSolver.
Pipeline<Image, std::vector<double>> BuildVocPipeline(
    const ImageCorpus& corpus, size_t sift_cell, size_t pca_k, size_t gmm_k,
    const LinearSolverConfig& solver_config);

/// ImageNet: the VOC featurization plus an LCS color branch, gathered and
/// concatenated before the solver.
Pipeline<Image, std::vector<double>> BuildImageNetPipeline(
    const ImageCorpus& corpus, size_t sift_cell, size_t pca_k, size_t gmm_k,
    const LinearSolverConfig& solver_config);

/// CIFAR-10: PatchExtractor -> ZCAWhitener -> KMeans dictionary (triangle
/// encoding) -> Pooler -> SymmetricRectifier -> LinearSolver
/// (Coates & Ng 2012, the paper's CIFAR pipeline).
Pipeline<Image, std::vector<double>> BuildCifarPipeline(
    const ImageCorpus& corpus, size_t patch_size, size_t stride,
    size_t dictionary, const LinearSolverConfig& solver_config);

/// YouTube-8M-like: StandardScaler over precomputed embeddings ->
/// LinearSolver.
Pipeline<std::vector<double>, std::vector<double>> BuildYoutubePipeline(
    const DenseCorpus& corpus, const LinearSolverConfig& solver_config);

/// Applies a fitted pipeline to test data and reports argmax accuracy.
template <typename In>
double EvalAccuracy(const FittedPipeline<In, std::vector<double>>& fitted,
                    const std::shared_ptr<DistDataset<In>>& test,
                    const std::vector<int>& labels, ExecContext* ctx) {
  const auto scores = fitted.Apply(test, ctx)->Collect();
  std::vector<int> predictions;
  predictions.reserve(scores.size());
  for (const auto& s : scores) {
    predictions.push_back(static_cast<int>(ArgMax(s)));
  }
  return Accuracy(predictions, labels);
}

}  // namespace workloads
}  // namespace keystone

#endif  // KEYSTONE_WORKLOADS_PIPELINES_H_
