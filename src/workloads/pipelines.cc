#include "src/workloads/pipelines.h"

#include "src/ops/features.h"
#include "src/ops/gmm.h"
#include "src/ops/image_ops.h"
#include "src/ops/kmeans.h"
#include "src/ops/pca.h"
#include "src/ops/text_ops.h"

namespace keystone {
namespace workloads {

Pipeline<std::string, std::vector<double>> BuildAmazonPipeline(
    const TextCorpus& corpus, size_t num_features,
    const LinearSolverConfig& solver_config) {
  return PipelineInput<std::string>("Document")
      .AndThen(std::make_shared<Trim>())
      .AndThen(std::make_shared<LowerCase>())
      .AndThen(std::make_shared<Tokenizer>())
      .AndThen(std::make_shared<NGramsFeaturizer>(1, 2))
      .AndThen(std::make_shared<CommonSparseFeatures>(num_features),
               corpus.train_docs)
      .AndThenLogicalEstimator<std::vector<double>>(
          MakeSparseLinearSolver(solver_config), corpus.train_docs,
          corpus.train_labels);
}

Pipeline<std::vector<double>, std::vector<double>> BuildTimitPipeline(
    const DenseCorpus& corpus, size_t blocks, size_t block_dim, double gamma,
    const LinearSolverConfig& solver_config, uint64_t seed) {
  const size_t input_dim =
      corpus.train->partitions().front().front().size();
  auto scaled = PipelineInput<std::vector<double>>("Frame").AndThen(
      std::make_shared<StandardScaler>(), corpus.train);
  std::vector<Pipeline<std::vector<double>, std::vector<double>>> branches;
  branches.reserve(blocks);
  for (size_t b = 0; b < blocks; ++b) {
    branches.push_back(scaled.AndThen(std::make_shared<CosineRandomFeatures>(
        input_dim, block_dim, gamma, seed + 101 * b)));
  }
  return Pipeline<std::vector<double>, std::vector<double>>::Gather(branches)
      .AndThen(std::make_shared<ConcatFeatures>())
      .AndThenLogicalEstimator<std::vector<double>>(
          MakeDenseLinearSolver(solver_config), corpus.train,
          corpus.train_labels);
}

Pipeline<Image, std::vector<double>> BuildVocPipeline(
    const ImageCorpus& corpus, size_t sift_cell, size_t pca_k, size_t gmm_k,
    const LinearSolverConfig& solver_config) {
  return PipelineInput<Image>("Image")
      .AndThen(std::make_shared<GrayScaler>())
      .AndThen(std::make_shared<DenseSift>(sift_cell, 8))
      .AndThenLogicalEstimator<Matrix>(MakePcaEstimator(pca_k), corpus.train,
                                       nullptr)
      .AndThen(std::make_shared<GmmFisherEstimator>(gmm_k), corpus.train)
      .AndThen(std::make_shared<L2Normalizer>())
      .AndThenLogicalEstimator<std::vector<double>>(
          MakeDenseLinearSolver(solver_config), corpus.train,
          corpus.train_labels);
}

Pipeline<Image, std::vector<double>> BuildImageNetPipeline(
    const ImageCorpus& corpus, size_t sift_cell, size_t pca_k, size_t gmm_k,
    const LinearSolverConfig& solver_config) {
  auto input = PipelineInput<Image>("Image");
  // SIFT branch.
  auto sift_branch =
      input.AndThen(std::make_shared<GrayScaler>())
          .AndThen(std::make_shared<DenseSift>(sift_cell, 8))
          .AndThenLogicalEstimator<Matrix>(MakePcaEstimator(pca_k),
                                           corpus.train, nullptr)
          .AndThen(std::make_shared<GmmFisherEstimator>(gmm_k, 10, 23),
                   corpus.train)
          .AndThen(std::make_shared<L2Normalizer>());
  // Local color statistics branch.
  auto lcs_branch =
      input.AndThen(std::make_shared<LocalColorStats>(sift_cell))
          .AndThenLogicalEstimator<Matrix>(MakePcaEstimator(pca_k, 43),
                                           corpus.train, nullptr)
          .AndThen(std::make_shared<GmmFisherEstimator>(gmm_k, 10, 47),
                   corpus.train)
          .AndThen(std::make_shared<L2Normalizer>());
  return Pipeline<Image, std::vector<double>>::Gather(
             {sift_branch, lcs_branch})
      .AndThen(std::make_shared<ConcatFeatures>())
      .AndThenLogicalEstimator<std::vector<double>>(
          MakeDenseLinearSolver(solver_config), corpus.train,
          corpus.train_labels);
}

Pipeline<Image, std::vector<double>> BuildCifarPipeline(
    const ImageCorpus& corpus, size_t patch_size, size_t stride,
    size_t dictionary, const LinearSolverConfig& solver_config) {
  return PipelineInput<Image>("Image")
      .AndThen(std::make_shared<PatchExtractor>(patch_size, stride))
      .AndThen(std::make_shared<ZcaWhitener>(), corpus.train)
      .AndThen(std::make_shared<KMeansEstimator>(dictionary), corpus.train)
      .AndThen(std::make_shared<Pooler>(2))
      .AndThen(std::make_shared<SymmetricRectifier>())
      .AndThenLogicalEstimator<std::vector<double>>(
          MakeDenseLinearSolver(solver_config), corpus.train,
          corpus.train_labels);
}

Pipeline<std::vector<double>, std::vector<double>> BuildYoutubePipeline(
    const DenseCorpus& corpus, const LinearSolverConfig& solver_config) {
  return PipelineInput<std::vector<double>>("Embedding")
      .AndThen(std::make_shared<StandardScaler>(), corpus.train)
      .AndThenLogicalEstimator<std::vector<double>>(
          MakeDenseLinearSolver(solver_config), corpus.train,
          corpus.train_labels);
}

}  // namespace workloads
}  // namespace keystone
