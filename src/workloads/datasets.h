#ifndef KEYSTONE_WORKLOADS_DATASETS_H_
#define KEYSTONE_WORKLOADS_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/dist_dataset.h"
#include "src/linalg/sparse.h"
#include "src/ops/image.h"

namespace keystone {
namespace workloads {

/// Synthetic stand-ins for the paper's datasets (Table 3). Each generator
/// reproduces the statistical profile operator selection depends on —
/// record counts, dimensionality, sparsity, class structure — at laptop
/// scale, with deterministic seeding. Semantic content is synthetic:
/// class-conditional token distributions for text, class-conditional
/// textures for images, class-conditional Gaussians for dense vectors.

/// A text classification corpus (Amazon-reviews-like).
struct TextCorpus {
  std::shared_ptr<DistDataset<std::string>> train_docs;
  std::shared_ptr<DistDataset<std::string>> test_docs;
  std::shared_ptr<DistDataset<std::vector<double>>> train_labels;  // one-hot
  std::vector<int> train_label_ids;
  std::vector<int> test_label_ids;
  int num_classes = 2;
};

/// Documents are bags of Zipf-distributed tokens; each class up- or
/// down-weights a subset of "sentiment" tokens, so a linear model over
/// n-grams separates the classes.
TextCorpus AmazonLike(size_t train_docs, size_t test_docs,
                      size_t tokens_per_doc, size_t vocabulary,
                      uint64_t seed);

/// A dense-vector classification set (TIMIT-frame-like or YouTube-like).
struct DenseCorpus {
  std::shared_ptr<DistDataset<std::vector<double>>> train;
  std::shared_ptr<DistDataset<std::vector<double>>> test;
  std::shared_ptr<DistDataset<std::vector<double>>> train_labels;  // one-hot
  std::vector<int> train_label_ids;
  std::vector<int> test_label_ids;
  int num_classes = 0;
};

/// Class-conditional Gaussians with means on a random sphere; `margin`
/// controls separability.
DenseCorpus DenseClasses(size_t train, size_t test, size_t dim,
                         int num_classes, double margin, uint64_t seed);

/// An image classification set (VOC/ImageNet/CIFAR-like).
struct ImageCorpus {
  std::shared_ptr<DistDataset<Image>> train;
  std::shared_ptr<DistDataset<Image>> test;
  std::shared_ptr<DistDataset<std::vector<double>>> train_labels;  // one-hot
  std::vector<int> train_label_ids;
  std::vector<int> test_label_ids;
  int num_classes = 0;
};

/// Images are oriented sinusoidal gratings (class-specific orientation and
/// frequency) plus noise, so gradient-histogram features (SIFT) separate
/// the classes the way real texture statistics would.
ImageCorpus TexturedImages(size_t train, size_t test, size_t image_size,
                           size_t channels, int num_classes, double noise,
                           uint64_t seed);

}  // namespace workloads
}  // namespace keystone

#endif  // KEYSTONE_WORKLOADS_DATASETS_H_
