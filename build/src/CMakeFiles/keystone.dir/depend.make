# Empty dependencies file for keystone.
# This may be replaced when dependencies are built.
