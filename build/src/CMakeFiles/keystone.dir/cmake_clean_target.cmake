file(REMOVE_RECURSE
  "libkeystone.a"
)
