
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baselines.cc" "src/CMakeFiles/keystone.dir/baselines/baselines.cc.o" "gcc" "src/CMakeFiles/keystone.dir/baselines/baselines.cc.o.d"
  "/root/repo/src/common/check.cc" "src/CMakeFiles/keystone.dir/common/check.cc.o" "gcc" "src/CMakeFiles/keystone.dir/common/check.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/keystone.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/keystone.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/keystone.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/keystone.dir/common/rng.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/keystone.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/keystone.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/keystone.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/keystone.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/CMakeFiles/keystone.dir/core/executor.cc.o" "gcc" "src/CMakeFiles/keystone.dir/core/executor.cc.o.d"
  "/root/repo/src/core/pipeline_graph.cc" "src/CMakeFiles/keystone.dir/core/pipeline_graph.cc.o" "gcc" "src/CMakeFiles/keystone.dir/core/pipeline_graph.cc.o.d"
  "/root/repo/src/data/data_stats.cc" "src/CMakeFiles/keystone.dir/data/data_stats.cc.o" "gcc" "src/CMakeFiles/keystone.dir/data/data_stats.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/CMakeFiles/keystone.dir/linalg/eigen.cc.o" "gcc" "src/CMakeFiles/keystone.dir/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/fft.cc" "src/CMakeFiles/keystone.dir/linalg/fft.cc.o" "gcc" "src/CMakeFiles/keystone.dir/linalg/fft.cc.o.d"
  "/root/repo/src/linalg/gemm.cc" "src/CMakeFiles/keystone.dir/linalg/gemm.cc.o" "gcc" "src/CMakeFiles/keystone.dir/linalg/gemm.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/keystone.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/keystone.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/qr.cc" "src/CMakeFiles/keystone.dir/linalg/qr.cc.o" "gcc" "src/CMakeFiles/keystone.dir/linalg/qr.cc.o.d"
  "/root/repo/src/linalg/sparse.cc" "src/CMakeFiles/keystone.dir/linalg/sparse.cc.o" "gcc" "src/CMakeFiles/keystone.dir/linalg/sparse.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/CMakeFiles/keystone.dir/linalg/svd.cc.o" "gcc" "src/CMakeFiles/keystone.dir/linalg/svd.cc.o.d"
  "/root/repo/src/ops/convolution.cc" "src/CMakeFiles/keystone.dir/ops/convolution.cc.o" "gcc" "src/CMakeFiles/keystone.dir/ops/convolution.cc.o.d"
  "/root/repo/src/ops/features.cc" "src/CMakeFiles/keystone.dir/ops/features.cc.o" "gcc" "src/CMakeFiles/keystone.dir/ops/features.cc.o.d"
  "/root/repo/src/ops/gmm.cc" "src/CMakeFiles/keystone.dir/ops/gmm.cc.o" "gcc" "src/CMakeFiles/keystone.dir/ops/gmm.cc.o.d"
  "/root/repo/src/ops/image_ops.cc" "src/CMakeFiles/keystone.dir/ops/image_ops.cc.o" "gcc" "src/CMakeFiles/keystone.dir/ops/image_ops.cc.o.d"
  "/root/repo/src/ops/kmeans.cc" "src/CMakeFiles/keystone.dir/ops/kmeans.cc.o" "gcc" "src/CMakeFiles/keystone.dir/ops/kmeans.cc.o.d"
  "/root/repo/src/ops/metrics.cc" "src/CMakeFiles/keystone.dir/ops/metrics.cc.o" "gcc" "src/CMakeFiles/keystone.dir/ops/metrics.cc.o.d"
  "/root/repo/src/ops/pca.cc" "src/CMakeFiles/keystone.dir/ops/pca.cc.o" "gcc" "src/CMakeFiles/keystone.dir/ops/pca.cc.o.d"
  "/root/repo/src/ops/text_ops.cc" "src/CMakeFiles/keystone.dir/ops/text_ops.cc.o" "gcc" "src/CMakeFiles/keystone.dir/ops/text_ops.cc.o.d"
  "/root/repo/src/optimizer/materialization.cc" "src/CMakeFiles/keystone.dir/optimizer/materialization.cc.o" "gcc" "src/CMakeFiles/keystone.dir/optimizer/materialization.cc.o.d"
  "/root/repo/src/optimizer/operator_optimizer.cc" "src/CMakeFiles/keystone.dir/optimizer/operator_optimizer.cc.o" "gcc" "src/CMakeFiles/keystone.dir/optimizer/operator_optimizer.cc.o.d"
  "/root/repo/src/sim/resources.cc" "src/CMakeFiles/keystone.dir/sim/resources.cc.o" "gcc" "src/CMakeFiles/keystone.dir/sim/resources.cc.o.d"
  "/root/repo/src/sim/virtual_time.cc" "src/CMakeFiles/keystone.dir/sim/virtual_time.cc.o" "gcc" "src/CMakeFiles/keystone.dir/sim/virtual_time.cc.o.d"
  "/root/repo/src/solvers/dense_solvers.cc" "src/CMakeFiles/keystone.dir/solvers/dense_solvers.cc.o" "gcc" "src/CMakeFiles/keystone.dir/solvers/dense_solvers.cc.o.d"
  "/root/repo/src/solvers/lbfgs.cc" "src/CMakeFiles/keystone.dir/solvers/lbfgs.cc.o" "gcc" "src/CMakeFiles/keystone.dir/solvers/lbfgs.cc.o.d"
  "/root/repo/src/solvers/linear_model.cc" "src/CMakeFiles/keystone.dir/solvers/linear_model.cc.o" "gcc" "src/CMakeFiles/keystone.dir/solvers/linear_model.cc.o.d"
  "/root/repo/src/solvers/solver_costs.cc" "src/CMakeFiles/keystone.dir/solvers/solver_costs.cc.o" "gcc" "src/CMakeFiles/keystone.dir/solvers/solver_costs.cc.o.d"
  "/root/repo/src/solvers/solver_util.cc" "src/CMakeFiles/keystone.dir/solvers/solver_util.cc.o" "gcc" "src/CMakeFiles/keystone.dir/solvers/solver_util.cc.o.d"
  "/root/repo/src/solvers/sparse_solvers.cc" "src/CMakeFiles/keystone.dir/solvers/sparse_solvers.cc.o" "gcc" "src/CMakeFiles/keystone.dir/solvers/sparse_solvers.cc.o.d"
  "/root/repo/src/workloads/datasets.cc" "src/CMakeFiles/keystone.dir/workloads/datasets.cc.o" "gcc" "src/CMakeFiles/keystone.dir/workloads/datasets.cc.o.d"
  "/root/repo/src/workloads/pipelines.cc" "src/CMakeFiles/keystone.dir/workloads/pipelines.cc.o" "gcc" "src/CMakeFiles/keystone.dir/workloads/pipelines.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
