# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/materialization_test[1]_include.cmake")
include("/root/repo/build/tests/solvers_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/scale_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_test[1]_include.cmake")
