file(REMOVE_RECURSE
  "CMakeFiles/caching_demo.dir/caching_demo.cpp.o"
  "CMakeFiles/caching_demo.dir/caching_demo.cpp.o.d"
  "caching_demo"
  "caching_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caching_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
