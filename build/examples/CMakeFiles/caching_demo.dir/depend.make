# Empty dependencies file for caching_demo.
# This may be replaced when dependencies are built.
