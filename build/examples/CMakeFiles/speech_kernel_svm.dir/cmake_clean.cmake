file(REMOVE_RECURSE
  "CMakeFiles/speech_kernel_svm.dir/speech_kernel_svm.cpp.o"
  "CMakeFiles/speech_kernel_svm.dir/speech_kernel_svm.cpp.o.d"
  "speech_kernel_svm"
  "speech_kernel_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speech_kernel_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
