# Empty compiler generated dependencies file for speech_kernel_svm.
# This may be replaced when dependencies are built.
