file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_materialization.dir/bench_ablation_materialization.cc.o"
  "CMakeFiles/bench_ablation_materialization.dir/bench_ablation_materialization.cc.o.d"
  "bench_ablation_materialization"
  "bench_ablation_materialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_materialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
