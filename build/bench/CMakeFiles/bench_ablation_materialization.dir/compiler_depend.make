# Empty compiler generated dependencies file for bench_ablation_materialization.
# This may be replaced when dependencies are built.
