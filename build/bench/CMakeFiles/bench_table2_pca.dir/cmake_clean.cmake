file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_pca.dir/bench_table2_pca.cc.o"
  "CMakeFiles/bench_table2_pca.dir/bench_table2_pca.cc.o.d"
  "bench_table2_pca"
  "bench_table2_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
