# Empty dependencies file for bench_fig8_systems.
# This may be replaced when dependencies are built.
