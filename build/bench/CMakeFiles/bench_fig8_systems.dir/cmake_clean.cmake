file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_systems.dir/bench_fig8_systems.cc.o"
  "CMakeFiles/bench_fig8_systems.dir/bench_fig8_systems.cc.o.d"
  "bench_fig8_systems"
  "bench_fig8_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
