# Empty dependencies file for bench_costmodel_accuracy.
# This may be replaced when dependencies are built.
