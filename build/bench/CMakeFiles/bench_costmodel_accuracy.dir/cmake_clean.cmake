file(REMOVE_RECURSE
  "CMakeFiles/bench_costmodel_accuracy.dir/bench_costmodel_accuracy.cc.o"
  "CMakeFiles/bench_costmodel_accuracy.dir/bench_costmodel_accuracy.cc.o.d"
  "bench_costmodel_accuracy"
  "bench_costmodel_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_costmodel_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
