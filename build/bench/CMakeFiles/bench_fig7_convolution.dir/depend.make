# Empty dependencies file for bench_fig7_convolution.
# This may be replaced when dependencies are built.
