file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_convolution.dir/bench_fig7_convolution.cc.o"
  "CMakeFiles/bench_fig7_convolution.dir/bench_fig7_convolution.cc.o.d"
  "bench_fig7_convolution"
  "bench_fig7_convolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_convolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
