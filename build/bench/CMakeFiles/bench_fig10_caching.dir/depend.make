# Empty dependencies file for bench_fig10_caching.
# This may be replaced when dependencies are built.
