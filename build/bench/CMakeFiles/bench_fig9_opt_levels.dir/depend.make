# Empty dependencies file for bench_fig9_opt_levels.
# This may be replaced when dependencies are built.
