file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_opt_levels.dir/bench_fig9_opt_levels.cc.o"
  "CMakeFiles/bench_fig9_opt_levels.dir/bench_fig9_opt_levels.cc.o.d"
  "bench_fig9_opt_levels"
  "bench_fig9_opt_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_opt_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
