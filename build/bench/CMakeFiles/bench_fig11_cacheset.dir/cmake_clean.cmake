file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cacheset.dir/bench_fig11_cacheset.cc.o"
  "CMakeFiles/bench_fig11_cacheset.dir/bench_fig11_cacheset.cc.o.d"
  "bench_fig11_cacheset"
  "bench_fig11_cacheset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cacheset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
