# Empty dependencies file for bench_fig11_cacheset.
# This may be replaced when dependencies are built.
