# Empty dependencies file for bench_table6_tensorflow.
# This may be replaced when dependencies are built.
