file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_tensorflow.dir/bench_table6_tensorflow.cc.o"
  "CMakeFiles/bench_table6_tensorflow.dir/bench_table6_tensorflow.cc.o.d"
  "bench_table6_tensorflow"
  "bench_table6_tensorflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_tensorflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
