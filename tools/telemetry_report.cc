// telemetry_report: offline consumer for the JSONL snapshot stream the
// TelemetryHub exports (bench --telemetry-out=FILE or
// TelemetryHub::AttachJsonlWriter). Renders a per-series text dashboard —
// windows seen, totals, rates, and sliding quantiles — or a JSON summary,
// and doubles as a CI gate: --strict validates the stream's structural
// invariants (monotone (epoch, window) keys, window bounds, quantile
// ordering, non-negative counter deltas, sliding merges covering at least
// the window they include, error budgets bounded by 1).
//
// The stream format is a closed world (the hub emits a fixed schema), so
// the parser below is a deliberately small recursive-descent JSON reader —
// no external dependency, same spirit as the hand-rolled emitters.
//
// Exit status: 0 = ok, 1 = --strict violation, 2 = usage/parse error.
//
// Usage: telemetry_report [--json] [--strict] [--series=PREFIX] FILE

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/string_util.h"

namespace keystone {
namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf)));
}

std::string Quoted(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

// --- Minimal JSON value + parser -------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  // Insertion-ordered object members (duplicate keys keep the last).
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& kv : members) {
      if (kv.first == key) return &kv.second;
    }
    return nullptr;
  }
  double Number(const std::string& key, double fallback = 0.0) const {
    const JsonValue* v = Find(key);
    return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
  }
  std::string String(const std::string& key) const {
    const JsonValue* v = Find(key);
    return (v != nullptr && v->kind == Kind::kString) ? v->str : std::string();
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool Literal(const char* word) {
    const size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (Literal("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (Literal("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (Literal("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return ParseNumber(out);
  }
  bool ParseNumber(JsonValue* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<size_t>(end - begin);
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return true;
  }
  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // The hub's escaper only emits \u00XX for control bytes; decode
          // the BMP code point as a raw byte when it fits, '?' otherwise.
          if (pos_ + 4 > text_.size()) return false;
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* hex_end = nullptr;
          const long code = std::strtol(hex.c_str(), &hex_end, 16);
          if (hex_end != hex.c_str() + 4) return false;
          out->push_back(code >= 0 && code < 256 ? static_cast<char>(code)
                                                 : '?');
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }
  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      SkipSpace();
      if (!ParseValue(&item)) return false;
      out->items.push_back(std::move(item));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Stream model ----------------------------------------------------------

struct SeriesRollup {
  std::string kind;
  size_t windows = 0;
  // Counters.
  double total = 0.0;       // last seen epoch-cumulative total
  double max_rate = 0.0;
  // Gauges.
  double last_value = 0.0;
  double min_value = 0.0, max_value = 0.0;
  // Histograms.
  double count = 0.0;       // summed per-window counts
  double last_sliding_p50 = 0.0;
  double last_sliding_p99 = 0.0;
  double max_p99 = 0.0;
};

struct StreamSummary {
  size_t lines = 0;
  size_t epochs = 0;
  double first_start = 0.0;
  double last_end = 0.0;
  std::map<std::string, SeriesRollup> series;  // sorted for stable output
  std::vector<std::string> violations;
};

void Violation(StreamSummary* summary, size_t line_no, const std::string& what) {
  summary->violations.push_back("line " + std::to_string(line_no) + ": " +
                                what);
}

/// Folds one parsed snapshot line into the summary, checking the stream
/// invariants the hub guarantees by construction.
void FoldLine(const JsonValue& line, size_t line_no, double eps,
              std::pair<double, double>* prev_key, StreamSummary* summary) {
  const double epoch = line.Number("epoch", -1.0);
  const double window = line.Number("window", -1.0);
  const double start = line.Number("start", -1.0);
  const double end = line.Number("end", -1.0);
  if (epoch < 0 || window < 0) {
    Violation(summary, line_no, "missing epoch/window key");
  }
  const std::pair<double, double> key(epoch, window);
  if (summary->lines > 0 && !(*prev_key < key)) {
    Violation(summary, line_no, "(epoch, window) not strictly increasing");
  }
  *prev_key = key;
  if (!(end > start)) {
    Violation(summary, line_no, "window end does not exceed start");
  }
  if (summary->lines == 0) summary->first_start = start;
  summary->last_end = end;
  summary->epochs = std::max(summary->epochs, static_cast<size_t>(epoch) + 1);
  ++summary->lines;

  const JsonValue* series = line.Find("series");
  if (series == nullptr || series->kind != JsonValue::Kind::kArray) {
    Violation(summary, line_no, "missing series array");
    return;
  }
  for (const JsonValue& s : series->items) {
    const std::string name = s.String("name");
    const std::string kind = s.String("kind");
    SeriesRollup& roll = summary->series[name];
    roll.kind = kind;
    ++roll.windows;
    if (kind == "counter") {
      const double delta = s.Number("delta");
      if (delta < 0.0) {
        Violation(summary, line_no, name + ": negative counter delta");
      }
      if (s.Number("total") + eps < roll.total) {
        Violation(summary, line_no, name + ": counter total decreased");
      }
      roll.total = s.Number("total");
      roll.max_rate = std::max(roll.max_rate, s.Number("rate"));
    } else if (kind == "gauge") {
      const double value = s.Number("value");
      if (roll.windows == 1) {
        roll.min_value = roll.max_value = value;
      } else {
        roll.min_value = std::min(roll.min_value, value);
        roll.max_value = std::max(roll.max_value, value);
      }
      roll.last_value = value;
      // Error budgets are fractions of the granted budget: never above 1
      // (they can go negative — that is what overspending means).
      if (name.rfind("slo.", 0) == 0 &&
          name.find("budget_remaining") != std::string::npos &&
          value > 1.0 + eps) {
        Violation(summary, line_no, name + ": budget_remaining above 1");
      }
    } else if (kind == "histogram") {
      const double p50 = s.Number("p50"), p90 = s.Number("p90");
      const double p99 = s.Number("p99"), p999 = s.Number("p999");
      if (p50 > p90 + eps || p90 > p99 + eps || p99 > p999 + eps) {
        Violation(summary, line_no, name + ": window quantiles out of order");
      }
      const double sp50 = s.Number("sliding_p50");
      const double sp99 = s.Number("sliding_p99");
      const double sp999 = s.Number("sliding_p999");
      if (sp50 > sp99 + eps || sp99 > sp999 + eps) {
        Violation(summary, line_no, name + ": sliding quantiles out of order");
      }
      const double count = s.Number("count");
      if (s.Number("sliding_count") + eps < count) {
        Violation(summary, line_no,
                  name + ": sliding_count below window count");
      }
      const double min = s.Number("min"), max = s.Number("max");
      if (min > max + eps || p50 < min - eps || p999 > max + eps) {
        Violation(summary, line_no, name + ": quantiles escape [min, max]");
      }
      roll.count += count;
      roll.last_sliding_p50 = sp50;
      roll.last_sliding_p99 = sp99;
      roll.max_p99 = std::max(roll.max_p99, p99);
    } else {
      Violation(summary, line_no, name + ": unknown series kind '" + kind +
                                      "'");
    }
  }
}

// --- Rendering -------------------------------------------------------------

std::string TextReport(const StreamSummary& summary) {
  std::string out;
  AppendF(&out, "telemetry: %zu windows, %zu epochs, virtual span [%.4g, %.4g)s\n",
          summary.lines, summary.epochs, summary.first_start,
          summary.last_end);
  AppendF(&out, "%-36s %-9s %8s %12s %12s %12s\n", "series", "kind", "windows",
          "total/last", "max rate/p99", "sliding p99");
  for (const auto& [name, roll] : summary.series) {
    if (roll.kind == "counter") {
      AppendF(&out, "%-36s %-9s %8zu %12.6g %12.6g %12s\n", name.c_str(),
              "counter", roll.windows, roll.total, roll.max_rate, "-");
    } else if (roll.kind == "gauge") {
      AppendF(&out, "%-36s %-9s %8zu %12.6g %12s %12s\n", name.c_str(),
              "gauge", roll.windows, roll.last_value, "-", "-");
    } else {
      AppendF(&out, "%-36s %-9s %8zu %12.6g %12.6g %12.6g\n", name.c_str(),
              "histogram", roll.windows, roll.count, roll.max_p99,
              roll.last_sliding_p99);
    }
  }
  return out;
}

std::string JsonReport(const StreamSummary& summary) {
  std::string out = "{";
  AppendF(&out, "\"windows\":%zu,\"epochs\":%zu,\"first_start\":%s",
          summary.lines, summary.epochs,
          JsonNumber(summary.first_start).c_str());
  AppendF(&out, ",\"last_end\":%s,\"violations\":%zu,\"series\":[",
          JsonNumber(summary.last_end).c_str(), summary.violations.size());
  bool first = true;
  for (const auto& [name, roll] : summary.series) {
    if (!first) out += ",";
    first = false;
    AppendF(&out, "{\"name\":%s,\"kind\":%s,\"windows\":%zu",
            Quoted(name).c_str(), Quoted(roll.kind).c_str(), roll.windows);
    if (roll.kind == "counter") {
      AppendF(&out, ",\"total\":%s,\"max_rate\":%s",
              JsonNumber(roll.total).c_str(), JsonNumber(roll.max_rate).c_str());
    } else if (roll.kind == "gauge") {
      AppendF(&out, ",\"last\":%s,\"min\":%s,\"max\":%s",
              JsonNumber(roll.last_value).c_str(),
              JsonNumber(roll.min_value).c_str(),
              JsonNumber(roll.max_value).c_str());
    } else {
      AppendF(&out, ",\"count\":%s,\"max_p99\":%s,\"sliding_p99\":%s",
              JsonNumber(roll.count).c_str(), JsonNumber(roll.max_p99).c_str(),
              JsonNumber(roll.last_sliding_p99).c_str());
    }
    out += "}";
  }
  out += "]}";
  return out;
}

int Run(int argc, char** argv) {
  bool json = false;
  bool strict = false;
  std::string prefix;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strncmp(argv[i], "--series=", 9) == 0) {
      prefix = argv[i] + 9;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: telemetry_report [--json] [--strict] "
                   "[--series=PREFIX] FILE\n");
      return 2;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "telemetry_report: multiple input files\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "telemetry_report: no input file\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "telemetry_report: cannot read %s\n", path.c_str());
    return 2;
  }

  StreamSummary summary;
  std::pair<double, double> prev_key(-1.0, -1.0);
  std::string line;
  size_t line_no = 0;
  const double eps = 1e-9;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue value;
    JsonParser parser(line);
    if (!parser.Parse(&value) || value.kind != JsonValue::Kind::kObject) {
      std::fprintf(stderr, "telemetry_report: %s:%zu: malformed JSON line\n",
                   path.c_str(), line_no);
      return 2;
    }
    FoldLine(value, line_no, eps, &prev_key, &summary);
  }

  if (!prefix.empty()) {
    for (auto it = summary.series.begin(); it != summary.series.end();) {
      if (it->first.rfind(prefix, 0) != 0) {
        it = summary.series.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::printf("%s\n", json ? JsonReport(summary).c_str()
                           : TextReport(summary).c_str());
  if (!summary.violations.empty()) {
    for (const std::string& v : summary.violations) {
      std::fprintf(stderr, "telemetry_report: violation: %s\n", v.c_str());
    }
    if (strict) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace keystone

int main(int argc, char** argv) { return keystone::Run(argc, argv); }
