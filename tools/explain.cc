// explain: compile AND run shipped workloads, then report the full
// observability picture for each — the optimizer's decision provenance
// (physical-operator selections with margins, CSE merges, the greedy
// materialization ledger), the per-resource occupancy timeline of the run,
// and the cost-model calibration (estimated vs observed residuals).
//
// Usage: explain [--json] [--strict] [workload...]
//   --json       machine-readable output (one JSON object per workload)
//   --strict     exit nonzero when any workload produces an empty decision
//                log or a non-finite calibration residual (the CI gate)
//   workload     subset to explain (default: all six shipped workloads)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/executor.h"
#include "src/obs/calibration.h"
#include "src/obs/metrics.h"
#include "src/obs/profile_store.h"
#include "src/obs/resource_timeline.h"
#include "src/obs/trace.h"
#include "src/sim/resources.h"
#include "tools/shipped_workloads.h"

namespace keystone {
namespace {

int Run(int argc, char** argv) {
  bool json = false;
  bool strict = false;
  std::vector<std::string> wanted;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: explain [--json] [--strict] [workload...]\n");
      return 2;
    } else {
      wanted.emplace_back(argv[i]);
    }
  }

  const auto targets = tools::ShippedWorkloads();
  int matched = 0;
  int strict_failures = 0;
  bool first = true;
  if (json) std::printf("[");
  for (const tools::ShippedWorkload& target : targets) {
    if (!wanted.empty() &&
        std::find(wanted.begin(), wanted.end(), target.name) ==
            wanted.end()) {
      continue;
    }
    ++matched;

    // Per-workload observability sinks so each report covers exactly one
    // compile + fit, independent of the process-wide globals.
    obs::TraceRecorder tracer;
    obs::MetricsRegistry metrics;
    obs::ProfileStore store;
    obs::ResourceTimeline timeline;

    const ClusterResourceDescriptor resources =
        ClusterResourceDescriptor::R3_4xlarge(4);
    PipelineExecutor executor(resources, OptimizationConfig::Full());
    executor.context()->set_tracer(&tracer);
    executor.context()->set_metrics(&metrics);
    executor.context()->set_profile_store(&store);
    executor.context()->set_timeline(&timeline);

    PipelineReport report;
    const auto fitted = executor.FitGraph(*target.graph, target.placeholder,
                                          target.sink, &report);
    const obs::OptimizerDecisionLog& log = *fitted->plan().decision_log;
    const obs::CalibrationReport calibration =
        obs::BuildCalibrationFromSpans(tracer.Spans(), resources);

    if (strict) {
      if (log.Empty()) {
        std::fprintf(stderr, "explain: %s: empty decision log\n",
                     target.name.c_str());
        ++strict_failures;
      }
      if (!calibration.AllFinite()) {
        std::fprintf(stderr,
                     "explain: %s: non-finite calibration residual\n",
                     target.name.c_str());
        ++strict_failures;
      }
    }

    if (json) {
      std::printf(
          "%s{\"workload\":\"%s\",\"decision_log\":%s,"
          "\"timeline\":%s,\"calibration\":%s}",
          first ? "" : ",\n", target.name.c_str(), log.ToJson().c_str(),
          timeline.ToJson().c_str(), calibration.ToJson().c_str());
    } else {
      std::printf("=== %s ===\n%s\n--- resource timeline ---\n%s\n"
                  "--- calibration ---\n%s\n",
                  target.name.c_str(), log.ToString().c_str(),
                  timeline.ToString().c_str(),
                  calibration.ToString().c_str());
    }
    first = false;
  }
  if (json) std::printf("]\n");
  if (!wanted.empty() && matched != static_cast<int>(wanted.size())) {
    std::fprintf(stderr, "explain: unknown workload name\n");
    return 2;
  }
  return strict_failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace keystone

int main(int argc, char** argv) { return keystone::Run(argc, argv); }
