// explain: compile AND run shipped workloads, then report the full
// observability picture for each — the optimizer's decision provenance
// (physical-operator selections with margins, CSE merges, the greedy
// materialization ledger), the per-resource occupancy timeline of the run,
// and the cost-model calibration (estimated vs observed residuals).
//
// Usage: explain [--json] [--strict] [--runtime-only] [--fault-rate=R]
//                [--fault-seed=S] [workload...]
//   --json       machine-readable output (one JSON object per workload)
//   --strict     exit nonzero when any workload produces an empty decision
//                log, a non-finite calibration residual, or a live plan
//                node without a concrete statically inferred shape — no ⊤
//                on shipped workloads (the CI gate)
//   --runtime-only  also print the apply-masked (servable) plan view of the
//                fitted pipeline — what a PipelineServer would execute per
//                request after train-only nodes are stripped
//   --fault-rate=R  replay each fit under an injected fault schedule: task
//                failures at rate R per attempt (executor losses at R/4,
//                stragglers at R/2); fault recoveries then appear in the
//                decision log and the recovery timeline track
//   --fault-seed=S  seed of the injected fault schedule (default 42)
//   workload     subset to explain (default: all six shipped workloads)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/plan_validator.h"
#include "src/cache/artifact_catalog.h"
#include "src/common/string_util.h"
#include "src/core/executor.h"
#include "src/obs/calibration.h"
#include "src/obs/metrics.h"
#include "src/obs/profile_store.h"
#include "src/obs/resource_timeline.h"
#include "src/obs/trace.h"
#include "src/sim/faults/fault_plan.h"
#include "src/sim/resources.h"
#include "tools/shipped_workloads.h"

namespace keystone {
namespace {

bool TakeValue(const char* arg, const char* prefix, std::string* out) {
  const size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *out = arg + n;
  return true;
}

/// Renders one warm-fit reuse decision as a JSON object.
std::string ReuseDecisionJson(const obs::ReuseDecision& d) {
  std::string out = "{\"node\":" + std::to_string(d.node_id) + ",\"name\":\"" +
                    JsonEscape(d.node_name) + "\",\"fingerprint\":\"" +
                    JsonEscape(d.fingerprint) + "\",\"accepted\":" +
                    (d.accepted ? "true" : "false");
  if (d.accepted) {
    out += ",\"tier\":\"" + JsonEscape(d.tier) +
           "\",\"load_seconds\":" + std::to_string(d.load_seconds) +
           ",\"recompute_seconds\":" + std::to_string(d.recompute_seconds) +
           ",\"pruned\":" + std::to_string(d.pruned.size());
  } else {
    out += ",\"reason\":\"" + JsonEscape(d.reason) + "\"";
  }
  return out + "}";
}

int Run(int argc, char** argv) {
  bool json = false;
  bool strict = false;
  bool runtime_only = false;
  double fault_rate = 0.0;
  uint64_t fault_seed = 42;
  std::string value;
  std::vector<std::string> wanted;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--runtime-only") == 0) {
      runtime_only = true;
    } else if (TakeValue(argv[i], "--fault-rate=", &value)) {
      fault_rate = std::strtod(value.c_str(), nullptr);
    } else if (TakeValue(argv[i], "--fault-seed=", &value)) {
      fault_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: explain [--json] [--strict] [--runtime-only] "
                   "[--fault-rate=R] [--fault-seed=S] [workload...]\n");
      return 2;
    } else {
      wanted.emplace_back(argv[i]);
    }
  }

  faults::FaultInjectionConfig fault_config;
  fault_config.seed = fault_seed;
  fault_config.task_failure_rate = fault_rate;
  fault_config.executor_loss_rate = fault_rate / 4.0;
  fault_config.straggler_rate = fault_rate / 2.0;
  const faults::FaultPlan fault_plan(fault_config);

  const auto targets = tools::ShippedWorkloads();
  int matched = 0;
  int strict_failures = 0;
  int total_reuse_accepted = 0;
  bool first = true;
  if (json) std::printf("[");
  for (const tools::ShippedWorkload& target : targets) {
    if (!wanted.empty() &&
        std::find(wanted.begin(), wanted.end(), target.name) ==
            wanted.end()) {
      continue;
    }
    ++matched;

    // Per-workload observability sinks so each report covers exactly one
    // compile + fit, independent of the process-wide globals.
    obs::TraceRecorder tracer;
    obs::MetricsRegistry metrics;
    obs::ProfileStore store;
    obs::ResourceTimeline timeline;

    const ClusterResourceDescriptor resources =
        ClusterResourceDescriptor::R3_4xlarge(4);
    // In-process, memory-only artifact catalog: the cold fit below
    // publishes its pure-lineage intermediates, and a second (warm) fit
    // then exercises the cross-run ReusePass against them.
    cache::ArtifactCatalog catalog{cache::CatalogConfig{}};
    PipelineExecutor executor(resources, OptimizationConfig::Full());
    executor.context()->set_tracer(&tracer);
    executor.context()->set_metrics(&metrics);
    executor.context()->set_profile_store(&store);
    executor.context()->set_timeline(&timeline);
    executor.context()->set_artifact_catalog(&catalog);
    if (fault_plan.Enabled()) {
      executor.context()->set_fault_plan(&fault_plan);
    }

    PipelineReport report;
    const auto fitted = executor.FitGraph(*target.graph, target.placeholder,
                                          target.sink, &report);
    const obs::OptimizerDecisionLog& log = *fitted->plan().decision_log;
    const obs::CalibrationReport calibration =
        obs::BuildCalibrationFromSpans(tracer.Spans(), resources);

    // Warm fit: the same workload again, against the catalog the cold fit
    // just populated — the ReusePass rewrites the fingerprint-matched
    // prefix into catalog reads. Separate sinks keep the primary report
    // above identical to a cold explain.
    obs::TraceRecorder warm_tracer;
    obs::MetricsRegistry warm_metrics;
    obs::ResourceTimeline warm_timeline;
    PipelineExecutor warm_executor(resources, OptimizationConfig::Full());
    warm_executor.context()->set_tracer(&warm_tracer);
    warm_executor.context()->set_metrics(&warm_metrics);
    warm_executor.context()->set_timeline(&warm_timeline);
    warm_executor.context()->set_artifact_catalog(&catalog);
    if (fault_plan.Enabled()) {
      warm_executor.context()->set_fault_plan(&fault_plan);
    }
    PipelineReport warm_report;
    const auto warm = warm_executor.FitGraph(*target.graph, target.placeholder,
                                             target.sink, &warm_report);
    const std::vector<obs::ReuseDecision> reuse_decisions =
        warm->plan().decision_log->ReuseDecisions();
    int reuse_accepted = 0;
    for (const obs::ReuseDecision& d : reuse_decisions) {
      if (d.accepted) ++reuse_accepted;
    }
    total_reuse_accepted += reuse_accepted;

    // Statically inferred dataflow facts for every live plan node,
    // surfaced alongside the decision log. Under --strict, a live node
    // whose inferred shape is still ⊤ (or collapsed to ⊥) fails the gate:
    // shipped workloads must infer concrete shapes end-to-end.
    const PhysicalPlan& plan = fitted->plan();
    int unshaped = 0;
    std::string dataflow_json = "[";
    bool first_node = true;
    for (const PlannedNode& pn : plan.nodes) {
      if (!pn.train && !pn.runtime) continue;
      const bool concrete = pn.dataflow_annotated &&
                            !pn.inferred_shape.IsTop() &&
                            !pn.inferred_shape.IsBottom();
      if (!concrete) {
        ++unshaped;
        if (strict) {
          std::fprintf(stderr,
                       "explain: %s: node %d '%s' has no concrete inferred "
                       "shape (%s)\n",
                       target.name.c_str(), pn.id, pn.name.c_str(),
                       pn.dataflow_annotated
                           ? pn.inferred_shape.ToString().c_str()
                           : "unannotated");
        }
      }
      dataflow_json +=
          (first_node ? std::string() : std::string(",")) + "{\"node\":" +
          std::to_string(pn.id) + ",\"name\":\"" + JsonEscape(pn.name) +
          "\",\"shape\":\"" + JsonEscape(pn.inferred_shape.ToString()) +
          "\",\"cardinality\":\"" + JsonEscape(pn.cardinality.ToString()) +
          "\",\"effect\":\"" + EffectClassName(pn.effect) + "\"}";
      first_node = false;
    }
    dataflow_json += "]";

    if (strict) {
      if (log.Empty()) {
        std::fprintf(stderr, "explain: %s: empty decision log\n",
                     target.name.c_str());
        ++strict_failures;
      }
      if (!calibration.AllFinite()) {
        std::fprintf(stderr,
                     "explain: %s: non-finite calibration residual\n",
                     target.name.c_str());
        ++strict_failures;
      }
      strict_failures += unshaped;

      // Fusion provenance: every fused region must trace back to a
      // recorded fusibility candidate (its members a contiguous run of the
      // candidate's chain), every candidate must have been judged, and
      // every rejection must carry a reason.
      const auto candidates = log.FusionCandidates();
      const auto decisions = log.FusionDecisions();
      for (const FusedRegion& region : plan.fused_regions) {
        bool covered = false;
        for (const obs::FusionCandidate& cand : candidates) {
          for (size_t at = 0;
               !covered && at + region.nodes.size() <= cand.nodes.size();
               ++at) {
            covered = std::equal(region.nodes.begin(), region.nodes.end(),
                                 cand.nodes.begin() + at);
          }
          if (covered) break;
        }
        if (!covered) {
          std::fprintf(stderr,
                       "explain: %s: fused region r%d matches no recorded "
                       "fusibility candidate\n",
                       target.name.c_str(), region.id);
          ++strict_failures;
        }
      }
      for (size_t i = 0; i < candidates.size(); ++i) {
        bool judged = false;
        for (const obs::FusionDecision& d : decisions) {
          if (d.candidate_index == static_cast<int>(i)) judged = true;
        }
        if (!judged) {
          std::fprintf(stderr,
                       "explain: %s: fusibility candidate %zu was never "
                       "judged by the fusion pass\n",
                       target.name.c_str(), i);
          ++strict_failures;
        }
      }
      for (const obs::FusionDecision& d : decisions) {
        if (!d.accepted && d.reason.empty()) {
          std::fprintf(stderr,
                       "explain: %s: rejected fusion candidate %d has no "
                       "logged reason\n",
                       target.name.c_str(), d.candidate_index);
          ++strict_failures;
        }
      }

      // Cross-run reuse provenance over the warm fit: every rejection must
      // carry a reason, and the rewritten plan must pass the reuse.* rules
      // both structurally and against the live catalog.
      for (const obs::ReuseDecision& d : reuse_decisions) {
        if (!d.accepted && d.reason.empty()) {
          std::fprintf(stderr,
                       "explain: %s: rejected reuse candidate (node %d) has "
                       "no logged reason\n",
                       target.name.c_str(), d.node_id);
          ++strict_failures;
        }
      }
      analysis::ValidationReport reuse_report =
          analysis::ValidateReuseMarkers(warm->plan());
      reuse_report.Merge(cache::ValidateReuse(warm->plan(), catalog));
      if (!reuse_report.ok()) {
        std::fprintf(stderr, "explain: %s: warm plan fails reuse.* rules:\n%s",
                     target.name.c_str(), reuse_report.ToString().c_str());
        ++strict_failures;
      }
    }

    std::string reuse_json =
        "{\"cold_total_seconds\":" +
        std::to_string(report.total_train_seconds) +
        ",\"warm_total_seconds\":" +
        std::to_string(warm_report.total_train_seconds) +
        ",\"accepted\":" + std::to_string(reuse_accepted) + ",\"decisions\":[";
    for (size_t i = 0; i < reuse_decisions.size(); ++i) {
      if (i > 0) reuse_json += ",";
      reuse_json += ReuseDecisionJson(reuse_decisions[i]);
    }
    reuse_json += "]}";

    if (json) {
      std::printf(
          "%s{\"workload\":\"%s\",\"decision_log\":%s,"
          "\"timeline\":%s,\"calibration\":%s,\"dataflow\":%s,\"reuse\":%s",
          first ? "" : ",\n", target.name.c_str(), log.ToJson().c_str(),
          timeline.ToJson().c_str(), calibration.ToJson().c_str(),
          dataflow_json.c_str(), reuse_json.c_str());
      if (runtime_only) {
        std::printf(",\"servable_plan\":%s",
                    fitted->plan().ToJson(true).c_str());
      }
      std::printf("}");
    } else {
      std::printf("=== %s ===\n%s\n--- resource timeline ---\n%s\n"
                  "--- calibration ---\n%s\n--- inferred dataflow ---\n",
                  target.name.c_str(), log.ToString().c_str(),
                  timeline.ToString().c_str(),
                  calibration.ToString().c_str());
      for (const PlannedNode& pn : plan.nodes) {
        if (!pn.train && !pn.runtime) continue;
        std::printf("  node %d %-24s shape=%s card=%s effect=%s\n", pn.id,
                    pn.name.c_str(), pn.inferred_shape.ToString().c_str(),
                    pn.cardinality.ToString().c_str(),
                    EffectClassName(pn.effect));
      }
      std::printf("--- cross-run reuse (warm fit) ---\n");
      std::printf("  cold total=%s warm total=%s\n",
                  HumanSeconds(report.total_train_seconds).c_str(),
                  HumanSeconds(warm_report.total_train_seconds).c_str());
      for (const obs::ReuseDecision& d : reuse_decisions) {
        if (d.accepted) {
          std::printf(
              "  node %d %s reused from %s: load=%s vs recompute=%s "
              "(prunes %zu)\n",
              d.node_id, d.node_name.c_str(), d.tier.c_str(),
              HumanSeconds(d.load_seconds).c_str(),
              HumanSeconds(d.recompute_seconds).c_str(), d.pruned.size());
        } else {
          std::printf("  node %d %s rejected: %s\n", d.node_id,
                      d.node_name.c_str(), d.reason.c_str());
        }
      }
      if (runtime_only) {
        std::printf("--- servable plan (runtime mask) ---\n%s\n",
                    fitted->plan().ToString(true).c_str());
      }
    }
    first = false;
  }
  if (json) std::printf("]\n");
  if (!wanted.empty() && matched != static_cast<int>(wanted.size())) {
    std::fprintf(stderr, "explain: unknown workload name\n");
    return 2;
  }
  // The warm fits ran against catalogs the cold fits populated; a shipped
  // workload set where not a single reuse lands means the rewrite is dead.
  if (strict && matched > 0 && total_reuse_accepted == 0) {
    std::fprintf(stderr,
                 "explain: no workload produced an accepted cross-run reuse "
                 "decision on its warm fit\n");
    ++strict_failures;
  }
  return strict_failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace keystone

int main(int argc, char** argv) { return keystone::Run(argc, argv); }
