#ifndef KEYSTONE_TOOLS_SHIPPED_WORKLOADS_H_
#define KEYSTONE_TOOLS_SHIPPED_WORKLOADS_H_

// The six shipped workload pipelines on tiny synthetic corpora, shared by
// the static-analysis front-ends (pipeline_lint, plan_dump). Graph shape
// does not depend on corpus size, so the corpora stay small enough that
// compiling a plan (including the sampling passes) is fast.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/pipeline.h"
#include "src/workloads/datasets.h"
#include "src/workloads/pipelines.h"

namespace keystone {
namespace tools {

struct ShippedWorkload {
  std::string name;
  std::shared_ptr<PipelineGraph> graph;
  int placeholder = -1;
  int sink = -1;
};

template <typename A, typename B>
ShippedWorkload MakeWorkload(std::string name, const Pipeline<A, B>& pipe) {
  ShippedWorkload workload;
  workload.name = std::move(name);
  workload.graph = pipe.graph();
  workload.placeholder = pipe.source();
  workload.sink = pipe.sink();
  return workload;
}

/// Builds the logical graph of every shipped workload.
inline std::vector<ShippedWorkload> ShippedWorkloads() {
  using workloads::AmazonLike;
  using workloads::BuildAmazonPipeline;
  using workloads::BuildCifarPipeline;
  using workloads::BuildImageNetPipeline;
  using workloads::BuildTimitPipeline;
  using workloads::BuildVocPipeline;
  using workloads::BuildYoutubePipeline;
  using workloads::DenseClasses;
  using workloads::DenseCorpus;
  using workloads::ImageCorpus;
  using workloads::TextCorpus;
  using workloads::TexturedImages;
  std::vector<ShippedWorkload> targets;

  LinearSolverConfig solver;
  solver.num_classes = 2;

  const TextCorpus amazon = AmazonLike(32, 8, 10, 200, 7);
  targets.push_back(
      MakeWorkload("amazon", BuildAmazonPipeline(amazon, 256, solver)));

  LinearSolverConfig dense_solver;
  dense_solver.num_classes = 3;
  const DenseCorpus timit = DenseClasses(32, 8, 16, 3, 1.0, 7);
  targets.push_back(MakeWorkload(
      "timit", BuildTimitPipeline(timit, 2, 8, 0.5, dense_solver, 7)));

  const ImageCorpus images = TexturedImages(8, 4, 32, 1, 3, 0.1, 7);
  targets.push_back(MakeWorkload(
      "voc", BuildVocPipeline(images, 4, 8, 4, dense_solver)));
  targets.push_back(MakeWorkload(
      "imagenet", BuildImageNetPipeline(images, 4, 8, 4, dense_solver)));
  targets.push_back(MakeWorkload(
      "cifar", BuildCifarPipeline(images, 5, 3, 8, dense_solver)));

  const DenseCorpus youtube = DenseClasses(32, 8, 16, 3, 1.0, 7);
  targets.push_back(
      MakeWorkload("youtube", BuildYoutubePipeline(youtube, dense_solver)));
  return targets;
}

}  // namespace tools
}  // namespace keystone

#endif  // KEYSTONE_TOOLS_SHIPPED_WORKLOADS_H_
