// plan_dump: compile shipped workload pipelines to the PhysicalPlan IR and
// print the result — every optimizer decision (chosen physical operators,
// cache set, extrapolated costs, execution masks) as the executor will see
// it, without running the full-scale training pass.
//
// Usage: plan_dump [--json] [--none|--pipe-only] [--runtime-only]
//                  [workload...]
//   --json          machine-readable output (one JSON object per workload)
//   --none          compile under OptimizationConfig::None()
//   --pipe-only     compile under OptimizationConfig::PipeOnly()
//   --runtime-only  print the apply-masked (servable) plan view: only the
//                   nodes PlanRunner::RunApply executes per request, with
//                   train-only nodes stripped
//   workload        subset to dump (default: all six shipped workloads)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/executor.h"
#include "src/sim/resources.h"
#include "tools/shipped_workloads.h"

namespace keystone {
namespace {

int Run(int argc, char** argv) {
  bool json = false;
  bool runtime_only = false;
  OptimizationConfig config = OptimizationConfig::Full();
  std::vector<std::string> wanted;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--none") == 0) {
      config = OptimizationConfig::None();
    } else if (std::strcmp(argv[i], "--pipe-only") == 0) {
      config = OptimizationConfig::PipeOnly();
    } else if (std::strcmp(argv[i], "--runtime-only") == 0) {
      runtime_only = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: plan_dump [--json] [--none|--pipe-only] "
                   "[--runtime-only] [workload...]\n");
      return 2;
    } else {
      wanted.emplace_back(argv[i]);
    }
  }

  const auto targets = tools::ShippedWorkloads();
  int matched = 0;
  bool first = true;
  if (json) std::printf("[");
  for (const tools::ShippedWorkload& target : targets) {
    if (!wanted.empty() &&
        std::find(wanted.begin(), wanted.end(), target.name) ==
            wanted.end()) {
      continue;
    }
    ++matched;
    PipelineExecutor executor(ClusterResourceDescriptor::R3_4xlarge(4),
                              config);
    const auto plan =
        executor.Compile(*target.graph, target.placeholder, target.sink);
    if (json) {
      std::printf("%s{\"workload\":\"%s\",\"plan\":%s}", first ? "" : ",\n",
                  target.name.c_str(), plan->ToJson(runtime_only).c_str());
    } else {
      std::printf("=== %s ===\n%s\n", target.name.c_str(),
                  plan->ToString(runtime_only).c_str());
    }
    first = false;
  }
  if (json) std::printf("]\n");
  if (!wanted.empty() && matched != static_cast<int>(wanted.size())) {
    std::fprintf(stderr, "plan_dump: unknown workload name\n");
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace keystone

int main(int argc, char** argv) { return keystone::Run(argc, argv); }
