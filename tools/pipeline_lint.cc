// pipeline_lint: run every shipped workload pipeline through the static
// plan validator (src/analysis) and report diagnostics.
//
// The tool only *builds* the logical graphs — no fitting, no sampling — so
// it is fast enough for CI. Exit status is 1 when any pipeline has errors;
// with --strict, warnings fail too.
//
// Usage: pipeline_lint [--strict] [--verbose] [--dot]
//   --strict   treat warnings as failures
//   --verbose  print every diagnostic, even for clean pipelines
//   --dot      dump each pipeline graph in Graphviz format

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/analysis/plan_validator.h"
#include "src/core/pipeline.h"
#include "src/workloads/datasets.h"
#include "src/workloads/pipelines.h"

namespace keystone {
namespace {

struct LintTarget {
  std::string name;
  std::shared_ptr<PipelineGraph> graph;
  int placeholder = -1;
  int sink = -1;
};

template <typename A, typename B>
LintTarget Target(std::string name, const Pipeline<A, B>& pipe) {
  LintTarget target;
  target.name = std::move(name);
  target.graph = pipe.graph();
  target.placeholder = pipe.source();
  target.sink = pipe.sink();
  return target;
}

/// Builds the logical graph of every shipped workload on tiny synthetic
/// corpora (graph shape does not depend on corpus size).
std::vector<LintTarget> ShippedPipelines() {
  using namespace workloads;
  std::vector<LintTarget> targets;

  LinearSolverConfig solver;
  solver.num_classes = 2;

  const TextCorpus amazon = AmazonLike(32, 8, 10, 200, 7);
  targets.push_back(Target("amazon", BuildAmazonPipeline(amazon, 256, solver)));

  LinearSolverConfig dense_solver;
  dense_solver.num_classes = 3;
  const DenseCorpus timit = DenseClasses(32, 8, 16, 3, 1.0, 7);
  targets.push_back(Target(
      "timit", BuildTimitPipeline(timit, 2, 8, 0.5, dense_solver, 7)));

  const ImageCorpus images = TexturedImages(8, 4, 32, 1, 3, 0.1, 7);
  targets.push_back(Target(
      "voc", BuildVocPipeline(images, 4, 8, 4, dense_solver)));
  targets.push_back(Target(
      "imagenet", BuildImageNetPipeline(images, 4, 8, 4, dense_solver)));
  targets.push_back(Target(
      "cifar", BuildCifarPipeline(images, 5, 3, 8, dense_solver)));

  const DenseCorpus youtube = DenseClasses(32, 8, 16, 3, 1.0, 7);
  targets.push_back(Target("youtube", BuildYoutubePipeline(youtube,
                                                           dense_solver)));
  return targets;
}

int Run(int argc, char** argv) {
  bool strict = false;
  bool verbose = false;
  bool dot = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      dot = true;
    } else {
      std::fprintf(stderr,
                   "usage: pipeline_lint [--strict] [--verbose] [--dot]\n");
      return 2;
    }
  }

  int failures = 0;
  for (const LintTarget& target : ShippedPipelines()) {
    analysis::PlanValidationOptions options;
    options.sink = target.sink;
    options.placeholder = target.placeholder;
    const analysis::ValidationReport report =
        analysis::PlanValidator(options).Validate(*target.graph);

    const bool failed = !report.ok() || (strict && report.warnings() > 0);
    if (failed) ++failures;
    std::printf("%-10s %-5s %3d nodes, %d errors, %d warnings\n",
                target.name.c_str(), failed ? "FAIL" : "ok",
                target.graph->size(), report.errors(), report.warnings());
    if ((failed || verbose) && !report.clean()) {
      for (const analysis::Diagnostic& diag : report.diagnostics()) {
        std::printf("    %s\n", diag.ToString().c_str());
      }
    }
    if (dot) std::printf("%s", target.graph->ToDot().c_str());
  }
  if (failures > 0) {
    std::printf("pipeline_lint: %d pipeline(s) failed validation\n",
                failures);
    return 1;
  }
  std::printf("pipeline_lint: all pipelines clean\n");
  return 0;
}

}  // namespace
}  // namespace keystone

int main(int argc, char** argv) { return keystone::Run(argc, argv); }
